//! Event sink and recorder.
//!
//! Instrumented code holds a [`Sink`]. When the sink is [`Sink::Off`]
//! (the default, a unit variant) every probe is one branch and nothing
//! else — no event construction, no allocation. When on, probes fold
//! into a [`Recorder`]: per-name span accumulators with fixed-bucket
//! histograms (always), plus the raw event list when span collection is
//! enabled for trace export.

use crate::hist::Histogram;
use std::collections::BTreeMap;

/// Interned name handle. Instrumented code interns names once at
/// attach time and passes the id on the hot path.
pub type NameId = u16;

/// One recorded span (or instant event, when `dur == 0`).
///
/// `start`/`dur` are in the *recorder's* time unit — machine cycles
/// for engine/sim recorders, simulated milliseconds for netstack
/// interface recorders. A recorder never mixes units; the exporter is
/// told the unit scale per recorder ([`crate::TracePart::units_per_us`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Interned name (also the exported thread id, so each name gets
    /// its own row in `chrome://tracing`).
    pub name: NameId,
    /// Start timestamp, simulated units.
    pub start: u64,
    /// Duration in simulated units; `0` marks an instant event.
    pub dur: u64,
    /// Messages covered by this span (batch size; `1` for per-message
    /// disciplines, `0` for instant events).
    pub batch: u32,
    /// Event-specific annotation (e.g. NIC queue depth after batch
    /// formation); `0` when unused.
    pub aux: u64,
    /// I-cache misses charged within the span.
    pub imisses: u64,
    /// D-cache misses charged within the span.
    pub dmisses: u64,
}

impl SpanEvent {
    /// An instant event (no duration, no batch).
    pub fn instant(name: NameId, ts: u64) -> Self {
        SpanEvent {
            name,
            start: ts,
            dur: 0,
            batch: 0,
            aux: 0,
            imisses: 0,
            dmisses: 0,
        }
    }
}

/// Running totals and histograms for all spans sharing one name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanAccum {
    /// Spans folded in.
    pub spans: u64,
    /// Sum of span batch sizes (messages covered).
    pub messages: u64,
    /// Sum of span durations (simulated units).
    pub cycles: u64,
    /// Sum of I-cache misses charged.
    pub imisses: u64,
    /// Sum of D-cache misses charged.
    pub dmisses: u64,
    /// Distribution of span durations.
    pub dur_hist: Histogram,
    /// Distribution of per-span I-miss counts.
    pub imiss_hist: Histogram,
    /// Distribution of per-span D-miss counts.
    pub dmiss_hist: Histogram,
}

impl SpanAccum {
    #[inline]
    fn fold(&mut self, ev: &SpanEvent) {
        self.spans += 1;
        self.messages += u64::from(ev.batch);
        self.cycles = self.cycles.saturating_add(ev.dur);
        self.imisses += ev.imisses;
        self.dmisses += ev.dmisses;
        self.dur_hist.record(ev.dur);
        self.imiss_hist.record(ev.imisses);
        self.dmiss_hist.record(ev.dmisses);
    }

    fn merge(&mut self, other: &SpanAccum) {
        self.spans += other.spans;
        self.messages += other.messages;
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.imisses += other.imisses;
        self.dmisses += other.dmisses;
        self.dur_hist.merge(&other.dur_hist);
        self.imiss_hist.merge(&other.imiss_hist);
        self.dmiss_hist.merge(&other.dmiss_hist);
    }

    /// True when no span has been folded in.
    pub fn is_empty(&self) -> bool {
        self.spans == 0
    }
}

/// Collects spans and named value distributions for one run.
///
/// Names are interned up front ([`Recorder::intern`], which may
/// allocate); the hot-path entry points ([`Recorder::span`],
/// [`Recorder::record_value`]) only index preallocated tables — unless
/// span collection is enabled, in which case events append to a `Vec`
/// (trace mode is explicitly not alloc-free).
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    collect_spans: bool,
    names: Vec<String>,
    ids: BTreeMap<String, NameId>,
    spans: Vec<SpanAccum>,
    values: Vec<Histogram>,
    events: Vec<SpanEvent>,
}

impl Recorder {
    /// New recorder; `collect_spans` keeps the raw event list for
    /// trace export (metrics-only callers pass `false`).
    pub fn new(collect_spans: bool) -> Self {
        Recorder {
            collect_spans,
            ..Recorder::default()
        }
    }

    /// Whether raw events are kept for trace export.
    pub fn collects_spans(&self) -> bool {
        self.collect_spans
    }

    /// Interns a name, reusing the id if it is already known. Ids are
    /// dense and assigned in first-intern order, which instrumented
    /// code drives deterministically. Once the (absurd) 65 535-name
    /// table is full, further names collapse onto the last id rather
    /// than growing unboundedly.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        if self.names.len() >= usize::from(NameId::MAX) {
            return NameId::MAX - 1;
        }
        let id = self.names.len() as NameId;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        self.spans.push(SpanAccum::default());
        self.values.push(Histogram::new());
        id
    }

    /// Name for an id (`"?"` for an unknown id).
    pub fn name(&self, id: NameId) -> &str {
        self.names
            .get(usize::from(id))
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Records a span: folds it into the per-name accumulator and, in
    /// span-collection mode, appends it to the event list.
    #[inline]
    pub fn span(&mut self, ev: SpanEvent) {
        if let Some(acc) = self.spans.get_mut(usize::from(ev.name)) {
            acc.fold(&ev);
        }
        if self.collect_spans {
            // analyze::allow(alloc-path, reason = "span events are opt-in (collect_spans); metrics-only runs fold into fixed accumulators")
            self.events.push(ev);
        }
    }

    /// Records an instant event (duration 0).
    #[inline]
    pub fn instant(&mut self, name: NameId, ts: u64) {
        self.span(SpanEvent::instant(name, ts));
    }

    /// Records one sample into the named value histogram (e.g. a
    /// per-message latency in microseconds).
    #[inline]
    pub fn record_value(&mut self, name: NameId, v: u64) {
        if let Some(h) = self.values.get_mut(usize::from(name)) {
            h.record(v);
        }
    }

    /// Raw events, in record order (empty unless span collection is on).
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Span accumulator for an interned name.
    pub fn span_accum(&self, id: NameId) -> Option<&SpanAccum> {
        self.spans.get(usize::from(id))
    }

    /// Value histogram for an interned name.
    pub fn value_hist(&self, id: NameId) -> Option<&Histogram> {
        self.values.get(usize::from(id))
    }

    /// Value histogram looked up by name, for consumers (benches,
    /// tests) that never held the interned id. `None` when the name
    /// was never interned.
    pub fn value_hist_named(&self, name: &str) -> Option<&Histogram> {
        self.ids.get(name).and_then(|&id| self.value_hist(id))
    }

    /// `(name, accum)` pairs in id (first-intern) order.
    pub fn iter_spans(&self) -> impl Iterator<Item = (&str, &SpanAccum)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.spans.iter())
    }

    /// `(name, histogram)` pairs in id (first-intern) order.
    pub fn iter_values(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter())
    }

    /// Folds another recorder's accumulators and value histograms into
    /// this one, matching by *name* (ids may differ between
    /// recorders). Callers merge per-seed recorders in seed order;
    /// because everything here is integer arithmetic the result is
    /// exact and thread-count independent. Raw events are *not*
    /// merged: event timelines from different runs do not share a
    /// clock origin.
    pub fn merge(&mut self, other: &Recorder) {
        for (oid, name) in other.names.iter().enumerate() {
            let id = self.intern(name);
            if let (Some(dst), Some(src)) =
                (self.spans.get_mut(usize::from(id)), other.spans.get(oid))
            {
                dst.merge(src);
            }
            if let (Some(dst), Some(src)) =
                (self.values.get_mut(usize::from(id)), other.values.get(oid))
            {
                dst.merge(src);
            }
        }
    }
}

/// The sink instrumented code holds. [`Sink::Off`] — the default — is
/// the no-op unit state: probes check `is_on()` (one branch) and do
/// nothing else, so the hot path stays zero-alloc and zero-cost.
#[derive(Debug, Default)]
pub enum Sink {
    /// Observability disabled; every probe is a no-op.
    #[default]
    Off,
    /// Observability enabled, recording into the boxed recorder.
    On(Box<Recorder>),
}

impl Sink {
    /// An enabled sink; `collect_spans` as in [`Recorder::new`].
    pub fn record(collect_spans: bool) -> Self {
        // analyze::allow(alloc-path, reason = "one-time sink construction; the hot-path edge is a name collision with Recorder::record_value")
        Sink::On(Box::new(Recorder::new(collect_spans)))
    }

    /// Whether the sink records anything.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, Sink::On(_))
    }

    /// Mutable recorder access; `None` when off. Hot paths write
    /// `if let Some(rec) = sink.on_mut() { ... }` so the disabled case
    /// is a single branch.
    #[inline]
    pub fn on_mut(&mut self) -> Option<&mut Recorder> {
        match self {
            Sink::Off => None,
            Sink::On(rec) => Some(rec),
        }
    }

    /// Shared recorder access; `None` when off.
    pub fn recorder(&self) -> Option<&Recorder> {
        match self {
            Sink::Off => None,
            Sink::On(rec) => Some(rec),
        }
    }

    /// Consumes the sink, yielding the recorder when on.
    pub fn into_recorder(self) -> Option<Box<Recorder>> {
        match self {
            Sink::Off => None,
            Sink::On(rec) => Some(rec),
        }
    }

    /// Replaces the sink with [`Sink::Off`] and returns the previous
    /// state.
    pub fn take(&mut self) -> Sink {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: NameId, start: u64, dur: u64, batch: u32, im: u64, dm: u64) -> SpanEvent {
        SpanEvent {
            name,
            start,
            dur,
            batch,
            aux: 0,
            imisses: im,
            dmisses: dm,
        }
    }

    #[test]
    fn intern_dedups_and_assigns_dense_ids() {
        let mut r = Recorder::new(false);
        let a = r.intern("rx:ip");
        let b = r.intern("rx:udp");
        assert_eq!(r.intern("rx:ip"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(r.name(a), "rx:ip");
        assert_eq!(r.name(999), "?");
    }

    #[test]
    fn spans_fold_into_accumulators() {
        let mut r = Recorder::new(false);
        let id = r.intern("rx:ip");
        r.span(ev(id, 100, 50, 14, 3, 7));
        r.span(ev(id, 200, 30, 14, 1, 2));
        let acc = r.span_accum(id).unwrap();
        assert_eq!(acc.spans, 2);
        assert_eq!(acc.messages, 28);
        assert_eq!(acc.cycles, 80);
        assert_eq!(acc.imisses, 4);
        assert_eq!(acc.dmisses, 9);
        assert_eq!(acc.dur_hist.count(), 2);
        // Metrics-only mode keeps no raw events.
        assert!(r.events().is_empty());
    }

    #[test]
    fn span_collection_keeps_raw_events_in_order() {
        let mut r = Recorder::new(true);
        let id = r.intern("batch");
        r.span(ev(id, 10, 5, 2, 0, 0));
        r.instant(id, 99);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].start, 10);
        assert_eq!(r.events()[1].dur, 0);
    }

    #[test]
    fn merge_matches_by_name_across_different_id_orders() {
        let mut a = Recorder::new(false);
        let a_ip = a.intern("rx:ip");
        let a_udp = a.intern("rx:udp");
        a.span(ev(a_ip, 0, 10, 1, 1, 1));
        a.span(ev(a_udp, 0, 20, 1, 2, 2));
        a.record_value(a_ip, 7);

        // Same names interned in the opposite order.
        let mut b = Recorder::new(false);
        let b_udp = b.intern("rx:udp");
        let b_ip = b.intern("rx:ip");
        b.span(ev(b_udp, 0, 200, 1, 20, 20));
        b.span(ev(b_ip, 0, 100, 1, 10, 10));
        b.record_value(b_ip, 9);

        a.merge(&b);
        let ip = a.span_accum(a_ip).unwrap();
        let udp = a.span_accum(a_udp).unwrap();
        assert_eq!((ip.cycles, ip.imisses), (110, 11));
        assert_eq!((udp.cycles, udp.imisses), (220, 22));
        let vh = a.value_hist(a_ip).unwrap();
        assert_eq!((vh.count(), vh.sum()), (2, 16));
    }

    #[test]
    fn off_sink_is_the_default_and_reports_nothing() {
        let mut s = Sink::default();
        assert!(!s.is_on());
        assert!(s.on_mut().is_none());
        assert!(s.recorder().is_none());
        assert!(s.take().into_recorder().is_none());

        let mut on = Sink::record(false);
        assert!(on.is_on());
        assert!(on.on_mut().is_some());
        let prev = on.take();
        assert!(!on.is_on(), "take() leaves the sink Off");
        assert!(prev.into_recorder().is_some());
    }
}
