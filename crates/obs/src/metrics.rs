//! `metrics.json` exporter.
//!
//! Serialises a (merged) [`Recorder`] as a deterministic JSON document:
//! caller-supplied meta pairs, then per-name span totals with duration
//! and miss histograms, then named value histograms. Everything is
//! derived from exact integers (the only floats are per-entry means,
//! each a single division of two exact integers), so the bytes are
//! identical for any `--threads` value as long as per-seed recorders
//! were merged in seed order — which `Recorder::merge` callers do.
//!
//! Hand-rolled JSON (the workspace has no serde), same as
//! `analyze::report_json`.

use crate::hist::Histogram;
use crate::record::Recorder;
use crate::trace::esc;
use std::fmt::Write as _;

fn hist_json(h: &Histogram) -> String {
    // Trim trailing zero buckets so the file stays readable; the trim
    // point is a pure function of the counts, hence deterministic.
    let counts = h.counts();
    let last = counts.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    let buckets: Vec<String> = counts
        .iter()
        .take(last)
        .map(|c| c.to_string())
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\
         \"p50_floor\":{},\"p99_floor\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.mean(),
        h.quantile_floor(50, 100),
        h.quantile_floor(99, 100),
        buckets.join(",")
    )
}

/// Renders the metrics document. `meta` pairs are emitted first, in
/// order, as string values. Span entries and value histograms follow
/// in id (first-intern) order; empty entries are skipped.
pub fn metrics_json(meta: &[(&str, String)], rec: &Recorder) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        let comma = if i + 1 == meta.len() { "" } else { "," };
        let _ = write!(out, " \"{}\": \"{}\"{}", esc(k), esc(v), comma);
    }
    out.push_str(" },\n  \"spans\": [\n");
    let spans: Vec<String> = rec
        .iter_spans()
        .filter(|(_, acc)| !acc.is_empty())
        .map(|(name, acc)| {
            format!(
                "    {{ \"name\": \"{}\", \"spans\": {}, \"messages\": {}, \"cycles\": {}, \
                 \"imisses\": {}, \"dmisses\": {},\n      \"dur\": {},\n      \"imiss\": {},\n      \
                 \"dmiss\": {} }}",
                esc(name),
                acc.spans,
                acc.messages,
                acc.cycles,
                acc.imisses,
                acc.dmisses,
                hist_json(&acc.dur_hist),
                hist_json(&acc.imiss_hist),
                hist_json(&acc.dmiss_hist)
            )
        })
        .collect();
    out.push_str(&spans.join(",\n"));
    out.push_str("\n  ],\n  \"values\": [\n");
    let values: Vec<String> = rec
        .iter_values()
        .filter(|(_, h)| !h.is_empty())
        .map(|(name, h)| format!("    {{ \"name\": \"{}\", \"hist\": {} }}", esc(name), hist_json(h)))
        .collect();
    out.push_str(&values.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Recorder, SpanEvent};

    fn sample() -> Recorder {
        let mut r = Recorder::new(false);
        let ip = r.intern("rx:ip");
        let lat = r.intern("latency_us");
        r.span(SpanEvent {
            name: ip,
            start: 0,
            dur: 40,
            batch: 4,
            aux: 0,
            imisses: 2,
            dmisses: 3,
        });
        r.record_value(lat, 17);
        r.record_value(lat, 9);
        r
    }

    #[test]
    fn metrics_json_has_meta_spans_and_values() {
        let r = sample();
        let j = metrics_json(
            &[("bin", "figure6".to_string()), ("seeds", "2".to_string())],
            &r,
        );
        assert!(j.contains("\"bin\": \"figure6\""));
        assert!(j.contains("\"seeds\": \"2\""));
        assert!(j.contains("\"name\": \"rx:ip\""));
        assert!(j.contains("\"messages\": 4"));
        assert!(j.contains("\"name\": \"latency_us\""));
        assert!(j.contains("\"sum\":26"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn empty_entries_are_skipped() {
        let mut r = sample();
        r.intern("never_used");
        let j = metrics_json(&[], &r);
        assert!(!j.contains("never_used"));
    }

    #[test]
    fn output_is_reproducible() {
        let a = metrics_json(&[("k", "v".into())], &sample());
        let b = metrics_json(&[("k", "v".into())], &sample());
        assert_eq!(a, b);
    }
}
