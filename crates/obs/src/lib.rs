//! # obs — deterministic observability for the LDLP apparatus
//!
//! The paper's argument is an *attribution* argument: which layer burns
//! which cache misses and cycles per message (Table 1, Figs 5–7). The
//! simulation crates report run-level aggregates; this crate records the
//! per-layer, per-batch timeline that explains them.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Every timestamp is simulated time — machine
//!    cycles from `cachesim::Machine`, or the netstack's simulated
//!    millisecond clock. No `Instant`, no `SystemTime` (enforced by
//!    `crates/analyze` R1: this crate is in `SIM_CRATES`). Histograms
//!    use fixed power-of-two buckets and integer arithmetic only, so
//!    merging recorders is order-independent in value and is still done
//!    in seed order by convention (the `float-reduction` rule's spirit).
//! 2. **Zero overhead when off.** The sink handed to instrumented code
//!    is [`Sink`], whose disabled state is the unit variant
//!    [`Sink::Off`]: every probe compiles to one predictable branch and
//!    no allocation (`crates/core/tests/alloc.rs` asserts this).
//! 3. **Alloc-free when metering.** With spans disabled
//!    (`Sink::record(false)`), a [`Recorder`] only folds events into
//!    preallocated per-name accumulators and fixed-size histograms, so
//!    steady-state metering stays off the allocator too. Only span
//!    *collection* (`Sink::record(true)`, used by `--trace`) grows a
//!    `Vec` of events.
//!
//! Exporters:
//! - [`trace::chrome_trace_json`] — Chrome trace-event JSON, loadable
//!   in `chrome://tracing` / `ui.perfetto.dev` (`--trace`).
//! - [`metrics::metrics_json`] — per-run `metrics.json` with per-layer
//!   span totals and histogram breakdowns (`--metrics`).

pub mod hist;
pub mod metrics;
pub mod record;
pub mod trace;

pub use hist::{Histogram, BUCKETS};
pub use record::{NameId, Recorder, Sink, SpanAccum, SpanEvent};
pub use trace::TracePart;
