//! Chrome trace-event JSON exporter.
//!
//! Emits the JSON-object flavour of the trace-event format
//! (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
//! `ui.perfetto.dev`. Each recorder becomes one process row (`pid`);
//! each interned name becomes one thread row (`tid`) inside it, so a
//! five-layer stack renders as five labelled swim lanes. Spans with a
//! duration are `ph:"X"` complete events; zero-duration spans are
//! `ph:"i"` instants.
//!
//! Timestamps are converted from the recorder's simulated unit to
//! microseconds with the caller-supplied scale; the timeline is *busy*
//! simulated time (idle gaps between batches are charged as recorded,
//! not wall time — there is no wall clock anywhere in this workspace).

use crate::record::Recorder;
use std::fmt::Write as _;

/// One process row of the exported trace.
pub struct TracePart<'a> {
    /// Process label (e.g. `"ldlp"`, `"conventional"`, `"netstack"`).
    pub process: &'a str,
    /// The recorder whose events to export.
    pub recorder: &'a Recorder,
    /// Simulated time units per microsecond: a machine-cycle recorder
    /// passes the clock in MHz; the netstack's millisecond clock
    /// passes `0.001`.
    pub units_per_us: f64,
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the trace document for one or more recorders.
pub fn chrome_trace_json(parts: &[TracePart]) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (pid, part) in parts.iter().enumerate() {
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(part.process)
        ));
        for (tid, (name, _)) in part.recorder.iter_spans().enumerate() {
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(name)
            ));
        }
        let per_us = if part.units_per_us > 0.0 {
            part.units_per_us
        } else {
            1.0
        };
        for ev in part.recorder.events() {
            let name = esc(part.recorder.name(ev.name));
            let ts = ev.start as f64 / per_us;
            let args = format!(
                "{{\"batch\":{},\"aux\":{},\"imisses\":{},\"dmisses\":{}}}",
                ev.batch, ev.aux, ev.imisses, ev.dmisses
            );
            if ev.dur == 0 {
                lines.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{ts:.3},\"args\":{args}}}",
                    ev.name
                ));
            } else {
                let dur = ev.dur as f64 / per_us;
                lines.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"span\",\"ph\":\"X\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{args}}}",
                    ev.name
                ));
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 != lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Recorder, SpanEvent};

    #[test]
    fn trace_has_metadata_spans_and_instants() {
        let mut r = Recorder::new(true);
        let ip = r.intern("rx:ip");
        let evn = r.intern("frame_in");
        r.span(SpanEvent {
            name: ip,
            start: 1000,
            dur: 500,
            batch: 14,
            aux: 3,
            imisses: 2,
            dmisses: 5,
        });
        r.instant(evn, 2000);
        let j = chrome_trace_json(&[TracePart {
            process: "ldlp",
            recorder: &r,
            units_per_us: 100.0, // 100 MHz: 1000 cycles = 10 us
        }]);
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"process_name\""));
        assert!(j.contains("\"name\":\"rx:ip\""));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ts\":10.000"));
        assert!(j.contains("\"dur\":5.000"));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"batch\":14"));
        // Balanced braces => structurally plausible JSON.
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn multiple_parts_get_distinct_pids() {
        let mut a = Recorder::new(true);
        let ida = a.intern("x");
        a.instant(ida, 1);
        let b = a.clone();
        let j = chrome_trace_json(&[
            TracePart {
                process: "conv",
                recorder: &a,
                units_per_us: 1.0,
            },
            TracePart {
                process: "ldlp",
                recorder: &b,
                units_per_us: 1.0,
            },
        ]);
        assert!(j.contains("\"pid\":0"));
        assert!(j.contains("\"pid\":1"));
        assert!(j.contains("\"name\":\"conv\""));
        assert!(j.contains("\"name\":\"ldlp\""));
    }

    #[test]
    fn names_are_escaped() {
        let mut r = Recorder::new(true);
        let id = r.intern("we\"ird\\name");
        r.instant(id, 0);
        let j = chrome_trace_json(&[TracePart {
            process: "p",
            recorder: &r,
            units_per_us: 1.0,
        }]);
        assert!(j.contains("we\\\"ird\\\\name"));
    }
}
