//! Fixed-bucket deterministic histogram.
//!
//! Buckets are powers of two: bucket 0 holds the value `0`, bucket
//! `i >= 1` holds values in `[2^(i-1), 2^i)`, and the last bucket
//! absorbs everything above the top boundary. Bucketing is pure integer
//! arithmetic (`leading_zeros`), so recording and merging are exact,
//! order-independent, and float-free — merging per-seed histograms in
//! seed order yields byte-identical results for any worker count.

/// Number of power-of-two buckets. Covers `0 ..= 2^30` exactly with an
/// overflow bucket above — wide enough for per-batch cycle costs and
/// per-message microsecond latencies alike.
pub const BUCKETS: usize = 32;

/// An integer-only histogram with fixed power-of-two buckets plus
/// exact count / sum / min / max side counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: `0` for zero, otherwise the number of
    /// significant bits, clamped into the top (overflow) bucket.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Smallest value that lands in bucket `i` (the bucket's lower
    /// boundary); used when reporting quantile floors.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1).min(62)
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        if let Some(c) = self.counts.get_mut(Self::bucket_of(v)) {
            *c += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram in. Exact: the result equals recording
    /// both value streams into one histogram, in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value; `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean as a float (safe: one division on exact integers,
    /// not a parallel reduction).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Lower boundary of the bucket containing the `num/den` quantile
    /// (e.g. `quantile_floor(99, 100)` ≈ p99). Integer-only: rank is
    /// `ceil(count * num / den)`, clamped to `[1, count]`. Returns `0`
    /// when empty. A bucket floor, not an interpolated value — this is
    /// a breakdown aid, not a replacement for `SimReport` percentiles.
    pub fn quantile_floor(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 || den == 0 {
            return 0;
        }
        let rank = self
            .count
            .saturating_mul(num)
            .div_ceil(den)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i).max(self.min());
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        // Every bucket's floor maps back into that bucket.
        for i in 0..BUCKETS {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_floor(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn record_tracks_exact_side_counters() {
        let mut h = Histogram::new();
        for v in [5u64, 0, 17, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 34);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 17);
        assert!((h.mean() - 6.8).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_floor(99, 100), 0);
    }

    #[test]
    fn merge_equals_single_stream_any_order() {
        let values_a = [1u64, 100, 7, 0, 65_000];
        let values_b = [2u64, 2, 900, 31];
        let mut joint = Histogram::new();
        for v in values_a.iter().chain(values_b.iter()) {
            joint.record(*v);
        }
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for v in values_a {
            a.record(v);
        }
        for v in values_b {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, joint);
        assert_eq!(ba, joint);
    }

    #[test]
    fn quantile_floor_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let mut last = 0;
        for q in [1u64, 10, 25, 50, 75, 90, 99, 100] {
            let f = h.quantile_floor(q, 100);
            assert!(f >= last, "quantile floors must be monotone in q");
            assert!(f >= h.min() && f <= h.max());
            last = f;
        }
        assert_eq!(h.quantile_floor(100, 100), h.quantile_floor(1000, 1000));
    }
}
