//! A translation-lookaside-buffer model.
//!
//! The paper's working sets exclude PAL code, the Alpha's firmware layer
//! that (among other things) refills the TLB — but it cites Pagels,
//! Druschel & Peterson's analysis of "cache and TLB effectiveness in
//! processing network I/O", and TLB refills are part of the same
//! locality story: a protocol stack whose code spans many pages takes
//! instruction-TLB misses per message exactly the way it takes I-cache
//! misses. The model is a fully-associative, LRU translation buffer (the
//! Alpha 21064's DTB is fully associative), with a fixed refill penalty
//! standing in for the PAL trap.

use crate::addr::Addr;

/// TLB geometry and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (Alpha 21064: 8–12 ITB, 32 DTB).
    pub entries: u32,
    /// Page size in bytes (8 KB on the Alpha). Must be a power of two.
    pub page_size: u64,
    /// Cycles charged per refill (the PALcode trap).
    pub refill_penalty: u64,
}

impl TlbConfig {
    /// The Alpha 21064 instruction TLB: 12 entries, 8 KB pages.
    pub const fn alpha_itb() -> Self {
        TlbConfig {
            entries: 12,
            page_size: 8192,
            refill_penalty: 40,
        }
    }

    /// The Alpha 21064 data TLB: 32 entries, 8 KB pages.
    pub const fn alpha_dtb() -> Self {
        TlbConfig {
            entries: 32,
            page_size: 8192,
            refill_penalty: 40,
        }
    }
}

/// TLB hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    pub hits: u64,
    pub misses: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A fully-associative, LRU translation buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Resident page numbers, most recently used first.
    entries: Vec<u64>,
    stats: TlbStats,
    page_shift: u32,
}

impl Tlb {
    /// An empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_size.is_power_of_two());
        assert!(cfg.entries >= 1);
        Tlb {
            entries: Vec::with_capacity(cfg.entries as usize),
            stats: TlbStats::default(),
            page_shift: cfg.page_size.trailing_zeros(),
            cfg,
        }
    }

    /// The geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Zeroes the counters.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Invalidates all entries (context switch / `tbia`).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Translates `addr`; returns `true` on hit. A miss installs the
    /// page, evicting the LRU entry when full.
    pub fn access(&mut self, addr: Addr) -> bool {
        let page = addr >> self.page_shift;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            // Move to MRU.
            self.entries.remove(pos);
            // analyze::allow(alloc-path, reason = "TLB replay-key warm-up; steady state is a memo hit (tests/alloc.rs pins zero steady-state allocs)")
            self.entries.insert(0, page);
            self.stats.hits += 1;
            true
        } else {
            if self.entries.len() == self.cfg.entries as usize {
                self.entries.pop();
            }
            // analyze::allow(alloc-path, reason = "TLB replay-key warm-up; steady state is a memo hit (tests/alloc.rs pins zero steady-state allocs)")
            self.entries.insert(0, page);
            self.stats.misses += 1;
            false
        }
    }

    /// Translates every page of `[addr, addr + len)`, returning misses.
    pub fn access_range(&mut self, addr: Addr, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = addr >> self.page_shift;
        let last = (addr + len - 1) >> self.page_shift;
        let mut misses = 0;
        for page in first..=last {
            if !self.access(page << self.page_shift) {
                misses += 1;
            }
        }
        misses
    }

    /// Whether `addr`'s page is resident (no side effects).
    pub fn probe(&self, addr: Addr) -> bool {
        self.entries.contains(&(addr >> self.page_shift))
    }

    /// Appends the entry list (MRU-first, padded to `cfg.entries` with
    /// `u64::MAX`) to `out` — the TLB's slice of a combined replay-memo
    /// state (see [`crate::replay`]). Page numbers never reach
    /// `u64::MAX`: that would need a byte address above 2^64.
    pub(crate) fn export_entries(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.entries);
        // analyze::allow(alloc-path, reason = "TLB replay-key warm-up; steady state is a memo hit (tests/alloc.rs pins zero steady-state allocs)")
        out.resize(out.len() + (self.cfg.entries as usize - self.entries.len()), u64::MAX);
    }

    /// Restores an entry list captured by [`Tlb::export_entries`].
    /// Counters are untouched.
    pub(crate) fn import_entries(&mut self, entries: &[u64]) {
        debug_assert_eq!(entries.len(), self.cfg.entries as usize);
        self.entries.clear();
        self.entries
            // analyze::allow(alloc-path, reason = "TLB replay-key warm-up; steady state is a memo hit (tests/alloc.rs pins zero steady-state allocs)")
            .extend(entries.iter().copied().take_while(|&p| p != u64::MAX));
    }

    /// Adds the aggregate outcome of a memoized sweep to the counters,
    /// exactly as the equivalent [`Tlb::access`] calls would have.
    pub(crate) fn record_bulk(&mut self, hits: u64, misses: u64) {
        self.stats.hits += hits;
        self.stats.misses += misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_size: 8192,
            refill_penalty: 40,
        })
    }

    #[test]
    fn hit_after_install() {
        let mut t = tiny();
        assert!(!t.access(0x0000));
        assert!(t.access(0x1fff), "same 8 KB page");
        assert!(!t.access(0x2000), "next page");
        assert_eq!(t.stats().misses, 2);
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0 << 13);
        t.access(1 << 13);
        t.access(0 << 13); // page 0 now MRU
        t.access(2 << 13); // evicts page 1
        assert!(t.probe(0 << 13));
        assert!(!t.probe(1 << 13));
        assert!(t.probe(2 << 13));
    }

    #[test]
    fn range_access_counts_pages() {
        let mut t = Tlb::new(TlbConfig::alpha_itb());
        // 30 KB of code spans 4 pages starting page-aligned.
        assert_eq!(t.access_range(0, 30 * 1024), 4);
        assert_eq!(t.access_range(0, 30 * 1024), 0, "all warm");
        assert_eq!(t.access_range(100, 0), 0);
    }

    #[test]
    fn flush_and_reset() {
        let mut t = tiny();
        t.access(0);
        t.flush();
        assert!(!t.probe(0));
        assert_eq!(t.stats().misses, 1, "flush keeps stats");
        t.reset_stats();
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn export_import_round_trip_preserves_lru_order() {
        let mut t = Tlb::new(TlbConfig::alpha_itb());
        t.access(3 << 13);
        t.access(7 << 13);
        t.access(3 << 13); // page 3 back to MRU
        let mut snap = Vec::new();
        t.export_entries(&mut snap);
        assert_eq!(snap.len(), 12, "padded to the configured entry count");
        assert_eq!(&snap[..2], &[3, 7]);
        assert!(snap[2..].iter().all(|&p| p == u64::MAX));

        let mut u = Tlb::new(TlbConfig::alpha_itb());
        u.import_entries(&snap);
        // Same contents, same LRU order: fill to capacity and check the
        // eviction victim matches the original.
        for p in 100..110u64 {
            t.access(p << 13);
            u.access(p << 13);
        }
        t.access(200 << 13); // evicts the LRU entry
        u.access(200 << 13);
        let mut a = Vec::new();
        let mut b = Vec::new();
        t.export_entries(&mut a);
        u.export_entries(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn record_bulk_matches_access_counters() {
        let mut t = tiny();
        t.record_bulk(5, 2);
        assert_eq!(t.stats().hits, 5);
        assert_eq!(t.stats().misses, 2);
        assert_eq!(t.stats().accesses(), 7);
    }

    #[test]
    fn alpha_presets() {
        assert_eq!(TlbConfig::alpha_itb().entries, 12);
        assert_eq!(TlbConfig::alpha_dtb().entries, 32);
        assert_eq!(TlbConfig::alpha_itb().page_size, 8192);
    }
}
