//! # cachesim — machine and primary-cache model
//!
//! A small, deterministic, cycle-level model of the memory hierarchy the
//! paper's experiments depend on: split (or unified) direct-mapped or
//! set-associative primary caches, a fixed per-miss stall penalty, and a
//! configurable CPU clock.
//!
//! The model is deliberately simple — it is the model of the paper
//! (Blackwell, SIGCOMM '96, Section 4): every read miss stalls the processor
//! for a fixed number of cycles; writes are modelled through the same cache
//! (write-allocate) but can be configured not to stall. There is no
//! secondary-cache model because the paper folds the whole miss path into a
//! single penalty.
//!
//! Two presets mirror the paper's machines:
//! * [`MachineConfig::dec3000_400`] — the DEC 3000/400 used for the TCP
//!   measurements (8 KB direct-mapped I and D caches, 32-byte lines,
//!   10-cycle miss penalty, 133 MHz — the paper quotes "20 instruction
//!   slots (10 cycles)" per primary I-miss).
//! * [`MachineConfig::synthetic_benchmark`] — the configuration of
//!   Section 4's synthetic benchmark (8 KB direct-mapped I and D caches,
//!   20-cycle read-miss stall, 100 MHz).
//!
//! The address space is a flat `u64` space; all structures operate at
//! cache-line granularity internally but accept byte addresses and sizes.

pub mod addr;
pub mod cache;
pub mod coherence;
pub mod machine;
pub mod placement;
pub mod replay;
pub mod stats;
pub mod tlb;

pub use addr::{Addr, Region};
pub use cache::{AccessKind, Cache, CacheConfig, CacheStats};
pub use coherence::{CoherenceStats, SharedL2, SharedL2Config};
pub use machine::{CycleCount, Machine, MachineConfig, MachineStats};
pub use placement::{AddressAllocator, RandomPlacement};
pub use replay::ReplayCache;
pub use stats::{ReplayReport, ReplayStats};
pub use tlb::{Tlb, TlbConfig, TlbStats};
