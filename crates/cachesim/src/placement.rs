//! Address-space placement of code and data segments.
//!
//! The paper's synthetic results (Section 4) are averaged over 100 runs,
//! "each with a different random placement in memory", because conflict
//! misses in a direct-mapped cache depend on where the program lands.
//! [`RandomPlacement`] reproduces that methodology; [`AddressAllocator`]
//! provides the plain sequential layout used for the TCP working-set
//! analysis, where function order mirrors the kernel's link order.

use crate::addr::{align_up, Addr, Region};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A simple bump allocator handing out consecutive, aligned regions.
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    next: Addr,
    align: u64,
}

impl AddressAllocator {
    /// Starts allocating at `base`, aligning every region to `align` bytes
    /// (must be a power of two; use the cache line size to give each
    /// segment its own lines).
    pub fn new(base: Addr, align: u64) -> Self {
        assert!(align.is_power_of_two());
        AddressAllocator {
            next: align_up(base, align),
            align,
        }
    }

    /// Starts at address 0 with the given alignment.
    pub fn at_zero(align: u64) -> Self {
        Self::new(0, align)
    }

    /// Returns the next free region of `len` bytes.
    pub fn alloc(&mut self, len: u64) -> Region {
        let base = self.next;
        self.next = align_up(base + len, self.align);
        Region::new(base, len)
    }

    /// Skips ahead so the next allocation begins at or after `addr`.
    pub fn skip_to(&mut self, addr: Addr) {
        self.next = align_up(self.next.max(addr), self.align);
    }

    /// The address the next allocation would receive.
    pub fn watermark(&self) -> Addr {
        self.next
    }
}

/// Seeded random placement of segments in a bounded address window.
///
/// Segments are placed at line-aligned addresses uniformly at random,
/// rejecting overlaps. Because cache index bits come from the low address
/// bits, randomizing placement randomizes which cache sets each segment
/// occupies — exactly the layout sensitivity the paper averages over.
#[derive(Debug)]
pub struct RandomPlacement {
    rng: StdRng,
    window: Region,
    align: u64,
    placed: Vec<Region>,
}

impl RandomPlacement {
    /// Creates a placement context over `window`, aligning to `align`
    /// (power of two, typically the line size), seeded for reproducibility.
    pub fn new(seed: u64, window: Region, align: u64) -> Self {
        assert!(align.is_power_of_two());
        assert!(window.len >= align);
        RandomPlacement {
            rng: StdRng::seed_from_u64(seed),
            window,
            align,
            placed: Vec::new(),
        }
    }

    /// Places a segment of `len` bytes, disjoint from everything placed so
    /// far. Panics if the window is too full to find a spot in 10,000
    /// attempts (keep total placed size well under the window size).
    pub fn place(&mut self, len: u64) -> Region {
        assert!(len > 0, "cannot place an empty segment");
        assert!(len <= self.window.len, "segment larger than window");
        // analyze::allow(panic-path, reason = "align is a nonzero power of two fixed at pool construction")
        let slots = (self.window.len - len) / self.align + 1;
        for _ in 0..10_000 {
            let slot = self.rng.random_range(0..slots);
            let base = self.window.base + slot * self.align;
            let candidate = Region::new(base, len);
            if !self.placed.iter().any(|r| r.overlaps(&candidate)) {
                self.placed.push(candidate);
                return candidate;
            }
        }
        // analyze::allow(panic-free-library, reason = "documented failure mode: the doc comment requires total placed size well under the window; exceeding it is a configuration bug")
        panic!(
            "random placement failed: window too crowded ({} segments, {} bytes placed)",
            self.placed.len(),
            self.placed.iter().map(|r| r.len).sum::<u64>()
        );
    }

    /// Places one segment per entry of `sizes`, in order.
    pub fn place_all(&mut self, sizes: &[u64]) -> Vec<Region> {
        sizes.iter().map(|&s| self.place(s)).collect()
    }

    /// Everything placed so far.
    pub fn placed(&self) -> &[Region] {
        &self.placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocator_is_aligned_and_disjoint() {
        let mut a = AddressAllocator::new(100, 32);
        let r1 = a.alloc(10);
        let r2 = a.alloc(50);
        let r3 = a.alloc(32);
        assert_eq!(r1.base % 32, 0);
        assert_eq!(r2.base % 32, 0);
        assert!(!r1.overlaps(&r2));
        assert!(!r2.overlaps(&r3));
        assert!(r2.base >= r1.end());
    }

    #[test]
    fn skip_to_moves_forward_only() {
        let mut a = AddressAllocator::at_zero(32);
        a.alloc(64);
        a.skip_to(32); // behind watermark: no-op
        assert_eq!(a.watermark(), 64);
        a.skip_to(1000);
        assert_eq!(a.alloc(1).base, 1024);
    }

    #[test]
    fn random_placement_is_disjoint_and_aligned() {
        let mut p = RandomPlacement::new(42, Region::new(0, 1 << 20), 32);
        let regions = p.place_all(&[6144, 6144, 6144, 6144, 6144]);
        for (i, a) in regions.iter().enumerate() {
            assert_eq!(a.base % 32, 0);
            for b in &regions[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn random_placement_is_deterministic_per_seed() {
        let window = Region::new(0, 1 << 20);
        let a = RandomPlacement::new(7, window, 32).place_all(&[1000, 2000]);
        let b = RandomPlacement::new(7, window, 32).place_all(&[1000, 2000]);
        let c = RandomPlacement::new(8, window, 32).place_all(&[1000, 2000]);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seed should (almost surely) move segments");
    }
}
