//! Counters for the footprint-replay memo (see [`crate::replay`]).
//!
//! These measure the *apparatus*, not the simulated machine: a replay hit
//! means a layer's instruction-fetch sweep was answered from the memo
//! table instead of being walked line by line. The simulated hit/miss/
//! stall accounting is identical either way; these counters only report
//! how often the shortcut applied.

/// Hit/miss counters for a [`crate::replay::ReplayCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Footprint fetches answered from the memo table.
    pub hits: u64,
    /// Footprint fetches simulated line by line and recorded.
    pub misses: u64,
    /// Footprint fetches that bypassed the memo entirely (machine
    /// configuration not eligible, or a footprint-id collision).
    pub bypasses: u64,
}

impl ReplayStats {
    /// Total footprint fetches observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.bypasses
    }

    /// Fraction of footprint fetches answered from the memo; 0 when none
    /// were issued.
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &ReplayStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypasses += other.bypasses;
    }
}

/// A snapshot of a replay cache's counters and table sizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Hit/miss/bypass counters.
    pub stats: ReplayStats,
    /// Distinct cache states interned.
    pub states: usize,
    /// Recorded (state, footprint) -> (misses, state) transitions.
    pub transitions: usize,
    /// Distinct footprints registered.
    pub footprints: usize,
}

impl ReplayReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "replay: {} hits / {} misses / {} bypasses ({:.1}% hit rate), {} states, {} transitions, {} footprints",
            self.stats.hits,
            self.stats.misses,
            self.stats.bypasses,
            self.stats.hit_rate() * 100.0,
            self.states,
            self.transitions,
            self.footprints
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_arithmetic() {
        assert_eq!(ReplayStats::default().hit_rate(), 0.0);
        let s = ReplayStats {
            hits: 3,
            misses: 1,
            ..ReplayStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let mut t = ReplayStats {
            bypasses: 4,
            ..ReplayStats::default()
        };
        t.merge(&s);
        assert_eq!(t.accesses(), 8);
        assert!((t.hit_rate() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn report_summary_mentions_counts() {
        let r = ReplayReport {
            stats: ReplayStats {
                hits: 10,
                misses: 2,
                bypasses: 0,
            },
            states: 5,
            transitions: 7,
            footprints: 5,
        };
        let s = r.summary();
        assert!(s.contains("10 hits"));
        assert!(s.contains("5 states"));
    }
}
