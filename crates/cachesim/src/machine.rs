//! The machine model: split or unified primary caches plus cycle accounting.

use crate::addr::Region;
use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats};
use crate::replay::{ReplayCache, Transition};
use crate::stats::{ReplayReport, ReplayStats};
use crate::tlb::{Tlb, TlbConfig, TlbStats};

/// Simulated cycle counts.
pub type CycleCount = u64;

/// Machine parameters: cache geometry, miss penalties and clock rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Instruction-cache geometry (also the unified cache when
    /// `dcache` is `None`).
    pub icache: CacheConfig,
    /// Data-cache geometry; `None` selects a unified cache.
    pub dcache: Option<CacheConfig>,
    /// Stall cycles charged per read or instruction-fetch miss.
    pub read_miss_penalty: CycleCount,
    /// Stall cycles charged per write miss (0 models a write buffer that
    /// never fills, the paper's implicit assumption).
    pub write_miss_penalty: CycleCount,
    /// CPU clock in MHz, used to convert cycles to wall time.
    pub clock_mhz: f64,
    /// Multiplier applied to code footprints to model instruction-set code
    /// density (1.0 = Alpha baseline; the paper quotes ~0.55 for i386,
    /// Section 5.2).
    pub code_density: f64,
    /// Optional instruction TLB (None = perfect translation, the paper's
    /// implicit assumption; its traces exclude the PAL refill code).
    pub itlb: Option<TlbConfig>,
    /// Optional data TLB.
    pub dtlb: Option<TlbConfig>,
    /// Optional unified second-level cache. When present,
    /// `read_miss_penalty` is the L1-miss-hits-L2 cost and `l2_miss_penalty`
    /// is charged on top for references that miss L2 too (the DEC 3000/400
    /// carries a 512 KB board cache; the paper's "10 cycles" is the
    /// L1-to-L2 fill).
    pub l2: Option<CacheConfig>,
    /// Extra stall cycles per L2 miss (memory fill).
    pub l2_miss_penalty: CycleCount,
    /// Next-line instruction prefetch: on an I-fetch miss, the following
    /// line is filled in the background at no stall cost (Section 4 notes
    /// "some processors can prefetch instructions from the second level
    /// cache to hide some of the cache miss cost").
    pub next_line_prefetch: bool,
}

impl MachineConfig {
    /// The DEC 3000/400 of Section 2: 8 KB direct-mapped split I/D caches,
    /// 32-byte lines, 10-cycle primary-miss penalty, 133 MHz Alpha 21064.
    pub fn dec3000_400() -> Self {
        MachineConfig {
            icache: CacheConfig::direct_mapped(8 * 1024, 32),
            dcache: Some(CacheConfig::direct_mapped(8 * 1024, 32)),
            read_miss_penalty: 10,
            write_miss_penalty: 0,
            clock_mhz: 133.0,
            code_density: 1.0,
            itlb: None,
            dtlb: None,
            l2: None,
            l2_miss_penalty: 0,
            next_line_prefetch: false,
        }
    }

    /// The synthetic benchmark machine of Section 4: 8 KB direct-mapped
    /// split I/D caches, 32-byte lines, 20-cycle read-miss stall, 100 MHz.
    pub fn synthetic_benchmark() -> Self {
        MachineConfig {
            icache: CacheConfig::direct_mapped(8 * 1024, 32),
            dcache: Some(CacheConfig::direct_mapped(8 * 1024, 32)),
            read_miss_penalty: 20,
            write_miss_penalty: 0,
            clock_mhz: 100.0,
            code_density: 1.0,
            itlb: None,
            dtlb: None,
            l2: None,
            l2_miss_penalty: 0,
            next_line_prefetch: false,
        }
    }

    /// An i386-flavoured variant of the synthetic machine: identical caches
    /// and penalties but denser code (Section 5.2 measures NetBSD
    /// networking code as 55% smaller on the i386).
    pub fn i386_like() -> Self {
        MachineConfig {
            code_density: 0.45,
            ..Self::synthetic_benchmark()
        }
    }

    /// A hypothetical 1998 processor per Rosenblum's prediction quoted in
    /// Section 1.2: 64 KB caches but a 60-slot (30-cycle) miss penalty.
    pub fn rosenblum_1998() -> Self {
        MachineConfig {
            icache: CacheConfig::direct_mapped(64 * 1024, 32),
            dcache: Some(CacheConfig::direct_mapped(64 * 1024, 32)),
            read_miss_penalty: 30,
            write_miss_penalty: 0,
            clock_mhz: 500.0,
            code_density: 1.0,
            itlb: None,
            dtlb: None,
            l2: None,
            l2_miss_penalty: 0,
            next_line_prefetch: false,
        }
    }

    /// Returns a copy with next-line instruction prefetch enabled.
    pub fn with_prefetch(mut self) -> Self {
        self.next_line_prefetch = true;
        self
    }

    /// Returns a copy with the DEC 3000/400's 512 KB direct-mapped board
    /// cache enabled: L1 misses that hit it cost `read_miss_penalty`;
    /// misses all the way to memory add 30 more cycles.
    pub fn with_board_cache(mut self) -> Self {
        self.l2 = Some(CacheConfig::direct_mapped(512 * 1024, 32));
        self.l2_miss_penalty = 30;
        self
    }

    /// Returns a copy with Alpha-21064-style instruction and data TLBs
    /// enabled (12-entry ITB, 32-entry DTB, 8 KB pages, 40-cycle PAL
    /// refill).
    pub fn with_alpha_tlbs(mut self) -> Self {
        self.itlb = Some(TlbConfig::alpha_itb());
        self.dtlb = Some(TlbConfig::alpha_dtb());
        self
    }

    /// Returns a copy with a different clock (Figure 7 sweeps this).
    pub fn with_clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Returns a copy with a different line size in every cache
    /// (Table 3 sweeps this).
    pub fn with_line_size(mut self, line_size: u64) -> Self {
        self.icache.line_size = line_size;
        if let Some(d) = &mut self.dcache {
            d.line_size = line_size;
        }
        self
    }

    /// Cycles per microsecond at this clock.
    pub fn cycles_per_us(&self) -> f64 {
        self.clock_mhz
    }
}

/// Aggregated statistics for a [`Machine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineStats {
    /// I-cache (or unified cache) counters.
    pub icache: CacheStats,
    /// D-cache counters (zero for unified configurations).
    pub dcache: CacheStats,
    /// Cycles spent executing instructions.
    pub instr_cycles: CycleCount,
    /// Cycles spent stalled on cache misses.
    pub stall_cycles: CycleCount,
    /// Instruction-TLB counters (zero when no ITB is configured).
    pub itlb: TlbStats,
    /// Data-TLB counters (zero when no DTB is configured).
    pub dtlb: TlbStats,
    /// Second-level cache counters (zero when no L2 is configured).
    pub l2: CacheStats,
}

impl MachineStats {
    /// Total simulated cycles (execution plus stalls).
    pub fn total_cycles(&self) -> CycleCount {
        self.instr_cycles + self.stall_cycles
    }

    /// Total misses across both caches.
    pub fn total_misses(&self) -> u64 {
        self.icache.misses + self.dcache.misses
    }
}

/// Largest data region (in lines) the replay memo will key; anything
/// bigger is walked directly. Keeps the packed region key unambiguous.
const MAX_REGION_LINES: u64 = 1 << 18;

/// A machine instance: caches plus cycle counters.
///
/// The simulators drive it with [`Machine::fetch_code`],
/// [`Machine::read_data`], [`Machine::write_data`] and
/// [`Machine::execute`]; it accumulates stall and execution cycles.
///
/// Recurring sweeps are answered by two replay memoizers (see
/// [`crate::replay`]): one over the I-cache + ITLB for code footprints,
/// one over the D-cache + DTLB for data regions. Both are exact-replay
/// tables over interned (cache tags ++ TLB entries) states; machines
/// with a built-in L2 or a unified cache bypass them and simulate
/// normally (a code or data sweep then touches state shared with the
/// other reference stream, so per-sweep transitions would not compose).
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    icache: Cache,
    /// `None` for unified configurations: data accesses then go to `icache`.
    dcache: Option<Cache>,
    itlb: Option<Tlb>,
    dtlb: Option<Tlb>,
    l2: Option<Cache>,
    instr_cycles: CycleCount,
    stall_cycles: CycleCount,
    /// Code-footprint replay memo (I-cache ++ ITLB states), created
    /// lazily on the first [`Machine::fetch_code_footprint`] call.
    replay: Option<ReplayCache>,
    /// Data-region replay memo (D-cache ++ DTLB states), created lazily
    /// on the first [`Machine::read_data`]/[`Machine::write_data`] call
    /// on an eligible configuration.
    dreplay: Option<ReplayCache>,
    /// Scratch buffer for assembling combined state keys.
    key_buf: Vec<u64>,
    /// Master switch for both memoizers (tests and benches compare
    /// memoized against plain simulation with this).
    replay_enabled: bool,
    /// Opt-in switch for the data-sweep memo. Off by default: data
    /// regions vary so much more than code footprints that in the stock
    /// experiment mix the memo-miss path (exporting and interning a
    /// multi-KB combined key) costs more than the SoA bulk walk it
    /// replaces — it only pays on workloads whose (D-state × region)
    /// graph closes, like a fixed arrival loop replayed many times.
    data_memo: bool,
    /// Why sweeps bypassed the memo, when any did (first reason sticks).
    bypass_reason: Option<&'static str>,
}

impl Machine {
    /// Builds a machine with cold caches and zeroed counters.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            icache: Cache::new(cfg.icache),
            dcache: cfg.dcache.map(Cache::new),
            itlb: cfg.itlb.map(Tlb::new),
            dtlb: cfg.dtlb.map(Tlb::new),
            l2: cfg.l2.map(Cache::new),
            instr_cycles: 0,
            stall_cycles: 0,
            replay: None,
            dreplay: None,
            key_buf: Vec::new(),
            replay_enabled: true,
            data_memo: false,
            bypass_reason: None,
            cfg,
        }
    }

    /// Why this configuration can never use the replay memoizers, or
    /// `None` when it is eligible. Sweeps on eligible machines can still
    /// bypass individually (footprint-id collision, state-table cap).
    pub fn replay_ineligibility(&self) -> Option<&'static str> {
        if !self.replay_enabled {
            Some("memoizer-disabled")
        } else if self.dcache.is_none() {
            Some("unified-cache")
        } else if self.l2.is_some() {
            Some("l2-configured")
        } else {
            None
        }
    }

    /// The first reason any sweep bypassed the memo, if one ever did.
    pub fn replay_bypass_reason(&self) -> Option<&'static str> {
        self.bypass_reason
    }

    /// Enables or disables both replay memoizers. Disabling materializes
    /// any live memo state first, so simulation continues exactly where
    /// it was; results are identical either way — only speed changes.
    pub fn set_replay_enabled(&mut self, on: bool) {
        if !on {
            self.sync_replay();
            self.sync_dreplay();
        }
        self.replay_enabled = on;
    }

    /// Opts this machine's data sweeps into the replay memo. Off by
    /// default — see the `data_memo` field note: it only pays on
    /// workloads whose (D-state × region) graph closes.
    pub fn set_data_memo(&mut self, on: bool) {
        if !on {
            self.sync_dreplay();
        }
        self.data_memo = on;
    }

    /// Whether sweeps on this configuration touch only the private
    /// split L1s (+ their TLBs), making per-sweep replay exact.
    #[inline]
    fn memo_eligible(&self) -> bool {
        self.replay_enabled && self.dcache.is_some() && self.l2.is_none()
    }

    fn note_bypass_reason(&mut self, reason: &'static str) {
        if self.bypass_reason.is_none() {
            self.bypass_reason = Some(reason);
        }
    }

    /// Materializes `replay`'s live state token (if any) back into the
    /// I-cache tag array and ITLB so non-memoized accesses see current
    /// contents. No-op when the arrays are already authoritative.
    fn materialize_istate(&mut self, replay: &mut ReplayCache) {
        let Some(t) = replay.cur.take() else { return };
        let key = replay.state(t);
        let cache_words = self.cfg.icache.num_lines() as usize;
        let (tags, tlb_words) = key.split_at(cache_words.min(key.len()));
        self.icache.import_tags(tags);
        if let Some(tlb) = &mut self.itlb {
            tlb.import_entries(tlb_words);
        }
    }

    /// Materializes `dreplay`'s live state token (if any) back into the
    /// D-cache tag array and DTLB.
    fn materialize_dstate(&mut self, dreplay: &mut ReplayCache) {
        let Some(t) = dreplay.cur.take() else { return };
        let Some(d) = &mut self.dcache else { return };
        let key = dreplay.state(t);
        let cache_words = (d.config().num_lines() as usize).min(key.len());
        let (tags, tlb_words) = key.split_at(cache_words);
        d.import_tags(tags);
        if let Some(tlb) = &mut self.dtlb {
            tlb.import_entries(tlb_words);
        }
    }

    /// [`Machine::materialize_istate`] on the owned code memo.
    fn sync_replay(&mut self) {
        if let Some(mut r) = self.replay.take() {
            self.materialize_istate(&mut r);
            self.replay = Some(r);
        }
    }

    /// [`Machine::materialize_dstate`] on the owned data memo.
    fn sync_dreplay(&mut self) {
        if let Some(mut r) = self.dreplay.take() {
            self.materialize_dstate(&mut r);
            self.dreplay = Some(r);
        }
    }

    /// Assembles the current I-side combined key (I-cache tags ++ ITLB
    /// entries) into `key_buf`.
    fn build_ikey(&mut self) {
        self.key_buf.clear();
        self.key_buf.extend_from_slice(self.icache.export_tags());
        if let Some(tlb) = &self.itlb {
            tlb.export_entries(&mut self.key_buf);
        }
    }

    /// Assembles the current D-side combined key (D-cache tags ++ DTLB
    /// entries) into `key_buf`.
    fn build_dkey(&mut self) {
        self.key_buf.clear();
        if let Some(d) = &self.dcache {
            self.key_buf.extend_from_slice(d.export_tags());
        }
        if let Some(tlb) = &self.dtlb {
            tlb.export_entries(&mut self.key_buf);
        }
    }

    /// Fetches every line of a fixed code footprint, exactly like calling
    /// [`Machine::fetch_code_line`] per line, but memoized: the
    /// `(cache+TLB state, footprint)` outcome is recorded so recurring
    /// sweeps cost one table lookup. `fid` must identify this exact
    /// `lines` sequence for the lifetime of the machine; a conflicting
    /// registration falls back to the per-line walk. Returns the misses.
    pub fn fetch_code_footprint(&mut self, fid: u32, lines: &[u64]) -> u64 {
        if lines.is_empty() {
            return 0;
        }
        if !self.memo_eligible() {
            if let Some(why) = self.replay_ineligibility() {
                self.note_bypass_reason(why);
            }
            self.replay.get_or_insert_default().stats_mut().bypasses += 1;
            self.sync_replay();
            return self.fetch_lines_walk(lines);
        }
        // Move the memo out of its Option for the duration of the sweep so
        // the borrow checker lets it ride alongside cache/TLB mutation.
        let mut replay = self.replay.take().unwrap_or_default();
        let ret = self.fetch_footprint_memo(&mut replay, fid, lines);
        self.replay = Some(replay);
        ret
    }

    /// The memoized body of [`Machine::fetch_code_footprint`]: replay the
    /// recorded `(state, footprint)` transition when known, otherwise walk
    /// once while diffing every counter and record the outcome.
    fn fetch_footprint_memo(&mut self, replay: &mut ReplayCache, fid: u32, lines: &[u64]) -> u64 {
        if !replay.check_footprint(fid, lines) {
            replay.stats_mut().bypasses += 1;
            self.note_bypass_reason("footprint-collision");
            self.materialize_istate(replay);
            return self.fetch_lines_walk(lines);
        }
        let cur = match replay.cur {
            Some(t) => t,
            None => {
                if replay.saturated() {
                    // Table full and the live state is already in the
                    // arrays: don't even try to re-intern per sweep.
                    replay.stats_mut().bypasses += 1;
                    self.note_bypass_reason("state-table-full");
                    return self.fetch_lines_walk(lines);
                }
                self.build_ikey();
                match replay.intern(&self.key_buf) {
                    Some(t) => t,
                    None => {
                        replay.stats_mut().bypasses += 1;
                        self.note_bypass_reason("state-table-full");
                        return self.fetch_lines_walk(lines);
                    }
                }
            }
        };
        if let Some(tr) = replay.lookup(cur, fid) {
            replay.stats_mut().hits += 1;
            replay.cur = Some(tr.next);
            self.icache.record_bulk(tr.hits, tr.misses, AccessKind::InstrFetch);
            if let Some(tlb) = &mut self.itlb {
                tlb.record_bulk(tr.tlb_hits, tr.tlb_misses);
            }
            self.stall_cycles += tr.stall;
            return tr.ret;
        }
        // Memo miss: make the arrays reflect `cur` (no-op when it was just
        // interned from them), walk for real while diffing the counters,
        // record the outcome.
        replay.stats_mut().misses += 1;
        self.materialize_istate(replay);
        let c0 = *self.icache.stats();
        let t0 = self.itlb.as_ref().map(|t| *t.stats()).unwrap_or_default();
        let s0 = self.stall_cycles;
        let ret = self.fetch_lines_walk(lines);
        let c1 = *self.icache.stats();
        let t1 = self.itlb.as_ref().map(|t| *t.stats()).unwrap_or_default();
        let tr = Transition {
            ret,
            hits: c1.hits - c0.hits,
            misses: c1.misses - c0.misses,
            tlb_hits: t1.hits - t0.hits,
            tlb_misses: t1.misses - t0.misses,
            stall: self.stall_cycles - s0,
            next: 0,
        };
        self.build_ikey();
        if let Some(next) = replay.intern(&self.key_buf) {
            // analyze::allow(alloc-path, reason = "replay-memo warm-up insert; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
            replay.insert(cur, fid, Transition { next, ..tr });
            replay.cur = Some(next);
        }
        ret
    }

    /// Per-line code fetch of `lines` through the full (non-memoized)
    /// path. Callers must have materialized any live memo state first.
    fn fetch_lines_walk(&mut self, lines: &[u64]) -> u64 {
        let mut misses = 0;
        for &line in lines {
            if !self.fetch_line_inner(line) {
                misses += 1;
            }
        }
        misses
    }

    /// Counters of both replay memos combined (zero if never used).
    pub fn replay_stats(&self) -> ReplayStats {
        let mut s = self.replay.as_ref().map(|r| r.stats()).unwrap_or_default();
        if let Some(d) = &self.dreplay {
            s.merge(&d.stats());
        }
        s
    }

    /// Counter-and-size snapshot of both replay memos combined.
    pub fn replay_report(&self) -> ReplayReport {
        let mut r = self.replay.as_ref().map(|r| r.report()).unwrap_or_default();
        if let Some(d) = &self.dreplay {
            let dr = d.report();
            r.stats.merge(&dr.stats);
            r.states += dr.states;
            r.transitions += dr.transitions;
            r.footprints += dr.footprints;
        }
        r
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Charges `n` cycles of instruction execution.
    pub fn execute(&mut self, n: CycleCount) {
        self.instr_cycles += n;
    }

    /// Charges `n` stall cycles modelled *outside* this machine's private
    /// caches — the hook that makes hierarchies composable: a shared
    /// second-level cache or coherence fabric (see [`crate::coherence`])
    /// simulates its own hits, misses, and invalidations and bills the
    /// stall time to the core that waited, without this machine needing
    /// to own (or even know about) the outer level. Keeping the outer
    /// level out of `MachineConfig::l2` also keeps the core replay-
    /// eligible, so the footprint memoizer stays effective per core.
    pub fn stall(&mut self, n: CycleCount) {
        self.stall_cycles += n;
    }

    /// Fetches every line of `region` through the I-cache (and the ITB,
    /// when configured), charging miss/refill penalties. Returns the
    /// number of cache misses.
    pub fn fetch_code(&mut self, region: Region) -> u64 {
        self.sync_replay();
        if let Some(tlb) = &mut self.itlb {
            let refills = tlb.access_range(region.base, region.len);
            self.stall_cycles += refills * tlb.config().refill_penalty;
        }
        if self.l2.is_some() || self.cfg.next_line_prefetch {
            // Per-line so L1 misses can fill through the L2 and trigger
            // next-line prefetches.
            let mut misses = 0;
            for line_addr in region.line_addrs(self.cfg.icache.line_size) {
                let line = line_addr / self.cfg.icache.line_size;
                if !self.icache.access_line(line, AccessKind::InstrFetch) {
                    misses += 1;
                    self.stall_cycles += self.cfg.read_miss_penalty;
                    self.l2_fill(line, AccessKind::InstrFetch);
                    if self.cfg.next_line_prefetch {
                        self.prefetch_line(line + 1);
                    }
                }
            }
            return misses;
        }
        let misses = self
            .icache
            .access_range(region.base, region.len, AccessKind::InstrFetch);
        self.stall_cycles += misses * self.cfg.read_miss_penalty;
        misses
    }

    /// Fills an L1 miss through the L2, charging the memory penalty when
    /// the L2 misses too.
    fn l2_fill(&mut self, line: u64, kind: AccessKind) {
        if let Some(l2) = &mut self.l2 {
            if !l2.access_line(line, kind) {
                self.stall_cycles += self.cfg.l2_miss_penalty;
            }
        }
    }

    /// Fetches a single I-cache line by line number.
    pub fn fetch_code_line(&mut self, line: u64) -> bool {
        self.sync_replay();
        self.fetch_line_inner(line)
    }

    /// [`Machine::fetch_code_line`] without the memo sync: the walk body
    /// shared by the public per-line API and the memo-miss recorder.
    fn fetch_line_inner(&mut self, line: u64) -> bool {
        if let Some(tlb) = &mut self.itlb {
            let line_size = self.cfg.icache.line_size;
            if !tlb.access(line * line_size) {
                self.stall_cycles += tlb.config().refill_penalty;
            }
        }
        let hit = self.icache.access_line(line, AccessKind::InstrFetch);
        if !hit {
            self.stall_cycles += self.cfg.read_miss_penalty;
            self.l2_fill(line, AccessKind::InstrFetch);
            if self.cfg.next_line_prefetch {
                self.prefetch_line(line + 1);
            }
        }
        hit
    }

    /// Installs `line` in the I-cache as a background prefetch: no stall,
    /// no hit/miss accounting beyond the install itself.
    fn prefetch_line(&mut self, line: u64) {
        if !self.icache.probe(line * self.cfg.icache.line_size) {
            self.icache.access_line(line, AccessKind::InstrFetch);
            // The install counted as a miss in the raw cache stats; undo
            // the stall it would imply by charging nothing — the cache
            // counters still show it, which is fine (prefetches are
            // fetches), but the processor never waited.
        }
    }

    /// Loads every line of `region` through the D-cache (or unified cache),
    /// charging the read-miss penalty per miss. Returns the misses.
    pub fn read_data(&mut self, region: Region) -> u64 {
        self.data_sweep(region, AccessKind::Read)
    }

    /// Stores to every line of `region` (write-allocate), charging the
    /// write-miss penalty per miss. Returns the misses.
    pub fn write_data(&mut self, region: Region) -> u64 {
        self.data_sweep(region, AccessKind::Write)
    }

    /// Charges a table-lookup probe sequence as data references: one
    /// read of `slot_bytes` at `base + slot * slot_bytes` per probed
    /// slot, in probe order. This is how the open-addressing tables
    /// (`netstack::table`) make their walks honest — the simulated
    /// D-cache and DTLB see the same slot run the real lookup would
    /// touch, so D-misses per lookup are measured, not modelled.
    /// Returns the total misses across the sequence.
    pub fn read_data_probes(&mut self, base: u64, slot_bytes: u64, slots: &[u32]) -> u64 {
        let mut misses = 0;
        for &slot in slots {
            misses += self.read_data(Region {
                base: base + u64::from(slot) * slot_bytes,
                len: slot_bytes,
            });
        }
        misses
    }

    /// The write half of a probe charge: the read-modify-write a lookup
    /// structure does on its home slot (install, recency update).
    /// Returns the misses.
    pub fn write_data_slot(&mut self, base: u64, slot_bytes: u64, slot: u32) -> u64 {
        self.write_data(Region {
            base: base + u64::from(slot) * slot_bytes,
            len: slot_bytes,
        })
    }

    /// One data sweep over `region`, memoized on eligible configurations
    /// exactly like [`Machine::fetch_code_footprint`]: the region's line
    /// range + kind is the footprint, the D-cache ++ DTLB state is the
    /// key, and the recorded transition replays the walk's full
    /// accounting (cache stats, TLB refills, stall cycles).
    fn data_sweep(&mut self, region: Region, kind: AccessKind) -> u64 {
        if region.len == 0 {
            return 0;
        }
        if !self.data_memo {
            return self.data_sweep_walk(region, kind);
        }
        if !self.memo_eligible() {
            if let Some(why) = self.replay_ineligibility() {
                self.note_bypass_reason(why);
            }
            self.dreplay.get_or_insert_default().stats_mut().bypasses += 1;
            return self.data_sweep_walk(region, kind);
        }
        let mut dreplay = self.dreplay.take().unwrap_or_default();
        let ret = self.data_sweep_memo(&mut dreplay, region, kind);
        self.dreplay = Some(dreplay);
        ret
    }

    /// The memoized body of [`Machine::data_sweep`], mirroring
    /// [`Machine::fetch_footprint_memo`] with the region's packed line
    /// range + kind standing in for a footprint id.
    fn data_sweep_memo(&mut self, dreplay: &mut ReplayCache, region: Region, kind: AccessKind) -> u64 {
        let line_size = self.cfg.icache.line_size;
        // analyze::allow(panic-path, reason = "line_size is a validated nonzero cache-geometry parameter")
        let first = region.base / line_size;
        // analyze::allow(panic-path, reason = "line_size is a validated nonzero cache-geometry parameter")
        let n_lines = (region.base + region.len - 1) / line_size - first + 1;
        if n_lines >= MAX_REGION_LINES || first >= (1 << 44) {
            dreplay.stats_mut().bypasses += 1;
            self.note_bypass_reason("oversized-region");
            self.materialize_dstate(dreplay);
            return self.data_sweep_walk(region, kind);
        }
        let kind_code = match kind {
            AccessKind::Read => 0u64,
            AccessKind::Write => 1,
            AccessKind::InstrFetch => 2,
        };
        let packed = (first << 20) | (n_lines << 2) | kind_code;
        let fid = dreplay.region_fid(packed);
        let cur = match dreplay.cur {
            Some(t) => t,
            None => {
                if dreplay.saturated() {
                    dreplay.stats_mut().bypasses += 1;
                    self.note_bypass_reason("state-table-full");
                    return self.data_sweep_walk(region, kind);
                }
                self.build_dkey();
                match dreplay.intern(&self.key_buf) {
                    Some(t) => t,
                    None => {
                        dreplay.stats_mut().bypasses += 1;
                        self.note_bypass_reason("state-table-full");
                        return self.data_sweep_walk(region, kind);
                    }
                }
            }
        };
        if let Some(tr) = dreplay.lookup(cur, fid) {
            dreplay.stats_mut().hits += 1;
            dreplay.cur = Some(tr.next);
            if let Some(d) = &mut self.dcache {
                d.record_bulk(tr.hits, tr.misses, kind);
            }
            if let Some(tlb) = &mut self.dtlb {
                tlb.record_bulk(tr.tlb_hits, tr.tlb_misses);
            }
            self.stall_cycles += tr.stall;
            return tr.ret;
        }
        dreplay.stats_mut().misses += 1;
        self.materialize_dstate(dreplay);
        let c0 = self.dcache.as_ref().map(|d| *d.stats()).unwrap_or_default();
        let t0 = self.dtlb.as_ref().map(|t| *t.stats()).unwrap_or_default();
        let s0 = self.stall_cycles;
        let ret = self.data_sweep_walk(region, kind);
        let c1 = self.dcache.as_ref().map(|d| *d.stats()).unwrap_or_default();
        let t1 = self.dtlb.as_ref().map(|t| *t.stats()).unwrap_or_default();
        let tr = Transition {
            ret,
            hits: c1.hits - c0.hits,
            misses: c1.misses - c0.misses,
            tlb_hits: t1.hits - t0.hits,
            tlb_misses: t1.misses - t0.misses,
            stall: self.stall_cycles - s0,
            next: 0,
        };
        self.build_dkey();
        if let Some(next) = dreplay.intern(&self.key_buf) {
            // analyze::allow(alloc-path, reason = "replay-memo warm-up insert; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
            dreplay.insert(cur, fid, Transition { next, ..tr });
            dreplay.cur = Some(next);
        }
        ret
    }

    /// The non-memoized data sweep: the full path including the unified-
    /// cache and L2 variants. Callers on the memoized path must have
    /// materialized any live D-memo state first.
    fn data_sweep_walk(&mut self, region: Region, kind: AccessKind) -> u64 {
        if self.dcache.is_none() {
            // Unified cache: data accesses touch the code memo's cache.
            self.sync_replay();
        }
        if let Some(tlb) = &mut self.dtlb {
            let refills = tlb.access_range(region.base, region.len);
            self.stall_cycles += refills * tlb.config().refill_penalty;
        }
        let penalty = match kind {
            AccessKind::Write => self.cfg.write_miss_penalty,
            _ => self.cfg.read_miss_penalty,
        };
        if self.l2.is_some() {
            let line_size = self.cfg.icache.line_size;
            let mut misses = 0;
            for line_addr in region.line_addrs(line_size) {
                // analyze::allow(panic-path, reason = "line_size is a validated nonzero cache-geometry parameter")
                let line = line_addr / line_size;
                let cache = self.dcache.as_mut().unwrap_or(&mut self.icache);
                if !cache.access_line(line, kind) {
                    misses += 1;
                    self.stall_cycles += penalty;
                    self.l2_fill(line, kind);
                }
            }
            return misses;
        }
        let cache = self.dcache.as_mut().unwrap_or(&mut self.icache);
        let misses = cache.access_range(region.base, region.len, kind);
        self.stall_cycles += misses * penalty;
        misses
    }

    /// Loads a single D-cache line by line number.
    pub fn read_data_line(&mut self, line: u64) -> bool {
        if self.dcache.is_none() {
            self.sync_replay();
        }
        self.sync_dreplay();
        let penalty = self.cfg.read_miss_penalty;
        let cache = self.dcache.as_mut().unwrap_or(&mut self.icache);
        let hit = cache.access_line(line, AccessKind::Read);
        if !hit {
            self.stall_cycles += penalty;
        }
        hit
    }

    /// Invalidates both primary caches (cold start) without resetting
    /// counters; the L2 (when configured) keeps its contents, as a warm
    /// board cache would across a context switch. TLB contents survive
    /// (flushing those is [`Machine::flush_tlbs`]' job), so any live
    /// memo state is materialized first.
    pub fn flush_caches(&mut self) {
        self.sync_replay();
        self.sync_dreplay();
        self.icache.flush();
        if let Some(d) = &mut self.dcache {
            d.flush();
        }
    }

    /// Invalidates the second-level cache too.
    pub fn flush_all_caches(&mut self) {
        self.flush_caches();
        if let Some(l2) = &mut self.l2 {
            l2.flush();
        }
    }

    /// Invalidates the TLBs (context switch) without resetting counters.
    /// Cache contents survive, so any live memo state is materialized
    /// first.
    pub fn flush_tlbs(&mut self) {
        self.sync_replay();
        self.sync_dreplay();
        if let Some(t) = &mut self.itlb {
            t.flush();
        }
        if let Some(t) = &mut self.dtlb {
            t.flush();
        }
    }

    /// Zeroes all counters without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.icache.reset_stats();
        if let Some(d) = &mut self.dcache {
            d.reset_stats();
        }
        if let Some(t) = &mut self.itlb {
            t.reset_stats();
        }
        if let Some(t) = &mut self.dtlb {
            t.reset_stats();
        }
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
        self.instr_cycles = 0;
        self.stall_cycles = 0;
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            icache: *self.icache.stats(),
            dcache: self
                .dcache
                .as_ref()
                .map(|d| *d.stats())
                .unwrap_or_default(),
            itlb: self.itlb.as_ref().map(|t| *t.stats()).unwrap_or_default(),
            dtlb: self.dtlb.as_ref().map(|t| *t.stats()).unwrap_or_default(),
            l2: self.l2.as_ref().map(|c| *c.stats()).unwrap_or_default(),
            instr_cycles: self.instr_cycles,
            stall_cycles: self.stall_cycles,
        }
    }

    /// Total cycles elapsed (execution + stalls).
    pub fn cycles(&self) -> CycleCount {
        self.instr_cycles + self.stall_cycles
    }

    /// Converts a cycle count to microseconds at the configured clock.
    pub fn cycles_to_us(&self, cycles: CycleCount) -> f64 {
        cycles as f64 / self.cfg.clock_mhz
    }

    /// Converts microseconds to (rounded) cycles at the configured clock.
    pub fn us_to_cycles(&self, us: f64) -> CycleCount {
        (us * self.cfg.clock_mhz).round() as CycleCount
    }

    /// Direct access to the I-cache (e.g. for warm-up or probing).
    pub fn icache(&mut self) -> &mut Cache {
        self.sync_replay();
        &mut self.icache
    }

    /// Direct access to the D-cache; `None` on unified configurations.
    pub fn dcache(&mut self) -> Option<&mut Cache> {
        self.sync_dreplay();
        self.dcache.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Region;

    #[test]
    fn presets_are_sane() {
        let dec = MachineConfig::dec3000_400();
        assert_eq!(dec.icache.size_bytes, 8192);
        assert_eq!(dec.icache.line_size, 32);
        assert_eq!(dec.read_miss_penalty, 10);
        let syn = MachineConfig::synthetic_benchmark();
        assert_eq!(syn.read_miss_penalty, 20);
        assert_eq!(syn.clock_mhz, 100.0);
    }

    #[test]
    fn code_fetch_charges_stalls() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        // 6 KB of code = 192 lines, all cold.
        let misses = m.fetch_code(Region::new(0, 6144));
        assert_eq!(misses, 192);
        assert_eq!(m.stats().stall_cycles, 192 * 20);
        // Second pass is fully warm.
        assert_eq!(m.fetch_code(Region::new(0, 6144)), 0);
    }

    #[test]
    fn split_caches_do_not_interfere() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.fetch_code(Region::new(0, 8192));
        // Same addresses as data: separate cache, so all cold.
        let misses = m.read_data(Region::new(0, 8192));
        assert_eq!(misses, 256);
        // And code is still warm.
        assert_eq!(m.fetch_code(Region::new(0, 8192)), 0);
    }

    #[test]
    fn unified_cache_shares_lines() {
        let cfg = MachineConfig {
            dcache: None,
            ..MachineConfig::synthetic_benchmark()
        };
        let mut m = Machine::new(cfg);
        m.fetch_code(Region::new(0, 32));
        assert_eq!(m.read_data(Region::new(0, 32)), 0, "unified: code fetch warmed the line");
        assert_eq!(m.replay_ineligibility(), Some("unified-cache"));
    }

    #[test]
    fn probe_sequences_charge_per_slot() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        // Three cold 64-byte slots (2 lines each) far apart: 6 misses.
        let base = 0x4000_0000;
        let misses = m.read_data_probes(base, 64, &[0, 100, 200]);
        assert_eq!(misses, 6);
        assert_eq!(m.stats().stall_cycles, 6 * 20);
        // Re-probing the same run is warm.
        assert_eq!(m.read_data_probes(base, 64, &[0, 100, 200]), 0);
        // The home-slot RMW write hits the warmed lines too.
        assert_eq!(m.write_data_slot(base, 64, 200), 0);
        assert_eq!(m.write_data_slot(base, 64, 300), 2);
        // An empty probe log charges nothing.
        assert_eq!(m.read_data_probes(base, 64, &[]), 0);
    }

    #[test]
    fn write_misses_do_not_stall_by_default() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        let misses = m.write_data(Region::new(0, 1024));
        assert_eq!(misses, 32);
        assert_eq!(m.stats().stall_cycles, 0);
        assert_eq!(m.stats().dcache.write_misses, 32);
    }

    #[test]
    fn execute_and_time_conversion() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.execute(1652);
        assert_eq!(m.cycles(), 1652);
        assert!((m.cycles_to_us(100) - 1.0).abs() < 1e-12, "100 cycles at 100 MHz is 1 us");
        assert_eq!(m.us_to_cycles(2.5), 250);
    }

    #[test]
    fn flush_vs_reset() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.fetch_code(Region::new(0, 32));
        m.flush_caches();
        assert_eq!(m.stats().icache.misses, 1, "flush keeps stats");
        m.fetch_code(Region::new(0, 32));
        assert_eq!(m.stats().icache.misses, 2, "flushed line misses again");
        m.reset_stats();
        assert_eq!(m.stats().icache.misses, 0);
        assert_eq!(m.fetch_code(Region::new(0, 32)), 0, "reset keeps contents");
    }

    #[test]
    fn next_line_prefetch_halves_straight_line_stalls() {
        let plain = MachineConfig::synthetic_benchmark();
        let pf = plain.with_prefetch();
        let mut a = Machine::new(plain);
        let mut b = Machine::new(pf);
        // Straight-line code: every other line arrives by prefetch.
        a.fetch_code(Region::new(0, 4096));
        b.fetch_code(Region::new(0, 4096));
        assert_eq!(a.stats().stall_cycles, 128 * 20);
        assert_eq!(b.stats().stall_cycles, 64 * 20, "half the stalls");
        // Warm behaviour identical.
        a.reset_stats();
        b.reset_stats();
        a.fetch_code(Region::new(0, 4096));
        b.fetch_code(Region::new(0, 4096));
        assert_eq!(a.stats().stall_cycles, 0);
        assert_eq!(b.stats().stall_cycles, 0);
    }

    #[test]
    fn board_cache_absorbs_repeat_misses() {
        let cfg = MachineConfig::dec3000_400().with_board_cache();
        let mut m = Machine::new(cfg);
        // Cold: 30 KB misses L1 and L2 — both penalties.
        let lines = 30 * 1024 / 32;
        m.fetch_code(Region::new(0, 30 * 1024));
        assert_eq!(m.stats().l2.misses, lines);
        assert_eq!(m.stats().stall_cycles, lines * (10 + 30));
        // Evict L1 (working set > 8 KB L1, fits 512 KB L2): second pass
        // misses L1 but hits L2 — only the 10-cycle fill.
        let before = m.stats().stall_cycles;
        m.fetch_code(Region::new(0, 30 * 1024));
        let added = m.stats().stall_cycles - before;
        assert!(added < lines * 30, "L2 should absorb most fills: {added}");
        assert!(m.stats().l2.hits > 0);
        // flush_caches keeps the L2 warm; flush_all_caches does not.
        m.flush_caches();
        let before = m.stats().l2.misses;
        m.fetch_code(Region::new(0, 1024));
        assert_eq!(m.stats().l2.misses, before, "board cache still warm");
        m.flush_all_caches();
        m.fetch_code(Region::new(0, 1024));
        assert!(m.stats().l2.misses > before);
    }

    #[test]
    fn tlb_integration_charges_refills() {
        let cfg = MachineConfig::synthetic_benchmark().with_alpha_tlbs();
        let mut m = Machine::new(cfg);
        // 30 KB of code spans 4 pages: 4 ITB refills + 960 cache misses.
        m.fetch_code(Region::new(0, 30 * 1024));
        let s = m.stats();
        assert_eq!(s.itlb.misses, 4);
        assert_eq!(s.stall_cycles, 960 * 20 + 4 * 40);
        // Second pass: everything warm.
        m.fetch_code(Region::new(0, 30 * 1024));
        assert_eq!(m.stats().itlb.misses, 4);
        // Data TLB is independent.
        m.read_data(Region::new(0x100_0000, 8192));
        assert_eq!(m.stats().dtlb.misses, 1);
        m.flush_tlbs();
        m.fetch_code(Region::new(0, 32));
        assert_eq!(m.stats().itlb.misses, 5, "flushed ITB refills again");
    }

    #[test]
    fn machines_without_tlbs_report_zero() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.fetch_code(Region::new(0, 1024));
        assert_eq!(m.stats().itlb.accesses(), 0);
        assert_eq!(m.stats().dtlb.accesses(), 0);
    }

    #[test]
    fn code_density_presets() {
        assert!(MachineConfig::i386_like().code_density < 1.0);
        assert_eq!(MachineConfig::synthetic_benchmark().code_density, 1.0);
    }

    /// Drives one memoized and one per-line machine through the same
    /// interleaved footprint/data/flush schedule and asserts identical
    /// stats at every step.
    #[test]
    fn footprint_replay_is_exact() {
        let cfg = MachineConfig::synthetic_benchmark();
        let mut memo = Machine::new(cfg);
        let mut walk = Machine::new(cfg);
        walk.set_replay_enabled(false);
        // Three footprints that conflict in an 8 KB / 32 B I-cache.
        let fp: Vec<Vec<u64>> = vec![
            (0..192).collect(),                  // 6 KB at line 0
            (100..292).collect(),                // overlaps fp0, spills sets
            (256..448).collect(),                // aliases fp0 exactly
        ];
        let schedule = [0usize, 1, 2, 0, 1, 2, 0, 0, 1, 2, 1, 0, 2, 2, 0, 1];
        for (step, &f) in schedule.iter().enumerate() {
            let a = memo.fetch_code_footprint(f as u32, &fp[f]);
            let mut b = 0;
            for &line in &fp[f] {
                if !walk.fetch_code_line(line) {
                    b += 1;
                }
            }
            assert_eq!(a, b, "misses diverged at step {step}");
            assert_eq!(
                memo.stats().icache,
                walk.stats().icache,
                "icache stats diverged at step {step}"
            );
            assert_eq!(memo.cycles(), walk.cycles(), "cycles diverged at step {step}");
            // Interleave data traffic (separate cache, must not disturb).
            memo.read_data(Region::new(0x9000, 256));
            walk.read_data(Region::new(0x9000, 256));
            assert_eq!(memo.stats().dcache, walk.stats().dcache);
            if step == 7 {
                memo.flush_caches();
                walk.flush_caches();
            }
            if step == 11 {
                // A raw region fetch forces the memo to materialize.
                memo.fetch_code(Region::new(50 * 32, 64));
                walk.fetch_code(Region::new(50 * 32, 64));
            }
        }
        let s = memo.replay_stats();
        assert!(s.hits > 0, "recurring schedule must produce memo hits");
        assert_eq!(walk.replay_stats().hits, 0);
    }

    /// The TLB-keyed equivalent: random footprints over a machine with
    /// Alpha TLBs, memoized vs memoizer-disabled, must agree on every
    /// counter — icache, dcache, ITLB, DTLB, stalls — at every step.
    #[test]
    fn tlb_keyed_replay_matches_disabled_run() {
        let cfg = MachineConfig::synthetic_benchmark().with_alpha_tlbs();
        let mut memo = Machine::new(cfg);
        memo.set_data_memo(true);
        let mut walk = Machine::new(cfg);
        walk.set_replay_enabled(false);
        // Deterministic xorshift for "random" footprints and regions.
        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        // 8 footprints spanning several pages each (so the ITB matters).
        let fps: Vec<Vec<u64>> = (0..8)
            .map(|_| {
                let base = next() % 4096;
                let len = 32 + next() % 160;
                (base..base + len).collect()
            })
            .collect();
        for step in 0..400 {
            let f = (next() % fps.len() as u64) as usize;
            let a = memo.fetch_code_footprint(f as u32, &fps[f]);
            let b = walk.fetch_code_footprint(f as u32, &fps[f]);
            assert_eq!(a, b, "code misses diverged at step {step}");
            // Random data sweeps, read or write, random slots.
            let base = 0x10_0000 + (next() % 64) * 1536;
            let len = 32 + next() % 1504;
            if next() % 4 == 0 {
                assert_eq!(
                    memo.write_data(Region::new(base, len)),
                    walk.write_data(Region::new(base, len)),
                    "write misses diverged at step {step}"
                );
            } else {
                assert_eq!(
                    memo.read_data(Region::new(base, len)),
                    walk.read_data(Region::new(base, len)),
                    "read misses diverged at step {step}"
                );
            }
            if step % 97 == 0 {
                memo.flush_tlbs();
                walk.flush_tlbs();
            }
            if step % 151 == 0 {
                memo.flush_caches();
                walk.flush_caches();
            }
            let (sm, sw) = (memo.stats(), walk.stats());
            assert_eq!(sm.icache, sw.icache, "icache diverged at step {step}");
            assert_eq!(sm.dcache, sw.dcache, "dcache diverged at step {step}");
            assert_eq!(sm.itlb, sw.itlb, "itlb diverged at step {step}");
            assert_eq!(sm.dtlb, sw.dtlb, "dtlb diverged at step {step}");
            assert_eq!(sm.stall_cycles, sw.stall_cycles, "stalls diverged at step {step}");
        }
        assert!(memo.replay_stats().hits > 0, "the schedule must replay");
        assert_eq!(walk.replay_stats().hits, 0);
        assert_eq!(walk.replay_bypass_reason(), Some("memoizer-disabled"));
    }

    /// Prefetch configurations are memoizable too: the install is a pure
    /// function of the I-cache state.
    #[test]
    fn prefetch_replay_matches_disabled_run() {
        let cfg = MachineConfig::synthetic_benchmark().with_prefetch();
        let mut memo = Machine::new(cfg);
        let mut walk = Machine::new(cfg);
        walk.set_replay_enabled(false);
        let fps: Vec<Vec<u64>> = (0..4).map(|i| (i * 100..i * 100 + 150).collect()).collect();
        for step in 0..100 {
            let f = step % fps.len();
            assert_eq!(
                memo.fetch_code_footprint(f as u32, &fps[f]),
                walk.fetch_code_footprint(f as u32, &fps[f]),
                "diverged at step {step}"
            );
            let (sm, sw) = (memo.stats(), walk.stats());
            assert_eq!(sm.icache, sw.icache);
            assert_eq!(sm.stall_cycles, sw.stall_cycles);
        }
        assert!(memo.replay_stats().hits > 0, "prefetch sweeps must replay");
    }

    #[test]
    fn footprint_replay_steady_state_hits() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        let fps: Vec<Vec<u64>> = (0..5).map(|i| (i * 192..(i + 1) * 192).collect()).collect();
        // 100 "messages" through a 5-layer cycle: after the first lap the
        // state sequence repeats, so all later sweeps hit the memo.
        for _ in 0..100 {
            for (fid, fp) in fps.iter().enumerate() {
                m.fetch_code_footprint(fid as u32, fp);
            }
        }
        let s = m.replay_stats();
        assert!(
            s.hit_rate() > 0.9,
            "steady-state hit rate {:.3} should approach 1",
            s.hit_rate()
        );
        assert_eq!(s.accesses(), 500);
    }

    #[test]
    fn data_replay_steady_state_hits() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark().with_alpha_tlbs());
        m.set_data_memo(true);
        for lap in 0..100u64 {
            for slot in 0..8u64 {
                m.read_data(Region::new(0x10_0000 + slot * 1536, 552));
                m.write_data(Region::new(0x20_0000 + slot * 64, 58));
            }
            let _ = lap;
        }
        let s = m.replay_stats();
        assert!(
            s.hit_rate() > 0.9,
            "steady-state data hit rate {:.3} should approach 1",
            s.hit_rate()
        );
    }

    #[test]
    fn footprint_replay_bypasses_ineligible_configs() {
        // A built-in L2 makes sweeps touch state shared between the code
        // and data streams: both memos must stand aside, and say why.
        let mut m = Machine::new(MachineConfig::dec3000_400().with_board_cache());
        m.set_data_memo(true);
        let fp: Vec<u64> = (0..64).collect();
        m.fetch_code_footprint(0, &fp);
        m.fetch_code_footprint(0, &fp);
        m.read_data(Region::new(0x9000, 256));
        assert_eq!(m.replay_stats().hits, 0);
        assert_eq!(m.replay_stats().bypasses, 3, "every sweep counted");
        assert_eq!(m.replay_bypass_reason(), Some("l2-configured"));
        // And the fetches still happened.
        assert!(m.stats().icache.fetch_misses > 0);

        // Footprint-id collisions fall back to the walk.
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.fetch_code_footprint(0, &fp);
        let other: Vec<u64> = (64..128).collect();
        let misses = m.fetch_code_footprint(0, &other);
        assert_eq!(misses, 64, "collision path still simulates correctly");
        assert_eq!(m.replay_stats().bypasses, 1);
        assert_eq!(m.replay_bypass_reason(), Some("footprint-collision"));
    }

    #[test]
    fn footprint_replay_survives_probe_after_hit() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        let fp: Vec<u64> = (0..32).collect();
        m.fetch_code_footprint(0, &fp);
        m.fetch_code_footprint(0, &fp); // memo hit: tag array now stale
        assert!(m.icache().probe(0), "icache() must materialize first");
        assert!(!m.icache().probe(100 * 32));
    }

    #[test]
    fn data_replay_survives_probe_after_hit() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.set_data_memo(true);
        m.read_data(Region::new(0x40_0000, 256));
        m.flush_caches();
        m.read_data(Region::new(0x40_0000, 256));
        m.flush_caches();
        m.read_data(Region::new(0x40_0000, 256)); // memo hit: tags stale
        assert!(m.replay_stats().hits > 0);
        assert!(
            m.dcache().expect("split config").probe(0x40_0000),
            "dcache() must materialize first"
        );
    }

    #[test]
    fn line_size_override() {
        let cfg = MachineConfig::dec3000_400().with_line_size(64);
        assert_eq!(cfg.icache.line_size, 64);
        assert_eq!(cfg.dcache.unwrap().line_size, 64);
        assert_eq!(cfg.icache.num_lines(), 128);
    }
}
