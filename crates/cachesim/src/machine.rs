//! The machine model: split or unified primary caches plus cycle accounting.

use crate::addr::Region;
use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats};
use crate::replay::{ReplayCache, Transition};
use crate::stats::{ReplayReport, ReplayStats};
use crate::tlb::{Tlb, TlbConfig, TlbStats};

/// Simulated cycle counts.
pub type CycleCount = u64;

/// Machine parameters: cache geometry, miss penalties and clock rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Instruction-cache geometry (also the unified cache when
    /// `dcache` is `None`).
    pub icache: CacheConfig,
    /// Data-cache geometry; `None` selects a unified cache.
    pub dcache: Option<CacheConfig>,
    /// Stall cycles charged per read or instruction-fetch miss.
    pub read_miss_penalty: CycleCount,
    /// Stall cycles charged per write miss (0 models a write buffer that
    /// never fills, the paper's implicit assumption).
    pub write_miss_penalty: CycleCount,
    /// CPU clock in MHz, used to convert cycles to wall time.
    pub clock_mhz: f64,
    /// Multiplier applied to code footprints to model instruction-set code
    /// density (1.0 = Alpha baseline; the paper quotes ~0.55 for i386,
    /// Section 5.2).
    pub code_density: f64,
    /// Optional instruction TLB (None = perfect translation, the paper's
    /// implicit assumption; its traces exclude the PAL refill code).
    pub itlb: Option<TlbConfig>,
    /// Optional data TLB.
    pub dtlb: Option<TlbConfig>,
    /// Optional unified second-level cache. When present,
    /// `read_miss_penalty` is the L1-miss-hits-L2 cost and `l2_miss_penalty`
    /// is charged on top for references that miss L2 too (the DEC 3000/400
    /// carries a 512 KB board cache; the paper's "10 cycles" is the
    /// L1-to-L2 fill).
    pub l2: Option<CacheConfig>,
    /// Extra stall cycles per L2 miss (memory fill).
    pub l2_miss_penalty: CycleCount,
    /// Next-line instruction prefetch: on an I-fetch miss, the following
    /// line is filled in the background at no stall cost (Section 4 notes
    /// "some processors can prefetch instructions from the second level
    /// cache to hide some of the cache miss cost").
    pub next_line_prefetch: bool,
}

impl MachineConfig {
    /// The DEC 3000/400 of Section 2: 8 KB direct-mapped split I/D caches,
    /// 32-byte lines, 10-cycle primary-miss penalty, 133 MHz Alpha 21064.
    pub fn dec3000_400() -> Self {
        MachineConfig {
            icache: CacheConfig::direct_mapped(8 * 1024, 32),
            dcache: Some(CacheConfig::direct_mapped(8 * 1024, 32)),
            read_miss_penalty: 10,
            write_miss_penalty: 0,
            clock_mhz: 133.0,
            code_density: 1.0,
            itlb: None,
            dtlb: None,
            l2: None,
            l2_miss_penalty: 0,
            next_line_prefetch: false,
        }
    }

    /// The synthetic benchmark machine of Section 4: 8 KB direct-mapped
    /// split I/D caches, 32-byte lines, 20-cycle read-miss stall, 100 MHz.
    pub fn synthetic_benchmark() -> Self {
        MachineConfig {
            icache: CacheConfig::direct_mapped(8 * 1024, 32),
            dcache: Some(CacheConfig::direct_mapped(8 * 1024, 32)),
            read_miss_penalty: 20,
            write_miss_penalty: 0,
            clock_mhz: 100.0,
            code_density: 1.0,
            itlb: None,
            dtlb: None,
            l2: None,
            l2_miss_penalty: 0,
            next_line_prefetch: false,
        }
    }

    /// An i386-flavoured variant of the synthetic machine: identical caches
    /// and penalties but denser code (Section 5.2 measures NetBSD
    /// networking code as 55% smaller on the i386).
    pub fn i386_like() -> Self {
        MachineConfig {
            code_density: 0.45,
            ..Self::synthetic_benchmark()
        }
    }

    /// A hypothetical 1998 processor per Rosenblum's prediction quoted in
    /// Section 1.2: 64 KB caches but a 60-slot (30-cycle) miss penalty.
    pub fn rosenblum_1998() -> Self {
        MachineConfig {
            icache: CacheConfig::direct_mapped(64 * 1024, 32),
            dcache: Some(CacheConfig::direct_mapped(64 * 1024, 32)),
            read_miss_penalty: 30,
            write_miss_penalty: 0,
            clock_mhz: 500.0,
            code_density: 1.0,
            itlb: None,
            dtlb: None,
            l2: None,
            l2_miss_penalty: 0,
            next_line_prefetch: false,
        }
    }

    /// Returns a copy with next-line instruction prefetch enabled.
    pub fn with_prefetch(mut self) -> Self {
        self.next_line_prefetch = true;
        self
    }

    /// Returns a copy with the DEC 3000/400's 512 KB direct-mapped board
    /// cache enabled: L1 misses that hit it cost `read_miss_penalty`;
    /// misses all the way to memory add 30 more cycles.
    pub fn with_board_cache(mut self) -> Self {
        self.l2 = Some(CacheConfig::direct_mapped(512 * 1024, 32));
        self.l2_miss_penalty = 30;
        self
    }

    /// Returns a copy with Alpha-21064-style instruction and data TLBs
    /// enabled (12-entry ITB, 32-entry DTB, 8 KB pages, 40-cycle PAL
    /// refill).
    pub fn with_alpha_tlbs(mut self) -> Self {
        self.itlb = Some(TlbConfig::alpha_itb());
        self.dtlb = Some(TlbConfig::alpha_dtb());
        self
    }

    /// Returns a copy with a different clock (Figure 7 sweeps this).
    pub fn with_clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Returns a copy with a different line size in every cache
    /// (Table 3 sweeps this).
    pub fn with_line_size(mut self, line_size: u64) -> Self {
        self.icache.line_size = line_size;
        if let Some(d) = &mut self.dcache {
            d.line_size = line_size;
        }
        self
    }

    /// Cycles per microsecond at this clock.
    pub fn cycles_per_us(&self) -> f64 {
        self.clock_mhz
    }
}

/// Aggregated statistics for a [`Machine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineStats {
    /// I-cache (or unified cache) counters.
    pub icache: CacheStats,
    /// D-cache counters (zero for unified configurations).
    pub dcache: CacheStats,
    /// Cycles spent executing instructions.
    pub instr_cycles: CycleCount,
    /// Cycles spent stalled on cache misses.
    pub stall_cycles: CycleCount,
    /// Instruction-TLB counters (zero when no ITB is configured).
    pub itlb: TlbStats,
    /// Data-TLB counters (zero when no DTB is configured).
    pub dtlb: TlbStats,
    /// Second-level cache counters (zero when no L2 is configured).
    pub l2: CacheStats,
}

impl MachineStats {
    /// Total simulated cycles (execution plus stalls).
    pub fn total_cycles(&self) -> CycleCount {
        self.instr_cycles + self.stall_cycles
    }

    /// Total misses across both caches.
    pub fn total_misses(&self) -> u64 {
        self.icache.misses + self.dcache.misses
    }
}

/// A machine instance: caches plus cycle counters.
///
/// The simulators drive it with [`Machine::fetch_code`],
/// [`Machine::read_data`], [`Machine::write_data`] and
/// [`Machine::execute`]; it accumulates stall and execution cycles.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    icache: Cache,
    /// `None` for unified configurations: data accesses then go to `icache`.
    dcache: Option<Cache>,
    itlb: Option<Tlb>,
    dtlb: Option<Tlb>,
    l2: Option<Cache>,
    instr_cycles: CycleCount,
    stall_cycles: CycleCount,
    /// Footprint-replay memo, created lazily on the first
    /// [`Machine::fetch_code_footprint`] call on an eligible configuration.
    replay: Option<ReplayCache>,
}

impl Machine {
    /// Builds a machine with cold caches and zeroed counters.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            icache: Cache::new(cfg.icache),
            dcache: cfg.dcache.map(Cache::new),
            itlb: cfg.itlb.map(Tlb::new),
            dtlb: cfg.dtlb.map(Tlb::new),
            l2: cfg.l2.map(Cache::new),
            instr_cycles: 0,
            stall_cycles: 0,
            replay: None,
            cfg,
        }
    }

    /// Whether code sweeps on this configuration touch nothing but the
    /// I-cache, making footprint replay exact: split caches, no ITLB, no
    /// L2, no next-line prefetch.
    fn replay_eligible(&self) -> bool {
        self.itlb.is_none()
            && self.l2.is_none()
            && !self.cfg.next_line_prefetch
            && self.dcache.is_some()
    }

    /// Materializes the memo's live state (if any) back into the I-cache
    /// tag array so non-memoized accesses see current contents.
    fn sync_replay(&mut self) {
        if let Some(r) = &mut self.replay {
            if let Some(t) = r.cur.take() {
                self.icache.import_tags(r.state(t));
            }
        }
    }

    /// Fetches every line of a fixed code footprint through the I-cache,
    /// exactly like calling [`Machine::fetch_code_line`] per line, but
    /// memoized: the `(cache state, footprint)` outcome is recorded so
    /// recurring sweeps cost one table lookup. `fid` must identify this
    /// exact `lines` sequence for the lifetime of the machine; a
    /// conflicting registration falls back to the per-line walk.
    /// Returns the misses.
    pub fn fetch_code_footprint(&mut self, fid: u32, lines: &[u64]) -> u64 {
        if lines.is_empty() {
            return 0;
        }
        if !self.replay_eligible() {
            if let Some(r) = &mut self.replay {
                r.stats_mut().bypasses += 1;
            }
            self.sync_replay();
            return self.fetch_lines_walk(lines);
        }
        let replay = self.replay.get_or_insert_with(ReplayCache::default);
        if !replay.check_footprint(fid, lines) {
            replay.stats_mut().bypasses += 1;
            self.sync_replay();
            return self.fetch_lines_walk(lines);
        }
        let cur = match replay.cur {
            Some(t) => t,
            None => {
                let tags = self.icache.export_tags();
                replay.intern(tags)
            }
        };
        if let Some(tr) = replay.lookup(cur, fid) {
            replay.stats_mut().hits += 1;
            replay.cur = Some(tr.next);
            self.icache
                .record_bulk(lines.len() as u64 - tr.misses, tr.misses, AccessKind::InstrFetch);
            self.stall_cycles += tr.misses * self.cfg.read_miss_penalty;
            return tr.misses;
        }
        // Memo miss: make the tag array reflect `cur`, walk for real,
        // record the outcome.
        replay.stats_mut().misses += 1;
        if replay.cur.take().is_some() {
            self.icache.import_tags(replay.state(cur));
        }
        let mut misses = 0;
        for &line in lines {
            if !self.icache.access_line(line, AccessKind::InstrFetch) {
                misses += 1;
                self.stall_cycles += self.cfg.read_miss_penalty;
            }
        }
        // analyze::allow(panic-free-library, reason = "replay was created (or confirmed Some) at the top of this function; re-borrowed here to satisfy the borrow checker")
        let replay = self.replay.as_mut().expect("created above");
        let next = replay.intern(self.icache.export_tags());
        replay.insert(cur, fid, Transition { misses, next });
        replay.cur = Some(next);
        misses
    }

    /// Per-line code fetch of `lines` through the full (non-memoized)
    /// path.
    fn fetch_lines_walk(&mut self, lines: &[u64]) -> u64 {
        let mut misses = 0;
        for &line in lines {
            if !self.fetch_code_line(line) {
                misses += 1;
            }
        }
        misses
    }

    /// Counters of the footprint-replay memo (zero if never used).
    pub fn replay_stats(&self) -> ReplayStats {
        self.replay.as_ref().map(|r| r.stats()).unwrap_or_default()
    }

    /// Counter-and-size snapshot of the footprint-replay memo.
    pub fn replay_report(&self) -> ReplayReport {
        self.replay.as_ref().map(|r| r.report()).unwrap_or_default()
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Charges `n` cycles of instruction execution.
    pub fn execute(&mut self, n: CycleCount) {
        self.instr_cycles += n;
    }

    /// Charges `n` stall cycles modelled *outside* this machine's private
    /// caches — the hook that makes hierarchies composable: a shared
    /// second-level cache or coherence fabric (see [`crate::coherence`])
    /// simulates its own hits, misses, and invalidations and bills the
    /// stall time to the core that waited, without this machine needing
    /// to own (or even know about) the outer level. Keeping the outer
    /// level out of `MachineConfig::l2` also keeps the core replay-
    /// eligible, so the footprint memoizer stays effective per core.
    pub fn stall(&mut self, n: CycleCount) {
        self.stall_cycles += n;
    }

    /// Fetches every line of `region` through the I-cache (and the ITB,
    /// when configured), charging miss/refill penalties. Returns the
    /// number of cache misses.
    pub fn fetch_code(&mut self, region: Region) -> u64 {
        self.sync_replay();
        if let Some(tlb) = &mut self.itlb {
            let refills = tlb.access_range(region.base, region.len);
            self.stall_cycles += refills * tlb.config().refill_penalty;
        }
        if self.l2.is_some() || self.cfg.next_line_prefetch {
            // Per-line so L1 misses can fill through the L2 and trigger
            // next-line prefetches.
            let mut misses = 0;
            for line_addr in region.line_addrs(self.cfg.icache.line_size) {
                let line = line_addr / self.cfg.icache.line_size;
                if !self.icache.access_line(line, AccessKind::InstrFetch) {
                    misses += 1;
                    self.stall_cycles += self.cfg.read_miss_penalty;
                    self.l2_fill(line, AccessKind::InstrFetch);
                    if self.cfg.next_line_prefetch {
                        self.prefetch_line(line + 1);
                    }
                }
            }
            return misses;
        }
        let misses = self
            .icache
            .access_range(region.base, region.len, AccessKind::InstrFetch);
        self.stall_cycles += misses * self.cfg.read_miss_penalty;
        misses
    }

    /// Fills an L1 miss through the L2, charging the memory penalty when
    /// the L2 misses too.
    fn l2_fill(&mut self, line: u64, kind: AccessKind) {
        if let Some(l2) = &mut self.l2 {
            if !l2.access_line(line, kind) {
                self.stall_cycles += self.cfg.l2_miss_penalty;
            }
        }
    }

    /// Fetches a single I-cache line by line number.
    pub fn fetch_code_line(&mut self, line: u64) -> bool {
        self.sync_replay();
        if let Some(tlb) = &mut self.itlb {
            let line_size = self.cfg.icache.line_size;
            if !tlb.access(line * line_size) {
                self.stall_cycles += tlb.config().refill_penalty;
            }
        }
        let hit = self.icache.access_line(line, AccessKind::InstrFetch);
        if !hit {
            self.stall_cycles += self.cfg.read_miss_penalty;
            self.l2_fill(line, AccessKind::InstrFetch);
            if self.cfg.next_line_prefetch {
                self.prefetch_line(line + 1);
            }
        }
        hit
    }

    /// Installs `line` in the I-cache as a background prefetch: no stall,
    /// no hit/miss accounting beyond the install itself.
    fn prefetch_line(&mut self, line: u64) {
        if !self.icache.probe(line * self.cfg.icache.line_size) {
            self.icache.access_line(line, AccessKind::InstrFetch);
            // The install counted as a miss in the raw cache stats; undo
            // the stall it would imply by charging nothing — the cache
            // counters still show it, which is fine (prefetches are
            // fetches), but the processor never waited.
        }
    }

    /// Loads every line of `region` through the D-cache (or unified cache),
    /// charging the read-miss penalty per miss. Returns the misses.
    pub fn read_data(&mut self, region: Region) -> u64 {
        if self.dcache.is_none() {
            // Unified cache: data accesses touch the memo's cache.
            self.sync_replay();
        }
        if let Some(tlb) = &mut self.dtlb {
            let refills = tlb.access_range(region.base, region.len);
            self.stall_cycles += refills * tlb.config().refill_penalty;
        }
        let penalty = self.cfg.read_miss_penalty;
        if self.l2.is_some() {
            let line_size = self.cfg.icache.line_size;
            let mut misses = 0;
            for line_addr in region.line_addrs(line_size) {
                let line = line_addr / line_size;
                let cache = self.dcache.as_mut().unwrap_or(&mut self.icache);
                if !cache.access_line(line, AccessKind::Read) {
                    misses += 1;
                    self.stall_cycles += penalty;
                    self.l2_fill(line, AccessKind::Read);
                }
            }
            return misses;
        }
        let cache = self.dcache.as_mut().unwrap_or(&mut self.icache);
        let misses = cache.access_range(region.base, region.len, AccessKind::Read);
        self.stall_cycles += misses * penalty;
        misses
    }

    /// Stores to every line of `region` (write-allocate), charging the
    /// write-miss penalty per miss. Returns the misses.
    pub fn write_data(&mut self, region: Region) -> u64 {
        if self.dcache.is_none() {
            self.sync_replay();
        }
        if let Some(tlb) = &mut self.dtlb {
            let refills = tlb.access_range(region.base, region.len);
            self.stall_cycles += refills * tlb.config().refill_penalty;
        }
        let penalty = self.cfg.write_miss_penalty;
        if self.l2.is_some() {
            let line_size = self.cfg.icache.line_size;
            let mut misses = 0;
            for line_addr in region.line_addrs(line_size) {
                let line = line_addr / line_size;
                let cache = self.dcache.as_mut().unwrap_or(&mut self.icache);
                if !cache.access_line(line, AccessKind::Write) {
                    misses += 1;
                    self.stall_cycles += penalty;
                    self.l2_fill(line, AccessKind::Write);
                }
            }
            return misses;
        }
        let cache = self.dcache.as_mut().unwrap_or(&mut self.icache);
        let misses = cache.access_range(region.base, region.len, AccessKind::Write);
        self.stall_cycles += misses * penalty;
        misses
    }

    /// Loads a single D-cache line by line number.
    pub fn read_data_line(&mut self, line: u64) -> bool {
        if self.dcache.is_none() {
            self.sync_replay();
        }
        let penalty = self.cfg.read_miss_penalty;
        let cache = self.dcache.as_mut().unwrap_or(&mut self.icache);
        let hit = cache.access_line(line, AccessKind::Read);
        if !hit {
            self.stall_cycles += penalty;
        }
        hit
    }

    /// Invalidates both primary caches (cold start) without resetting
    /// counters; the L2 (when configured) keeps its contents, as a warm
    /// board cache would across a context switch.
    pub fn flush_caches(&mut self) {
        // The flush overwrites whatever state the memo held live; just
        // drop the token rather than materializing doomed contents.
        if let Some(r) = &mut self.replay {
            r.cur = None;
        }
        self.icache.flush();
        if let Some(d) = &mut self.dcache {
            d.flush();
        }
    }

    /// Invalidates the second-level cache too.
    pub fn flush_all_caches(&mut self) {
        self.flush_caches();
        if let Some(l2) = &mut self.l2 {
            l2.flush();
        }
    }

    /// Invalidates the TLBs (context switch) without resetting counters.
    pub fn flush_tlbs(&mut self) {
        if let Some(t) = &mut self.itlb {
            t.flush();
        }
        if let Some(t) = &mut self.dtlb {
            t.flush();
        }
    }

    /// Zeroes all counters without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.icache.reset_stats();
        if let Some(d) = &mut self.dcache {
            d.reset_stats();
        }
        if let Some(t) = &mut self.itlb {
            t.reset_stats();
        }
        if let Some(t) = &mut self.dtlb {
            t.reset_stats();
        }
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
        self.instr_cycles = 0;
        self.stall_cycles = 0;
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            icache: *self.icache.stats(),
            dcache: self
                .dcache
                .as_ref()
                .map(|d| *d.stats())
                .unwrap_or_default(),
            itlb: self.itlb.as_ref().map(|t| *t.stats()).unwrap_or_default(),
            dtlb: self.dtlb.as_ref().map(|t| *t.stats()).unwrap_or_default(),
            l2: self.l2.as_ref().map(|c| *c.stats()).unwrap_or_default(),
            instr_cycles: self.instr_cycles,
            stall_cycles: self.stall_cycles,
        }
    }

    /// Total cycles elapsed (execution + stalls).
    pub fn cycles(&self) -> CycleCount {
        self.instr_cycles + self.stall_cycles
    }

    /// Converts a cycle count to microseconds at the configured clock.
    pub fn cycles_to_us(&self, cycles: CycleCount) -> f64 {
        cycles as f64 / self.cfg.clock_mhz
    }

    /// Converts microseconds to (rounded) cycles at the configured clock.
    pub fn us_to_cycles(&self, us: f64) -> CycleCount {
        (us * self.cfg.clock_mhz).round() as CycleCount
    }

    /// Direct access to the I-cache (e.g. for warm-up or probing).
    pub fn icache(&mut self) -> &mut Cache {
        self.sync_replay();
        &mut self.icache
    }

    /// Direct access to the D-cache; `None` on unified configurations.
    pub fn dcache(&mut self) -> Option<&mut Cache> {
        self.dcache.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Region;

    #[test]
    fn presets_are_sane() {
        let dec = MachineConfig::dec3000_400();
        assert_eq!(dec.icache.size_bytes, 8192);
        assert_eq!(dec.icache.line_size, 32);
        assert_eq!(dec.read_miss_penalty, 10);
        let syn = MachineConfig::synthetic_benchmark();
        assert_eq!(syn.read_miss_penalty, 20);
        assert_eq!(syn.clock_mhz, 100.0);
    }

    #[test]
    fn code_fetch_charges_stalls() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        // 6 KB of code = 192 lines, all cold.
        let misses = m.fetch_code(Region::new(0, 6144));
        assert_eq!(misses, 192);
        assert_eq!(m.stats().stall_cycles, 192 * 20);
        // Second pass is fully warm.
        assert_eq!(m.fetch_code(Region::new(0, 6144)), 0);
    }

    #[test]
    fn split_caches_do_not_interfere() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.fetch_code(Region::new(0, 8192));
        // Same addresses as data: separate cache, so all cold.
        let misses = m.read_data(Region::new(0, 8192));
        assert_eq!(misses, 256);
        // And code is still warm.
        assert_eq!(m.fetch_code(Region::new(0, 8192)), 0);
    }

    #[test]
    fn unified_cache_shares_lines() {
        let cfg = MachineConfig {
            dcache: None,
            ..MachineConfig::synthetic_benchmark()
        };
        let mut m = Machine::new(cfg);
        m.fetch_code(Region::new(0, 32));
        assert_eq!(m.read_data(Region::new(0, 32)), 0, "unified: code fetch warmed the line");
    }

    #[test]
    fn write_misses_do_not_stall_by_default() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        let misses = m.write_data(Region::new(0, 1024));
        assert_eq!(misses, 32);
        assert_eq!(m.stats().stall_cycles, 0);
        assert_eq!(m.stats().dcache.write_misses, 32);
    }

    #[test]
    fn execute_and_time_conversion() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.execute(1652);
        assert_eq!(m.cycles(), 1652);
        assert!((m.cycles_to_us(100) - 1.0).abs() < 1e-12, "100 cycles at 100 MHz is 1 us");
        assert_eq!(m.us_to_cycles(2.5), 250);
    }

    #[test]
    fn flush_vs_reset() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.fetch_code(Region::new(0, 32));
        m.flush_caches();
        assert_eq!(m.stats().icache.misses, 1, "flush keeps stats");
        m.fetch_code(Region::new(0, 32));
        assert_eq!(m.stats().icache.misses, 2, "flushed line misses again");
        m.reset_stats();
        assert_eq!(m.stats().icache.misses, 0);
        assert_eq!(m.fetch_code(Region::new(0, 32)), 0, "reset keeps contents");
    }

    #[test]
    fn next_line_prefetch_halves_straight_line_stalls() {
        let plain = MachineConfig::synthetic_benchmark();
        let pf = plain.with_prefetch();
        let mut a = Machine::new(plain);
        let mut b = Machine::new(pf);
        // Straight-line code: every other line arrives by prefetch.
        a.fetch_code(Region::new(0, 4096));
        b.fetch_code(Region::new(0, 4096));
        assert_eq!(a.stats().stall_cycles, 128 * 20);
        assert_eq!(b.stats().stall_cycles, 64 * 20, "half the stalls");
        // Warm behaviour identical.
        a.reset_stats();
        b.reset_stats();
        a.fetch_code(Region::new(0, 4096));
        b.fetch_code(Region::new(0, 4096));
        assert_eq!(a.stats().stall_cycles, 0);
        assert_eq!(b.stats().stall_cycles, 0);
    }

    #[test]
    fn board_cache_absorbs_repeat_misses() {
        let cfg = MachineConfig::dec3000_400().with_board_cache();
        let mut m = Machine::new(cfg);
        // Cold: 30 KB misses L1 and L2 — both penalties.
        let lines = 30 * 1024 / 32;
        m.fetch_code(Region::new(0, 30 * 1024));
        assert_eq!(m.stats().l2.misses, lines);
        assert_eq!(m.stats().stall_cycles, lines * (10 + 30));
        // Evict L1 (working set > 8 KB L1, fits 512 KB L2): second pass
        // misses L1 but hits L2 — only the 10-cycle fill.
        let before = m.stats().stall_cycles;
        m.fetch_code(Region::new(0, 30 * 1024));
        let added = m.stats().stall_cycles - before;
        assert!(added < lines * 30, "L2 should absorb most fills: {added}");
        assert!(m.stats().l2.hits > 0);
        // flush_caches keeps the L2 warm; flush_all_caches does not.
        m.flush_caches();
        let before = m.stats().l2.misses;
        m.fetch_code(Region::new(0, 1024));
        assert_eq!(m.stats().l2.misses, before, "board cache still warm");
        m.flush_all_caches();
        m.fetch_code(Region::new(0, 1024));
        assert!(m.stats().l2.misses > before);
    }

    #[test]
    fn tlb_integration_charges_refills() {
        let cfg = MachineConfig::synthetic_benchmark().with_alpha_tlbs();
        let mut m = Machine::new(cfg);
        // 30 KB of code spans 4 pages: 4 ITB refills + 960 cache misses.
        m.fetch_code(Region::new(0, 30 * 1024));
        let s = m.stats();
        assert_eq!(s.itlb.misses, 4);
        assert_eq!(s.stall_cycles, 960 * 20 + 4 * 40);
        // Second pass: everything warm.
        m.fetch_code(Region::new(0, 30 * 1024));
        assert_eq!(m.stats().itlb.misses, 4);
        // Data TLB is independent.
        m.read_data(Region::new(0x100_0000, 8192));
        assert_eq!(m.stats().dtlb.misses, 1);
        m.flush_tlbs();
        m.fetch_code(Region::new(0, 32));
        assert_eq!(m.stats().itlb.misses, 5, "flushed ITB refills again");
    }

    #[test]
    fn machines_without_tlbs_report_zero() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.fetch_code(Region::new(0, 1024));
        assert_eq!(m.stats().itlb.accesses(), 0);
        assert_eq!(m.stats().dtlb.accesses(), 0);
    }

    #[test]
    fn code_density_presets() {
        assert!(MachineConfig::i386_like().code_density < 1.0);
        assert_eq!(MachineConfig::synthetic_benchmark().code_density, 1.0);
    }

    /// Drives one memoized and one per-line machine through the same
    /// interleaved footprint/data/flush schedule and asserts identical
    /// stats at every step.
    #[test]
    fn footprint_replay_is_exact() {
        let cfg = MachineConfig::synthetic_benchmark();
        let mut memo = Machine::new(cfg);
        let mut walk = Machine::new(cfg);
        // Three footprints that conflict in an 8 KB / 32 B I-cache.
        let fp: Vec<Vec<u64>> = vec![
            (0..192).collect(),                  // 6 KB at line 0
            (100..292).collect(),                // overlaps fp0, spills sets
            (256..448).collect(),                // aliases fp0 exactly
        ];
        let schedule = [0usize, 1, 2, 0, 1, 2, 0, 0, 1, 2, 1, 0, 2, 2, 0, 1];
        for (step, &f) in schedule.iter().enumerate() {
            let a = memo.fetch_code_footprint(f as u32, &fp[f]);
            let mut b = 0;
            for &line in &fp[f] {
                if !walk.fetch_code_line(line) {
                    b += 1;
                }
            }
            assert_eq!(a, b, "misses diverged at step {step}");
            assert_eq!(
                memo.stats().icache,
                walk.stats().icache,
                "icache stats diverged at step {step}"
            );
            assert_eq!(memo.cycles(), walk.cycles(), "cycles diverged at step {step}");
            // Interleave data traffic (separate cache, must not disturb).
            memo.read_data(Region::new(0x9000, 256));
            walk.read_data(Region::new(0x9000, 256));
            if step == 7 {
                memo.flush_caches();
                walk.flush_caches();
            }
            if step == 11 {
                // A raw region fetch forces the memo to materialize.
                memo.fetch_code(Region::new(50 * 32, 64));
                walk.fetch_code(Region::new(50 * 32, 64));
            }
        }
        let s = memo.replay_stats();
        assert!(s.hits > 0, "recurring schedule must produce memo hits");
        assert_eq!(walk.replay_stats().accesses(), 0);
    }

    #[test]
    fn footprint_replay_steady_state_hits() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        let fps: Vec<Vec<u64>> = (0..5).map(|i| (i * 192..(i + 1) * 192).collect()).collect();
        // 100 "messages" through a 5-layer cycle: after the first lap the
        // state sequence repeats, so all later sweeps hit the memo.
        for _ in 0..100 {
            for (fid, fp) in fps.iter().enumerate() {
                m.fetch_code_footprint(fid as u32, fp);
            }
        }
        let s = m.replay_stats();
        assert!(
            s.hit_rate() > 0.9,
            "steady-state hit rate {:.3} should approach 1",
            s.hit_rate()
        );
        assert_eq!(s.accesses(), 500);
    }

    #[test]
    fn footprint_replay_bypasses_ineligible_configs() {
        // Prefetch makes code sweeps touch more than the swept lines.
        let mut m = Machine::new(MachineConfig::synthetic_benchmark().with_prefetch());
        let fp: Vec<u64> = (0..64).collect();
        m.fetch_code_footprint(0, &fp);
        m.fetch_code_footprint(0, &fp);
        assert_eq!(m.replay_stats().hits, 0);
        // And the fetches still happened.
        assert!(m.stats().icache.fetch_misses > 0);

        // Footprint-id collisions fall back to the walk.
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        m.fetch_code_footprint(0, &fp);
        let other: Vec<u64> = (64..128).collect();
        let misses = m.fetch_code_footprint(0, &other);
        assert_eq!(misses, 64, "collision path still simulates correctly");
        assert_eq!(m.replay_stats().bypasses, 1);
    }

    #[test]
    fn footprint_replay_survives_probe_after_hit() {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        let fp: Vec<u64> = (0..32).collect();
        m.fetch_code_footprint(0, &fp);
        m.fetch_code_footprint(0, &fp); // memo hit: tag array now stale
        assert!(m.icache().probe(0), "icache() must materialize first");
        assert!(!m.icache().probe(100 * 32));
    }

    #[test]
    fn line_size_override() {
        let cfg = MachineConfig::dec3000_400().with_line_size(64);
        assert_eq!(cfg.icache.line_size, 64);
        assert_eq!(cfg.dcache.unwrap().line_size, 64);
        assert_eq!(cfg.icache.num_lines(), 128);
    }
}
