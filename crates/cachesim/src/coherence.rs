//! Shared second-level cache with a MESI-lite coherence cost model.
//!
//! The single-core experiments fold the whole miss path into one fixed
//! penalty (the paper's model). A multi-core simulation needs one more
//! level: per-core private L1s composed over a *shared, inclusive* L2
//! plus a coherence cost for mutable state that several cores touch —
//! the reassembly table, the signaling call table, and the descriptor
//! rings of inter-core hand-off queues.
//!
//! [`SharedL2`] deliberately does **not** own the per-core
//! [`Machine`](crate::Machine)s. Each core keeps a private, replay-
//! eligible machine (split L1s, no built-in L2) and the fabric is
//! layered on top: shared regions are accessed *only* through
//! [`SharedL2::read`]/[`SharedL2::write`], which simulate the L2 tag
//! array, track the last writing core per line, and charge the stall
//! cycles back to the accessing core via [`Machine::stall`]. Private
//! code and data keep going through the core's own caches with the
//! single-penalty miss path, so the existing footprint-replay memoizer
//! keeps working unchanged per core.
//!
//! The coherence model is the classic first-order cost accounting:
//! * a **read** of a line last written by another core pays a
//!   cache-to-cache `transfer` on top of the L2 lookup (the dirty line
//!   is forwarded by its owner);
//! * a **write** to a line previously written by another core pays an
//!   `invalidation` (the other copies are killed before this core gains
//!   exclusive ownership).
//!
//! Everything is deterministic: fixed costs, no timing races — the
//! event loop that drives the cores decides the access order.

use crate::cache::{AccessKind, Cache, CacheConfig};
use crate::machine::{CycleCount, Machine};
use crate::Region;

/// Geometry and fixed costs of the shared level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedL2Config {
    /// Tag geometry of the shared cache.
    pub l2: CacheConfig,
    /// Cycles for an L1-bypassing access that hits the L2.
    pub hit_cycles: CycleCount,
    /// Cycles for an access that misses the L2 (memory fill).
    pub miss_cycles: CycleCount,
    /// Extra cycles when a read hits a line last written by another core
    /// (dirty cache-to-cache transfer).
    pub transfer_cycles: CycleCount,
    /// Extra cycles when a write must invalidate another core's copy.
    pub invalidate_cycles: CycleCount,
}

impl SharedL2Config {
    /// The default fabric used by the SMP experiments: 256 KB 4-way
    /// shared L2 with 32-byte lines; 20-cycle L2 hit (same order as the
    /// paper's primary-miss penalty), 100-cycle memory fill, 40-cycle
    /// dirty transfer, 20-cycle invalidation.
    pub fn smp_default() -> Self {
        SharedL2Config {
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_size: 32,
                associativity: 4,
            },
            hit_cycles: 20,
            miss_cycles: 100,
            transfer_cycles: 40,
            invalidate_cycles: 20,
        }
    }
}

/// Counters for the shared level, accumulated since construction or the
/// last [`SharedL2::reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Read accesses (region granularity).
    pub reads: u64,
    /// Write accesses (region granularity).
    pub writes: u64,
    /// Line lookups that hit the shared cache.
    pub l2_hits: u64,
    /// Line lookups that missed to memory.
    pub l2_misses: u64,
    /// Dirty cache-to-cache transfers (read of another core's line).
    pub transfers: u64,
    /// Invalidations (write to a line another core wrote).
    pub invalidations: u64,
    /// Total stall cycles charged to cores by the fabric.
    pub stall_cycles: CycleCount,
}

impl CoherenceStats {
    /// Coherence events per message-ish unit: transfers + invalidations.
    pub fn coherence_events(&self) -> u64 {
        self.transfers + self.invalidations
    }
}

/// Lines per directory page: 8 KB of address space at 32-byte lines.
const OWNER_PAGE_LINES: u64 = 256;

/// Directory byte meaning "never written".
const NO_OWNER: u8 = u8::MAX;

/// Last-writer directory in a paged structure-of-arrays layout: a sorted
/// page list parallel to flat 256-byte owner chunks, instead of one
/// B-tree node chase per line. Shared regions cluster into a handful of
/// pages (reassembly table, call table, descriptor windows), so a
/// one-entry page cache catches almost every lookup and the sorted page
/// list keeps the layout deterministic.
#[derive(Debug, Clone, Default)]
struct OwnerDir {
    /// Sorted page numbers (line >> 8), parallel to `chunks`.
    pages: Vec<u64>,
    /// Per-page owner bytes, `NO_OWNER`-filled until written.
    chunks: Vec<[u8; OWNER_PAGE_LINES as usize]>,
    /// Index of the last page touched (one-entry lookup cache).
    last: usize,
}

impl OwnerDir {
    /// Index of `page` in the sorted list, fast-pathing the last hit.
    fn find(&mut self, page: u64) -> Option<usize> {
        if self.pages.get(self.last) == Some(&page) {
            return Some(self.last);
        }
        let i = self.pages.binary_search(&page).ok()?;
        self.last = i;
        Some(i)
    }

    /// Last writer of `line`, if any.
    fn get(&mut self, line: u64) -> Option<u8> {
        let i = self.find(line / OWNER_PAGE_LINES)?;
        let owner = self
            .chunks
            .get(i)
            .map_or(NO_OWNER, |c| c[(line % OWNER_PAGE_LINES) as usize]);
        (owner != NO_OWNER).then_some(owner)
    }

    /// Records `core` as `line`'s writer, returning the previous owner.
    fn swap(&mut self, line: u64, core: u8) -> Option<u8> {
        debug_assert_ne!(core, NO_OWNER);
        let page = line / OWNER_PAGE_LINES;
        let i = match self.find(page) {
            Some(i) => i,
            None => {
                let i = self.pages.partition_point(|&p| p < page);
                // analyze::allow(alloc-path, reason = "owner-directory entry is allocated on first touch of a page; steady state updates in place")
                self.pages.insert(i, page);
                self.chunks
                    // analyze::allow(alloc-path, reason = "owner-directory entry is allocated on first touch of a page; steady state updates in place")
                    .insert(i, [NO_OWNER; OWNER_PAGE_LINES as usize]);
                self.last = i;
                i
            }
        };
        let slot = self
            .chunks
            .get_mut(i)
            .map(|c| &mut c[(line % OWNER_PAGE_LINES) as usize]);
        let prev = slot.map_or(NO_OWNER, |s| std::mem::replace(s, core));
        (prev != NO_OWNER).then_some(prev)
    }
}

/// A shared, inclusive second-level cache plus last-writer directory.
#[derive(Debug, Clone)]
pub struct SharedL2 {
    cfg: SharedL2Config,
    l2: Cache,
    /// Last core to write each line; absent means never written (or
    /// only read so far).
    owners: OwnerDir,
    line_shift: u32,
    stats: CoherenceStats,
}

impl SharedL2 {
    /// Builds an empty shared level.
    pub fn new(cfg: SharedL2Config) -> Self {
        assert!(cfg.l2.line_size.is_power_of_two());
        SharedL2 {
            l2: Cache::new(cfg.l2),
            owners: OwnerDir::default(),
            line_shift: cfg.l2.line_size.trailing_zeros(),
            stats: CoherenceStats::default(),
            cfg,
        }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &SharedL2Config {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// Clears the counters (the directory and tags stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = CoherenceStats::default();
    }

    /// `core` reads every line of `region` through the shared level;
    /// the stall cycles are charged to `machine` (the reader's core).
    /// Returns the cycles charged.
    pub fn read(&mut self, core: u8, region: Region, machine: &mut Machine) -> CycleCount {
        self.stats.reads += 1;
        let mut stall = 0;
        for addr in region.line_addrs(self.cfg.l2.line_size) {
            let line = addr >> self.line_shift;
            stall += self.lookup(line, AccessKind::Read);
            if let Some(owner) = self.owners.get(line) {
                if owner != core {
                    self.stats.transfers += 1;
                    stall += self.cfg.transfer_cycles;
                }
            }
        }
        machine.stall(stall);
        self.stats.stall_cycles += stall;
        stall
    }

    /// `core` writes every line of `region` through the shared level,
    /// invalidating other cores' copies and taking ownership; the stall
    /// cycles are charged to `machine`. Returns the cycles charged.
    pub fn write(&mut self, core: u8, region: Region, machine: &mut Machine) -> CycleCount {
        self.stats.writes += 1;
        let mut stall = 0;
        for addr in region.line_addrs(self.cfg.l2.line_size) {
            let line = addr >> self.line_shift;
            stall += self.lookup(line, AccessKind::Write);
            match self.owners.swap(line, core) {
                Some(prev) if prev != core => {
                    self.stats.invalidations += 1;
                    stall += self.cfg.invalidate_cycles;
                }
                _ => {}
            }
        }
        machine.stall(stall);
        self.stats.stall_cycles += stall;
        stall
    }

    fn lookup(&mut self, line: u64, kind: AccessKind) -> CycleCount {
        if self.l2.access_line(line, kind) {
            self.stats.l2_hits += 1;
            self.cfg.hit_cycles
        } else {
            self.stats.l2_misses += 1;
            self.cfg.miss_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::synthetic_benchmark())
    }

    fn line_region(line: u64) -> Region {
        Region::new(line * 32, 32)
    }

    #[test]
    fn cold_read_pays_the_memory_fill() {
        let mut l2 = SharedL2::new(SharedL2Config::smp_default());
        let mut m = machine();
        let before = m.cycles();
        let charged = l2.read(0, line_region(7), &mut m);
        assert_eq!(charged, l2.config().miss_cycles);
        assert_eq!(m.cycles() - before, charged, "stall billed to the core");
        assert_eq!(l2.stats().l2_misses, 1);

        // Warm re-read by the same core: an L2 hit, no coherence cost.
        let charged = l2.read(0, line_region(7), &mut m);
        assert_eq!(charged, l2.config().hit_cycles);
        assert_eq!(l2.stats().transfers, 0);
    }

    #[test]
    fn cross_core_read_after_write_is_a_transfer() {
        let mut l2 = SharedL2::new(SharedL2Config::smp_default());
        let mut m0 = machine();
        let mut m1 = machine();
        l2.write(0, line_region(3), &mut m0);
        let charged = l2.read(1, line_region(3), &mut m1);
        assert_eq!(charged, l2.config().hit_cycles + l2.config().transfer_cycles);
        assert_eq!(l2.stats().transfers, 1);

        // The owner's own re-read is free of coherence cost.
        let charged = l2.read(0, line_region(3), &mut m0);
        assert_eq!(charged, l2.config().hit_cycles);
        assert_eq!(l2.stats().transfers, 1);
    }

    #[test]
    fn cross_core_write_invalidates() {
        let mut l2 = SharedL2::new(SharedL2Config::smp_default());
        let mut m0 = machine();
        let mut m1 = machine();
        l2.write(0, line_region(3), &mut m0);
        let charged = l2.write(1, line_region(3), &mut m1);
        assert_eq!(charged, l2.config().hit_cycles + l2.config().invalidate_cycles);
        assert_eq!(l2.stats().invalidations, 1);
        // Ownership moved: core 1 now re-writes without invalidating.
        let charged = l2.write(1, line_region(3), &mut m1);
        assert_eq!(charged, l2.config().hit_cycles);
        assert_eq!(l2.stats().invalidations, 1);
    }

    #[test]
    fn ping_pong_counts_every_bounce() {
        let mut l2 = SharedL2::new(SharedL2Config::smp_default());
        let mut m0 = machine();
        let mut m1 = machine();
        for _ in 0..10 {
            l2.write(0, line_region(5), &mut m0);
            l2.write(1, line_region(5), &mut m1);
        }
        assert_eq!(l2.stats().invalidations, 19, "every ownership flip after the first");
        assert!(l2.stats().stall_cycles > 0);
    }

    #[test]
    fn multi_line_regions_charge_per_line() {
        let mut l2 = SharedL2::new(SharedL2Config::smp_default());
        let mut m = machine();
        // 4 lines cold: 4 memory fills.
        let charged = l2.read(0, Region::new(0x1000, 128), &mut m);
        assert_eq!(charged, 4 * l2.config().miss_cycles);
        assert_eq!(l2.stats().l2_misses, 4);
    }

    #[test]
    fn fabric_does_not_disturb_the_private_replay_memoizer() {
        // A core that interleaves memoized code fetches with shared-state
        // accesses must see identical miss counts to one that never
        // touches the fabric: the L1s and the shared level are disjoint.
        let lines: Vec<u64> = (0x100..0x110).collect();
        let mut plain = machine();
        let mut a = plain.fetch_code_footprint(1, &lines);
        a += plain.fetch_code_footprint(1, &lines);

        let mut shared = SharedL2::new(SharedL2Config::smp_default());
        let mut composed = machine();
        let mut b = composed.fetch_code_footprint(1, &lines);
        shared.read(0, line_region(0x9000), &mut composed);
        shared.write(0, line_region(0x9000), &mut composed);
        b += composed.fetch_code_footprint(1, &lines);

        assert_eq!(a, b, "shared-level traffic must not perturb L1 behaviour");
        assert_eq!(plain.replay_stats().hits, composed.replay_stats().hits);
    }
}
