//! A set-associative cache model with LRU replacement.
//!
//! The model tracks only tags (no contents): the simulators care about hit
//! or miss, never about the data itself. Direct-mapped caches — the paper's
//! configuration — are the 1-way special case and take a fast path with no
//! LRU bookkeeping.
//!
//! The tag store is one flat `Box<[u64]>` (structure-of-arrays), not a
//! `Vec` of per-set `Vec`s: every access is a single indexed load from one
//! contiguous allocation, the direct-mapped sweep loop vectorizes, and
//! exporting a state for the replay memo (see [`crate::replay`]) is a
//! plain `clone` of the slice.

use crate::addr::Addr;

/// The kind of memory reference, used for statistics attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (goes to the I-cache on split configurations).
    InstrFetch,
    /// Data load.
    Read,
    /// Data store (write-allocate).
    Write,
}

/// Static geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `line_size * associativity`.
    pub size_bytes: u64,
    /// Line (block) size in bytes. Must be a power of two.
    pub line_size: u64,
    /// Number of ways per set; 1 means direct-mapped.
    pub associativity: u32,
}

impl CacheConfig {
    /// A direct-mapped cache of `size_bytes` with `line_size`-byte lines.
    pub const fn direct_mapped(size_bytes: u64, line_size: u64) -> Self {
        CacheConfig {
            size_bytes,
            line_size,
            associativity: 1,
        }
    }

    /// Number of sets implied by the geometry.
    pub const fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_size * self.associativity as u64)
    }

    /// Number of lines the cache can hold.
    pub const fn num_lines(&self) -> u64 {
        // analyze::allow(panic-path, reason = "cache geometry (line size, set count) is validated nonzero at configuration")
        self.size_bytes / self.line_size
    }

    fn validate(&self) {
        assert!(self.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(self.associativity >= 1, "associativity must be at least 1");
        assert!(
            self.size_bytes
                .is_multiple_of(self.line_size * self.associativity as u64),
            "cache size must be a multiple of line_size * associativity"
        );
        assert!(self.num_sets() >= 1, "cache must have at least one set");
    }
}

/// Hit/miss counters, broken down by access kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub read_misses: u64,
    pub write_misses: u64,
    pub fetch_misses: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses that missed; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.fetch_misses += other.fetch_misses;
    }
}

/// The tag value of an invalid (empty) way. Line numbers never reach it:
/// that would require a byte address above 2^64.
const INVALID: u64 = u64::MAX;

/// A tag-only set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set * ways + way]` holds the line number (`addr / line_size`)
    /// cached in that way, or [`INVALID`] for an empty way. Ways are kept
    /// in LRU order: way 0 is most recently used.
    tags: Box<[u64]>,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
    /// Whether `num_sets` is a power of two (mask indexing vs modulo).
    pow2_sets: bool,
    ways: usize,
}

impl Cache {
    /// Builds an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let num_sets = cfg.num_sets();
        let ways = cfg.associativity as usize;
        Cache {
            tags: vec![INVALID; (num_sets as usize) * ways].into_boxed_slice(),
            stats: CacheStats::default(),
            line_shift: cfg.line_size.trailing_zeros(),
            set_mask: num_sets - 1,
            pow2_sets: num_sets.is_power_of_two(),
            ways,
            cfg,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated since construction or the last [`Cache::reset_stats`].
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the hit/miss counters without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line (cold cache) without touching the counters.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        if self.pow2_sets {
            (line & self.set_mask) as usize
        } else {
            // analyze::allow(panic-path, reason = "cache geometry (line size, set count) is validated nonzero at configuration")
            (line % self.cfg.num_sets()) as usize
        }
    }

    /// Touches the single line containing `addr`; returns `true` on hit.
    ///
    /// On a miss the line is brought in, evicting the LRU way of its set.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> bool {
        let line = addr >> self.line_shift;
        self.access_line(line, kind)
    }

    /// Touches a line identified by its line number (`addr / line_size`).
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> bool {
        let set_idx = self.set_index(line);

        // Fast path for direct-mapped caches: a set is a single way.
        if self.ways == 1 {
            // analyze::allow(panic-free-library, reason = "set_index is always < num_sets == tags.len() for 1-way geometry")
            let slot = &mut self.tags[set_idx];
            let hit = *slot == line;
            if hit {
                self.stats.hits += 1;
            } else {
                *slot = line;
                self.record_miss(kind);
            }
            return hit;
        }

        let base = set_idx * self.ways;
        // analyze::allow(panic-free-library, reason = "base + ways <= tags.len() by construction of the flat tag array")
        let set = &mut self.tags[base..base + self.ways];
        if let Some(pos) = set.iter().position(|&w| w == line) {
            // Hit: rotate to the MRU position.
            // analyze::allow(panic-path, reason = "pos was found by iterating this same way list just above")
            set[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            // Miss: evict LRU (last), insert at MRU.
            set.rotate_right(1);
            if let Some(mru) = set.first_mut() {
                *mru = line;
            }
            self.record_miss(kind);
            false
        }
    }

    /// Touches every line overlapping `[addr, addr + size)`; returns the
    /// number of misses incurred.
    pub fn access_range(&mut self, addr: Addr, size: u64, kind: AccessKind) -> u64 {
        if size == 0 {
            return 0;
        }
        let first = addr >> self.line_shift;
        let last = (addr + size - 1) >> self.line_shift;
        // Direct-mapped sweep: one flat compare-and-store per line, with
        // the per-line counter updates folded into two bulk adds.
        if self.ways == 1 && self.pow2_sets {
            let mask = self.set_mask;
            let mut misses = 0u64;
            for line in first..=last {
                // analyze::allow(panic-free-library, reason = "mask keeps the index < num_sets == tags.len()")
                let slot = &mut self.tags[(line & mask) as usize];
                if *slot != line {
                    *slot = line;
                    misses += 1;
                }
            }
            let total = last - first + 1;
            self.record_bulk(total - misses, misses, kind);
            return misses;
        }
        let mut misses = 0;
        for line in first..=last {
            if !self.access_line(line, kind) {
                misses += 1;
            }
        }
        misses
    }

    /// The flattened tag array for the replay memo: one `u64` per way,
    /// sets in order, ways MRU-first, invalid ways as `u64::MAX`.
    pub(crate) fn export_tags(&self) -> &[u64] {
        &self.tags
    }

    /// Restores a tag array captured by [`Cache::export_tags`]. Counters
    /// are untouched.
    pub(crate) fn import_tags(&mut self, tags: &[u64]) {
        debug_assert_eq!(tags.len(), self.tags.len());
        self.tags.copy_from_slice(tags);
    }

    /// Adds the aggregate outcome of a memoized sweep to the counters,
    /// exactly as the equivalent per-line [`Cache::access_line`] calls
    /// would have.
    pub(crate) fn record_bulk(&mut self, hits: u64, misses: u64, kind: AccessKind) {
        self.stats.hits += hits;
        self.stats.misses += misses;
        match kind {
            AccessKind::InstrFetch => self.stats.fetch_misses += misses,
            AccessKind::Read => self.stats.read_misses += misses,
            AccessKind::Write => self.stats.write_misses += misses,
        }
    }

    /// Whether the line containing `addr` is currently resident (no
    /// side effects, no stats update).
    pub fn probe(&self, addr: Addr) -> bool {
        let line = addr >> self.line_shift;
        let base = self.set_index(line) * self.ways;
        // analyze::allow(panic-path, reason = "tag SoA is sized sets*ways; base comes from a masked set index")
        self.tags[base..base + self.ways].contains(&line)
    }

    fn record_miss(&mut self, kind: AccessKind) {
        self.stats.misses += 1;
        match kind {
            AccessKind::InstrFetch => self.stats.fetch_misses += 1,
            AccessKind::Read => self.stats.read_misses += 1,
            AccessKind::Write => self.stats.write_misses += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_8k() -> Cache {
        Cache::new(CacheConfig::direct_mapped(8192, 32))
    }

    #[test]
    fn geometry() {
        let cfg = CacheConfig::direct_mapped(8192, 32);
        assert_eq!(cfg.num_sets(), 256);
        assert_eq!(cfg.num_lines(), 256);
        let cfg = CacheConfig {
            size_bytes: 8192,
            line_size: 32,
            associativity: 2,
        };
        assert_eq!(cfg.num_sets(), 128);
        assert_eq!(cfg.num_lines(), 256);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = dm_8k();
        assert!(!c.access(0x1000, AccessKind::Read));
        assert!(c.access(0x1000, AccessKind::Read));
        assert!(c.access(0x101f, AccessKind::Read), "same 32-byte line");
        assert!(!c.access(0x1020, AccessKind::Read), "next line is cold");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = dm_8k();
        // 0x0 and 0x2000 (8 KB apart) map to the same set in an 8 KB DM cache.
        assert!(!c.access(0x0, AccessKind::Read));
        assert!(!c.access(0x2000, AccessKind::Read));
        assert!(!c.access(0x0, AccessKind::Read), "evicted by the conflict");
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn two_way_avoids_conflict() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 8192,
            line_size: 32,
            associativity: 2,
        });
        assert!(!c.access(0x0, AccessKind::Read));
        assert!(!c.access(0x2000, AccessKind::Read));
        assert!(c.access(0x0, AccessKind::Read), "both fit in a 2-way set");
        assert!(c.access(0x2000, AccessKind::Read));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_size: 32,
            associativity: 2,
        });
        // Two sets; lines 0, 2, 4 all map to set 0.
        c.access_line(0, AccessKind::Read);
        c.access_line(2, AccessKind::Read);
        c.access_line(0, AccessKind::Read); // make line 0 MRU
        c.access_line(4, AccessKind::Read); // must evict line 2 (LRU)
        assert!(c.probe(0));
        assert!(!c.probe(2 * 32));
        assert!(c.probe(4 * 32));
    }

    #[test]
    fn four_way_lru_rotation_is_exact() {
        // Reference-check the rotate-based LRU against the textbook
        // remove/insert formulation on a dense access pattern.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 512,
            line_size: 32,
            associativity: 4,
        });
        // 4 sets x 4 ways; lines k, k+4, k+8, ... map to set k.
        let pattern = [0u64, 4, 8, 12, 0, 16, 4, 20, 8, 0, 12, 16, 20, 4];
        let mut model: Vec<u64> = Vec::new(); // MRU-first model of set 0
        let mut expect_hits = 0u64;
        for &line in &pattern {
            let hit = c.access_line(line, AccessKind::Read);
            if let Some(pos) = model.iter().position(|&l| l == line) {
                model.remove(pos);
                model.insert(0, line);
                expect_hits += 1;
                assert!(hit, "model says hit for line {line}");
            } else {
                if model.len() == 4 {
                    model.pop();
                }
                model.insert(0, line);
                assert!(!hit, "model says miss for line {line}");
            }
        }
        assert_eq!(c.stats().hits, expect_hits);
        for &l in &model {
            assert!(c.probe(l * 32), "line {l} should be resident");
        }
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = dm_8k();
        // 100 bytes starting at 10 spans lines 0..=3 (4 lines).
        assert_eq!(c.access_range(10, 100, AccessKind::Read), 4);
        assert_eq!(c.access_range(10, 100, AccessKind::Read), 0);
        assert_eq!(c.access_range(0, 0, AccessKind::Read), 0);
    }

    #[test]
    fn access_range_matches_per_line_walk() {
        // The bulk direct-mapped sweep must agree with access_line calls
        // on both the return value and every counter.
        let mut bulk = dm_8k();
        let mut walk = dm_8k();
        for (base, size) in [(10u64, 100u64), (0, 8192), (4096, 8192), (100, 1)] {
            let m = bulk.access_range(base, size, AccessKind::Write);
            let first = base >> 5;
            let last = (base + size - 1) >> 5;
            let mut w = 0;
            for line in first..=last {
                if !walk.access_line(line, AccessKind::Write) {
                    w += 1;
                }
            }
            assert_eq!(m, w);
            assert_eq!(bulk.stats(), walk.stats());
        }
    }

    #[test]
    fn flush_makes_cold_but_keeps_stats() {
        let mut c = dm_8k();
        c.access(0x40, AccessKind::InstrFetch);
        c.flush();
        assert_eq!(c.stats().misses, 1);
        assert!(!c.access(0x40, AccessKind::InstrFetch));
        assert_eq!(c.stats().fetch_misses, 2);
    }

    #[test]
    fn miss_kind_attribution() {
        let mut c = dm_8k();
        c.access(0x00, AccessKind::InstrFetch);
        c.access(0x40, AccessKind::Read);
        c.access(0x80, AccessKind::Write);
        let s = c.stats();
        assert_eq!(s.fetch_misses, 1);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn probe_has_no_side_effects() {
        let c = dm_8k();
        assert!(!c.probe(0x1234));
    }

    #[test]
    fn miss_rate() {
        let mut c = dm_8k();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0x0, AccessKind::Read);
        c.access(0x0, AccessKind::Read);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
