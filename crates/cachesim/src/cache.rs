//! A set-associative cache model with LRU replacement.
//!
//! The model tracks only tags (no contents): the simulators care about hit
//! or miss, never about the data itself. Direct-mapped caches — the paper's
//! configuration — are the 1-way special case and take a fast path with no
//! LRU bookkeeping.

use crate::addr::Addr;

/// The kind of memory reference, used for statistics attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (goes to the I-cache on split configurations).
    InstrFetch,
    /// Data load.
    Read,
    /// Data store (write-allocate).
    Write,
}

/// Static geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `line_size * associativity`.
    pub size_bytes: u64,
    /// Line (block) size in bytes. Must be a power of two.
    pub line_size: u64,
    /// Number of ways per set; 1 means direct-mapped.
    pub associativity: u32,
}

impl CacheConfig {
    /// A direct-mapped cache of `size_bytes` with `line_size`-byte lines.
    pub const fn direct_mapped(size_bytes: u64, line_size: u64) -> Self {
        CacheConfig {
            size_bytes,
            line_size,
            associativity: 1,
        }
    }

    /// Number of sets implied by the geometry.
    pub const fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_size * self.associativity as u64)
    }

    /// Number of lines the cache can hold.
    pub const fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_size
    }

    fn validate(&self) {
        assert!(self.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(self.associativity >= 1, "associativity must be at least 1");
        assert!(
            self.size_bytes
                .is_multiple_of(self.line_size * self.associativity as u64),
            "cache size must be a multiple of line_size * associativity"
        );
        assert!(self.num_sets() >= 1, "cache must have at least one set");
    }
}

/// Hit/miss counters, broken down by access kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub read_misses: u64,
    pub write_misses: u64,
    pub fetch_misses: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses that missed; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.fetch_misses += other.fetch_misses;
    }
}

/// A tag-only set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[set][way]` holds the line number (`addr / line_size`) cached in
    /// that way, or `None` for an invalid way. Ways are kept in LRU order:
    /// index 0 is most recently used.
    sets: Vec<Vec<Option<u64>>>,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let num_sets = cfg.num_sets();
        Cache {
            sets: vec![vec![None; cfg.associativity as usize]; num_sets as usize],
            stats: CacheStats::default(),
            line_shift: cfg.line_size.trailing_zeros(),
            set_mask: num_sets - 1,
            cfg,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated since construction or the last [`Cache::reset_stats`].
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the hit/miss counters without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line (cold cache) without touching the counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = None;
            }
        }
    }

    fn set_index(&self, line: u64) -> usize {
        if self.set_mask + 1 == self.cfg.num_sets() && (self.set_mask + 1).is_power_of_two() {
            (line & self.set_mask) as usize
        } else {
            (line % self.cfg.num_sets()) as usize
        }
    }

    /// Touches the single line containing `addr`; returns `true` on hit.
    ///
    /// On a miss the line is brought in, evicting the LRU way of its set.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> bool {
        let line = addr >> self.line_shift;
        self.access_line(line, kind)
    }

    /// Touches a line identified by its line number (`addr / line_size`).
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> bool {
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];

        // Fast path for direct-mapped caches: a set is a single way.
        if set.len() == 1 {
            // analyze::allow(panic-free-library, reason = "direct-mapped fast path: set.len() == 1 checked on the line above")
            let hit = set[0] == Some(line);
            if hit {
                self.stats.hits += 1;
            } else {
                // analyze::allow(panic-free-library, reason = "direct-mapped fast path: set.len() == 1 checked above")
                set[0] = Some(line);
                self.record_miss(kind);
            }
            return hit;
        }

        if let Some(pos) = set.iter().position(|w| *w == Some(line)) {
            // Hit: move to MRU position.
            let way = set.remove(pos);
            set.insert(0, way);
            self.stats.hits += 1;
            true
        } else {
            // Miss: evict LRU (last), insert at MRU.
            set.pop();
            set.insert(0, Some(line));
            self.record_miss(kind);
            false
        }
    }

    /// Touches every line overlapping `[addr, addr + size)`; returns the
    /// number of misses incurred.
    pub fn access_range(&mut self, addr: Addr, size: u64, kind: AccessKind) -> u64 {
        if size == 0 {
            return 0;
        }
        let first = addr >> self.line_shift;
        let last = (addr + size - 1) >> self.line_shift;
        let mut misses = 0;
        for line in first..=last {
            if !self.access_line(line, kind) {
                misses += 1;
            }
        }
        misses
    }

    /// Flattens the tag array for the replay memo: one `u64` per way,
    /// sets in order, ways MRU-first, invalid ways as `u64::MAX`.
    pub(crate) fn export_tags(&self) -> Box<[u64]> {
        let ways = self.cfg.associativity as usize;
        let mut out = Vec::with_capacity(self.sets.len() * ways);
        for set in &self.sets {
            for way in set {
                out.push(way.unwrap_or(u64::MAX));
            }
        }
        out.into_boxed_slice()
    }

    /// Restores a tag array captured by [`Cache::export_tags`]. Counters
    /// are untouched.
    pub(crate) fn import_tags(&mut self, tags: &[u64]) {
        let ways = self.cfg.associativity as usize;
        debug_assert_eq!(tags.len(), self.sets.len() * ways);
        for (si, set) in self.sets.iter_mut().enumerate() {
            for (wi, way) in set.iter_mut().enumerate() {
                let tag = tags[si * ways + wi];
                *way = if tag == u64::MAX { None } else { Some(tag) };
            }
        }
    }

    /// Adds the aggregate outcome of a memoized sweep to the counters,
    /// exactly as the equivalent per-line [`Cache::access_line`] calls
    /// would have.
    pub(crate) fn record_bulk(&mut self, hits: u64, misses: u64, kind: AccessKind) {
        self.stats.hits += hits;
        self.stats.misses += misses;
        match kind {
            AccessKind::InstrFetch => self.stats.fetch_misses += misses,
            AccessKind::Read => self.stats.read_misses += misses,
            AccessKind::Write => self.stats.write_misses += misses,
        }
    }

    /// Whether the line containing `addr` is currently resident (no
    /// side effects, no stats update).
    pub fn probe(&self, addr: Addr) -> bool {
        let line = addr >> self.line_shift;
        let set = &self.sets[self.set_index(line)];
        set.contains(&Some(line))
    }

    fn record_miss(&mut self, kind: AccessKind) {
        self.stats.misses += 1;
        match kind {
            AccessKind::InstrFetch => self.stats.fetch_misses += 1,
            AccessKind::Read => self.stats.read_misses += 1,
            AccessKind::Write => self.stats.write_misses += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_8k() -> Cache {
        Cache::new(CacheConfig::direct_mapped(8192, 32))
    }

    #[test]
    fn geometry() {
        let cfg = CacheConfig::direct_mapped(8192, 32);
        assert_eq!(cfg.num_sets(), 256);
        assert_eq!(cfg.num_lines(), 256);
        let cfg = CacheConfig {
            size_bytes: 8192,
            line_size: 32,
            associativity: 2,
        };
        assert_eq!(cfg.num_sets(), 128);
        assert_eq!(cfg.num_lines(), 256);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = dm_8k();
        assert!(!c.access(0x1000, AccessKind::Read));
        assert!(c.access(0x1000, AccessKind::Read));
        assert!(c.access(0x101f, AccessKind::Read), "same 32-byte line");
        assert!(!c.access(0x1020, AccessKind::Read), "next line is cold");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = dm_8k();
        // 0x0 and 0x2000 (8 KB apart) map to the same set in an 8 KB DM cache.
        assert!(!c.access(0x0, AccessKind::Read));
        assert!(!c.access(0x2000, AccessKind::Read));
        assert!(!c.access(0x0, AccessKind::Read), "evicted by the conflict");
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn two_way_avoids_conflict() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 8192,
            line_size: 32,
            associativity: 2,
        });
        assert!(!c.access(0x0, AccessKind::Read));
        assert!(!c.access(0x2000, AccessKind::Read));
        assert!(c.access(0x0, AccessKind::Read), "both fit in a 2-way set");
        assert!(c.access(0x2000, AccessKind::Read));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_size: 32,
            associativity: 2,
        });
        // Two sets; lines 0, 2, 4 all map to set 0.
        c.access_line(0, AccessKind::Read);
        c.access_line(2, AccessKind::Read);
        c.access_line(0, AccessKind::Read); // make line 0 MRU
        c.access_line(4, AccessKind::Read); // must evict line 2 (LRU)
        assert!(c.probe(0));
        assert!(!c.probe(2 * 32));
        assert!(c.probe(4 * 32));
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = dm_8k();
        // 100 bytes starting at 10 spans lines 0..=3 (4 lines).
        assert_eq!(c.access_range(10, 100, AccessKind::Read), 4);
        assert_eq!(c.access_range(10, 100, AccessKind::Read), 0);
        assert_eq!(c.access_range(0, 0, AccessKind::Read), 0);
    }

    #[test]
    fn flush_makes_cold_but_keeps_stats() {
        let mut c = dm_8k();
        c.access(0x40, AccessKind::InstrFetch);
        c.flush();
        assert_eq!(c.stats().misses, 1);
        assert!(!c.access(0x40, AccessKind::InstrFetch));
        assert_eq!(c.stats().fetch_misses, 2);
    }

    #[test]
    fn miss_kind_attribution() {
        let mut c = dm_8k();
        c.access(0x00, AccessKind::InstrFetch);
        c.access(0x40, AccessKind::Read);
        c.access(0x80, AccessKind::Write);
        let s = c.stats();
        assert_eq!(s.fetch_misses, 1);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn probe_has_no_side_effects() {
        let c = dm_8k();
        assert!(!c.probe(0x1234));
    }

    #[test]
    fn miss_rate() {
        let mut c = dm_8k();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0x0, AccessKind::Read);
        c.access(0x0, AccessKind::Read);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
