//! Flat 64-bit address space helpers.
//!
//! Everything in the simulators lives in one flat address space. Code
//! segments, per-layer read-only data, and message buffers are all assigned
//! [`Region`]s by an allocator (sequential or randomly placed — see
//! [`crate::placement`]), and cache behaviour follows purely from the
//! addresses.

/// A byte address in the simulated flat address space.
pub type Addr = u64;

/// A contiguous byte range `[base, base + len)` in the simulated address
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First byte of the region.
    pub base: Addr,
    /// Length in bytes. A zero-length region contains no addresses.
    pub len: u64,
}

impl Region {
    /// Creates a region starting at `base` spanning `len` bytes.
    pub const fn new(base: Addr, len: u64) -> Self {
        Region { base, len }
    }

    /// One past the last byte of the region.
    pub const fn end(&self) -> Addr {
        self.base + self.len
    }

    /// Whether `addr` falls inside the region.
    pub const fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Whether the two regions share at least one byte.
    pub const fn overlaps(&self, other: &Region) -> bool {
        self.base < other.end() && other.base < self.end()
    }

    /// The number of cache lines of size `line_size` the region touches.
    ///
    /// This is the paper's working-set metric: referencing any byte of a
    /// line brings the whole line into the working set.
    pub fn lines(&self, line_size: u64) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.base / line_size;
        let last = (self.end() - 1) / line_size;
        last - first + 1
    }

    /// Iterates over the line-aligned addresses of every cache line the
    /// region touches.
    pub fn line_addrs(&self, line_size: u64) -> impl Iterator<Item = Addr> + '_ {
        let first = if self.len == 0 {
            1
        } else {
            // analyze::allow(panic-path, reason = "line_size is a validated nonzero cache-geometry parameter")
            self.base / line_size
        };
        let last = if self.len == 0 {
            0
        } else {
            // analyze::allow(panic-path, reason = "line_size is a validated nonzero cache-geometry parameter")
            (self.end() - 1) / line_size
        };
        (first..=last).map(move |l| l * line_size)
    }
}

/// Rounds `addr` down to a multiple of `align` (must be a power of two).
pub const fn align_down(addr: Addr, align: u64) -> Addr {
    addr & !(align - 1)
}

/// Rounds `addr` up to a multiple of `align` (must be a power of two).
pub const fn align_up(addr: Addr, align: u64) -> Addr {
    (addr + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_end_and_contains() {
        let r = Region::new(100, 50);
        assert_eq!(r.end(), 150);
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
        assert!(!r.contains(99));
    }

    #[test]
    fn empty_region_contains_nothing() {
        let r = Region::new(64, 0);
        assert!(!r.contains(64));
        assert_eq!(r.lines(32), 0);
        assert_eq!(r.line_addrs(32).count(), 0);
    }

    #[test]
    fn line_count_unaligned() {
        // Bytes 30..=33 straddle the 32-byte line boundary: two lines.
        let r = Region::new(30, 4);
        assert_eq!(r.lines(32), 2);
        // A single byte is one line.
        assert_eq!(Region::new(31, 1).lines(32), 1);
        // Exactly one aligned line.
        assert_eq!(Region::new(32, 32).lines(32), 1);
        // One byte past an aligned line adds a line.
        assert_eq!(Region::new(32, 33).lines(32), 2);
    }

    #[test]
    fn line_addrs_match_lines() {
        let r = Region::new(10, 100);
        let addrs: Vec<Addr> = r.line_addrs(32).collect();
        assert_eq!(addrs.len() as u64, r.lines(32));
        assert_eq!(addrs[0], 0);
        assert_eq!(*addrs.last().unwrap(), 96);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 32);
        }
    }

    #[test]
    fn overlap_detection() {
        let a = Region::new(0, 10);
        let b = Region::new(9, 5);
        let c = Region::new(10, 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(align_down(33, 32), 32);
        assert_eq!(align_down(32, 32), 32);
        assert_eq!(align_up(33, 32), 64);
        assert_eq!(align_up(32, 32), 32);
        assert_eq!(align_up(0, 32), 0);
    }
}
