//! Memoized replay of recurring cache sweeps.
//!
//! The layer engines sweep the same code footprints and data regions over
//! the primary caches millions of times per simulated second, and the
//! resulting misses are a pure function of (sweep, cache-and-TLB state
//! before it): a set-associative LRU cache has no other inputs, and
//! neither does a fully-associative LRU TLB. This module exploits that by
//! interning whole tag states — the cache's flattened tag array
//! concatenated with the TLB's entry list, when one is configured — and
//! recording, per `(state, footprint)` pair, the complete outcome: the
//! hit/miss/stall deltas and the successor state. Once a pair has been
//! seen, replaying the sweep costs one table lookup instead of one
//! `access_line` walk per line — and because the simulated workloads
//! drive the caches through a short cycle of recurring states, the
//! steady-state hit rate approaches 100%.
//!
//! A [`crate::Machine`] owns up to two of these: one over the I-cache
//! (+ ITLB) for code-footprint sweeps, one over the D-cache (+ DTLB) for
//! data-region sweeps. Code footprints are explicit line lists registered
//! under caller-chosen ids; data regions self-register through
//! [`ReplayCache::region_fid`], keyed by their exact line range and
//! access kind (two byte regions covering the same lines and kind are
//! the same sweep — the model only sees lines and pages).
//!
//! Correctness notes:
//! * Keys are **exact** tag states (not hashes of them), so a lookup hit
//!   can never be a collision.
//! * Between memoized sweeps the backing tag arrays are allowed to go
//!   stale; [`ReplayCache::cur`] remembers which interned state is live.
//!   Any non-memoized touch of the cache or TLB must first materialize
//!   that state back into the arrays (the machine layer does this).
//! * Transitions are recorded as before/after counter *deltas* of a real
//!   walk, so a replay hit reproduces the walk's accounting exactly —
//!   including prefetch installs and TLB refills.
//! * The state table is capacity-bounded: once the interner is full, new
//!   states are no longer recorded and those sweeps fall back to the
//!   walk (counted as bypasses), so a workload with unbounded state
//!   cardinality degrades to plain simulation instead of exhausting
//!   memory.

use crate::stats::{ReplayReport, ReplayStats};
use std::collections::BTreeMap;
use std::hash::{BuildHasherDefault, Hasher};
// The memoizer's state interner is lookup-only (get/insert, never
// iterated) and uses a fixed-seed hasher, so not even its internal order
// varies between processes; O(1) probes are what make the >99.9%-hit-rate
// replay path cheap.
// analyze::allow(nondeterminism, reason = "lookup-only interning map with a fixed-seed deterministic hasher; iteration order never observed")
#[allow(clippy::disallowed_types)]
type FxMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A fixed-seed multiply-rotate hasher (the rustc `FxHash` construction).
/// Deterministic across processes and platforms — unlike `RandomState` —
/// and much cheaper than SipHash on the multi-kilobyte state keys the
/// interner hashes on every memo miss.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The memoized outcome of one sweep from one state: the counter deltas
/// a real walk produced, plus the interned successor state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Transition {
    /// The walk's return value (demand misses).
    pub ret: u64,
    /// Cache hits incurred by the sweep.
    pub hits: u64,
    /// Cache misses incurred by the sweep (including prefetch installs).
    pub misses: u64,
    /// TLB hits incurred by the sweep (zero without a TLB).
    pub tlb_hits: u64,
    /// TLB refills incurred by the sweep (zero without a TLB).
    pub tlb_misses: u64,
    /// Stall cycles charged by the sweep (miss penalties + TLB refills).
    pub stall: u64,
    /// Interned token of the resulting combined state.
    pub next: u32,
}

/// One interned state and every transition recorded out of it. The
/// per-state transition lists are tiny (a deterministic simulation takes
/// only a handful of distinct sweeps out of any given state), so a
/// sorted Vec beats hashing the `(state, fid)` pair.
#[derive(Debug, Clone)]
struct StateEntry {
    /// The combined tag state: cache tags (sets in order, ways
    /// MRU-first) followed by TLB entries (MRU-first, `u64::MAX`-padded),
    /// when a TLB is part of the key.
    key: Box<[u64]>,
    /// `(footprint id, outcome)`, sorted by footprint id.
    transitions: Vec<(u32, Transition)>,
}

/// Total bytes of interned state keys a single replay cache may hold
/// (counting the interner's duplicate copy). Beyond this the memoizer
/// stops learning new states and falls back to plain simulation.
const MAX_STATE_BYTES: usize = 48 << 20;

/// A transition table over interned cache(+TLB) states.
///
/// Owned by a [`crate::Machine`]; see [`crate::Machine::fetch_code_footprint`].
#[derive(Debug, Clone, Default)]
pub struct ReplayCache {
    /// Interned states; index = token.
    states: Vec<StateEntry>,
    /// Exact-state interning map (fixed-seed hasher, see [`FxHasher`]).
    intern: FxMap<Box<[u64]>, u32>,
    /// Registered code footprints; index = footprint id.
    footprints: Vec<Vec<u64>>,
    /// `(ptr, len)` of the slice each footprint was registered from.
    /// Callers pass the same backing slice per fid on every sweep (the
    /// documented fid contract), so matching identity here proves
    /// equality without re-comparing the whole line list per call; a
    /// non-matching pointer falls back to the full comparison.
    footprint_src: Vec<(usize, usize)>,
    /// Data-region footprints: packed `(first_line, n_lines, kind)` key
    /// → footprint id. Ordered map: no hashing on the hot path beyond a
    /// short comparison chain, and deterministic by construction.
    regions: BTreeMap<u64, u32>,
    /// Token of the state currently live, when known. `None` means the
    /// cache's (and TLB's) own arrays are authoritative.
    pub(crate) cur: Option<u32>,
    /// Cap on `states.len()`, derived from the key size on first intern.
    max_states: usize,
    stats: ReplayStats,
}

impl ReplayCache {
    /// Registers `lines` under `fid` and reports whether the id is
    /// usable: `true` the first time and on every exact repeat, `false`
    /// if `fid` was previously registered with a different line list
    /// (callers must then bypass the memo).
    pub(crate) fn check_footprint(&mut self, fid: u32, lines: &[u64]) -> bool {
        let idx = fid as usize;
        if idx >= self.footprints.len() {
            // analyze::allow(alloc-path, reason = "replay-memo warm-up path; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
            self.footprints.resize(idx + 1, Vec::new());
            // analyze::allow(alloc-path, reason = "replay-memo warm-up path; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
            self.footprint_src.resize(idx + 1, (0, 0));
        }
        if (lines.as_ptr() as usize, lines.len()) == self.footprint_src[idx] {
            return true;
        }
        if self.footprints[idx].is_empty() {
            // analyze::allow(alloc-path, reason = "replay-memo warm-up path; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
            self.footprints[idx] = lines.to_vec();
            self.footprint_src[idx] = (lines.as_ptr() as usize, lines.len());
            return true;
        }
        self.footprints[idx].as_slice() == lines
    }

    /// Footprint id for a data region, identified by its exact line
    /// range and access kind packed into `key`. Ids are assigned in
    /// first-seen order and never collide (the key *is* the identity),
    /// so region sweeps need no collision fallback.
    pub(crate) fn region_fid(&mut self, key: u64) -> u32 {
        if let Some(&fid) = self.regions.get(&key) {
            return fid;
        }
        let fid = self.regions.len() as u32;
        // analyze::allow(alloc-path, reason = "replay-memo warm-up path; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
        self.regions.insert(key, fid);
        fid
    }

    /// Interns a combined tag state, returning its token — or `None`
    /// when the state is new but the table is full (the caller then
    /// bypasses the memo for this sweep).
    pub(crate) fn intern(&mut self, key: &[u64]) -> Option<u32> {
        if let Some(&t) = self.intern.get(key) {
            return Some(t);
        }
        if self.max_states == 0 {
            // First state fixes the key width and therefore the cap.
            self.max_states = (MAX_STATE_BYTES / (16 * key.len().max(1))).max(512);
        }
        if self.states.len() >= self.max_states {
            return None;
        }
        let t = self.states.len() as u32;
        let boxed: Box<[u64]> = key.into();
        // analyze::allow(alloc-path, reason = "replay-memo warm-up path; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
        self.states.push(StateEntry {
            key: boxed.clone(),
            transitions: Vec::new(),
        });
        // analyze::allow(alloc-path, reason = "replay-memo warm-up path; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
        self.intern.insert(boxed, t);
        Some(t)
    }

    /// Whether the state table has hit its capacity bound.
    pub(crate) fn saturated(&self) -> bool {
        self.max_states != 0 && self.states.len() >= self.max_states
    }

    /// The combined tag state behind a token.
    pub(crate) fn state(&self, token: u32) -> &[u64] {
        &self.states[token as usize].key
    }

    /// Looks up a recorded transition.
    #[inline]
    pub(crate) fn lookup(&self, state: u32, fid: u32) -> Option<Transition> {
        let ts = &self.states[state as usize].transitions;
        // Linear scan: the lists are nearly always 1–4 entries.
        ts.iter().find(|&&(f, _)| f == fid).map(|&(_, tr)| tr)
    }

    /// Records a transition.
    pub(crate) fn insert(&mut self, state: u32, fid: u32, tr: Transition) {
        let ts = &mut self.states[state as usize].transitions;
        let pos = ts.partition_point(|&(f, _)| f < fid);
        // analyze::allow(alloc-path, reason = "replay-memo warm-up path; steady state is a memo hit (hit rate CI-gated, tests/alloc.rs pins zero steady-state allocs)")
        ts.insert(pos, (fid, tr));
    }

    /// Mutable access to the counters.
    pub(crate) fn stats_mut(&mut self) -> &mut ReplayStats {
        &mut self.stats
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Snapshot of counters and table sizes.
    pub fn report(&self) -> ReplayReport {
        ReplayReport {
            stats: self.stats,
            states: self.states.len(),
            transitions: self.states.iter().map(|s| s.transitions.len()).sum(),
            footprints: self.footprints.iter().filter(|f| !f.is_empty()).count()
                + self.regions.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(ret: u64, next: u32) -> Transition {
        Transition {
            ret,
            hits: 0,
            misses: ret,
            tlb_hits: 0,
            tlb_misses: 0,
            stall: 0,
            next,
        }
    }

    #[test]
    fn footprint_registration_detects_collisions() {
        let mut r = ReplayCache::default();
        assert!(r.check_footprint(0, &[1, 2, 3]));
        assert!(r.check_footprint(0, &[1, 2, 3]), "exact repeat is fine");
        assert!(!r.check_footprint(0, &[1, 2, 4]), "different lines collide");
        assert!(r.check_footprint(5, &[9]), "gaps auto-register");
        assert_eq!(r.report().footprints, 2);
    }

    #[test]
    fn region_fids_are_stable_and_distinct() {
        let mut r = ReplayCache::default();
        let a = r.region_fid(0x1000);
        let b = r.region_fid(0x2000);
        assert_ne!(a, b);
        assert_eq!(r.region_fid(0x1000), a, "same key, same id");
        assert_eq!(r.report().footprints, 2);
    }

    #[test]
    fn interning_is_stable_and_exact() {
        let mut r = ReplayCache::default();
        let a = r.intern(&[1, 2, u64::MAX]).unwrap();
        let b = r.intern(&[1, 2, u64::MAX]).unwrap();
        let c = r.intern(&[1, 3, u64::MAX]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(r.state(c), &[1, 3, u64::MAX]);
    }

    #[test]
    fn interner_caps_out_gracefully() {
        let mut r = ReplayCache {
            max_states: 2,
            ..ReplayCache::default()
        };
        assert!(r.intern(&[1]).is_some());
        assert!(r.intern(&[2]).is_some());
        assert!(r.intern(&[3]).is_none(), "table full: new states rejected");
        assert!(r.intern(&[1]).is_some(), "known states still resolve");
        assert!(r.saturated());
    }

    #[test]
    fn transitions_round_trip() {
        let mut r = ReplayCache::default();
        let s = r.intern(&[7]).unwrap();
        assert!(r.lookup(s, 0).is_none());
        r.insert(s, 3, tr(7, 3));
        r.insert(s, 1, tr(1, 1));
        let got = r.lookup(s, 3).unwrap();
        assert_eq!(got.ret, 7);
        assert_eq!(got.next, 3);
        assert_eq!(r.lookup(s, 1).unwrap().ret, 1);
        assert!(r.lookup(s, 2).is_none());
        assert_eq!(r.report().transitions, 2);
    }

    #[test]
    fn fx_hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        b.write_u64(0xdead_beef);
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }
}
