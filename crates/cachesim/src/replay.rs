//! Memoized replay of instruction-fetch footprints.
//!
//! The layer engines sweep the same code footprints over the I-cache
//! millions of times per simulated second, and the resulting misses are a
//! pure function of (footprint, I-cache state before the sweep): a
//! set-associative LRU cache has no other inputs. This module exploits
//! that by interning whole I-cache tag states and recording, per
//! `(state, footprint)` pair, the miss count and successor state. Once a
//! pair has been seen, replaying the footprint costs one table lookup
//! instead of one `access_line` walk per code line — and because the
//! simulated workloads drive the cache through a short cycle of recurring
//! states, the steady-state hit rate approaches 100%.
//!
//! Correctness notes:
//! * Keys are **exact** tag states (not hashes of them), so a lookup hit
//!   can never be a collision.
//! * Between memoized sweeps the cache's backing tag array is allowed to
//!   go stale; [`ReplayCache::cur`] remembers which interned state is
//!   live. Any non-memoized touch of the cache must first materialize
//!   that state back into the array (the machine layer does this).
//! * Memoization is only used for machine configurations where a code
//!   sweep touches nothing but the I-cache — no ITLB, no L2, no
//!   next-line prefetch, split caches. Anything else bypasses the memo
//!   and simulates normally.

use crate::stats::{ReplayReport, ReplayStats};
// The memoizer's maps are lookup-only (get/insert, never iterated), so
// hash order can't leak into any simulated outcome, and O(1) probes are
// what make the >99.9%-hit-rate replay path cheap. See the matching
// field-level justifications below.
// analyze::allow(nondeterminism, reason = "lookup-only memoization maps; iteration order never observed; hashing is the hot path")
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// The memoized outcome of sweeping one footprint from one state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Transition {
    /// Misses incurred by the sweep.
    pub misses: u64,
    /// Interned token of the resulting cache state.
    pub next: u32,
}

/// A transition table over interned I-cache states.
///
/// Owned by a [`crate::Machine`]; see [`crate::Machine::fetch_code_footprint`].
#[derive(Debug, Clone, Default)]
pub struct ReplayCache {
    /// Interned tag states; index = token. Ways are stored MRU-first,
    /// invalid ways as `u64::MAX` (line numbers never reach that value:
    /// it would require a byte address above 2^64).
    states: Vec<Box<[u64]>>,
    /// Exact-state interning map.
    // analyze::allow(nondeterminism, reason = "get/insert only; never iterated, so hash order cannot affect outputs")
    #[allow(clippy::disallowed_types)]
    intern: HashMap<Box<[u64]>, u32>,
    /// Registered footprints; index = footprint id.
    footprints: Vec<Vec<u64>>,
    /// `(state token, footprint id) -> outcome`.
    // analyze::allow(nondeterminism, reason = "get/insert only; never iterated, so hash order cannot affect outputs")
    #[allow(clippy::disallowed_types)]
    transitions: HashMap<(u32, u32), Transition>,
    /// Token of the cache state currently live, when known. `None` means
    /// the cache's own tag array is authoritative.
    pub(crate) cur: Option<u32>,
    stats: ReplayStats,
}

impl ReplayCache {
    /// Registers `lines` under `fid` and reports whether the id is
    /// usable: `true` the first time and on every exact repeat, `false`
    /// if `fid` was previously registered with a different line list
    /// (callers must then bypass the memo).
    pub(crate) fn check_footprint(&mut self, fid: u32, lines: &[u64]) -> bool {
        let idx = fid as usize;
        if idx >= self.footprints.len() {
            self.footprints.resize(idx + 1, Vec::new());
        }
        if self.footprints[idx].is_empty() {
            self.footprints[idx] = lines.to_vec();
            return true;
        }
        self.footprints[idx] == lines
    }

    /// Interns a tag state, returning its token.
    pub(crate) fn intern(&mut self, tags: Box<[u64]>) -> u32 {
        if let Some(&t) = self.intern.get(&tags) {
            return t;
        }
        let t = self.states.len() as u32;
        self.states.push(tags.clone());
        self.intern.insert(tags, t);
        t
    }

    /// The tag state behind a token.
    pub(crate) fn state(&self, token: u32) -> &[u64] {
        &self.states[token as usize]
    }

    /// Looks up a recorded transition.
    pub(crate) fn lookup(&self, state: u32, fid: u32) -> Option<Transition> {
        self.transitions.get(&(state, fid)).copied()
    }

    /// Records a transition.
    pub(crate) fn insert(&mut self, state: u32, fid: u32, tr: Transition) {
        self.transitions.insert((state, fid), tr);
    }

    /// Mutable access to the counters.
    pub(crate) fn stats_mut(&mut self) -> &mut ReplayStats {
        &mut self.stats
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Snapshot of counters and table sizes.
    pub fn report(&self) -> ReplayReport {
        ReplayReport {
            stats: self.stats,
            states: self.states.len(),
            transitions: self.transitions.len(),
            footprints: self.footprints.iter().filter(|f| !f.is_empty()).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_registration_detects_collisions() {
        let mut r = ReplayCache::default();
        assert!(r.check_footprint(0, &[1, 2, 3]));
        assert!(r.check_footprint(0, &[1, 2, 3]), "exact repeat is fine");
        assert!(!r.check_footprint(0, &[1, 2, 4]), "different lines collide");
        assert!(r.check_footprint(5, &[9]), "gaps auto-register");
        assert_eq!(r.report().footprints, 2);
    }

    #[test]
    fn interning_is_stable_and_exact() {
        let mut r = ReplayCache::default();
        let a = r.intern(vec![1, 2, u64::MAX].into_boxed_slice());
        let b = r.intern(vec![1, 2, u64::MAX].into_boxed_slice());
        let c = r.intern(vec![1, 3, u64::MAX].into_boxed_slice());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(r.state(c), &[1, 3, u64::MAX]);
    }

    #[test]
    fn transitions_round_trip() {
        let mut r = ReplayCache::default();
        assert!(r.lookup(0, 0).is_none());
        r.insert(0, 0, Transition { misses: 7, next: 3 });
        let tr = r.lookup(0, 0).unwrap();
        assert_eq!(tr.misses, 7);
        assert_eq!(tr.next, 3);
        assert_eq!(r.report().transitions, 1);
    }
}
