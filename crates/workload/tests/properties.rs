//! Property tests for the mixed-workload subsystem.
//!
//! * Framing: every (version, class, flags, seq, session, payload)
//!   combination round-trips bit-exactly; corrupted and truncated
//!   buffers are rejected, never panic, and v2's checksum catches
//!   every payload flip.
//! * CBOR: bounded arbitrary documents round-trip canonically and
//!   every strict prefix of an encoding is rejected (the impairment
//!   path feeds exactly such damage).
//! * Agent envelopes: decode/encode round-trip, and the alloc-free
//!   dispatch peek agrees with the full decoder wherever the decoder
//!   accepts.
//! * Mixed stream: generation is a pure function of its config, and
//!   the per-class conservation law holds through the multi-core
//!   simulator for every class, policy, and discipline.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use workload::cbor::{self, Value};
use workload::{
    class_counts, generate, profiles, to_flow_arrivals, AgentKind, AgentMsg, Frame, FrameVersion,
    MixConfig, WireClass,
};

use ldlp::{BatchPolicy, Discipline};
use smp::{run_smp, DispatchPolicy, SmpConfig};

const FRAMED: [WireClass; 3] = [
    WireClass::ClientSignal,
    WireClass::SvcRpc,
    WireClass::MediaCtl,
];

/// A bounded, deterministic CBOR document: spends `budget` nodes
/// breadth-first so depth stays within the codec's limit.
fn tree_from_seed(seed: u64, budget: usize) -> Value {
    fn node(rng: &mut StdRng, budget: &mut usize, depth: usize) -> Value {
        if *budget > 0 {
            *budget -= 1;
        }
        let leaf_only = depth >= 4 || *budget == 0;
        match rng.random_range(0..if leaf_only { 6u32 } else { 8u32 }) {
            0 => Value::U64(rng.random::<u64>()),
            1 => Value::Neg(rng.random::<u64>()),
            2 => Value::Bool(rng.random::<u64>() % 2 == 0),
            3 => Value::Null,
            4 => {
                let n = rng.random_range(0usize..40);
                Value::Bytes((0..n).map(|_| rng.random::<u64>() as u8).collect())
            }
            5 => {
                let n = rng.random_range(0usize..12);
                Value::Text((0..n).map(|_| char::from(rng.random_range(32u8..127))).collect())
            }
            6 => {
                let n = rng.random_range(0usize..4).min(*budget);
                Value::Array((0..n).map(|_| node(rng, budget, depth + 1)).collect())
            }
            _ => {
                let n = rng.random_range(0usize..3).min(*budget);
                Value::Map(
                    (0..n)
                        .map(|_| {
                            (
                                Value::U64(rng.random::<u64>()),
                                node(rng, budget, depth + 1),
                            )
                        })
                        .collect(),
                )
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut budget = budget.max(1);
    node(&mut rng, &mut budget, 0)
}

proptest! {
    /// Both frame versions round-trip every field combination for
    /// every framed class.
    #[test]
    fn frames_round_trip(
        v2 in any::<bool>(),
        class_idx in 0usize..3,
        flags in any::<u8>(),
        seq in any::<u32>(),
        session in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let f = Frame {
            version: if v2 { FrameVersion::V2 } else { FrameVersion::V1 },
            class: FRAMED[class_idx],
            flags,
            seq,
            // v1 has no session field on the wire; it decodes as 0.
            session: if v2 { session } else { 0 },
            payload,
        };
        let bytes = f.encode();
        prop_assert_eq!(bytes.len(), f.encoded_len());
        prop_assert_eq!(Frame::decode(&bytes), Ok(f));
    }

    /// Damage never panics; a v2 payload flip is always caught; every
    /// strict prefix is rejected.
    #[test]
    fn frame_damage_is_rejected_not_fatal(
        class_idx in 0usize..3,
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        flip_at in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let f = Frame::v2(FRAMED[class_idx], 7, 0x5e55, payload);
        let good = f.encode();

        // Any single-bit flip anywhere: decode returns, never panics.
        let at = flip_at as usize % good.len();
        let mut bent = good.clone();
        bent[at] ^= 1 << flip_bit;
        let _ = Frame::decode(&bent);

        // A flip inside the payload is always caught by the checksum.
        let pay_at = workload::frame::V2_HEADER_LEN + (at % f.payload.len());
        let mut bent = good.clone();
        bent[pay_at] ^= 1 << flip_bit;
        prop_assert!(Frame::decode(&bent).is_err(), "payload damage slipped through");

        for cut in 0..good.len() {
            prop_assert!(Frame::decode(&good[..cut]).is_err(), "prefix {} parsed", cut);
        }
    }

    /// Arbitrary bounded CBOR documents round-trip canonically, and
    /// truncation at any point is rejected.
    #[test]
    fn cbor_documents_round_trip_and_prefixes_reject(
        seed in any::<u64>(),
        budget in 1usize..24,
    ) {
        let doc = tree_from_seed(seed, budget);
        let bytes = cbor::encode(&doc);
        prop_assert_eq!(cbor::decode(&bytes), Ok(doc));
        for cut in 0..bytes.len() {
            prop_assert!(cbor::decode(&bytes[..cut]).is_err(), "prefix {} parsed", cut);
        }
    }

    /// Agent envelopes round-trip, and wherever the strict decoder
    /// accepts a buffer the alloc-free peek must agree with it.
    #[test]
    fn agent_envelopes_round_trip_and_peek_agrees(
        kind_code in 1u64..8,
        session in any::<u64>(),
        seq in any::<u32>(),
        body in proptest::collection::vec(any::<u8>(), 0..120),
        corrupt_at in any::<u16>(),
    ) {
        let msg = AgentMsg {
            kind: AgentKind::from_code(kind_code).unwrap(),
            session,
            seq,
            body,
        };
        let bytes = msg.encode();
        prop_assert_eq!(AgentMsg::decode(&bytes), Ok(msg.clone()));
        prop_assert_eq!(
            workload::agent::peek(&bytes),
            Some((msg.kind, msg.session, msg.seq))
        );

        // Corrupt one byte: decode may accept or reject, but whenever
        // it accepts, peek reports the same leading fields.
        let mut bent = bytes.clone();
        let at = corrupt_at as usize % bent.len();
        bent[at] ^= 0x3d;
        if let Ok(d) = AgentMsg::decode(&bent) {
            prop_assert_eq!(workload::agent::peek(&bent), Some((d.kind, d.session, d.seq)));
        }
        for cut in 0..bytes.len() {
            prop_assert!(AgentMsg::decode(&bytes[..cut]).is_err());
        }
    }

    /// The generator is a pure function of its config, and the class
    /// draw is independent of earlier sizes (fixed draw budget): two
    /// configs differing only in seed give different streams, the same
    /// config twice gives the same stream.
    #[test]
    fn mixed_stream_is_deterministic(
        seed in 1u64..10_000,
        rate in 5_000u32..40_000,
    ) {
        let cfg = MixConfig::service_mix(rate as f64, 0.05, seed);
        let a = generate(&cfg);
        prop_assert_eq!(&a, &generate(&cfg));
        prop_assert!(a.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        let other = MixConfig::service_mix(rate as f64, 0.05, seed ^ 0xffff);
        prop_assert_ne!(a, generate(&other));
    }

    /// Per-class conservation through the multi-core simulator: every
    /// class's offered count equals what the generator emitted for it,
    /// and each class's buckets close exactly — for every dispatch
    /// policy and both disciplines.
    #[test]
    fn per_class_conservation_holds_through_the_simulator(
        seed in 1u64..64,
        cores in 1usize..5,
        ldlp in any::<bool>(),
        policy_idx in 0usize..3,
    ) {
        let duration_s = 0.01;
        let mix = MixConfig::service_mix(25_000.0, duration_s, seed);
        let stream = generate(&mix);
        let counts = class_counts(&stream);
        let arrivals = to_flow_arrivals(&stream, 64, seed);
        let policies = [
            DispatchPolicy::FlowHash,
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LayerAffinity,
        ];
        let discipline = if ldlp {
            Discipline::Ldlp(BatchPolicy::DCacheFit)
        } else {
            Discipline::Conventional
        };
        let cfg = SmpConfig {
            duration_s,
            placement_seed: seed,
            wclass: profiles(),
            ..SmpConfig::new(cores, policies[policy_idx], discipline)
        };
        let out = run_smp(&cfg, &arrivals);
        prop_assert!(out.report.conservation_holds());
        prop_assert_eq!(out.report.offered, arrivals.len() as u64);
        let mut tagged_total = 0u64;
        for c in WireClass::ALL {
            let Some(r) = out.classes.get(c.index()) else {
                prop_assert!(false, "missing class report for {:?}", c);
                continue;
            };
            prop_assert_eq!(
                r.offered, counts[c.index()],
                "{:?} offered mismatch", c
            );
            prop_assert_eq!(
                r.offered,
                r.completed + r.rejected + r.drops + r.shed,
                "{:?} buckets do not close", c
            );
            tagged_total += r.completed + r.rejected + r.drops + r.shed;
        }
        prop_assert_eq!(
            tagged_total, out.report.offered,
            "class tallies must cover the whole stream"
        );
    }
}
