//! Mixed multi-protocol small-message workloads.
//!
//! The paper's experiments drive one protocol stack at a time; a
//! production small-message service runs several at once, and the
//! interesting question becomes *per-class*: which classes keep their
//! latency SLOs when five protocols contend for one I-cache. This
//! crate models that service and generates its traffic:
//!
//! * [`class`] — the five-class taxonomy ([`WireClass`]): client
//!   signalling, service RPC, media control, DNS, and CBOR agent
//!   messaging, each with a handler footprint, a session-table reach,
//!   and a latency SLO ([`class::profiles`] plugs straight into
//!   `smp::SmpConfig::wclass`).
//! * [`frame`] — the versioned binary envelope the framed classes
//!   share (v1/v2 coexisting mid-rollout; v2 adds a session id and a
//!   checksum trailer).
//! * [`cbor`] / [`agent`] — RFC 8949-subset codec and the agent
//!   messaging protocol on top of it: session establishment, acks, and
//!   a relay with bounded, TTL-expired store-and-forward mailboxes
//!   whose table walks are charged against the cache model.
//! * [`stream`] — the deterministic mixed-stream generator: Poisson
//!   aggregate arrivals, seeded class interleaving, bounded-Pareto
//!   sizes, all on a fixed per-message RNG draw budget.
//! * [`dispatch`] — the classify-and-route loop (`workload-dispatch`
//!   hot-path root: panic-free, alloc-disciplined, charge-covered).
//! * [`slo`] — per-class SLO verdicts over `smp`'s class reports.
//!
//! The `figure14` bench (crates/bench) sweeps this workload across
//! cores and disciplines — Conventional vs. LDLP vs. LDLP+affinity —
//! and reports p50/p99, I-misses/message, and SLO attainment class by
//! class.

pub mod agent;
pub mod cbor;
pub mod class;
pub mod dispatch;
pub mod frame;
pub mod slo;
pub mod stream;

pub use agent::{AgentKind, AgentMsg, Relay, RelayStats, Session, SessionPhase};
pub use class::{profiles, WireClass};
pub use dispatch::{classify, dispatch_batch, DispatchStats};
pub use frame::{Frame, FrameError, FrameVersion};
pub use slo::{all_met, evaluate, SloVerdict, ATTAINMENT_TARGET};
pub use stream::{
    class_counts, generate, to_flow_arrivals, ClassedArrival, MixConfig, MixedStream,
};
