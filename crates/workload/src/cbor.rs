//! A deterministic CBOR (RFC 8949) subset codec.
//!
//! Agent messaging frames its envelopes as CBOR so new fields can ship
//! without a wire-version dance — the schema evolution story the fixed
//! binary framing of `crate::frame` deliberately lacks. This codec
//! implements exactly the subset the agent protocol uses:
//!
//! * unsigned and negative integers (major types 0/1),
//! * byte and text strings (2/3, definite length only),
//! * arrays and maps (4/5, definite length only),
//! * `false`/`true`/`null` (major type 7).
//!
//! Encoding is canonical: shortest-form length encodings, map entries
//! emitted in the order given. Decoding is strict — indefinite
//! lengths, unknown simple values, tags, floats, non-UTF-8 text,
//! trailing bytes, and nesting deeper than [`MAX_DEPTH`] are all
//! errors, never panics. Strictness is what lets the impairment path
//! feed damaged buffers straight into [`decode`] in the property
//! tests.

/// Deepest container nesting accepted (the agent protocol needs 3).
pub const MAX_DEPTH: usize = 8;

/// A CBOR data item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Major type 0.
    U64(u64),
    /// Major type 1, holding the *encoded* value `-1 - n`.
    Neg(u64),
    /// Major type 2 (definite length).
    Bytes(Vec<u8>),
    /// Major type 3 (definite length, valid UTF-8).
    Text(String),
    /// Major type 4 (definite length).
    Array(Vec<Value>),
    /// Major type 5 (definite length, order-preserving).
    Map(Vec<(Value, Value)>),
    /// Simple value 20/21.
    Bool(bool),
    /// Simple value 22.
    Null,
}

/// Why a buffer failed to parse as CBOR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CborError {
    /// Ran out of bytes mid-item.
    Truncated,
    /// Bytes remain after the root item.
    Trailing,
    /// Indefinite length, tag, float, or reserved additional info.
    Unsupported(u8),
    /// Text string that is not UTF-8.
    BadUtf8,
    /// Containers nested past [`MAX_DEPTH`].
    TooDeep,
    /// A declared length exceeding the remaining buffer.
    Length,
}

/// Appends the canonical encoding of `v` to `out`.
pub fn encode_into(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::U64(n) => head(0, *n, out),
        Value::Neg(n) => head(1, *n, out),
        Value::Bytes(b) => {
            head(2, b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::Text(s) => {
            head(3, s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            head(4, items.len() as u64, out);
            for it in items {
                encode_into(it, out);
            }
        }
        Value::Map(entries) => {
            head(5, entries.len() as u64, out);
            for (k, val) in entries {
                encode_into(k, out);
                encode_into(val, out);
            }
        }
        Value::Bool(false) => out.push(0xf4),
        Value::Bool(true) => out.push(0xf5),
        Value::Null => out.push(0xf6),
    }
}

/// Encodes into a fresh buffer.
pub fn encode(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(v, &mut out);
    out
}

/// Parses exactly one item covering the whole buffer.
pub fn decode(buf: &[u8]) -> Result<Value, CborError> {
    let (v, used) = decode_prefix(buf, 0)?;
    if used != buf.len() {
        return Err(CborError::Trailing);
    }
    Ok(v)
}

/// Shortest-form head: major type in the top 3 bits, argument below.
fn head(major: u8, arg: u64, out: &mut Vec<u8>) {
    let mt = major << 5;
    if arg < 24 {
        out.push(mt | arg as u8);
    } else if arg <= 0xff {
        out.push(mt | 24);
        out.push(arg as u8);
    } else if arg <= 0xffff {
        out.push(mt | 25);
        out.extend_from_slice(&(arg as u16).to_be_bytes());
    } else if arg <= 0xffff_ffff {
        out.push(mt | 26);
        out.extend_from_slice(&(arg as u32).to_be_bytes());
    } else {
        out.push(mt | 27);
        out.extend_from_slice(&arg.to_be_bytes());
    }
}

/// Parses the head at `buf[at..]`: `(major, argument, bytes consumed)`.
/// Exposed to `crate::agent` so the dispatch fast path can peek at an
/// envelope's leading fields without materializing the document. Kept
/// free of slice indexing: it runs under the `workload-dispatch`
/// hot-path root.
pub(crate) fn parse_head(buf: &[u8], at: usize) -> Result<(u8, u64, usize), CborError> {
    let ib = *buf.get(at).ok_or(CborError::Truncated)?;
    let major = ib >> 5;
    let info = ib & 0x1f;
    let wide = |n: usize| -> Result<u64, CborError> {
        let mut arg = 0u64;
        for off in 1..=n {
            let b = *buf
                .get(at.checked_add(off).ok_or(CborError::Truncated)?)
                .ok_or(CborError::Truncated)?;
            arg = (arg << 8) | u64::from(b);
        }
        Ok(arg)
    };
    let (arg, extra) = match info {
        0..=23 => (u64::from(info), 0usize),
        24 => (wide(1)?, 1),
        25 => (wide(2)?, 2),
        26 => (wide(4)?, 4),
        27 => (wide(8)?, 8),
        _ => return Err(CborError::Unsupported(ib)),
    };
    Ok((major, arg, 1 + extra))
}

/// Parses one item at the front of `buf`, returning it and the bytes
/// consumed. `depth` guards container recursion.
fn decode_prefix(buf: &[u8], depth: usize) -> Result<(Value, usize), CborError> {
    if depth > MAX_DEPTH {
        return Err(CborError::TooDeep);
    }
    let (major, arg, mut used) = parse_head(buf, 0)?;
    let v = match major {
        0 => Value::U64(arg),
        1 => Value::Neg(arg),
        2 | 3 => {
            let len = usize::try_from(arg).map_err(|_| CborError::Length)?;
            let body = buf
                .get(used..used.checked_add(len).ok_or(CborError::Length)?)
                .ok_or(CborError::Length)?;
            used += len;
            if major == 2 {
                Value::Bytes(body.to_vec())
            } else {
                let s = std::str::from_utf8(body).map_err(|_| CborError::BadUtf8)?;
                Value::Text(s.to_string())
            }
        }
        4 | 5 => {
            // A container cannot hold more items than bytes remain;
            // bounding up front keeps hostile lengths from reserving.
            let len = usize::try_from(arg).map_err(|_| CborError::Length)?;
            if len > buf.len().saturating_sub(used) {
                return Err(CborError::Length);
            }
            if major == 4 {
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    let rest = buf.get(used..).ok_or(CborError::Truncated)?;
                    let (it, n) = decode_prefix(rest, depth + 1)?;
                    items.push(it);
                    used += n;
                }
                Value::Array(items)
            } else {
                let mut entries = Vec::with_capacity(len);
                for _ in 0..len {
                    let rest = buf.get(used..).ok_or(CborError::Truncated)?;
                    let (k, n) = decode_prefix(rest, depth + 1)?;
                    used += n;
                    let rest = buf.get(used..).ok_or(CborError::Truncated)?;
                    let (val, n) = decode_prefix(rest, depth + 1)?;
                    used += n;
                    entries.push((k, val));
                }
                Value::Map(entries)
            }
        }
        7 => match (buf.first().copied().unwrap_or(0), arg) {
            (0xf4, _) => Value::Bool(false),
            (0xf5, _) => Value::Bool(true),
            (0xf6, _) => Value::Null,
            (ib, _) => return Err(CborError::Unsupported(ib)),
        },
        _ => return Err(CborError::Unsupported(buf.first().copied().unwrap_or(0))),
    };
    Ok((v, used))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(v: Value) {
        let bytes = encode(&v);
        assert_eq!(decode(&bytes), Ok(v), "bytes: {bytes:x?}");
    }

    #[test]
    fn scalars_round_trip_at_every_head_width() {
        for n in [0u64, 23, 24, 255, 256, 65_535, 65_536, u64::from(u32::MAX), u64::MAX] {
            rt(Value::U64(n));
            rt(Value::Neg(n));
        }
        rt(Value::Bool(true));
        rt(Value::Bool(false));
        rt(Value::Null);
    }

    #[test]
    fn rfc_8949_appendix_a_vectors() {
        assert_eq!(encode(&Value::U64(0)), [0x00]);
        assert_eq!(encode(&Value::U64(10)), [0x0a]);
        assert_eq!(encode(&Value::U64(100)), [0x18, 0x64]);
        assert_eq!(encode(&Value::U64(1000)), [0x19, 0x03, 0xe8]);
        assert_eq!(encode(&Value::Neg(9)), [0x29]); // -10
        assert_eq!(encode(&Value::Text("IETF".into())), [0x64, 0x49, 0x45, 0x54, 0x46]);
        assert_eq!(
            encode(&Value::Array(vec![Value::U64(1), Value::U64(2), Value::U64(3)])),
            [0x83, 0x01, 0x02, 0x03]
        );
        assert_eq!(decode(&[0xf6]), Ok(Value::Null));
    }

    #[test]
    fn containers_round_trip() {
        rt(Value::Array(vec![
            Value::U64(1),
            Value::Text("two".into()),
            Value::Bytes(vec![3, 3, 3]),
        ]));
        rt(Value::Map(vec![
            (Value::U64(0), Value::Text("hello".into())),
            (Value::U64(1), Value::Array(vec![Value::Null])),
        ]));
    }

    #[test]
    fn map_order_is_preserved_not_sorted() {
        let m = Value::Map(vec![
            (Value::U64(9), Value::Null),
            (Value::U64(1), Value::Null),
        ]);
        let d = decode(&encode(&m)).unwrap();
        assert_eq!(d, m, "entry order survives the trip");
    }

    #[test]
    fn strict_rejects() {
        assert_eq!(decode(&[]), Err(CborError::Truncated));
        assert_eq!(decode(&[0x18]), Err(CborError::Truncated), "head wants a byte");
        assert_eq!(decode(&[0x5f]), Err(CborError::Unsupported(0x5f)), "indefinite bytes");
        assert_eq!(decode(&[0xc0, 0x00]), Err(CborError::Unsupported(0xc0)), "tag");
        assert_eq!(decode(&[0xfb; 9]), Err(CborError::Unsupported(0xfb)), "float64");
        assert_eq!(decode(&[0x00, 0x00]), Err(CborError::Trailing));
        assert_eq!(decode(&[0x62, 0xff, 0xfe]), Err(CborError::BadUtf8));
        assert_eq!(decode(&[0x5a, 0xff, 0xff, 0xff, 0xff]), Err(CborError::Length));
        // 9 nested single-item arrays: one past MAX_DEPTH.
        let mut deep = vec![0x81u8; MAX_DEPTH + 1];
        deep.push(0x00);
        assert_eq!(decode(&deep), Err(CborError::TooDeep));
        // Array claiming more items than bytes remain.
        assert_eq!(decode(&[0x99, 0xff, 0xff]), Err(CborError::Length));
    }

    #[test]
    fn every_strict_prefix_of_an_encoding_is_rejected() {
        let v = Value::Map(vec![
            (Value::U64(0), Value::Bytes((0..40).collect())),
            (Value::Text("k".into()), Value::Array(vec![Value::U64(7); 5])),
        ]);
        let bytes = encode(&v);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} parsed");
        }
    }
}
