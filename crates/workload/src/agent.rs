//! Agent-to-agent messaging: CBOR envelopes, sessions, acks, and a
//! relay with store-and-forward.
//!
//! The agent class models a fleet of autonomous peers exchanging small
//! request/response messages through a relay, the way agent-messaging
//! protocols layer on top of a datagram substrate:
//!
//! * **Envelope** — every message is one CBOR map
//!   `{0: kind, 1: session, 2: seq, 3: body}` ([`AgentMsg`]). CBOR
//!   buys schema evolution; the fixed key order buys a cheap
//!   fixed-offset [`peek`] for the dispatch fast path.
//! * **Session establishment** — a two-way `Hello`/`HelloAck`
//!   handshake pins the session id both sides tag subsequent traffic
//!   with ([`Session`]). Requests are only accepted on an established
//!   session; responses are acknowledged so the sender can retire its
//!   retransmit state.
//! * **Relay store-and-forward** — peers are not always reachable, so
//!   a [`Relay`] banks `RelayPut` payloads per destination mailbox
//!   (bounded, TTL-expired) and drains them on `RelayFetch`. Mailbox
//!   state lives in a [`netstack::table::OaTable`] and every keyed
//!   operation replays its probe walk into the cache model — the
//!   relay's data working set is simulated, not guessed.

use crate::cbor::{self, CborError, Value};
use cachesim::Machine;
use netstack::table::OaTable;

/// Simulated base address of the relay mailbox table.
pub const RELAY_TABLE_BASE: u64 = 0x3500_0000;
/// Bytes per mailbox slot (key, deadline, queue header).
pub const RELAY_SLOT_BYTES: u64 = 128;
/// Most payloads a mailbox banks before refusing (RFC-style bound: a
/// relay protects itself, never its clients).
pub const MAILBOX_CAP: usize = 16;

/// Envelope kind codes (CBOR key 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum AgentKind {
    /// Session open, client → server.
    Hello = 1,
    /// Session accept, server → client.
    HelloAck = 2,
    /// Application request on an established session.
    Request = 3,
    /// Application response.
    Response = 4,
    /// Delivery acknowledgement for a response.
    Ack = 5,
    /// Bank a payload at the relay for a destination session.
    RelayPut = 6,
    /// Drain the caller's mailbox at the relay.
    RelayFetch = 7,
}

impl AgentKind {
    /// Parses a kind code.
    pub fn from_code(code: u64) -> Option<AgentKind> {
        match code {
            1 => Some(AgentKind::Hello),
            2 => Some(AgentKind::HelloAck),
            3 => Some(AgentKind::Request),
            4 => Some(AgentKind::Response),
            5 => Some(AgentKind::Ack),
            6 => Some(AgentKind::RelayPut),
            7 => Some(AgentKind::RelayFetch),
            _ => None,
        }
    }
}

/// Why a buffer failed to parse as an agent envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentError {
    /// Not well-formed CBOR.
    Cbor(CborError),
    /// Well-formed CBOR that is not the envelope schema.
    Schema,
}

impl From<CborError> for AgentError {
    fn from(e: CborError) -> AgentError {
        AgentError::Cbor(e)
    }
}

/// One agent envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentMsg {
    /// What the message does.
    pub kind: AgentKind,
    /// Session id (0 until establishment assigns one).
    pub session: u64,
    /// Per-session sequence number.
    pub seq: u32,
    /// Opaque application body.
    pub body: Vec<u8>,
}

impl AgentMsg {
    /// A bodyless control envelope.
    pub fn control(kind: AgentKind, session: u64, seq: u32) -> AgentMsg {
        AgentMsg {
            kind,
            session,
            seq,
            body: Vec::new(),
        }
    }

    /// Encodes the envelope as its canonical CBOR map.
    pub fn encode(&self) -> Vec<u8> {
        cbor::encode(&Value::Map(vec![
            (Value::U64(0), Value::U64(u64::from(self.kind as u8))),
            (Value::U64(1), Value::U64(self.session)),
            (Value::U64(2), Value::U64(u64::from(self.seq))),
            (Value::U64(3), Value::Bytes(self.body.clone())),
        ]))
    }

    /// Parses and schema-checks an envelope. Strict: exactly the four
    /// known keys, in order, with the right types.
    pub fn decode(buf: &[u8]) -> Result<AgentMsg, AgentError> {
        let Value::Map(entries) = cbor::decode(buf)? else {
            return Err(AgentError::Schema);
        };
        let [(k0, v0), (k1, v1), (k2, v2), (k3, v3)] = entries.as_slice() else {
            return Err(AgentError::Schema);
        };
        let (Value::U64(0), Value::U64(code)) = (k0, v0) else {
            return Err(AgentError::Schema);
        };
        let (Value::U64(1), Value::U64(session)) = (k1, v1) else {
            return Err(AgentError::Schema);
        };
        let (Value::U64(2), Value::U64(seq)) = (k2, v2) else {
            return Err(AgentError::Schema);
        };
        let (Value::U64(3), Value::Bytes(body)) = (k3, v3) else {
            return Err(AgentError::Schema);
        };
        let kind = AgentKind::from_code(*code).ok_or(AgentError::Schema)?;
        let seq = u32::try_from(*seq).map_err(|_| AgentError::Schema)?;
        Ok(AgentMsg {
            kind,
            session: *session,
            seq,
            body: body.clone(),
        })
    }
}

/// Reads `(kind, session, seq)` off an encoded envelope without
/// allocating — the dispatch loop's fast path. Returns `None` for
/// anything that is not a plausible envelope prefix; the slow path
/// ([`AgentMsg::decode`]) gives the real verdict on rejects.
pub fn peek(buf: &[u8]) -> Option<(AgentKind, u64, u32)> {
    let (major, n, mut at) = cbor::parse_head(buf, 0).ok()?;
    if major != 5 || n != 4 {
        return None;
    }
    let mut fields = [0u64; 3];
    for (want_key, slot) in fields.iter_mut().enumerate() {
        let (km, karg, kn) = cbor::parse_head(buf, at).ok()?;
        if km != 0 || karg != want_key as u64 {
            return None;
        }
        at += kn;
        let (vm, varg, vn) = cbor::parse_head(buf, at).ok()?;
        if vm != 0 {
            return None;
        }
        at += vn;
        *slot = varg;
    }
    let [code, session, seq] = fields;
    let kind = AgentKind::from_code(code)?;
    let seq = u32::try_from(seq).ok()?;
    Some((kind, session, seq))
}

/// Client-side session state (RFC-001-style establishment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Nothing sent yet.
    Idle,
    /// `Hello` sent, awaiting `HelloAck`.
    HelloSent,
    /// Handshake complete; requests may flow.
    Established,
}

/// One side of an agent session: handshake, sequencing, ack matching.
#[derive(Debug, Clone)]
pub struct Session {
    /// The session id (proposed by the client, confirmed by the ack).
    pub id: u64,
    phase: SessionPhase,
    next_seq: u32,
    /// Requests sent but not yet answered.
    outstanding: u32,
}

impl Session {
    /// A fresh, idle session proposing `id`.
    pub fn new(id: u64) -> Session {
        Session {
            id,
            phase: SessionPhase::Idle,
            next_seq: 0,
            outstanding: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// Requests in flight.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Starts the handshake. Only valid from `Idle`.
    pub fn hello(&mut self) -> Option<AgentMsg> {
        if self.phase != SessionPhase::Idle {
            return None;
        }
        self.phase = SessionPhase::HelloSent;
        self.next_seq = 1;
        Some(AgentMsg::control(AgentKind::Hello, self.id, 0))
    }

    /// Server side: answers a `Hello` with a `HelloAck` echoing the
    /// proposed session id.
    pub fn accept(hello: &AgentMsg) -> Option<AgentMsg> {
        if hello.kind != AgentKind::Hello {
            return None;
        }
        Some(AgentMsg::control(AgentKind::HelloAck, hello.session, 0))
    }

    /// Completes the handshake on a matching `HelloAck`.
    pub fn on_hello_ack(&mut self, ack: &AgentMsg) -> bool {
        let ok = self.phase == SessionPhase::HelloSent
            && ack.kind == AgentKind::HelloAck
            && ack.session == self.id;
        if ok {
            self.phase = SessionPhase::Established;
        }
        ok
    }

    /// Emits the next request (established sessions only).
    pub fn request(&mut self, body: Vec<u8>) -> Option<AgentMsg> {
        if self.phase != SessionPhase::Established {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.outstanding += 1;
        Some(AgentMsg {
            kind: AgentKind::Request,
            session: self.id,
            seq,
            body,
        })
    }

    /// Handles a response: retires the outstanding request and emits
    /// the delivery `Ack` the peer is waiting for.
    pub fn on_response(&mut self, resp: &AgentMsg) -> Option<AgentMsg> {
        if self.phase != SessionPhase::Established
            || resp.kind != AgentKind::Response
            || resp.session != self.id
            || self.outstanding == 0
        {
            return None;
        }
        self.outstanding -= 1;
        Some(AgentMsg::control(AgentKind::Ack, self.id, resp.seq))
    }
}

/// A destination's banked messages at the relay.
#[derive(Debug, Clone)]
pub struct Mailbox {
    /// Cycle at which the whole mailbox expires.
    pub expires_at: u64,
    queued: Vec<Vec<u8>>,
}

/// Lifetime counters for a [`Relay`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Payloads banked.
    pub stored: u64,
    /// Payloads drained by fetches.
    pub delivered: u64,
    /// Puts refused by a full mailbox.
    pub refused: u64,
    /// Payloads dropped by TTL expiry.
    pub expired: u64,
}

/// Store-and-forward relay: bounded per-destination mailboxes with TTL
/// expiry, backed by a probe-logged [`OaTable`] so every keyed access
/// is charged against the cache model.
#[derive(Debug)]
pub struct Relay {
    table: OaTable<u64, Mailbox>,
    ttl: u64,
    stats: RelayStats,
}

impl Relay {
    /// A relay pre-sized for `destinations` mailboxes whose contents
    /// expire `ttl` cycles after the last put.
    pub fn new(destinations: usize, ttl: u64) -> Relay {
        Relay {
            table: OaTable::with_capacity(destinations.max(1)),
            ttl: ttl.max(1),
            stats: RelayStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// Mailboxes currently banked.
    pub fn mailboxes(&self) -> usize {
        self.table.len()
    }

    /// Charges the most recent table probe walk as reads plus one slot
    /// write-back against the cache model.
    fn charge(&mut self, machine: &mut Machine) {
        machine.read_data_probes(RELAY_TABLE_BASE, RELAY_SLOT_BYTES, self.table.last_probes());
        if let Some(&slot) = self.table.last_probes().last() {
            machine.write_data_slot(RELAY_TABLE_BASE, RELAY_SLOT_BYTES, slot);
        }
    }

    /// Banks `payload` for `dest`. Returns `false` (refusing, counted)
    /// when the destination's mailbox is full.
    pub fn put(&mut self, dest: u64, payload: &[u8], now: u64, machine: &mut Machine) -> bool {
        let deadline = now.saturating_add(self.ttl);
        let hit = match self.table.get_mut(&dest) {
            Some(mb) if mb.queued.len() >= MAILBOX_CAP => Some(false),
            Some(mb) => {
                mb.expires_at = deadline;
                // analyze::allow(alloc-path, reason = "store-and-forward copy is bounded by MAILBOX_CAP payloads per mailbox")
                mb.queued.push(payload.to_vec());
                Some(true)
            }
            None => None,
        };
        self.charge(machine);
        match hit {
            Some(true) => {
                self.stats.stored += 1;
                true
            }
            Some(false) => {
                self.stats.refused += 1;
                false
            }
            None => {
                // analyze::allow(alloc-path, reason = "mailbox table is pre-sized for the destination population; insert writes in place")
                self.table.insert(
                    dest,
                    Mailbox {
                        expires_at: deadline,
                        // analyze::allow(alloc-path, reason = "store-and-forward copy is bounded by MAILBOX_CAP payloads per mailbox")
                        queued: vec![payload.to_vec()],
                    },
                );
                self.charge(machine);
                self.stats.stored += 1;
                true
            }
        }
    }

    /// Drains `dest`'s mailbox into `out`, returning how many payloads
    /// were delivered. The emptied mailbox stays banked (its slot is
    /// warm) until the TTL reaps it.
    pub fn fetch_into(
        &mut self,
        dest: u64,
        out: &mut Vec<Vec<u8>>,
        machine: &mut Machine,
    ) -> usize {
        let drained = match self.table.get_mut(&dest) {
            Some(mb) => {
                let n = mb.queued.len();
                // analyze::allow(alloc-path, reason = "delivery moves already-allocated payloads; out is the caller's reused scratch buffer")
                out.append(&mut mb.queued);
                n
            }
            None => 0,
        };
        self.charge(machine);
        self.stats.delivered += drained as u64;
        drained
    }

    /// Reaps every mailbox whose deadline has passed, returning how
    /// many payloads were dropped. Bulk maintenance, run outside the
    /// per-message path (cf. [`OaTable::retain`]'s probe-log contract).
    pub fn expire(&mut self, now: u64) -> usize {
        let mut dropped = 0usize;
        // analyze::allow(charge-coverage, reason = "TTL reaping is bulk maintenance outside the measured window; per-message mailbox costs are charged at put/fetch")
        self.table.retain(|_, mb| {
            if mb.expires_at < now {
                dropped += mb.queued.len();
                false
            } else {
                true
            }
        });
        self.stats.expired += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::synthetic_benchmark())
    }

    #[test]
    fn envelope_round_trips_and_peek_agrees() {
        let m = AgentMsg {
            kind: AgentKind::Request,
            session: 0x00c0_ffee,
            seq: 41,
            body: b"get /calendar".to_vec(),
        };
        let bytes = m.encode();
        assert_eq!(AgentMsg::decode(&bytes), Ok(m.clone()));
        assert_eq!(peek(&bytes), Some((AgentKind::Request, 0x00c0_ffee, 41)));
    }

    #[test]
    fn schema_violations_reject() {
        // Wrong root type.
        assert_eq!(
            AgentMsg::decode(&cbor::encode(&Value::U64(5))),
            Err(AgentError::Schema)
        );
        // Unknown kind code.
        let bad = cbor::encode(&Value::Map(vec![
            (Value::U64(0), Value::U64(99)),
            (Value::U64(1), Value::U64(1)),
            (Value::U64(2), Value::U64(0)),
            (Value::U64(3), Value::Bytes(Vec::new())),
        ]));
        assert_eq!(AgentMsg::decode(&bad), Err(AgentError::Schema));
        assert_eq!(peek(&bad), None);
        // Truncation surfaces the CBOR error, not a panic.
        let good = AgentMsg::control(AgentKind::Ack, 1, 2).encode();
        for cut in 0..good.len() {
            assert!(AgentMsg::decode(&good[..cut]).is_err());
        }
    }

    #[test]
    fn handshake_then_request_response_ack() {
        let mut client = Session::new(7001);
        assert_eq!(client.request(vec![1]), None, "no requests before establishment");
        let hello = client.hello().unwrap();
        assert_eq!(client.hello(), None, "hello is one-shot");
        let ack = Session::accept(&hello).unwrap();
        assert!(client.on_hello_ack(&ack));
        assert_eq!(client.phase(), SessionPhase::Established);

        let req = client.request(b"sum 1 2".to_vec()).unwrap();
        assert_eq!((req.kind, req.session, req.seq), (AgentKind::Request, 7001, 1));
        assert_eq!(client.outstanding(), 1);
        let resp = AgentMsg {
            kind: AgentKind::Response,
            session: 7001,
            seq: req.seq,
            body: b"3".to_vec(),
        };
        let delivery_ack = client.on_response(&resp).unwrap();
        assert_eq!(delivery_ack.kind, AgentKind::Ack);
        assert_eq!(client.outstanding(), 0);
        assert_eq!(client.on_response(&resp), None, "nothing left to ack");
    }

    #[test]
    fn mismatched_hello_ack_is_ignored() {
        let mut client = Session::new(1);
        client.hello();
        let wrong = AgentMsg::control(AgentKind::HelloAck, 2, 0);
        assert!(!client.on_hello_ack(&wrong));
        assert_eq!(client.phase(), SessionPhase::HelloSent);
    }

    #[test]
    fn relay_banks_bounds_and_delivers() {
        let mut relay = Relay::new(64, 1_000);
        let mut m = machine();
        for i in 0..MAILBOX_CAP {
            assert!(relay.put(42, &[i as u8], 0, &mut m));
        }
        assert!(!relay.put(42, &[0xff], 0, &mut m), "mailbox cap refuses");
        assert_eq!(relay.stats().refused, 1);
        let mut out = Vec::new();
        assert_eq!(relay.fetch_into(42, &mut out, &mut m), MAILBOX_CAP);
        assert_eq!(out.len(), MAILBOX_CAP);
        assert_eq!(out.first().map(Vec::as_slice), Some(&[0u8][..]));
        assert_eq!(relay.fetch_into(42, &mut out, &mut m), 0, "drained");
        assert_eq!(relay.fetch_into(999, &mut out, &mut m), 0, "unknown dest");
        assert!(m.stats().dcache.accesses() > 0, "mailbox walks were charged");
    }

    #[test]
    fn relay_ttl_expiry_reaps_whole_mailboxes() {
        let mut relay = Relay::new(8, 100);
        let mut m = machine();
        relay.put(1, b"a", 0, &mut m);
        relay.put(1, b"b", 0, &mut m);
        relay.put(2, b"c", 50, &mut m);
        assert_eq!(relay.expire(100), 0, "deadline not passed yet");
        assert_eq!(relay.expire(101), 2, "dest 1's mailbox reaped whole");
        assert_eq!(relay.mailboxes(), 1);
        let mut out = Vec::new();
        assert_eq!(relay.fetch_into(1, &mut out, &mut m), 0);
        assert_eq!(relay.fetch_into(2, &mut out, &mut m), 1);
        assert_eq!(relay.stats().expired, 2);
    }
}
