//! Per-class SLO verdicts over a run's class reports.
//!
//! The mixed-service question is not "how fast is the box" but "which
//! classes kept their promises". This module turns the per-class
//! reports `smp::SmpSim` accumulates ([`ClassReport`]) into one
//! verdict per service class: attainment against the class's latency
//! SLO, judged at the service target ([`ATTAINMENT_TARGET`]).

use crate::class::WireClass;
use simnet::stats::ClassReport;

/// Fraction of completed messages that must land within the class SLO
/// for the class to count as met (the usual "two nines" service bar).
pub const ATTAINMENT_TARGET: f64 = 0.99;

/// One class's SLO verdict for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloVerdict {
    /// The class judged.
    pub class: WireClass,
    /// The latency objective it was held to, microseconds.
    pub slo_us: f64,
    /// Fraction of completed messages within the objective.
    pub attainment: f64,
    /// p99 latency of the class, microseconds.
    pub p99_us: f64,
    /// Whether attainment reached [`ATTAINMENT_TARGET`].
    pub met: bool,
}

/// Judges every service class present in `classes` (the
/// `SmpOutcome::classes` vector, indexed by class id). Classes the run
/// never offered a message are skipped — absence is not attainment.
pub fn evaluate(classes: &[ClassReport]) -> Vec<SloVerdict> {
    WireClass::ALL
        .iter()
        .filter_map(|&class| {
            let r = classes.get(class.index())?;
            if r.offered == 0 {
                return None;
            }
            Some(SloVerdict {
                class,
                slo_us: r.slo_us,
                attainment: r.slo_attainment,
                p99_us: r.p99_latency_us,
                met: r.slo_attainment >= ATTAINMENT_TARGET,
            })
        })
        .collect()
}

/// True when every judged class met its SLO.
pub fn all_met(verdicts: &[SloVerdict]) -> bool {
    verdicts.iter().all(|v| v.met)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp::MAX_WCLASS;

    fn report(offered: u64, attainment: f64, slo_us: f64) -> ClassReport {
        ClassReport {
            offered,
            completed: offered,
            slo_us,
            slo_attainment: attainment,
            p99_latency_us: slo_us * 0.9,
            ..ClassReport::default()
        }
    }

    #[test]
    fn judges_only_offered_classes() {
        let mut classes = vec![ClassReport::default(); MAX_WCLASS];
        classes[WireClass::SvcRpc.index()] = report(100, 0.999, 150.0);
        classes[WireClass::MediaCtl.index()] = report(50, 0.5, 80.0);
        let v = evaluate(&classes);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].class, WireClass::SvcRpc);
        assert!(v[0].met);
        assert_eq!(v[1].class, WireClass::MediaCtl);
        assert!(!v[1].met);
        assert!(!all_met(&v));
        assert!(all_met(&v[..1]));
    }

    #[test]
    fn target_is_a_closed_bound() {
        let mut classes = vec![ClassReport::default(); MAX_WCLASS];
        classes[WireClass::Dns.index()] = report(10, ATTAINMENT_TARGET, 300.0);
        let v = evaluate(&classes);
        assert!(v[0].met, "exactly at target counts as met");
    }

    #[test]
    fn empty_and_short_inputs_are_fine() {
        assert!(evaluate(&[]).is_empty());
        assert!(all_met(&[]));
        // A vector shorter than the class indices must not panic.
        assert!(evaluate(&[ClassReport::default()]).is_empty());
    }
}
