//! Versioned binary class framing.
//!
//! The controller-style classes (client signalling, service RPC, media
//! control) share one outer envelope so the demultiplexer can route on
//! a fixed-offset header without touching the payload — the property
//! every small-message fast path is built on. Two wire versions
//! coexist, as they would mid-rollout in a real fleet:
//!
//! * **v1** — 10-byte header: magic, version, class id, flags, 4-byte
//!   sequence number, 2-byte payload length.
//! * **v2** — adds a 4-byte session id to the header (14 bytes) and a
//!   16-bit end-to-end checksum trailer after the payload, so payload
//!   damage from the impairment channel is caught at the frame layer
//!   instead of corrupting class state.
//!
//! Decoding is strict: unknown magic, version, or class, short
//! buffers, length mismatches, and checksum failures are all distinct
//! [`FrameError`]s (the property tests drive corrupted buffers from
//! the impairment path through here and assert rejection, never a
//! panic). The DNS and agent classes do not use this envelope — DNS
//! rides its own query format and agents speak CBOR (`crate::agent`).

use crate::class::WireClass;

/// First byte of every class frame.
pub const MAGIC: u8 = 0xD7;
/// v1 header bytes: magic, version, class, flags, seq, len.
pub const V1_HEADER_LEN: usize = 10;
/// v2 header bytes: v1 fields plus a 4-byte session id.
pub const V2_HEADER_LEN: usize = 14;
/// v2 trailer bytes (checksum).
pub const V2_TRAILER_LEN: usize = 2;
/// Largest payload a frame may carry.
pub const MAX_PAYLOAD: usize = u16::MAX as usize;

/// Wire format revision of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameVersion {
    /// Original header-only format.
    V1 = 1,
    /// Session id in the header, checksum trailer after the payload.
    V2 = 2,
}

impl FrameVersion {
    fn from_byte(b: u8) -> Option<FrameVersion> {
        match b {
            1 => Some(FrameVersion::V1),
            2 => Some(FrameVersion::V2),
            _ => None,
        }
    }
}

/// Why a buffer failed to parse as a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than the fixed header (or declared payload).
    Truncated,
    /// First byte is not [`MAGIC`].
    BadMagic(u8),
    /// Unknown version byte.
    BadVersion(u8),
    /// Class id outside the framed classes.
    BadClass(u8),
    /// Buffer length disagrees with the declared payload length.
    LengthMismatch,
    /// v2 trailer checksum does not match the payload.
    BadChecksum,
}

/// A parsed (or to-be-encoded) class frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Wire revision.
    pub version: FrameVersion,
    /// Which class the payload belongs to.
    pub class: WireClass,
    /// Application flags, carried opaquely.
    pub flags: u8,
    /// Per-sender sequence number.
    pub seq: u32,
    /// Session id (v2 only; encoded as 0 and ignored on v1).
    pub session: u32,
    /// The class payload.
    pub payload: Vec<u8>,
}

/// Internet-style ones'-complement-ish 16-bit sum, folded once. Cheap,
/// deterministic, and order-sensitive enough to catch single-byte
/// damage from the impairment channel.
pub fn checksum16(bytes: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for chunk in bytes.chunks(2) {
        let hi = u32::from(chunk.first().copied().unwrap_or(0));
        let lo = u32::from(chunk.get(1).copied().unwrap_or(0));
        sum = sum.wrapping_add((hi << 8) | lo);
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl Frame {
    /// A v2 frame (the current wire revision) for `class`.
    pub fn v2(class: WireClass, seq: u32, session: u32, payload: Vec<u8>) -> Frame {
        Frame {
            version: FrameVersion::V2,
            class,
            flags: 0,
            seq,
            session,
            payload,
        }
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self.version {
            FrameVersion::V1 => V1_HEADER_LEN + self.payload.len(),
            FrameVersion::V2 => V2_HEADER_LEN + self.payload.len() + V2_TRAILER_LEN,
        }
    }

    /// Serializes by appending to `out` (same contract as
    /// [`signaling::wire::Message::encode_into`]: callers batch many
    /// messages into one buffer).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        debug_assert!(self.payload.len() <= MAX_PAYLOAD);
        out.push(MAGIC);
        out.push(self.version as u8);
        out.push(self.class.id());
        out.push(self.flags);
        out.extend_from_slice(&self.seq.to_be_bytes());
        if self.version == FrameVersion::V2 {
            out.extend_from_slice(&self.session.to_be_bytes());
        }
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        if self.version == FrameVersion::V2 {
            out.extend_from_slice(&checksum16(&self.payload).to_be_bytes());
        }
    }

    /// Serializes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Parses a frame, consuming the whole buffer (trailing bytes are a
    /// [`FrameError::LengthMismatch`] — datagram framing, not a stream).
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        let magic = *buf.first().ok_or(FrameError::Truncated)?;
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let vbyte = *buf.get(1).ok_or(FrameError::Truncated)?;
        let version = FrameVersion::from_byte(vbyte).ok_or(FrameError::BadVersion(vbyte))?;
        let cbyte = *buf.get(2).ok_or(FrameError::Truncated)?;
        let class = match WireClass::from_id(cbyte) {
            Some(c @ (WireClass::ClientSignal | WireClass::SvcRpc | WireClass::MediaCtl)) => c,
            _ => return Err(FrameError::BadClass(cbyte)),
        };
        let flags = *buf.get(3).ok_or(FrameError::Truncated)?;
        let seq = be32(buf, 4).ok_or(FrameError::Truncated)?;
        let (session, len_at) = match version {
            FrameVersion::V1 => (0, 8),
            FrameVersion::V2 => (be32(buf, 8).ok_or(FrameError::Truncated)?, 12),
        };
        let plen = usize::from(be16(buf, len_at).ok_or(FrameError::Truncated)?);
        let body_at = len_at + 2;
        let trailer = match version {
            FrameVersion::V1 => 0,
            FrameVersion::V2 => V2_TRAILER_LEN,
        };
        if buf.len() < body_at + plen + trailer {
            return Err(FrameError::Truncated);
        }
        if buf.len() != body_at + plen + trailer {
            return Err(FrameError::LengthMismatch);
        }
        let payload = buf
            .get(body_at..body_at + plen)
            .ok_or(FrameError::Truncated)?;
        if version == FrameVersion::V2 {
            let want = be16(buf, body_at + plen).ok_or(FrameError::Truncated)?;
            if want != checksum16(payload) {
                return Err(FrameError::BadChecksum);
            }
        }
        Ok(Frame {
            version,
            class,
            flags,
            seq,
            session,
            payload: payload.to_vec(),
        })
    }
}

fn be16(buf: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_be_bytes([
        *buf.get(at)?,
        *buf.get(at.checked_add(1)?)?,
    ]))
}

fn be32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_be_bytes([
        *buf.get(at)?,
        *buf.get(at.checked_add(1)?)?,
        *buf.get(at.checked_add(2)?)?,
        *buf.get(at.checked_add(3)?)?,
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_and_v2_round_trip() {
        for (version, session) in [(FrameVersion::V1, 0u32), (FrameVersion::V2, 0xdead_beef)] {
            let f = Frame {
                version,
                class: WireClass::MediaCtl,
                flags: 0x80,
                seq: 123_456,
                session,
                payload: b"mute:room-7".to_vec(),
            };
            let bytes = f.encode();
            assert_eq!(bytes.len(), f.encoded_len());
            assert_eq!(Frame::decode(&bytes), Ok(f));
        }
    }

    #[test]
    fn signaling_rides_inside_a_v2_frame() {
        let mut payload = Vec::new();
        signaling::wire::sample_setup(9).encode_into(&mut payload);
        let f = Frame::v2(WireClass::ClientSignal, 1, 42, payload.clone());
        let d = Frame::decode(&f.encode()).unwrap();
        assert_eq!(d.payload, payload);
        let inner = signaling::wire::Message::decode(&d.payload).unwrap();
        assert_eq!(inner.call_ref, 9);
    }

    #[test]
    fn rejects_are_specific() {
        let good = Frame::v2(WireClass::SvcRpc, 7, 1, vec![1, 2, 3]).encode();
        assert_eq!(Frame::decode(&[]), Err(FrameError::Truncated));
        let mut b = good.clone();
        b[0] = 0x55;
        assert_eq!(Frame::decode(&b), Err(FrameError::BadMagic(0x55)));
        let mut b = good.clone();
        b[1] = 9;
        assert_eq!(Frame::decode(&b), Err(FrameError::BadVersion(9)));
        let mut b = good.clone();
        b[2] = 5; // Agent is CBOR-framed, not envelope-framed
        assert_eq!(Frame::decode(&b), Err(FrameError::BadClass(5)));
        let mut b = good.clone();
        b.truncate(b.len() - 1);
        assert_eq!(Frame::decode(&b), Err(FrameError::Truncated));
        let mut b = good.clone();
        b.push(0);
        assert_eq!(Frame::decode(&b), Err(FrameError::LengthMismatch));
        let mut b = good.clone();
        let at = V2_HEADER_LEN; // first payload byte
        b[at] ^= 0xff;
        assert_eq!(Frame::decode(&b), Err(FrameError::BadChecksum));
        assert_eq!(Frame::decode(&good).map(|f| f.seq), Ok(7));
    }

    #[test]
    fn v1_has_no_checksum_so_payload_damage_passes_the_frame_layer() {
        // The rollout motivation for v2, stated as a test: v1 cannot
        // catch payload damage, v2 always does.
        let mut f = Frame::v2(WireClass::SvcRpc, 1, 0, vec![0xAA; 32]);
        f.version = FrameVersion::V1;
        let mut v1 = f.encode();
        v1[V1_HEADER_LEN] ^= 0x01;
        assert!(Frame::decode(&v1).is_ok(), "v1 is blind to payload damage");
    }

    #[test]
    fn checksum_catches_any_single_byte_flip() {
        let payload: Vec<u8> = (0..64u8).collect();
        let sum = checksum16(&payload);
        for i in 0..payload.len() {
            for bit in 0..8 {
                let mut p = payload.clone();
                p[i] ^= 1 << bit;
                assert_ne!(checksum16(&p), sum, "flip at {i}.{bit} slipped through");
            }
        }
    }
}
