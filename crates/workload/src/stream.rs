//! The deterministic mixed-stream generator.
//!
//! One service, several protocols: the generator interleaves the five
//! [`WireClass`]es into a single arrival stream the way a production
//! box sees them — Poisson aggregate arrivals, a seeded class draw per
//! message, and heavy-tailed (bounded-Pareto) sizes per class. The
//! paper's Figures 5–9 drive one stack at a time; `figure14` drives
//! this mix through `smp::SmpSim` so the per-class accounting can show
//! what interleaving does to each class's I-cache bill and SLO.
//!
//! Determinism contract: every generated stream is a pure function of
//! its [`MixConfig`] (same config, same stream — bit for bit), and the
//! per-message RNG draw budget is fixed. [`MixedStream::next_arrival`]
//! makes exactly 3 draws per message and [`to_flow_arrivals`] 1 per
//! message, regardless of outcome, so no draw ever depends on an
//! earlier message's class or size. The `rng-draw-budget` analyze rule
//! cross-checks the `// draws: N` annotations against the call sites.

use crate::class::WireClass;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smp::{FlowArrival, FlowKey, MAX_WCLASS};

/// Configuration of a mixed multi-protocol stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixConfig {
    /// Aggregate arrival rate, messages per second (all classes).
    pub rate: f64,
    /// Stream length in seconds.
    pub duration_s: f64,
    /// Relative class weights, in [`WireClass::ALL`] order. Need not
    /// sum to 1; zero-weight classes never appear.
    pub weights: [f64; 5],
    /// Stream seed (class draws, sizes, interarrivals).
    pub seed: u64,
}

impl MixConfig {
    /// The figure14 service mix: RPC-heavy with a media-control
    /// sideband and a trickle of agent relay traffic.
    pub fn service_mix(rate: f64, duration_s: f64, seed: u64) -> MixConfig {
        MixConfig {
            rate,
            duration_s,
            weights: [0.18, 0.34, 0.22, 0.16, 0.10],
            seed,
        }
    }
}

/// The buffer-size ladder message sizes are rounded up to — the fixed
/// mbuf/cluster sizes a real allocator hands out. Quantizing keeps the
/// heavy-tailed *mass* of each class's size distribution while
/// bounding the number of distinct data footprints the cache model
/// sweeps, which is what keeps the footprint-replay memoizer's state
/// space (and CI's replay-hit-rate budget) under control.
pub const SIZE_LADDER: [u32; 12] = [
    48, 64, 96, 128, 192, 256, 384, 512, 768, 1_024, 1_280, 1_440,
];

/// Rounds `bytes` up to the next [`SIZE_LADDER`] rung (saturating at
/// the top rung).
fn quantize(bytes: u32) -> u32 {
    for &rung in &SIZE_LADDER {
        if bytes <= rung {
            return rung;
        }
    }
    SIZE_LADDER[SIZE_LADDER.len() - 1]
}

/// One arrival of the mixed stream: a time, a size, and the class it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassedArrival {
    /// Arrival time in seconds from the start of the run.
    pub time_s: f64,
    /// Message size in bytes (within the class's size band).
    pub bytes: u32,
    /// The traffic class.
    pub class: WireClass,
}

/// The stateful generator behind [`generate`]. Poisson interarrivals
/// at the aggregate rate, a weighted class draw, then a bounded-Pareto
/// size draw from the class's band.
#[derive(Debug)]
pub struct MixedStream {
    rate: f64,
    /// Cumulative class weights, normalised to end at 1.0.
    cum: [f64; 5],
    t: f64,
    rng: StdRng,
}

impl MixedStream {
    /// A stream over `cfg` (ignores `cfg.duration_s`; the stream is
    /// unbounded and callers cut it, cf. `TrafficSource::take_until`).
    pub fn new(cfg: &MixConfig) -> MixedStream {
        assert!(cfg.rate > 0.0, "mixed stream needs a positive rate");
        let total: f64 = cfg.weights.iter().filter(|w| w.is_sign_positive()).sum();
        assert!(total > 0.0, "at least one class weight must be positive");
        let mut cum = [0.0f64; 5];
        let mut acc = 0.0;
        for (c, w) in cum.iter_mut().zip(cfg.weights.iter()) {
            acc += w.max(0.0) / total;
            *c = acc;
        }
        cum[4] = 1.0; // close the distribution against rounding
        MixedStream {
            rate: cfg.rate,
            cum,
            t: 0.0,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x00f1_4f1e),
        }
    }

    /// The next arrival. Fixed draw budget per message — interarrival,
    /// class, size — so later messages never see a draw-stream shifted
    /// by an earlier message's outcome.
    // draws: 3
    pub fn next_arrival(&mut self) -> ClassedArrival {
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        self.t += -u.ln() / self.rate;
        let p: f64 = self.rng.random::<f64>();
        let mut class = WireClass::Agent;
        for (i, c) in WireClass::ALL.iter().enumerate() {
            if p < self.cum.get(i).copied().unwrap_or(1.0) {
                class = *c;
                break;
            }
        }
        let (lo, hi, alpha) = class.size_params();
        let v: f64 = self.rng.random::<f64>().min(1.0 - 1e-12);
        let l = f64::from(lo);
        let h = f64::from(hi);
        // Bounded-Pareto inverse CDF: x = L / (1 - v (1 - (L/H)^a))^(1/a).
        let ratio = (l / h).powf(alpha);
        let x = l / (1.0 - v * (1.0 - ratio)).powf(1.0 / alpha);
        ClassedArrival {
            time_s: self.t,
            // Buffers come in ladder sizes; every class band's ends are
            // rungs, so the quantized size stays within the band.
            bytes: quantize((x as u32).clamp(lo, hi)).clamp(lo, hi),
            class,
        }
    }
}

/// Generates the full stream for `cfg`: every arrival strictly before
/// `cfg.duration_s`, in time order.
pub fn generate(cfg: &MixConfig) -> Vec<ClassedArrival> {
    let mut s = MixedStream::new(cfg);
    let mut out = Vec::new();
    loop {
        let a = s.next_arrival();
        if a.time_s >= cfg.duration_s {
            return out;
        }
        out.push(a);
    }
}

/// Tags each classed arrival with a flow drawn from a per-class slice
/// of a `flows`-flow population (classes do not share flows: an RPC
/// connection is never also a DNS client), producing the
/// [`FlowArrival`]s `smp::SmpSim` runs on. One draw per message.
// draws: 1
pub fn to_flow_arrivals(stream: &[ClassedArrival], flows: u32, seed: u64) -> Vec<FlowArrival> {
    let per_class = (flows / WireClass::ALL.len() as u32).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0f10_c1a5);
    stream
        .iter()
        .map(|a| {
            let within = rng.random_range(0..per_class);
            let flow_id = u32::from(a.class.id() - 1) * per_class + within;
            FlowArrival {
                time_s: a.time_s,
                bytes: a.bytes,
                corrupted: false,
                flow_id,
                key: FlowKey::synth(flow_id, seed),
                wclass: a.class.id(),
            }
        })
        .collect()
}

/// Per-class message counts of a stream, indexed by class id.
pub fn class_counts(stream: &[ClassedArrival]) -> [u64; MAX_WCLASS] {
    let mut out = [0u64; MAX_WCLASS];
    for a in stream {
        if let Some(slot) = out.get_mut(a.class.index()) {
            *slot += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> MixConfig {
        MixConfig::service_mix(20_000.0, 0.5, seed)
    }

    #[test]
    fn streams_are_deterministic_per_config() {
        let a = generate(&cfg(7));
        let b = generate(&cfg(7));
        let c = generate(&cfg(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn mix_matches_the_weights() {
        let stream = generate(&cfg(3));
        let counts = class_counts(&stream);
        let total: u64 = counts.iter().sum();
        assert_eq!(total as usize, stream.len());
        let mix = MixConfig::service_mix(1.0, 1.0, 0).weights;
        for (c, want) in WireClass::ALL.iter().zip(mix.iter()) {
            let got = counts[c.index()] as f64 / total as f64;
            assert!(
                (got - want).abs() < 0.03,
                "{c:?}: got {got:.3}, want {want:.3}"
            );
        }
    }

    #[test]
    fn sizes_stay_in_band_and_are_heavy_tailed() {
        let stream = generate(&cfg(11));
        for c in WireClass::ALL {
            let (lo, hi, _) = c.size_params();
            let sizes: Vec<u32> = stream
                .iter()
                .filter(|a| a.class == c)
                .map(|a| a.bytes)
                .collect();
            assert!(sizes.len() > 100, "{c:?} underrepresented");
            assert!(sizes.iter().all(|&b| (lo..=hi).contains(&b)), "{c:?}");
            assert!(
                sizes.iter().all(|&b| SIZE_LADDER.contains(&b)),
                "{c:?}: sizes must be buffer-ladder rungs"
            );
            // Heavy tail: the median hugs the floor, the max does not.
            let mut sorted = sizes.clone();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2];
            let max = *sorted.last().unwrap();
            assert!(median < lo + (hi - lo) / 4, "{c:?} median {median}");
            assert!(max > lo + (hi - lo) / 2, "{c:?} max {max} never tails");
        }
    }

    #[test]
    fn flow_tags_partition_by_class() {
        let stream = generate(&cfg(5));
        let tagged = to_flow_arrivals(&stream, 250, 5);
        assert_eq!(tagged.len(), stream.len());
        assert_eq!(tagged, to_flow_arrivals(&stream, 250, 5), "deterministic");
        let per_class = 250 / 5;
        for (a, f) in stream.iter().zip(tagged.iter()) {
            assert_eq!(f.wclass, a.class.id());
            assert_eq!(f.bytes, a.bytes);
            let band = u32::from(a.class.id() - 1) * per_class;
            assert!(
                (band..band + per_class).contains(&f.flow_id),
                "{:?} flow {} outside its class band",
                a.class,
                f.flow_id
            );
        }
    }

    #[test]
    fn ladder_is_sorted_and_covers_every_band_end() {
        assert!(SIZE_LADDER.windows(2).all(|w| w[0] < w[1]));
        for c in WireClass::ALL {
            let (lo, hi, _) = c.size_params();
            assert!(SIZE_LADDER.contains(&lo), "{c:?} floor off the ladder");
            assert!(SIZE_LADDER.contains(&hi), "{c:?} ceiling off the ladder");
        }
        assert_eq!(quantize(1), 48);
        assert_eq!(quantize(48), 48);
        assert_eq!(quantize(49), 64);
        assert_eq!(quantize(2_000), 1_440, "saturates at the top rung");
    }

    #[test]
    fn zero_weight_classes_never_appear() {
        let mut c = cfg(9);
        c.weights = [0.0, 1.0, 0.0, 0.0, 0.0];
        let stream = generate(&c);
        assert!(!stream.is_empty());
        assert!(stream.iter().all(|a| a.class == WireClass::SvcRpc));
    }
}
