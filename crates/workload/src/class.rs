//! The message-class taxonomy of the mixed service.
//!
//! A production small-message box rarely runs one protocol. The paper's
//! single-protocol streams (Figures 5–9) answer "how fast is one
//! stack"; a realistic service interleaves several, each with its own
//! handler footprint, shared-state table, and latency expectation.
//! [`WireClass`] names the five traffic classes the workload generator
//! mixes, and maps each to the [`WClassProfile`] the multi-core
//! simulator charges per message:
//!
//! * **ClientSignal** — Q.93B-style call signalling from end clients
//!   (SETUP/CONNECT/RELEASE inside a v2 class frame). Big handler:
//!   call-state machines drag the most code per message.
//! * **SvcRpc** — service-to-service attribute RPC (the NFS
//!   GETATTR-shaped traffic of `signaling::rpc`). Lean handler, big
//!   session table: many concurrent peers, little code.
//! * **MediaCtl** — media-control commands (mute/pin/layout changes).
//!   Tiny messages, tiny handler, and the tightest SLO in the mix: a
//!   control surface that lags is visibly broken.
//! * **Dns** — name lookups ahead of connection setup
//!   (`signaling::dns` wire format). Mid-size handler, the widest
//!   fan-out table (one slot per cached name).
//! * **Agent** — CBOR-framed agent-to-agent messaging with sessions,
//!   acks, and relay store-and-forward (`crate::agent`). The fattest
//!   handler and the loosest SLO: relays tolerate latency, not loss.
//!
//! Class id 0 is reserved for untagged legacy traffic (see
//! `smp::steer::FlowArrival::wclass`) and never appears here.

use smp::{WClassProfile, MAX_WCLASS};

/// A traffic class in the mixed service. Discriminants are the on-wire
/// class ids (and the `wclass` indices the simulator accounts under).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum WireClass {
    /// Client call signalling (Q.93B-shaped, framed).
    ClientSignal = 1,
    /// Service-to-service attribute RPC.
    SvcRpc = 2,
    /// Media-control commands.
    MediaCtl = 3,
    /// DNS lookups.
    Dns = 4,
    /// CBOR agent messaging (sessions, acks, relay).
    Agent = 5,
}

impl WireClass {
    /// Every class, in id order.
    pub const ALL: [WireClass; 5] = [
        WireClass::ClientSignal,
        WireClass::SvcRpc,
        WireClass::MediaCtl,
        WireClass::Dns,
        WireClass::Agent,
    ];

    /// The on-wire class id (1..=5; 0 is untagged legacy traffic).
    pub fn id(self) -> u8 {
        self as u8
    }

    /// The `SmpOutcome::classes` index this class is accounted under.
    pub fn index(self) -> usize {
        usize::from(self.id())
    }

    /// Parses an on-wire class id.
    pub fn from_id(id: u8) -> Option<WireClass> {
        match id {
            1 => Some(WireClass::ClientSignal),
            2 => Some(WireClass::SvcRpc),
            3 => Some(WireClass::MediaCtl),
            4 => Some(WireClass::Dns),
            5 => Some(WireClass::Agent),
            _ => None,
        }
    }

    /// Short CSV-friendly label.
    pub fn label(self) -> &'static str {
        match self {
            WireClass::ClientSignal => "sig",
            WireClass::SvcRpc => "rpc",
            WireClass::MediaCtl => "media",
            WireClass::Dns => "dns",
            WireClass::Agent => "agent",
        }
    }

    /// The per-message service profile the simulator charges: handler
    /// code swept per message, session-table reach, and the class SLO.
    /// Footprints straddle the paper's per-layer ~6 KB so the I-cache
    /// pressure axis stays recognisable class by class.
    pub fn profile(self) -> WClassProfile {
        match self {
            WireClass::ClientSignal => WClassProfile {
                handler_code_bytes: 5_632,
                table_slots: 4_096,
                slo_us: 400.0,
            },
            WireClass::SvcRpc => WClassProfile {
                handler_code_bytes: 2_048,
                table_slots: 8_192,
                slo_us: 150.0,
            },
            WireClass::MediaCtl => WClassProfile {
                handler_code_bytes: 1_280,
                table_slots: 1_024,
                slo_us: 80.0,
            },
            WireClass::Dns => WClassProfile {
                handler_code_bytes: 3_072,
                table_slots: 16_384,
                slo_us: 300.0,
            },
            WireClass::Agent => WClassProfile {
                handler_code_bytes: 7_168,
                table_slots: 2_048,
                slo_us: 800.0,
            },
        }
    }

    /// Bounded-Pareto size parameters `(min_bytes, max_bytes, alpha)`
    /// for the class's message sizes. Everything stays small-message
    /// (the paper's regime) but heavy-tailed within its band; the
    /// ceiling is one MTU-sized datagram, which also keeps every
    /// message inside `SmpConfig::pool_buf_bytes` (1536) ring buffers.
    pub fn size_params(self) -> (u32, u32, f64) {
        match self {
            WireClass::ClientSignal => (64, 512, 1.3),
            WireClass::SvcRpc => (96, 1_440, 1.1),
            WireClass::MediaCtl => (48, 256, 1.5),
            WireClass::Dns => (64, 512, 1.2),
            WireClass::Agent => (128, 1_440, 1.05),
        }
    }
}

/// The full `SmpConfig::wclass` profile array: the five service classes
/// at their ids, zeros elsewhere (class 0 stays untagged/free).
pub fn profiles() -> [WClassProfile; MAX_WCLASS] {
    let mut out = [WClassProfile::default(); MAX_WCLASS];
    for c in WireClass::ALL {
        if let Some(slot) = out.get_mut(c.index()) {
            *slot = c.profile();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_zero_is_reserved() {
        for c in WireClass::ALL {
            assert_eq!(WireClass::from_id(c.id()), Some(c));
            assert!(c.id() >= 1 && (c.index()) < MAX_WCLASS);
        }
        assert_eq!(WireClass::from_id(0), None);
        assert_eq!(WireClass::from_id(6), None);
    }

    #[test]
    fn profiles_land_at_their_ids() {
        let p = profiles();
        assert_eq!(p[0], WClassProfile::default(), "class 0 stays free");
        for c in WireClass::ALL {
            assert_eq!(p[c.index()], c.profile());
            assert!(c.profile().handler_code_bytes > 0);
            assert!(c.profile().slo_us > 0.0);
        }
        assert_eq!(p[6], WClassProfile::default());
        assert_eq!(p[7], WClassProfile::default());
    }

    #[test]
    fn media_has_the_tightest_slo_and_agent_the_fattest_handler() {
        let slos: Vec<f64> = WireClass::ALL.iter().map(|c| c.profile().slo_us).collect();
        let min = slos.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(WireClass::MediaCtl.profile().slo_us, min);
        let fattest = WireClass::ALL
            .iter()
            .max_by_key(|c| c.profile().handler_code_bytes)
            .copied();
        assert_eq!(fattest, Some(WireClass::Agent));
    }

    #[test]
    fn size_bands_are_sane() {
        for c in WireClass::ALL {
            let (lo, hi, alpha) = c.size_params();
            assert!(lo >= 40 && lo < hi, "{c:?}");
            assert!(hi <= 1_440, "one MTU datagram, pool-buffer safe: {c:?}");
            assert!(alpha > 1.0, "finite-ish mean: {c:?}");
        }
    }
}
