//! The mixed-service dispatch loop: classify, count, route.
//!
//! A multi-protocol box spends its first instructions per message
//! deciding *which* stack a buffer belongs to. This loop does that the
//! way the paper's fast paths do — by peeking fixed-offset leading
//! bytes, never by parsing: framed classes route on the class byte of
//! the [`crate::frame`] envelope, agent traffic on the CBOR map head
//! ([`agent::peek`]), and relay operations go straight to the
//! [`Relay`] without materializing the envelope.
//!
//! This is the `workload-dispatch` hot-path root the analyzer holds to
//! the panic-path, alloc-path, and charge-coverage rules: nothing
//! reachable from [`dispatch_batch`] may panic, allocate without a
//! justified bound, or touch a charged table without costing the walk
//! against the cache model.

use crate::agent::{self, AgentKind, Relay};
use crate::class::WireClass;
use crate::frame;
use cachesim::Machine;
use smp::MAX_WCLASS;

/// Smallest plausible DNS message: the fixed 12-byte header.
const DNS_MIN_LEN: usize = 12;

/// What one [`dispatch_batch`] pass saw and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Messages classified, indexed by class id (index 0 unused).
    pub seen: [u64; MAX_WCLASS],
    /// Buffers no classifier claimed, plus agent buffers whose
    /// envelope peek failed.
    pub malformed: u64,
    /// `RelayPut` envelopes banked (or refused) at the relay.
    pub relay_puts: u64,
    /// `RelayFetch` envelopes that drained a mailbox.
    pub relay_fetches: u64,
    /// Payloads handed back by relay fetches.
    pub relay_delivered: u64,
}

impl DispatchStats {
    /// Messages dispatched across all classes.
    pub fn total_seen(&self) -> u64 {
        self.seen.iter().sum()
    }
}

/// Classifies a buffer by its leading bytes, without parsing.
///
/// * [`frame::MAGIC`] first byte → the framed classes, routed on the
///   class byte at offset 2 (only the framed ids are accepted).
/// * `0xa4` (a CBOR 4-entry map head) → [`WireClass::Agent`].
/// * Anything else at least a DNS header long → [`WireClass::Dns`]
///   (DNS is the residual protocol of the mix, as it is on port 53).
pub fn classify(buf: &[u8]) -> Option<WireClass> {
    match buf.first().copied() {
        Some(frame::MAGIC) => match WireClass::from_id(buf.get(2).copied()?) {
            Some(c @ (WireClass::ClientSignal | WireClass::SvcRpc | WireClass::MediaCtl)) => {
                Some(c)
            }
            _ => None,
        },
        Some(0xa4) => Some(WireClass::Agent),
        Some(_) if buf.len() >= DNS_MIN_LEN => Some(WireClass::Dns),
        _ => None,
    }
}

/// Dispatches one batch of received buffers at simulated time `now`.
///
/// Framed and DNS classes are counted and handed on (their handler
/// cost is charged by `smp::SmpSim`'s per-class accounting); agent
/// relay operations execute against `relay`, whose mailbox walks are
/// charged to `machine`. Fetched payloads land in `delivered`, a
/// caller-reused scratch buffer.
// analyze::hot_path(workload-dispatch)
pub fn dispatch_batch(
    bufs: &[Vec<u8>],
    now: u64,
    relay: &mut Relay,
    machine: &mut Machine,
    delivered: &mut Vec<Vec<u8>>,
    stats: &mut DispatchStats,
) {
    for buf in bufs {
        let Some(class) = classify(buf) else {
            stats.malformed += 1;
            continue;
        };
        if let Some(slot) = stats.seen.get_mut(class.index() & (MAX_WCLASS - 1)) {
            *slot += 1;
        }
        if class != WireClass::Agent {
            continue;
        }
        match agent::peek(buf) {
            Some((AgentKind::RelayPut, session, _)) => {
                stats.relay_puts += 1;
                relay.put(session, buf, now, machine);
            }
            Some((AgentKind::RelayFetch, session, _)) => {
                stats.relay_fetches += 1;
                stats.relay_delivered += relay.fetch_into(session, delivered, machine) as u64;
            }
            Some(_) => {}
            None => stats.malformed += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentMsg;
    use crate::frame::Frame;
    use cachesim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::synthetic_benchmark())
    }

    #[test]
    fn classify_routes_on_leading_bytes() {
        let framed = Frame::v2(WireClass::MediaCtl, 1, 2, vec![9; 16]).encode();
        assert_eq!(classify(&framed), Some(WireClass::MediaCtl));
        let agent = AgentMsg::control(AgentKind::Hello, 7, 0).encode();
        assert_eq!(classify(&agent), Some(WireClass::Agent));
        let dns = signaling::dns::DnsMessage::query(1, "svc.example").encode();
        assert_eq!(classify(&dns), Some(WireClass::Dns));
        assert_eq!(classify(&[]), None);
        assert_eq!(classify(&[0x01, 0x02]), None, "too short for DNS");
        let mut bad = framed;
        bad[2] = 9;
        assert_eq!(classify(&bad), None, "unframed class id");
    }

    #[test]
    fn batch_counts_classes_and_flags_malformed() {
        let bufs = vec![
            Frame::v2(WireClass::ClientSignal, 1, 1, vec![1]).encode(),
            Frame::v2(WireClass::SvcRpc, 2, 1, vec![2]).encode(),
            Frame::v2(WireClass::SvcRpc, 3, 1, vec![3]).encode(),
            signaling::dns::DnsMessage::query(5, "a.b").encode(),
            vec![0xff, 0x00], // claimed by nobody
        ];
        let mut relay = Relay::new(8, 100);
        let mut m = machine();
        let mut out = Vec::new();
        let mut stats = DispatchStats::default();
        dispatch_batch(&bufs, 0, &mut relay, &mut m, &mut out, &mut stats);
        assert_eq!(stats.seen[WireClass::ClientSignal.index()], 1);
        assert_eq!(stats.seen[WireClass::SvcRpc.index()], 2);
        assert_eq!(stats.seen[WireClass::Dns.index()], 1);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.total_seen(), 4);
    }

    #[test]
    fn relay_round_trip_through_dispatch() {
        let dest = 0x5e55_1011u64;
        let put = AgentMsg {
            kind: AgentKind::RelayPut,
            session: dest,
            seq: 1,
            body: b"offline delivery".to_vec(),
        }
        .encode();
        let fetch = AgentMsg::control(AgentKind::RelayFetch, dest, 2).encode();
        let hello = AgentMsg::control(AgentKind::Hello, 1, 0).encode();

        let mut relay = Relay::new(8, 1_000);
        let mut m = machine();
        let mut out = Vec::new();
        let mut stats = DispatchStats::default();
        dispatch_batch(
            &[put.clone(), hello, fetch],
            0,
            &mut relay,
            &mut m,
            &mut out,
            &mut stats,
        );
        assert_eq!(stats.seen[WireClass::Agent.index()], 3);
        assert_eq!((stats.relay_puts, stats.relay_fetches), (1, 1));
        assert_eq!(stats.relay_delivered, 1);
        assert_eq!(out, vec![put], "the banked envelope comes back whole");
        assert_eq!(relay.stats().delivered, 1);
        assert!(m.stats().dcache.accesses() > 0, "relay walks were charged");
    }

    #[test]
    fn corrupt_agent_buffers_are_malformed_not_fatal() {
        // A CBOR-map head with garbage behind it: classify says Agent,
        // peek refuses, nothing panics.
        let mut stats = DispatchStats::default();
        let mut relay = Relay::new(4, 100);
        let mut m = machine();
        let mut out = Vec::new();
        dispatch_batch(
            &[vec![0xa4, 0xff, 0xff], vec![0xa4]],
            0,
            &mut relay,
            &mut m,
            &mut out,
            &mut stats,
        );
        assert_eq!(stats.seen[WireClass::Agent.index()], 2);
        assert_eq!(stats.malformed, 2);
        assert_eq!(relay.mailboxes(), 0);
    }
}
