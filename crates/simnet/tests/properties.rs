//! Property tests for the statistics layer and the simulator's
//! conservation law.
//!
//! * [`simnet::stats::percentile`] must be monotone in `q`, bounded by
//!   the sample extremes, and agree with an independently-written
//!   reference implementation on every input.
//! * `offered == completed + rejected + drops + shed + in_flight` must
//!   hold under arbitrary duplication and corruption impairments (the
//!   accounting seam where double-counting bugs would hide).

use proptest::prelude::*;
use simnet::impair::{impair_arrivals, ImpairConfig};
use simnet::stats::percentile;
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim_impaired, SimConfig};

use cachesim::MachineConfig;
use ldlp::synth::paper_stack;
use ldlp::{BatchPolicy, Discipline, StackEngine};

/// Independent reference: linear interpolation between the order
/// statistics at rank `(n - 1) * q`, written from the definition rather
/// than by mirroring the production code.
fn percentile_reference(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (n - 1) as f64;
    let below = sorted[pos.floor() as usize];
    let above = sorted[(pos.floor() as usize + 1).min(n - 1)];
    below + (above - below) * pos.fract()
}

fn sorted_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e6, 1..40).prop_map(|mut v| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        v
    })
}

proptest! {
    #[test]
    fn percentile_is_monotone_in_q(samples in sorted_samples(), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(
            percentile(&samples, lo) <= percentile(&samples, hi),
            "percentile must not decrease as q grows"
        );
    }

    #[test]
    fn percentile_is_bounded_by_the_extremes(samples in sorted_samples(), q in 0.0f64..=1.0) {
        let p = percentile(&samples, q);
        let min = samples[0];
        let max = samples[samples.len() - 1];
        prop_assert!(p >= min, "percentile {p} below min {min}");
        prop_assert!(p <= max, "percentile {p} above max {max}");
    }

    #[test]
    fn percentile_hits_the_endpoints(samples in sorted_samples()) {
        prop_assert_eq!(percentile(&samples, 0.0), samples[0]);
        prop_assert_eq!(percentile(&samples, 1.0), samples[samples.len() - 1]);
    }

    #[test]
    fn percentile_agrees_with_the_reference(samples in sorted_samples(), q in 0.0f64..=1.0) {
        let got = percentile(&samples, q);
        let want = percentile_reference(&samples, q);
        prop_assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "percentile({q}) = {got}, reference = {want}"
        );
    }

    #[test]
    fn percentile_of_a_constant_is_the_constant(v in 0.0f64..1e6, n in 1usize..30, q in 0.0f64..=1.0) {
        let samples = vec![v; n];
        // `v*(1-frac) + v*frac` can land one ulp away from `v`.
        let p = percentile(&samples, q);
        prop_assert!((p - v).abs() <= f64::EPSILON * v.abs(), "percentile({q}) = {p}, want {v}");
    }

    /// Conservation under duplication + corruption: every duplicated
    /// delivery is a fresh offered message and every corrupted one must
    /// land in `rejected`, never vanish or double-count.
    #[test]
    fn conservation_holds_under_duplication_and_corruption(
        dup_pct in 0u32..40,
        corrupt_pct in 0u32..40,
        rate in 1000u32..8000,
        seed in 1u64..64,
        ldlp in any::<bool>(),
    ) {
        let duration_s = 0.02;
        let arrivals = PoissonSource::new(rate as f64, 552, seed).take_until(duration_s);
        let (deliveries, counters) = impair_arrivals(
            &arrivals,
            ImpairConfig {
                dup_prob: dup_pct as f64 / 100.0,
                corrupt_prob: corrupt_pct as f64 / 100.0,
                seed: seed ^ 0xc0de,
                ..ImpairConfig::default()
            },
        );
        let discipline = if ldlp {
            Discipline::Ldlp(BatchPolicy::DCacheFit)
        } else {
            Discipline::Conventional
        };
        let (machine, layers) = paper_stack(MachineConfig::synthetic_benchmark(), seed);
        // Verify at layer 0 so corrupted deliveries are rejected there.
        let mut engine = StackEngine::new(machine, layers, discipline).with_verify_layer(0);
        let cfg = SimConfig {
            duration_s,
            pool_seed: seed,
            ..SimConfig::default()
        };
        let r = run_sim_impaired(&mut engine, &deliveries, &cfg, counters);
        prop_assert!(r.conservation_holds(), "conservation violated: {r:?}");
        prop_assert_eq!(r.offered, deliveries.len() as u64, "every delivery is offered");
        prop_assert_eq!(r.net_duplicated, counters.duplicated);
        prop_assert_eq!(r.net_corrupted, counters.corrupted);
        if corrupt_pct == 0 {
            prop_assert_eq!(r.rejected, 0, "clean runs reject nothing");
        }
    }
}
