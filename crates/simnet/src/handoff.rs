//! Bounded inter-core hand-off queues for the SMP pipeline.
//!
//! When the protocol stack is software-pipelined across cores
//! (FlexTOE-style layer affinity, see `crates/smp`), a stage that
//! finishes its slice of the stack parks the batch in a bounded queue
//! for the next stage. Each item carries the simulated cycle at which
//! it becomes visible downstream, so the consuming core cannot start
//! before its producer finished.
//!
//! The queue itself is pure bookkeeping — the *cost* of a hand-off
//! (descriptor-ring writes and reads through the shared L2, coherence
//! transfers) is charged by the run loop via
//! `cachesim::coherence::SharedL2`.
//!
//! Boundedness gives natural backpressure: a producer never forms a
//! batch larger than the free space of its downstream queue, so under
//! overload the backlog accumulates at the entry queue (where the
//! admission policy decides who is dropped) and nothing is silently
//! lost mid-pipeline — the conservation law stays exact.

use std::collections::VecDeque;

/// A bounded FIFO of items that become ready at known simulated cycles.
///
/// Ready times must be pushed in non-decreasing order (a single
/// producing stage finishes batches in time order), which keeps
/// [`Handoff::next_ready`] and [`Handoff::ready_count`] O(1)-per-item
/// front scans.
#[derive(Debug, Clone)]
pub struct Handoff<T> {
    items: VecDeque<(u64, T)>,
    cap: usize,
    pushed: u64,
    popped: u64,
}

impl<T> Handoff<T> {
    /// An empty queue holding at most `cap` items. `cap` must be > 0.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "hand-off queue capacity must be positive");
        Handoff {
            items: VecDeque::with_capacity(cap),
            cap,
            pushed: 0,
            popped: 0,
        }
    }

    /// Items currently parked.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Remaining slots before the queue is full.
    pub fn free(&self) -> usize {
        self.cap - self.items.len()
    }

    /// Total items ever pushed (the producer-side descriptor sequence
    /// number: `pushed % cap` is the ring slot the next push writes).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total items ever popped (the consumer-side sequence number).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Parks `item`, visible downstream from cycle `ready`. Returns
    /// `false` (and drops nothing — the item is handed back untouched
    /// conceptually; callers size batches by [`Handoff::free`] first)
    /// when the queue is full.
    pub fn push(&mut self, ready: u64, item: T) -> bool {
        if self.items.len() == self.cap {
            return false;
        }
        debug_assert!(
            self.items.back().is_none_or(|&(r, _)| r <= ready),
            "hand-off ready times must be non-decreasing"
        );
        // analyze::allow(alloc-path, reason = "hand-off ring is bounded by cap; deque capacity is warm after the first wrap")
        self.items.push_back((ready, item));
        self.pushed += 1;
        true
    }

    /// Iterates `(ready, item)` pairs front to back (arrival order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.items.iter().map(|(r, item)| (*r, item))
    }

    /// The cycle at which the front item becomes visible, if any.
    pub fn next_ready(&self) -> Option<u64> {
        self.items.front().map(|&(r, _)| r)
    }

    /// How many items (from the front) are visible at cycle `now`.
    pub fn ready_count(&self, now: u64) -> usize {
        self.items.iter().take_while(|&&(r, _)| r <= now).count()
    }

    /// Pops the front item if it is visible at cycle `now`.
    pub fn pop(&mut self, now: u64) -> Option<T> {
        match self.items.front() {
            Some(&(r, _)) if r <= now => {
                self.popped += 1;
                self.items.pop_front().map(|(_, item)| item)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_with_ready_times() {
        let mut q: Handoff<u32> = Handoff::new(4);
        assert!(q.is_empty());
        assert!(q.push(10, 1));
        assert!(q.push(10, 2));
        assert!(q.push(25, 3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_ready(), Some(10));
        assert_eq!(q.ready_count(9), 0);
        assert_eq!(q.ready_count(10), 2);
        assert_eq!(q.ready_count(30), 3);
        assert_eq!(q.pop(9), None, "not visible yet");
        assert_eq!(q.pop(10), Some(1));
        assert_eq!(q.pop(10), Some(2));
        assert_eq!(q.pop(10), None, "third item still in flight");
        assert_eq!(q.pop(25), Some(3));
        assert_eq!((q.pushed(), q.popped()), (3, 3));
    }

    #[test]
    fn boundedness_refuses_when_full() {
        let mut q: Handoff<u32> = Handoff::new(2);
        assert!(q.push(1, 1));
        assert!(q.push(1, 2));
        assert_eq!(q.free(), 0);
        assert!(!q.push(1, 3), "full queue must refuse");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed(), 2, "refused push is not counted");
    }
}
