//! Bounded inter-core hand-off queues for the SMP pipeline.
//!
//! When the protocol stack is software-pipelined across cores
//! (FlexTOE-style layer affinity, see `crates/smp`), a stage that
//! finishes its slice of the stack parks the batch in a bounded queue
//! for the next stage. Each item carries the simulated cycle at which
//! it becomes visible downstream, so the consuming core cannot start
//! before its producer finished.
//!
//! The queue itself is pure bookkeeping — the *cost* of a hand-off
//! (descriptor-ring writes and reads through the shared L2, coherence
//! transfers) is charged by the run loop via
//! `cachesim::coherence::SharedL2`.
//!
//! Boundedness gives natural backpressure: a producer never forms a
//! batch larger than the free space of its downstream queue, so under
//! overload the backlog accumulates at the entry queue (where the
//! admission policy decides who is dropped) and nothing is silently
//! lost mid-pipeline — the conservation law stays exact.

use std::cell::Cell;
use std::collections::VecDeque;

/// A bounded FIFO of items that become ready at known simulated cycles.
///
/// Ready times must be pushed in non-decreasing order (a single
/// producing stage finishes batches in time order). Because ready
/// times are monotone, an item observed ready once stays ready, so
/// [`Handoff::ready_count`] caches the ready-prefix cursor and each
/// item is compared against the clock at most once over its lifetime
/// (plus one frontier probe per call) — amortized O(1) per item, as
/// the SMP event loop polls this once per scheduler pass.
#[derive(Debug, Clone)]
pub struct Handoff<T> {
    items: VecDeque<(u64, T)>,
    cap: usize,
    pushed: u64,
    popped: u64,
    /// Front items already proven ready at `cursor_now`. Interior
    /// mutability keeps [`Handoff::ready_count`] a `&self` read.
    ready_cursor: Cell<usize>,
    /// The clock value the cursor was last advanced against.
    cursor_now: Cell<u64>,
    /// Ready-time comparisons performed by the cursor scan; pinned by
    /// the amortized-cost unit test.
    scan_cmps: Cell<u64>,
}

impl<T> Handoff<T> {
    /// An empty queue holding at most `cap` items. `cap` must be > 0.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "hand-off queue capacity must be positive");
        Handoff {
            items: VecDeque::with_capacity(cap),
            cap,
            pushed: 0,
            popped: 0,
            ready_cursor: Cell::new(0),
            cursor_now: Cell::new(0),
            scan_cmps: Cell::new(0),
        }
    }

    /// Items currently parked.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Remaining slots before the queue is full.
    pub fn free(&self) -> usize {
        self.cap - self.items.len()
    }

    /// Total items ever pushed (the producer-side descriptor sequence
    /// number: `pushed % cap` is the ring slot the next push writes).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total items ever popped (the consumer-side sequence number).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Parks `item`, visible downstream from cycle `ready`. When the
    /// queue is full the item is handed back untouched as `Err(item)`
    /// — a refused push destroys nothing, so flow-controlled producers
    /// can hold the item and retry once the consumer drains.
    pub fn push(&mut self, ready: u64, item: T) -> Result<(), T> {
        if self.items.len() == self.cap {
            return Err(item);
        }
        debug_assert!(
            self.items.back().is_none_or(|&(r, _)| r <= ready),
            "hand-off ready times must be non-decreasing"
        );
        // analyze::allow(alloc-path, reason = "hand-off ring is bounded by cap; deque capacity is warm after the first wrap")
        self.items.push_back((ready, item));
        self.pushed += 1;
        Ok(())
    }

    /// Iterates `(ready, item)` pairs front to back (arrival order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.items.iter().map(|(r, item)| (*r, item))
    }

    /// The cycle at which the front item becomes visible, if any.
    pub fn next_ready(&self) -> Option<u64> {
        self.items.front().map(|&(r, _)| r)
    }

    /// How many items (from the front) are visible at cycle `now`.
    ///
    /// Amortized O(1) per item: ready times are non-decreasing, so the
    /// scan resumes from the cached cursor instead of rescanning the
    /// whole ready prefix on every poll. If `now` moves backwards
    /// (e.g. a fresh measurement window), the cursor rescans from the
    /// front — correctness never depends on a monotone caller clock.
    pub fn ready_count(&self, now: u64) -> usize {
        let mut k = if now < self.cursor_now.get() {
            0
        } else {
            self.ready_cursor.get().min(self.items.len())
        };
        while k < self.items.len() {
            self.scan_cmps.set(self.scan_cmps.get() + 1);
            match self.items.get(k) {
                Some(&(r, _)) if r <= now => k += 1,
                _ => break,
            }
        }
        self.ready_cursor.set(k);
        self.cursor_now.set(now);
        k
    }

    /// Ready-time comparisons performed by [`Handoff::ready_count`] so
    /// far — the amortized-cost regression test pins this.
    pub fn scan_comparisons(&self) -> u64 {
        self.scan_cmps.get()
    }

    /// Pops the front item if it is visible at cycle `now`.
    pub fn pop(&mut self, now: u64) -> Option<T> {
        match self.items.front() {
            Some(&(r, _)) if r <= now => {
                self.popped += 1;
                // The popped item sat in the proven-ready prefix; slide
                // the cursor with the front so it keeps indexing the
                // same logical position.
                let cur = self.ready_cursor.get();
                self.ready_cursor.set(cur.saturating_sub(1));
                self.items.pop_front().map(|(_, item)| item)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_with_ready_times() {
        let mut q: Handoff<u32> = Handoff::new(4);
        assert!(q.is_empty());
        assert!(q.push(10, 1).is_ok());
        assert!(q.push(10, 2).is_ok());
        assert!(q.push(25, 3).is_ok());
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_ready(), Some(10));
        assert_eq!(q.ready_count(9), 0);
        assert_eq!(q.ready_count(10), 2);
        assert_eq!(q.ready_count(30), 3);
        assert_eq!(q.pop(9), None, "not visible yet");
        assert_eq!(q.pop(10), Some(1));
        assert_eq!(q.pop(10), Some(2));
        assert_eq!(q.pop(10), None, "third item still in flight");
        assert_eq!(q.pop(25), Some(3));
        assert_eq!((q.pushed(), q.popped()), (3, 3));
    }

    #[test]
    fn boundedness_refuses_when_full() {
        let mut q: Handoff<u32> = Handoff::new(2);
        assert!(q.push(1, 1).is_ok());
        assert!(q.push(1, 2).is_ok());
        assert_eq!(q.free(), 0);
        assert_eq!(q.push(1, 3), Err(3), "full queue must refuse");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed(), 2, "refused push is not counted");
    }

    #[test]
    fn refused_item_is_recoverable() {
        // A push against a full queue hands the item back intact so a
        // flow-controlled producer can hold it and retry after a pop —
        // nothing is silently destroyed mid-pipeline.
        let mut q: Handoff<String> = Handoff::new(1);
        assert!(q.push(5, "first".to_string()).is_ok());
        let held = q.push(6, "second".to_string()).unwrap_err();
        assert_eq!(held, "second", "refused item comes back unmodified");
        assert_eq!(q.pop(5), Some("first".to_string()));
        assert!(q.push(6, held).is_ok(), "held item can be re-offered");
        assert_eq!(q.pop(6), Some("second".to_string()));
        assert_eq!((q.pushed(), q.popped()), (2, 2));
    }

    #[test]
    fn ready_count_is_amortized_constant_per_item() {
        // Each item crosses the readiness frontier exactly once, so n
        // items polled m times cost at most n successful comparisons
        // plus one frontier probe per poll — not O(n) per poll.
        let n = 64u64;
        let mut q: Handoff<u64> = Handoff::new(n as usize);
        for i in 0..n {
            assert!(q.push(10 * (i + 1), i).is_ok());
        }
        let polls = 200u64;
        for t in 0..polls {
            let expect = (4 * t / 10).min(n);
            assert_eq!(q.ready_count(4 * t), expect as usize);
        }
        assert!(
            q.scan_comparisons() <= n + polls,
            "cursor scan must be amortized O(1) per item: {} comparisons for {} items / {} polls",
            q.scan_comparisons(),
            n,
            polls
        );
        // A stale (smaller) clock still answers correctly by rescanning.
        assert_eq!(q.ready_count(25), 2);
        assert_eq!(q.ready_count(4 * polls), n as usize);
        // Pops slide the cursor with the queue front.
        assert_eq!(q.pop(4 * polls), Some(0));
        assert_eq!(q.ready_count(4 * polls), n as usize - 1);
    }
}
