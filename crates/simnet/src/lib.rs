//! # simnet — load simulation for layer-processing schedules
//!
//! The experimental apparatus of the paper's Section 4: a discrete-event
//! simulation that feeds a stream of message arrivals through a
//! `ldlp::StackEngine` and measures latency, throughput, drops, and cache
//! misses per message.
//!
//! * [`traffic`] — arrival processes: Poisson (Figures 5 and 6),
//!   deterministic, a self-similar superposition of Pareto ON/OFF sources
//!   standing in for the Bellcore Ethernet traces (Figure 7; Leland et
//!   al.'s traces are not redistributable, and Willinger et al. showed
//!   this construction converges to the same self-similar process), and
//!   trace files.
//! * [`sim`] — the event loop: a bounded NIC buffer (500 packets in the
//!   paper), batch admission per the engine's discipline ("process
//!   batches consisting of all available messages"), and per-message
//!   latency accounting.
//! * [`stats`] — report aggregation, percentiles, and a Hurst-parameter
//!   estimator (aggregated-variance method) used to validate the
//!   self-similar source.
//! * [`impair`] — a deterministic, seeded impairment channel composable
//!   in front of any traffic source: independent and Gilbert–Elliott
//!   burst loss, payload corruption, duplication, and bounded
//!   reordering, with counters threaded into the report.
//! * [`closed`] — a closed-loop source: a finite population of
//!   retrying clients (retransmit timers, exponential backoff, retry
//!   budgets, think times) whose feedback loop turns overload into the
//!   metastable collapse `figure13` measures.
//! * [`par`] — a deterministic parallel executor that fans independent
//!   (parameter, seed) simulation runs across host cores and returns
//!   results in index order, so sweep output is byte-identical to the
//!   serial path.

pub mod closed;
pub mod handoff;
pub mod impair;
pub mod par;
pub mod sim;
pub mod stats;
pub mod traffic;

pub use closed::{
    AckKind, Class, ClientSend, ClosedConfig, ClosedPopulation, ClosedStats, RetransmitTimer,
    RetryPolicy,
};
pub use handoff::Handoff;
pub use impair::{
    reorder_deliveries, GilbertElliott, ImpairConfig, ImpairCounters, ImpairedArrival,
    ImpairedSource,
};
pub use par::{resolve_threads, run_indexed};
pub use sim::{
    run_sim, run_sim_impaired, run_sim_lookup, run_sim_traced, BatchRecord, LookupCharge,
    SimConfig,
};
pub use stats::{RunTally, SimReport};
pub use traffic::{
    Arrival, MmppSource, PoissonSource, SelfSimilarSource, TraceSource, TrafficSource,
    TrainSource,
};
