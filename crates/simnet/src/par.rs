//! # par — deterministic parallel sweep executor
//!
//! The simulation figures average many independent (rate, placement-seed)
//! runs; nothing couples one run to another except the final reduction.
//! This module fans those runs across OS threads with a work-stealing
//! index counter and hands the results back **in index order**, so any
//! reduction that folds the results left-to-right produces bit-identical
//! output regardless of the number of workers or their scheduling.
//!
//! There is no task queue and no channel: workers claim the next job by
//! bumping a shared atomic counter, keep `(index, result)` pairs locally,
//! and the caller scatters them into an index-ordered vector at join
//! time. With `threads == 1` the jobs run inline on the caller's thread
//! (no spawn, no atomics) — this is the reference serial path the
//! determinism tests compare against.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves the worker-thread count: an explicit request (`--threads`)
/// wins, then the `SMP_THREADS` environment variable, then the host's
/// available parallelism. Always at least 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(t) = explicit {
        return t.max(1);
    }
    if let Some(t) = std::env::var("SMP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return t.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// index order. `f` must be independent across indices; results are
/// identical to the serial `(0..n).map(f)` for any thread count.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // analyze::allow(panic-free-library, reason = "join() only errs if a worker panicked; re-raising the panic on the caller is the correct propagation")
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for worker in per_worker {
        for (i, v) in worker {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        // analyze::allow(panic-free-library, reason = "the atomic counter hands out each index in 0..n exactly once, so every slot is filled")
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_in_order() {
        let serial = run_indexed(100, 1, |i| i * 3 + 1);
        let parallel = run_indexed(100, 8, |i| i * 3 + 1);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 22);
    }

    #[test]
    fn each_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let counts: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        let out = run_indexed(257, 5, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 257);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn degenerate_sizes() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 9), vec![9]);
        // More threads than jobs clamps to the job count.
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
    }

    #[test]
    fn explicit_thread_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
