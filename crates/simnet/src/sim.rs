//! The event loop: arrivals, a bounded NIC buffer, batch admission, and
//! latency accounting.
//!
//! The loop implements the paper's online LDLP algorithm (Section 3.1):
//! "when the protocol stack is able to accept a new message, it takes all
//! available messages and processes them in a blocked pattern. When it is
//! finished, it again looks for new messages." Under light load batches
//! are singletons; under heavy load they grow to the engine's batch cap.
//! Messages arriving while a batch is in flight wait in the adaptor
//! buffer, which holds at most `buffer_cap` packets (500 in the paper);
//! beyond that, the configured [`AdmissionPolicy`] decides which packet
//! loses — the arriving one (tail-drop, the paper's behaviour) or queued
//! ones (head-drop / shed-oldest).
//!
//! Accounting obeys a conservation law checked at the end of every run:
//! every offered arrival is completed, rejected at checksum verification,
//! refused admission, shed from the queue, or still in flight. Nothing
//! vanishes.

use crate::impair::{ImpairCounters, ImpairedArrival};
use crate::stats::{RunTally, SimReport};
use crate::traffic::Arrival;
use ldlp::synth::MessagePool;
use ldlp::{AdmissionPolicy, SimMessage, StackEngine};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// NIC buffer capacity in packets (paper: 500).
    pub buffer_cap: usize,
    /// What to do with an arrival when the buffer is full.
    pub admission: AdmissionPolicy,
    /// How long the arrival stream runs, in seconds.
    pub duration_s: f64,
    /// Message-buffer pool entries (ring size). Must exceed the largest
    /// batch the engine can form.
    pub pool_bufs: usize,
    /// Message-buffer size in bytes (must hold the largest message).
    pub pool_buf_bytes: u64,
    /// Seed for message-buffer placement.
    pub pool_seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_cap: 500,
            admission: AdmissionPolicy::TailDrop,
            duration_s: 1.0,
            pool_bufs: 64,
            pool_buf_bytes: 1536,
            pool_seed: 1,
        }
    }
}

/// One processed batch in a traced run: when it started, how many
/// messages it carried, and how deep the NIC queue was when it formed.
/// The paper's online algorithm in motion: "under light load, messages
/// will usually be processed singly ... under heavy load, messages will
/// be processed in batches".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchRecord {
    /// Batch start time in seconds.
    pub time_s: f64,
    /// Messages in the batch.
    pub batch: usize,
    /// NIC-queue depth after the batch was taken.
    pub queue_after: usize,
}

/// A per-message data-structure charge, applied as each message enters
/// protocol processing.
///
/// `figure10` uses this to put flow/call lookup tables in the loop: the
/// implementation walks its own lookup structure for `flow_id` and
/// charges the probe footprint to the engine's machine (e.g. via
/// [`cachesim::Machine::read_data_probes`]), returning the D-misses it
/// incurred. The cycles land inside the batch window, so reported
/// latency includes lookup time, and the returned misses are added to
/// that message's D-miss sample.
pub trait LookupCharge {
    /// Charges the lookup for `flow_id`; returns the D-misses incurred.
    fn charge(&mut self, flow_id: u32, machine: &mut cachesim::Machine) -> u64;
}

/// Runs `arrivals` (time-sorted, in seconds) through `engine` and returns
/// the aggregated report. The engine's machine clock defines processing
/// cost; its configured `clock_mhz` converts arrival times to cycles.
pub fn run_sim(engine: &mut StackEngine, arrivals: &[Arrival], cfg: &SimConfig) -> SimReport {
    run_sim_traced(engine, arrivals, cfg, None)
}

/// [`run_sim`] with an optional per-batch trace collector.
pub fn run_sim_traced(
    engine: &mut StackEngine,
    arrivals: &[Arrival],
    cfg: &SimConfig,
    trace: Option<&mut Vec<BatchRecord>>,
) -> SimReport {
    let clean: Vec<ImpairedArrival> = arrivals.iter().copied().map(Into::into).collect();
    run_core(engine, &clean, cfg, trace, ImpairCounters::default(), &[], None)
}

/// Runs a stream that already went through an impairment channel (see
/// [`crate::impair`]): corrupted deliveries cost cycles up to the
/// engine's verification layer and are rejected there; `net` carries the
/// channel's drop/corrupt/duplicate counters into the report.
pub fn run_sim_impaired(
    engine: &mut StackEngine,
    deliveries: &[ImpairedArrival],
    cfg: &SimConfig,
    net: ImpairCounters,
) -> SimReport {
    run_core(engine, deliveries, cfg, None, net, &[], None)
}

/// [`run_sim`] with a per-message flow lookup in the loop: `flow_ids`
/// parallels `arrivals` (index-matched), and `lookup` is charged once
/// per message as its batch starts processing. Arrivals dropped or shed
/// at the NIC never reach the stack and are not charged.
pub fn run_sim_lookup(
    engine: &mut StackEngine,
    arrivals: &[Arrival],
    flow_ids: &[u32],
    cfg: &SimConfig,
    lookup: &mut dyn LookupCharge,
) -> SimReport {
    let clean: Vec<ImpairedArrival> = arrivals.iter().copied().map(Into::into).collect();
    run_core(
        engine,
        &clean,
        cfg,
        None,
        ImpairCounters::default(),
        flow_ids,
        Some(lookup),
    )
}

// analyze::hot_path(simnet-measured-window, rules = "panic-path, charge-coverage")
// (alloc-path deliberately not seeded here: the pre-loop setup — pool,
// sample vectors, NIC ring — allocates by design; the steady-state
// batch loop reuses those buffers and is covered by the runtime
// counting-allocator test via `process_batch_into`.)
fn run_core(
    engine: &mut StackEngine,
    arrivals: &[ImpairedArrival],
    cfg: &SimConfig,
    mut trace: Option<&mut Vec<BatchRecord>>,
    net: ImpairCounters,
    flow_ids: &[u32],
    mut lookup: Option<&mut dyn LookupCharge>,
) -> SimReport {
    let clock_mhz = engine.machine().config().clock_mhz;
    let cycles_per_s = clock_mhz * 1e6;
    let mut pool = MessagePool::new(cfg.pool_bufs, cfg.pool_buf_bytes, cfg.pool_seed);

    // Observability: when the engine carries a sink, the simulator
    // contributes one span per processed batch (stamped in machine
    // cycles, queue depth in `aux`) and run-level value histograms that
    // augment the SimReport aggregates with full distributions.
    let obs_ids = match (
        engine.obs_intern("batch"),
        engine.obs_intern("latency_us"),
        engine.obs_intern("imiss_per_msg"),
        engine.obs_intern("dmiss_per_msg"),
    ) {
        (Some(b), Some(l), Some(i), Some(d)) => Some((b, l, i, d)),
        _ => None,
    };

    // NIC buffer: (arrival_cycle, bytes, corrupted, flow) in arrival
    // order. Flow is 0 for runs without a lookup model.
    let mut nic: std::collections::VecDeque<(u64, u32, bool, u32)> =
        std::collections::VecDeque::with_capacity(cfg.buffer_cap);

    let mut latencies_us: Vec<f64> = Vec::with_capacity(arrivals.len());
    let mut imisses: Vec<u64> = Vec::with_capacity(arrivals.len());
    let mut dmisses: Vec<u64> = Vec::with_capacity(arrivals.len());
    let mut drops = 0u64;
    let mut shed = 0u64;
    let mut rejected = 0u64;
    let mut batches = 0u64;
    let mut last_finish: u64 = 0;

    let mut next_arrival = 0usize;
    // Simulation clock in cycles. The machine's own cycle counter only
    // advances while processing; `now` also advances across idle gaps.
    let mut now: u64 = 0;
    let mut msg_id: u64 = 0;

    // Batch buffers, reused every iteration: the steady-state loop
    // allocates nothing per batch.
    let mut batch: Vec<SimMessage> = Vec::with_capacity(cfg.pool_bufs);
    let mut batch_arrivals: Vec<u64> = Vec::with_capacity(cfg.pool_bufs);
    let mut batch_flows: Vec<u32> = Vec::with_capacity(cfg.pool_bufs);
    let mut lookup_dm: Vec<u64> = Vec::with_capacity(cfg.pool_bufs);
    let mut completions: Vec<ldlp::Completion> = Vec::with_capacity(cfg.pool_bufs);

    let arrival_cycle =
        |a: &ImpairedArrival| -> u64 { (a.time_s * cycles_per_s).round() as u64 };

    loop {
        // Admit everything that has arrived by `now`.
        while next_arrival < arrivals.len() && arrival_cycle(&arrivals[next_arrival]) <= now {
            let a = &arrivals[next_arrival];
            let (evict, admit) = cfg.admission.admit(nic.len(), cfg.buffer_cap);
            for _ in 0..evict {
                nic.pop_front();
                shed += 1;
            }
            if admit {
                let flow = flow_ids.get(next_arrival).copied().unwrap_or(0);
                nic.push_back((arrival_cycle(a), a.bytes, a.corrupted, flow));
            } else {
                drops += 1;
            }
            next_arrival += 1;
        }

        if nic.is_empty() {
            match arrivals.get(next_arrival) {
                // Idle: jump to the next arrival.
                Some(a) => {
                    now = now.max(arrival_cycle(a));
                    continue;
                }
                // Drained everything: done.
                None => break,
            }
        }

        // Form a batch: up to the engine's cap, sized by the *largest*
        // message in the candidate set (conservative for mixed sizes).
        // analyze::allow(panic-free-library, reason = "the drain loop above breaks before this point when the NIC queue is empty")
        let max_bytes = nic.iter().map(|&(_, b, _, _)| b).max().expect("nonempty") as u64;
        let limit = engine
            .batch_limit(max_bytes)
            .min(nic.len())
            .min(cfg.pool_bufs);
        batch.clear();
        batch_arrivals.clear();
        batch_flows.clear();
        for _ in 0..limit {
            // analyze::allow(panic-free-library, reason = "limit is min'd against nic.len(), so the first `limit` pops cannot fail")
            let (arr, bytes, corrupted, flow) = nic.pop_front().expect("limit <= len");
            let mut m = pool.make_message(msg_id, bytes as u64);
            m.arrival_cycles = arr;
            m.corrupted = corrupted;
            msg_id += 1;
            batch.push(m);
            batch_arrivals.push(arr);
            batch_flows.push(flow);
        }
        batches += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(BatchRecord {
                time_s: now as f64 / cycles_per_s,
                batch: batch.len(),
                queue_after: nic.len(),
            });
        }

        // Process: the machine's counter advances by the batch cost.
        let machine_before = engine.machine().cycles();
        let stats_before = obs_ids.map(|_| engine.machine().stats());
        // Per-message flow lookup: charged inside the batch window, so
        // its cycles show up in latency and its misses in the D-miss
        // samples below.
        lookup_dm.clear();
        if let Some(l) = lookup.as_deref_mut() {
            for &flow in &batch_flows {
                lookup_dm.push(l.charge(flow, engine.machine_mut()));
            }
        }
        engine.process_batch_into(&batch, &mut completions);
        let machine_after = engine.machine().cycles();
        if let (Some((batch_id, _, _, _)), Some(s0)) = (obs_ids, stats_before) {
            let s1 = engine.machine().stats();
            let (batch_len, queue_after) = (batch.len() as u32, nic.len() as u64);
            if let Some(rec) = engine.sink_mut().on_mut() {
                rec.span(obs::SpanEvent {
                    name: batch_id,
                    start: machine_before,
                    dur: machine_after - machine_before,
                    batch: batch_len,
                    aux: queue_after,
                    imisses: s1.icache.misses - s0.icache.misses,
                    dmisses: s1.dcache.misses - s0.dcache.misses,
                });
            }
        }
        // Batch runs in sim time [now, now + cost).
        let offset = now - machine_before;
        for (k, (c, &arr)) in completions.iter().zip(&batch_arrivals).enumerate() {
            let finish = c.done_cycles + offset;
            last_finish = last_finish.max(finish);
            // Cycles and misses are spent either way; only clean
            // completions count as useful work with a latency sample.
            imisses.push(c.imisses);
            dmisses.push(c.dmisses + lookup_dm.get(k).copied().unwrap_or(0));
            if c.rejected {
                rejected += 1;
            } else {
                let lat_cycles = finish.saturating_sub(arr);
                latencies_us.push(lat_cycles as f64 / clock_mhz);
            }
        }
        if let Some((_, lat_id, im_id, dm_id)) = obs_ids {
            if let Some(rec) = engine.sink_mut().on_mut() {
                for (k, (c, &arr)) in completions.iter().zip(&batch_arrivals).enumerate() {
                    rec.record_value(im_id, c.imisses);
                    rec.record_value(dm_id, c.dmisses + lookup_dm.get(k).copied().unwrap_or(0));
                    if !c.rejected {
                        let lat_cycles = (c.done_cycles + offset).saturating_sub(arr);
                        rec.record_value(lat_id, (lat_cycles as f64 / clock_mhz) as u64);
                    }
                }
            }
        }
        now += machine_after - machine_before;
    }

    let offered = arrivals.len() as u64;
    let in_flight = nic.len() as u64;
    let completed = latencies_us.len() as u64;
    assert_eq!(
        offered,
        completed + rejected + drops + shed + in_flight,
        "conservation violated: offered {offered} != completed {completed} \
         + rejected {rejected} + drops {drops} + shed {shed} + in-flight {in_flight}"
    );

    SimReport::from_samples(
        &mut latencies_us,
        &imisses,
        &dmisses,
        RunTally {
            offered,
            rejected,
            drops,
            shed,
            in_flight,
            // Open-loop sources have no client to stop waiting; the
            // stale-completion bucket belongs to `smp::run_closed`.
            abandoned: 0,
            duration_s: cfg.duration_s,
            span_s: last_finish as f64 / cycles_per_s,
            batches,
            net,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impair::{impair_arrivals, ImpairConfig};
    use crate::traffic::{ConstantSource, PoissonSource, TrafficSource};
    use cachesim::MachineConfig;
    use ldlp::synth::paper_stack;
    use ldlp::{BatchPolicy, Discipline, StackEngine};

    fn engine(d: Discipline, seed: u64) -> StackEngine {
        let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), seed);
        StackEngine::new(m, layers, d)
    }

    #[test]
    fn light_load_latency_is_the_service_time() {
        // 100 msgs/s: every message is processed alone, immediately.
        let mut e = engine(Discipline::Conventional, 1);
        let arrivals = ConstantSource::new(0.01, 552).take_until(0.5);
        let cfg = SimConfig {
            duration_s: 0.5,
            ..SimConfig::default()
        };
        let r = run_sim(&mut e, &arrivals, &cfg);
        assert_eq!(r.completed, 49);
        assert_eq!(r.drops, 0);
        assert!(r.conservation_holds());
        // Service time: 5 x 1652 instruction cycles + ~1000 misses x 20
        // at 100 MHz => roughly 280 us; queueing is zero.
        assert!(
            (200.0..400.0).contains(&r.mean_latency_us),
            "latency {} us",
            r.mean_latency_us
        );
        assert!((r.mean_batch - 1.0).abs() < 1e-9, "no batching at light load");
        // The queue never builds up, so the span is the arrival window
        // (to within one service time) and goodput equals throughput.
        assert!(r.span_s < 0.5 + 0.001, "span {} s", r.span_s);
        assert_eq!(r.goodput, r.throughput);
    }

    #[test]
    fn overload_fills_buffer_and_drops() {
        // Conventional saturates near 3500 msg/s; at 8000 it must drop.
        let mut e = engine(Discipline::Conventional, 1);
        let arrivals = PoissonSource::new(8000.0, 552, 3).take_until(0.5);
        let cfg = SimConfig {
            duration_s: 0.5,
            ..SimConfig::default()
        };
        let r = run_sim(&mut e, &arrivals, &cfg);
        assert!(r.drops > 0, "expected drops at 2x capacity");
        assert!(r.conservation_holds());
        // Latency is bounded by the 500-packet buffer (~500 x 285 us).
        assert!(r.max_latency_us < 500.0 * 400.0);
        assert!(r.mean_latency_us > 10_000.0, "deep queueing expected");
    }

    #[test]
    fn overloaded_throughput_is_measured_over_the_drain_span() {
        // The 500-packet backlog drains past the arrival window; the
        // old accounting divided by the window and inflated throughput.
        let mut e = engine(Discipline::Conventional, 1);
        let arrivals = PoissonSource::new(8000.0, 552, 3).take_until(0.5);
        let cfg = SimConfig {
            duration_s: 0.5,
            ..SimConfig::default()
        };
        let r = run_sim(&mut e, &arrivals, &cfg);
        assert!(r.span_s > 0.5, "backlog must drain past the window");
        assert!(
            r.throughput < r.completed as f64 / cfg.duration_s,
            "span-based throughput must undercut the inflated figure"
        );
        assert!(r.offered_load > 7000.0, "offered {} msg/s", r.offered_load);
        assert!(r.throughput < 4000.0, "conventional saturates near 3500/s");
    }

    #[test]
    fn ldlp_sustains_loads_conventional_cannot() {
        let arrivals = PoissonSource::new(8000.0, 552, 3).take_until(0.5);
        let cfg = SimConfig {
            duration_s: 0.5,
            ..SimConfig::default()
        };
        let mut conv = engine(Discipline::Conventional, 1);
        let rc = run_sim(&mut conv, &arrivals, &cfg);
        let mut ldlp = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 1);
        let rl = run_sim(&mut ldlp, &arrivals, &cfg);
        assert!(rl.drops == 0, "LDLP should keep up at 8000/s, dropped {}", rl.drops);
        assert!(rl.throughput > rc.throughput);
        assert!(
            rl.mean_latency_us < rc.mean_latency_us / 10.0,
            "LDLP {} us vs conventional {} us",
            rl.mean_latency_us,
            rc.mean_latency_us
        );
        assert!(rl.mean_imiss < rc.mean_imiss / 2.0);
        assert!(rl.mean_batch > 2.0, "batching should engage under load");
    }

    #[test]
    fn empty_arrivals_yield_empty_report() {
        let mut e = engine(Discipline::Conventional, 1);
        let r = run_sim(&mut e, &[], &SimConfig::default());
        assert_eq!(r.completed, 0);
        assert_eq!(r.drops, 0);
        assert!(r.conservation_holds());
    }

    #[test]
    fn batch_sizes_respect_the_policy_cap() {
        let mut e = engine(Discipline::Ldlp(BatchPolicy::Fixed(4)), 1);
        let arrivals = PoissonSource::new(9000.0, 552, 9).take_until(0.2);
        let cfg = SimConfig {
            duration_s: 0.2,
            ..SimConfig::default()
        };
        let r = run_sim(&mut e, &arrivals, &cfg);
        assert!(r.mean_batch <= 4.0 + 1e-9);
    }

    #[test]
    fn sim_records_batch_spans_and_value_histograms() {
        let arrivals = PoissonSource::new(4000.0, 552, 5).take_until(0.1);
        let cfg = SimConfig {
            duration_s: 0.1,
            ..SimConfig::default()
        };
        let mut e = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 1);
        e.set_sink(obs::Sink::record(true), "ldlp/");
        let r = run_sim(&mut e, &arrivals, &cfg);
        let mut rec = e.take_sink().into_recorder().expect("sink was attached");

        // One span per batch, carrying the batch size.
        let batch_id = rec.intern("ldlp/batch");
        let lat_id = rec.intern("ldlp/latency_us");
        let im_id = rec.intern("ldlp/imiss_per_msg");
        let spans = rec.span_accum(batch_id).expect("batch spans recorded");
        assert!(spans.spans > 0);
        assert_eq!(
            spans.messages,
            r.completed + r.rejected,
            "batch sizes sum to the processed message count"
        );
        assert!(
            (spans.spans as f64 * r.mean_batch - spans.messages as f64).abs() < 1e-6,
            "span count agrees with the report's mean batch size"
        );

        // Value histograms mirror the report's aggregates.
        let lat = rec.value_hist(lat_id).expect("latency histogram recorded");
        assert_eq!(lat.count(), r.completed);
        let mean = lat.mean();
        assert!(
            (mean - r.mean_latency_us).abs() <= r.mean_latency_us * 0.05 + 1.0,
            "histogram mean {mean} vs report {}",
            r.mean_latency_us
        );
        let im = rec.value_hist(im_id).expect("imiss histogram recorded");
        assert_eq!(im.count(), r.completed + r.rejected);

        // Trace mode also kept the raw per-layer + per-batch events.
        assert!(
            rec.events().len() as u64 > spans.spans,
            "expected layer spans in addition to batch spans"
        );
    }

    #[test]
    fn sink_off_report_is_identical() {
        let arrivals = PoissonSource::new(4000.0, 552, 5).take_until(0.1);
        let cfg = SimConfig {
            duration_s: 0.1,
            ..SimConfig::default()
        };
        let mut plain = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 1);
        let r0 = run_sim(&mut plain, &arrivals, &cfg);
        let mut observed = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 1);
        observed.set_sink(obs::Sink::record(false), "ldlp/");
        let r1 = run_sim(&mut observed, &arrivals, &cfg);
        assert_eq!(r0.completed, r1.completed);
        assert_eq!(r0.mean_batch.to_bits(), r1.mean_batch.to_bits());
        assert_eq!(r0.mean_latency_us.to_bits(), r1.mean_latency_us.to_bits());
        assert_eq!(r0.mean_imiss.to_bits(), r1.mean_imiss.to_bits());
    }

    #[test]
    fn deterministic_given_seeds() {
        let arrivals = PoissonSource::new(4000.0, 552, 5).take_until(0.2);
        let cfg = SimConfig {
            duration_s: 0.2,
            ..SimConfig::default()
        };
        let mut e1 = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 2);
        let r1 = run_sim(&mut e1, &arrivals, &cfg);
        let mut e2 = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 2);
        let r2 = run_sim(&mut e2, &arrivals, &cfg);
        assert_eq!(r1.completed, r2.completed);
        assert_eq!(r1.mean_latency_us, r2.mean_latency_us);
        assert_eq!(r1.mean_imiss, r2.mean_imiss);
    }

    #[test]
    fn head_drop_bounds_the_latency_of_survivors() {
        // Same overload, two policies. Tail-drop keeps the oldest
        // packets (deep queueing for everything that completes);
        // head-drop keeps the freshest, so survivors wait less.
        let arrivals = PoissonSource::new(9000.0, 552, 7).take_until(0.4);
        let base = SimConfig {
            duration_s: 0.4,
            ..SimConfig::default()
        };
        let mut e1 = engine(Discipline::Conventional, 1);
        let tail = run_sim(&mut e1, &arrivals, &base);
        let cfg = SimConfig {
            admission: AdmissionPolicy::HeadDrop,
            ..base
        };
        let mut e2 = engine(Discipline::Conventional, 1);
        let head = run_sim(&mut e2, &arrivals, &cfg);
        assert!(tail.conservation_holds());
        assert!(head.conservation_holds());
        assert!(tail.drops > 0 && head.shed > 0, "both policies lose packets");
        assert_eq!(head.drops, 0, "head-drop always admits the arrival");
        assert!(
            head.mean_latency_us < tail.mean_latency_us,
            "head-drop survivors {} us should wait less than tail-drop {} us",
            head.mean_latency_us,
            tail.mean_latency_us
        );
    }

    #[test]
    fn shed_oldest_purges_in_sweeps_and_conserves() {
        let arrivals = PoissonSource::new(9000.0, 552, 7).take_until(0.3);
        let cfg = SimConfig {
            admission: AdmissionPolicy::ShedOldest { down_to: 100 },
            duration_s: 0.3,
            ..SimConfig::default()
        };
        let mut e = engine(Discipline::Conventional, 1);
        let r = run_sim(&mut e, &arrivals, &cfg);
        assert!(r.conservation_holds());
        assert_eq!(r.drops, 0);
        assert!(r.shed > 0, "overload must trigger shedding");
        // Shedding happens 400-at-a-time, so the shed count is a
        // multiple of the purge size.
        assert_eq!(r.shed % 400, 0, "shed {} in sweeps of 400", r.shed);
    }

    #[test]
    fn lookup_charges_land_in_dmisses_and_latency() {
        let arrivals = ConstantSource::new(0.001, 552).take_until(0.2);
        let flow_ids: Vec<u32> = (0..arrivals.len() as u32).collect();
        let cfg = SimConfig {
            duration_s: 0.2,
            ..SimConfig::default()
        };
        let mut plain = engine(Discipline::Conventional, 1);
        let base = run_sim(&mut plain, &arrivals, &cfg);

        /// Two 64-byte slots per lookup, distinct per flow: every
        /// message pays 4 cold-line reads.
        struct Probes;
        impl LookupCharge for Probes {
            fn charge(&mut self, flow_id: u32, machine: &mut cachesim::Machine) -> u64 {
                machine.read_data_probes(0x4000_0000, 64, &[flow_id * 2, flow_id * 2 + 1])
            }
        }
        let mut e = engine(Discipline::Conventional, 1);
        let r = run_sim_lookup(&mut e, &arrivals, &flow_ids, &cfg, &mut Probes);
        assert_eq!(r.completed, base.completed);
        assert!(r.conservation_holds());
        // Each lookup adds 4 cold-line misses of its own; pollution of
        // the stack's working set can only add more.
        assert!(
            r.mean_dmiss >= base.mean_dmiss + 4.0 - 1e-9,
            "lookup misses must be charged: {} vs {}",
            r.mean_dmiss,
            base.mean_dmiss
        );
        assert!(
            r.mean_latency_us > base.mean_latency_us,
            "lookup stalls must show up in latency"
        );
    }

    #[test]
    fn corrupted_deliveries_cost_cycles_but_do_not_complete() {
        let arrivals = ConstantSource::new(0.001, 552).take_until(0.3);
        let cfg = SimConfig {
            duration_s: 0.3,
            ..SimConfig::default()
        };
        let chan = ImpairConfig {
            corrupt_prob: 0.2,
            seed: 5,
            ..ImpairConfig::default()
        };
        let (deliveries, counters) = impair_arrivals(&arrivals, chan);
        let mut e = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 1);
        let r = run_sim_impaired(&mut e, &deliveries, &cfg, counters);
        assert!(r.conservation_holds());
        assert_eq!(r.rejected, counters.corrupted, "every corrupt delivery rejects");
        assert_eq!(r.completed + r.rejected, deliveries.len() as u64);
        assert_eq!(r.net_corrupted, counters.corrupted);
        assert!(r.goodput < r.throughput, "rejected work is not goodput");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::traffic::{ConstantSource, TrafficSource};
    use cachesim::MachineConfig;
    use ldlp::synth::paper_stack;
    use ldlp::{BatchPolicy, Discipline, StackEngine};

    #[test]
    fn traced_run_records_every_batch() {
        let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 1);
        let mut e = StackEngine::new(m, layers, Discipline::Ldlp(BatchPolicy::DCacheFit));
        let arrivals = ConstantSource::new(0.01, 552).take_until(0.2);
        let mut records = Vec::new();
        let cfg = SimConfig {
            duration_s: 0.2,
            ..SimConfig::default()
        };
        let r = run_sim_traced(&mut e, &arrivals, &cfg, Some(&mut records));
        assert_eq!(records.len() as u64, r.completed, "light load: one batch per message");
        assert!(records.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        assert!(records.iter().all(|b| b.batch == 1));
    }
}
