//! A deterministic, seeded impairment channel.
//!
//! Sits in front of any [`TrafficSource`] (or, at the wire level, in
//! front of a `netstack` device) and damages the stream the way a real
//! link does: independent random loss, burst loss via a two-state
//! Gilbert–Elliott chain, payload corruption, duplication, and bounded
//! reordering. Every verdict comes from one seeded RNG with a *fixed
//! number of draws per packet*, so a given `(config, seed)` pair produces
//! the same fate sequence no matter which outcomes occur — the property
//! the determinism tests and the CI golden file rely on.
//!
//! The channel never reorders time backwards: a reordered packet is held
//! and re-released at the timestamp of a later delivered packet (at most
//! [`ImpairConfig::reorder_depth`] packets later), so the output stream
//! stays sorted and can be fed straight to [`crate::sim::run_sim_impaired`].

use crate::traffic::{Arrival, TrafficSource};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Parameters of a two-state Gilbert–Elliott burst-loss chain. The
/// channel is in a *good* or *bad* state; each packet first moves the
/// chain, then is lost with the state's loss probability. Mean loss is
/// `pi_b * bad_loss + (1 - pi_b) * good_loss` where
/// `pi_b = p_enter_bad / (p_enter_bad + p_exit_bad)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(good -> bad) evaluated once per packet.
    pub p_enter_bad: f64,
    /// P(bad -> good) evaluated once per packet.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub good_loss: f64,
    /// Loss probability while in the bad state.
    pub bad_loss: f64,
}

impl GilbertElliott {
    /// A bursty channel with the given overall `mean_loss`, mean burst
    /// length `burst_len` packets, and loss probability `bad_loss` inside
    /// a burst. The good state is loss-free.
    pub fn bursty(mean_loss: f64, burst_len: f64, bad_loss: f64) -> Self {
        assert!(burst_len >= 1.0, "mean burst length is at least one packet");
        assert!(
            (0.0..=1.0).contains(&mean_loss) && mean_loss < bad_loss && bad_loss <= 1.0,
            "need mean_loss < bad_loss <= 1"
        );
        let p_exit_bad = 1.0 / burst_len;
        // Stationary bad-state probability that yields the target mean.
        let pi_b = mean_loss / bad_loss;
        let p_enter_bad = p_exit_bad * pi_b / (1.0 - pi_b);
        GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            good_loss: 0.0,
            bad_loss,
        }
    }

    /// Long-run loss probability of the chain.
    pub fn mean_loss(&self) -> f64 {
        let pi_b = self.p_enter_bad / (self.p_enter_bad + self.p_exit_bad);
        pi_b * self.bad_loss + (1.0 - pi_b) * self.good_loss
    }
}

/// What one impairment channel does to packets. All probabilities are
/// per packet and independent unless noted; the default impairs nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairConfig {
    /// Independent per-packet drop probability.
    pub drop_prob: f64,
    /// Probability a delivered packet's payload is damaged (the receiver
    /// spends cycles on it and rejects it at checksum verification).
    pub corrupt_prob: f64,
    /// Probability a delivered packet is delivered twice.
    pub dup_prob: f64,
    /// Probability a delivered packet is held and re-released later.
    pub reorder_prob: f64,
    /// Maximum packets a reordered one slips behind (uniform in
    /// `1..=reorder_depth`). 0 disables reordering regardless of
    /// `reorder_prob`.
    pub reorder_depth: usize,
    /// Optional burst-loss chain, applied on top of `drop_prob`.
    pub gilbert: Option<GilbertElliott>,
    /// RNG seed; the fate sequence is a pure function of `(config, seed)`.
    pub seed: u64,
}

impl Default for ImpairConfig {
    fn default() -> Self {
        ImpairConfig {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_depth: 0,
            gilbert: None,
            seed: 1,
        }
    }
}

impl ImpairConfig {
    /// Independent random loss only.
    pub fn loss(drop_prob: f64, seed: u64) -> Self {
        ImpairConfig {
            drop_prob,
            seed,
            ..ImpairConfig::default()
        }
    }

    /// True iff the channel can alter the stream at all.
    pub fn is_transparent(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.dup_prob == 0.0
            && (self.reorder_prob == 0.0 || self.reorder_depth == 0)
            && self.gilbert.is_none()
    }
}

/// The fate of one packet entering the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fate {
    /// Lost on the wire: never delivered.
    pub dropped: bool,
    /// Delivered with a damaged payload.
    pub corrupted: bool,
    /// Delivered twice.
    pub duplicated: bool,
    /// 0 = delivered in place; k > 0 = held back and released after k
    /// subsequent deliveries.
    pub reorder_slip: usize,
}

/// Counters of everything the channel did, threaded into
/// [`crate::stats::SimReport`] as the `net_*` fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpairCounters {
    /// Packets presented to the channel.
    pub offered: u64,
    /// Packets delivered (including corrupted ones and duplicates).
    pub delivered: u64,
    /// Packets lost on the wire.
    pub dropped: u64,
    /// Packets delivered with damaged payloads.
    pub corrupted: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Packets released out of their arrival order.
    pub reordered: u64,
}

/// The seeded impairment chain. Usable directly (per-packet
/// [`ImpairState::next_fate`] verdicts, e.g. for a wire-level device
/// adapter or a retransmission model) or via [`ImpairedSource`] for
/// arrival streams.
#[derive(Debug)]
pub struct ImpairState {
    cfg: ImpairConfig,
    rng: StdRng,
    in_bad: bool,
    counters: ImpairCounters,
}

impl ImpairState {
    /// A fresh chain in the good state.
    pub fn new(cfg: ImpairConfig) -> Self {
        ImpairState {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            in_bad: false,
            counters: ImpairCounters::default(),
        }
    }

    /// The configuration the chain was built with.
    pub fn config(&self) -> &ImpairConfig {
        &self.cfg
    }

    /// Everything the channel has done so far.
    pub fn counters(&self) -> ImpairCounters {
        self.counters
    }

    /// Decides the fate of the next packet. Exactly six RNG draws per
    /// call, regardless of outcome, so fates of later packets do not
    /// depend on which earlier ones were dropped.
    // draws: 6 — the fixed per-packet budget; R2 (rng-draw-budget)
    // cross-checks this count against the call sites below.
    pub fn next_fate(&mut self) -> Fate {
        let u_trans: f64 = self.rng.random();
        let u_loss: f64 = self.rng.random();
        let u_corrupt: f64 = self.rng.random();
        let u_dup: f64 = self.rng.random();
        let u_reorder: f64 = self.rng.random();
        let u_slip: f64 = self.rng.random();

        let mut loss_prob = self.cfg.drop_prob;
        if let Some(ge) = self.cfg.gilbert {
            // Move the chain, then combine its state loss with the
            // independent loss (independent events).
            self.in_bad = if self.in_bad {
                u_trans >= ge.p_exit_bad
            } else {
                u_trans < ge.p_enter_bad
            };
            let state_loss = if self.in_bad { ge.bad_loss } else { ge.good_loss };
            loss_prob = 1.0 - (1.0 - loss_prob) * (1.0 - state_loss);
        }

        let dropped = u_loss < loss_prob;
        let corrupted = !dropped && u_corrupt < self.cfg.corrupt_prob;
        let duplicated = !dropped && u_dup < self.cfg.dup_prob;
        let reorder_slip = if !dropped
            && self.cfg.reorder_depth > 0
            && u_reorder < self.cfg.reorder_prob
        {
            1 + (u_slip * self.cfg.reorder_depth as f64) as usize
        } else {
            0
        };

        self.counters.offered += 1;
        if dropped {
            self.counters.dropped += 1;
        } else {
            self.counters.delivered += 1;
            if corrupted {
                self.counters.corrupted += 1;
            }
            if duplicated {
                self.counters.delivered += 1;
                self.counters.duplicated += 1;
            }
            if reorder_slip > 0 {
                self.counters.reordered += 1;
            }
        }

        Fate {
            dropped,
            corrupted,
            duplicated,
            reorder_slip: reorder_slip.min(self.cfg.reorder_depth),
        }
    }
}

/// An arrival that went through the channel. Same shape as [`Arrival`]
/// plus the damage flag the receiver's checksum layer will act on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairedArrival {
    /// Delivery time in seconds (>= the original arrival time).
    pub time_s: f64,
    /// Message size in bytes.
    pub bytes: u32,
    /// The payload was damaged on the wire.
    pub corrupted: bool,
}

impl From<Arrival> for ImpairedArrival {
    fn from(a: Arrival) -> Self {
        ImpairedArrival {
            time_s: a.time_s,
            bytes: a.bytes,
            corrupted: false,
        }
    }
}

/// An impairment channel composed in front of a [`TrafficSource`].
/// Produces deliveries in non-decreasing time order; dropped packets
/// vanish, duplicates appear back to back, and reordered packets are
/// released with the timestamp of a later delivery.
#[derive(Debug)]
pub struct ImpairedSource<S> {
    inner: S,
    state: ImpairState,
    /// Deliveries ready to emit (duplicates, releases of held packets).
    ready: VecDeque<ImpairedArrival>,
    /// Held (reordered) packets: (deliveries still to pass them, packet).
    held: Vec<(usize, ImpairedArrival)>,
    /// Timestamp of the most recent delivery, used to flush stragglers
    /// when the inner source ends.
    last_time_s: f64,
    inner_done: bool,
}

impl<S: TrafficSource> ImpairedSource<S> {
    /// Wraps `inner` with the impairment channel `cfg`.
    pub fn new(inner: S, cfg: ImpairConfig) -> Self {
        ImpairedSource {
            inner,
            state: ImpairState::new(cfg),
            ready: VecDeque::new(),
            held: Vec::new(),
            last_time_s: 0.0,
            inner_done: false,
        }
    }

    /// Channel counters accumulated so far.
    pub fn counters(&self) -> ImpairCounters {
        self.state.counters()
    }

    /// A packet was delivered at `time_s`: advance held packets and move
    /// any that are due into the ready queue (stamped with `time_s`).
    fn advance_held(&mut self, time_s: f64) {
        let mut i = 0;
        while i < self.held.len() {
            self.held[i].0 -= 1;
            if self.held[i].0 == 0 {
                let (_, mut p) = self.held.remove(i);
                p.time_s = time_s;
                self.ready.push_back(p);
            } else {
                i += 1;
            }
        }
    }

    /// The next delivery, or `None` once the stream (and every held or
    /// duplicated packet) is exhausted.
    pub fn next_delivery(&mut self) -> Option<ImpairedArrival> {
        loop {
            if let Some(p) = self.ready.pop_front() {
                return Some(p);
            }
            if self.inner_done {
                // The inner stream ended with packets still held back:
                // release them at the last seen delivery time, oldest
                // first, so nothing is silently lost by the model itself.
                if !self.held.is_empty() {
                    let t = self.last_time_s;
                    for (_, mut p) in self.held.drain(..) {
                        p.time_s = t;
                        self.ready.push_back(p);
                    }
                    continue;
                }
                return None;
            }
            let Some(a) = self.inner.next_arrival() else {
                self.inner_done = true;
                continue;
            };
            let fate = self.state.next_fate();
            if fate.dropped {
                continue;
            }
            let delivered = ImpairedArrival {
                time_s: a.time_s,
                bytes: a.bytes,
                corrupted: fate.corrupted,
            };
            self.last_time_s = a.time_s;
            // Every packet that crosses the channel moves earlier held
            // packets one slot closer to release — "at most
            // `reorder_depth` later" counts held packets too, otherwise
            // an all-reordered stream would be held forever.
            self.advance_held(a.time_s);
            if fate.reorder_slip > 0 {
                self.held.push((fate.reorder_slip, delivered));
                continue;
            }
            self.ready.push_back(delivered);
            if fate.duplicated {
                self.ready.push_back(delivered);
            }
        }
    }

    /// Collects all deliveries strictly before `duration_s`.
    pub fn take_until(&mut self, duration_s: f64) -> Vec<ImpairedArrival> {
        let mut out = Vec::new();
        while let Some(a) = self.next_delivery() {
            if a.time_s >= duration_s {
                break;
            }
            out.push(a);
        }
        out
    }
}

/// Applies only the reordering stage of `cfg` to an already-impaired
/// delivery stream — for when loss and corruption happened upstream
/// (inside a retransmission model, say) and the order perturbation
/// happens at the NIC queue. Drop, corruption, and duplication settings
/// in `cfg` are ignored; only `reorder_prob`, `reorder_depth`, and
/// `seed` take effect, so no packet is ever lost here. Corruption flags
/// ride along unchanged and the output stays sorted.
pub fn reorder_deliveries(
    deliveries: &[ImpairedArrival],
    cfg: ImpairConfig,
) -> (Vec<ImpairedArrival>, ImpairCounters) {
    let mut state = ImpairState::new(ImpairConfig {
        reorder_prob: cfg.reorder_prob,
        reorder_depth: cfg.reorder_depth,
        seed: cfg.seed,
        ..ImpairConfig::default()
    });
    let mut out = Vec::with_capacity(deliveries.len());
    let mut held: Vec<(usize, ImpairedArrival)> = Vec::new();
    let mut last_time_s = 0.0;
    for &d in deliveries {
        let fate = state.next_fate();
        last_time_s = d.time_s;
        // Same release rule as `ImpairedSource`: every packet crossing
        // the channel advances the held ones, so holds are bounded even
        // if every packet reorders.
        let mut i = 0;
        while i < held.len() {
            held[i].0 -= 1;
            if held[i].0 == 0 {
                let (_, mut p) = held.remove(i);
                p.time_s = d.time_s;
                out.push(p);
            } else {
                i += 1;
            }
        }
        if fate.reorder_slip > 0 {
            held.push((fate.reorder_slip, d));
            continue;
        }
        out.push(d);
    }
    for (_, mut p) in held {
        p.time_s = last_time_s;
        out.push(p);
    }
    (out, state.counters())
}

/// Runs a pre-built arrival list through a channel. Convenience for
/// sweeps that reuse the same arrival vector across disciplines.
pub fn impair_arrivals(
    arrivals: &[Arrival],
    cfg: ImpairConfig,
) -> (Vec<ImpairedArrival>, ImpairCounters) {
    struct SliceSource<'a> {
        items: std::slice::Iter<'a, Arrival>,
    }
    impl TrafficSource for SliceSource<'_> {
        fn next_arrival(&mut self) -> Option<Arrival> {
            self.items.next().copied()
        }
    }
    let mut src = ImpairedSource::new(
        SliceSource {
            items: arrivals.iter(),
        },
        cfg,
    );
    let mut out = Vec::with_capacity(arrivals.len());
    while let Some(a) = src.next_delivery() {
        out.push(a);
    }
    (out, src.counters())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{ConstantSource, PoissonSource};

    fn constant(n: usize) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival {
                time_s: i as f64 * 1e-3,
                bytes: 552,
            })
            .collect()
    }

    #[test]
    fn transparent_channel_changes_nothing() {
        let arrivals = constant(100);
        let (out, c) = impair_arrivals(&arrivals, ImpairConfig::default());
        assert_eq!(out.len(), 100);
        assert_eq!(c.dropped + c.corrupted + c.duplicated + c.reordered, 0);
        for (a, b) in arrivals.iter().zip(&out) {
            assert_eq!(a.time_s, b.time_s);
            assert_eq!(a.bytes, b.bytes);
            assert!(!b.corrupted);
        }
    }

    #[test]
    fn loss_rate_converges_to_the_configured_probability() {
        let arrivals = constant(20_000);
        let (out, c) = impair_arrivals(&arrivals, ImpairConfig::loss(0.05, 7));
        let observed = c.dropped as f64 / c.offered as f64;
        assert!((observed - 0.05).abs() < 0.01, "observed loss {observed}");
        assert_eq!(out.len() as u64, c.delivered);
        assert_eq!(c.offered, c.delivered + c.dropped - c.duplicated);
    }

    #[test]
    fn corruption_marks_but_delivers() {
        let arrivals = constant(10_000);
        let cfg = ImpairConfig {
            corrupt_prob: 0.10,
            seed: 3,
            ..ImpairConfig::default()
        };
        let (out, c) = impair_arrivals(&arrivals, cfg);
        assert_eq!(out.len(), 10_000, "corruption never loses packets");
        let marked = out.iter().filter(|a| a.corrupted).count() as u64;
        assert_eq!(marked, c.corrupted);
        let rate = marked as f64 / 10_000.0;
        assert!((rate - 0.10).abs() < 0.02, "corruption rate {rate}");
    }

    #[test]
    fn duplicates_arrive_back_to_back() {
        let arrivals = constant(5_000);
        let cfg = ImpairConfig {
            dup_prob: 0.08,
            seed: 11,
            ..ImpairConfig::default()
        };
        let (out, c) = impair_arrivals(&arrivals, cfg);
        assert_eq!(out.len() as u64, 5_000 + c.duplicated);
        assert!(c.duplicated > 300, "duplications {}", c.duplicated);
        // Every duplicate is an adjacent equal pair.
        let pairs = out
            .windows(2)
            .filter(|w| w[0] == w[1])
            .count() as u64;
        assert!(pairs >= c.duplicated);
    }

    #[test]
    fn reordering_keeps_time_nondecreasing_and_loses_nothing() {
        let arrivals = constant(5_000);
        let cfg = ImpairConfig {
            reorder_prob: 0.2,
            reorder_depth: 8,
            seed: 5,
            ..ImpairConfig::default()
        };
        let (out, c) = impair_arrivals(&arrivals, cfg);
        assert_eq!(out.len(), 5_000, "reordering must not lose packets");
        assert!(c.reordered > 500, "reordered {}", c.reordered);
        assert!(
            out.windows(2).all(|w| w[0].time_s <= w[1].time_s),
            "delivery times must be non-decreasing"
        );
    }

    #[test]
    fn gilbert_elliott_losses_come_in_bursts() {
        // Same mean loss, independent vs bursty: the bursty channel's
        // losses must cluster into longer runs.
        let arrivals = constant(50_000);
        let mean = 0.05;
        let (ind, ci) = impair_arrivals(&arrivals, ImpairConfig::loss(mean, 2));
        let ge = GilbertElliott::bursty(mean, 10.0, 0.8);
        assert!((ge.mean_loss() - mean).abs() < 1e-12);
        let cfg = ImpairConfig {
            gilbert: Some(ge),
            seed: 2,
            ..ImpairConfig::default()
        };
        let (bur, cb) = impair_arrivals(&arrivals, cfg);
        let li = ci.dropped as f64 / ci.offered as f64;
        let lb = cb.dropped as f64 / cb.offered as f64;
        assert!((li - mean).abs() < 0.01, "independent loss {li}");
        assert!((lb - mean).abs() < 0.015, "bursty loss {lb}");
        // Mean run length of consecutive losses: detect via gaps in the
        // delivered count sequence. Approximate by comparing loss-run
        // counts: same losses in fewer runs = burstier.
        let runs = |delivered: &[ImpairedArrival], total: usize| {
            let mut lost = vec![true; total];
            for a in delivered {
                let orig = (a.time_s * 1e3).round() as usize;
                if orig < total {
                    lost[orig] = false;
                }
            }
            let mut r = 0u64;
            let mut prev = false;
            for &l in &lost {
                if l && !prev {
                    r += 1;
                }
                prev = l;
            }
            r
        };
        let runs_ind = runs(&ind, 50_000);
        let runs_bur = runs(&bur, 50_000);
        assert!(
            (runs_bur as f64) < runs_ind as f64 * 0.5,
            "bursty losses should form far fewer runs: {runs_bur} vs {runs_ind}"
        );
    }

    #[test]
    fn fates_are_deterministic_and_outcome_independent() {
        // The fate sequence depends only on (config, seed) — not on how
        // many packets the caller actually pushes through between calls.
        let cfg = ImpairConfig {
            drop_prob: 0.1,
            corrupt_prob: 0.1,
            dup_prob: 0.1,
            reorder_prob: 0.1,
            reorder_depth: 4,
            gilbert: Some(GilbertElliott::bursty(0.02, 5.0, 0.4)),
            seed: 42,
        };
        let mut a = ImpairState::new(cfg);
        let mut b = ImpairState::new(cfg);
        let fa: Vec<Fate> = (0..1000).map(|_| a.next_fate()).collect();
        let fb: Vec<Fate> = (0..1000).map(|_| b.next_fate()).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(|f| f.dropped));
        assert!(fa.iter().any(|f| f.corrupted));
        assert!(fa.iter().any(|f| f.duplicated));
        assert!(fa.iter().any(|f| f.reorder_slip > 0));
    }

    #[test]
    fn source_wrapper_matches_slice_helper() {
        let cfg = ImpairConfig {
            drop_prob: 0.05,
            corrupt_prob: 0.02,
            dup_prob: 0.02,
            reorder_prob: 0.05,
            reorder_depth: 3,
            seed: 9,
            ..ImpairConfig::default()
        };
        let mut direct = ImpairedSource::new(PoissonSource::new(2000.0, 552, 4), cfg);
        let via_source = direct.take_until(1.0);
        let arrivals = PoissonSource::new(2000.0, 552, 4).take_until(1.0);
        let (via_slice, _) = impair_arrivals(&arrivals, cfg);
        // The slice path sees a truncated stream, so compare the prefix
        // both observed.
        let n = via_source.len().min(via_slice.len());
        assert!(n > 1000);
        assert_eq!(&via_source[..n], &via_slice[..n]);
    }

    #[test]
    fn reorder_only_pass_loses_nothing_and_ignores_loss_settings() {
        let deliveries: Vec<ImpairedArrival> = constant(4_000)
            .into_iter()
            .enumerate()
            .map(|(i, a)| ImpairedArrival {
                time_s: a.time_s,
                bytes: a.bytes,
                corrupted: i % 7 == 0,
            })
            .collect();
        let (out, c) = reorder_deliveries(
            &deliveries,
            ImpairConfig {
                // Loss and duplication must be ignored by this pass.
                drop_prob: 0.9,
                dup_prob: 0.9,
                reorder_prob: 0.3,
                reorder_depth: 6,
                seed: 13,
                ..ImpairConfig::default()
            },
        );
        assert_eq!(out.len(), deliveries.len(), "reordering loses nothing");
        assert_eq!(c.dropped + c.duplicated, 0);
        assert!(c.reordered > 500, "reordered {}", c.reordered);
        assert!(out.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        // The corruption flags survive as a multiset.
        let marked = |v: &[ImpairedArrival]| v.iter().filter(|a| a.corrupted).count();
        assert_eq!(marked(&out), marked(&deliveries));
    }

    #[test]
    fn all_reordered_streams_still_make_progress_and_flush() {
        // Every packet reorders with deep slips: releases must still be
        // driven by later packets crossing the channel, and whatever is
        // held when the stream ends must flush — nothing is lost and
        // nothing is held forever.
        let arrivals = constant(50);
        let (out, c) = impair_arrivals(
            &arrivals,
            ImpairConfig {
                reorder_prob: 1.0,
                reorder_depth: 100,
                seed: 1,
                ..ImpairConfig::default()
            },
        );
        assert_eq!(out.len(), 50);
        assert_eq!(c.reordered, 50);
        assert!(out.windows(2).all(|w| w[0].time_s <= w[1].time_s));

        // The same channel in front of an endless source must not spin
        // (or hoard) forever either: progress is bounded by the depth.
        let mut src = ImpairedSource::new(
            ConstantSource::new(0.001, 552),
            ImpairConfig {
                reorder_prob: 1.0,
                reorder_depth: 100,
                seed: 1,
                ..ImpairConfig::default()
            },
        );
        let out = src.take_until(0.05);
        assert!(!out.is_empty(), "deep reordering still delivers");
        assert!(out.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    #[should_panic(expected = "mean_loss < bad_loss")]
    fn gilbert_rejects_impossible_parameters() {
        GilbertElliott::bursty(0.5, 10.0, 0.3);
    }
}
