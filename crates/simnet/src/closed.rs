//! Closed-loop traffic: a retrying client population.
//!
//! Every other source in this crate is *open-loop* — arrivals are a
//! function of time alone (Poisson, self-similar, trace), so overload
//! only grows the queue. Real small-message services at
//! millions-of-users scale are *closed-loop*: a finite population of
//! clients each sends one request, waits on a retransmit timer, retries
//! with exponential backoff, and only thinks up the next request after
//! the current one is acknowledged or abandoned. Under overload the
//! retry loop is an amplifier — the server burns cycles completing
//! requests whose clients have already timed out, goodput collapses
//! while throughput stays high, and the system can stay collapsed after
//! the original surge passes (metastable failure). `figure13` in
//! `crates/bench` measures exactly that.
//!
//! The retransmission machinery ([`RetryPolicy`], [`RetransmitTimer`])
//! lives here rather than in `signaling::recovery` because `signaling`
//! depends on `simnet` and the population needs the timer from the
//! *client* side; `signaling::recovery` re-exports both so its API is
//! unchanged. New to this home is [`RetryPolicy::max_rto_s`], the
//! SSCOP-style cap on the backed-off timeout — without it, client-side
//! retry budgets larger than 3 produce absurd deadlines in long
//! closed-loop runs.
//!
//! Conservation: every transmission the channel delivers into the
//! simulator ends in exactly one bucket, extending the open-loop law to
//! `offered == completed + rejected + drops + shed + in_flight +
//! abandoned`. `abandoned` counts *stale completions* — transmissions
//! the server finished processing after the client had already been
//! acknowledged by another copy or had given up. That wasted work is
//! precisely what the retry loop amplifies, so the bucket doubles as
//! the metastability signal.
//!
//! Channel semantics per transmission mirror `signaling::recovery`: a
//! *dropped* send never reaches the simulator (the client's timer fires
//! anyway); a *corrupted* send is delivered, costs the server cycles,
//! and is rejected at checksum verification (no acknowledgement); a
//! *duplicated* send is delivered twice — the first copy to complete
//! cleanly acknowledges the client and the second completes stale.
//! Reordering has no meaning at this per-request level and is ignored.

use crate::impair::{ImpairConfig, ImpairState};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Retransmission policy of the reliable transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Initial retransmission timeout in seconds (T303-like).
    pub rto_s: f64,
    /// Timeout multiplier per retransmission.
    pub backoff: f64,
    /// Retransmissions after the initial send before giving up.
    pub max_retries: u32,
    /// Upper bound on any single backed-off timeout, in seconds
    /// (SSCOP-style). The default (1 s) is far above every timeout the
    /// default policy can produce, so capping changes nothing unless a
    /// caller opts into deep retry budgets.
    pub max_rto_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            rto_s: 0.005,
            backoff: 2.0,
            max_retries: 3,
            max_rto_s: 1.0,
        }
    }
}

impl RetryPolicy {
    /// Timeout armed after transmission number `sent` (1-based), in
    /// seconds: `min(rto_s * backoff^(sent-1), max_rto_s)`.
    pub fn timeout_s(&self, sent: u32) -> f64 {
        (self.rto_s * self.backoff.powi(sent.saturating_sub(1) as i32)).min(self.max_rto_s)
    }
}

/// A per-call retransmit timer. Armed at the first transmission; each
/// [`RetransmitTimer::expire`] yields the retransmission time and re-arms
/// with the next backoff step, until the retry budget is spent.
#[derive(Debug, Clone, Copy)]
pub struct RetransmitTimer {
    policy: RetryPolicy,
    sent: u32,
    deadline_s: f64,
}

impl RetransmitTimer {
    /// Arms the timer for a message first transmitted at `now_s`.
    pub fn arm(policy: RetryPolicy, now_s: f64) -> Self {
        RetransmitTimer {
            policy,
            sent: 1,
            deadline_s: now_s + policy.timeout_s(1),
        }
    }

    /// When the timer fires if no acknowledgement arrives.
    pub fn deadline_s(&self) -> f64 {
        self.deadline_s
    }

    /// Transmissions made so far (initial send included).
    pub fn transmissions(&self) -> u32 {
        self.sent
    }

    /// The timer fired with nothing acknowledged. Returns the time of
    /// the retransmission it triggers, or `None` once the retry budget
    /// is exhausted — at which point [`RetransmitTimer::deadline_s`] is
    /// the moment the call is abandoned.
    pub fn expire(&mut self) -> Option<f64> {
        if self.sent > self.policy.max_retries {
            return None;
        }
        let t = self.deadline_s;
        self.sent += 1;
        self.deadline_s = t + self.policy.timeout_s(self.sent);
        Some(t)
    }
}

/// Traffic class of a client's requests, for weighted-fair admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Signalling call setup (the paper's Q.93B workload).
    Call,
    /// DNS-style tiny lookups.
    Dns,
    /// Small RPCs (the paper's 552-byte small message).
    Rpc,
}

impl Class {
    /// Number of classes (array-accounting dimension).
    pub const COUNT: usize = 3;

    /// All classes, in index order.
    pub const ALL: [Class; Class::COUNT] = [Class::Call, Class::Dns, Class::Rpc];

    /// Deterministic class assignment by client id.
    pub fn of_client(client: u32) -> Class {
        match client % 3 {
            0 => Class::Call,
            1 => Class::Dns,
            _ => Class::Rpc,
        }
    }

    /// Accounting index of this class.
    pub fn index(self) -> usize {
        match self {
            Class::Call => 0,
            Class::Dns => 1,
            Class::Rpc => 2,
        }
    }

    /// Request size on the wire.
    pub fn bytes(self) -> u32 {
        match self {
            Class::Call => 120,
            Class::Dns => 80,
            Class::Rpc => 552,
        }
    }

    /// Short label for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Class::Call => "call",
            Class::Dns => "dns",
            Class::Rpc => "rpc",
        }
    }
}

/// Parameters of a closed-loop client population.
#[derive(Debug, Clone, Copy)]
pub struct ClosedConfig {
    /// Population size (the paper-scale runs use 10^5).
    pub clients: u32,
    /// Mean exponential think time between a request's resolution and
    /// the client's next request, in seconds. Offered load is
    /// `clients / (think_s + response_time)` — the closed-loop feedback.
    pub think_s: f64,
    /// No new requests start after this time; in-flight requests drain.
    pub duration_s: f64,
    /// Seed for think-time draws.
    pub seed: u64,
    /// Client-side retransmission policy.
    pub retry: RetryPolicy,
    /// When `false`, the retry budget is effectively unbounded: clients
    /// never abandon, which is the classic metastable amplifier.
    pub retry_budget_on: bool,
    /// The impairment channel every transmission crosses on its way to
    /// the simulator.
    pub channel: ImpairConfig,
}

impl ClosedConfig {
    /// A transparent-channel population with the default retry policy
    /// and the budget enabled.
    pub fn new(clients: u32, think_s: f64, duration_s: f64, seed: u64) -> Self {
        ClosedConfig {
            clients,
            think_s,
            duration_s,
            seed,
            retry: RetryPolicy::default(),
            retry_budget_on: true,
            channel: ImpairConfig::default(),
        }
    }
}

/// One transmission emitted by the population (post-channel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSend {
    /// Simulated send time in seconds.
    pub time_s: f64,
    /// Sending client id (doubles as the flow id for steering).
    pub client: u32,
    /// Per-client request sequence number; `(client, req)` identifies
    /// the request a completion acknowledges.
    pub req: u64,
    /// Message size on the wire.
    pub bytes: u32,
    /// Whether the channel corrupted this copy (the server rejects it
    /// at checksum verification; no acknowledgement).
    pub corrupted: bool,
    /// Traffic class, for weighted-fair admission accounting.
    pub class: Class,
}

/// How the population classified a completion fed back via
/// [`ClosedPopulation::ack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AckKind {
    /// First clean completion for an outstanding request: the client is
    /// acknowledged and will think up its next request.
    Useful {
        /// Request latency, first transmission to acknowledgement.
        latency_us: f64,
    },
    /// The client had already been acknowledged (duplicate/retry copy)
    /// or had abandoned the request — the server's work was wasted.
    /// Tally under `abandoned` in the conservation law.
    Stale,
}

/// Aggregate counters of one population run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClosedStats {
    /// Requests started (one per client think cycle).
    pub requests: u64,
    /// Requests resolved by a useful acknowledgement.
    pub useful: u64,
    /// Requests abandoned after the retry budget was spent.
    pub abandoned_requests: u64,
    /// Transmissions attempted (initial sends + retransmissions),
    /// before the channel.
    pub transmissions: u64,
    /// Transmissions the channel delivered into the simulator
    /// (duplicates counted).
    pub offered: u64,
    /// Transmissions the channel dropped (client timer fires anyway).
    pub channel_dropped: u64,
    /// Requests started, by class index.
    pub per_class_requests: [u64; Class::COUNT],
    /// Useful acknowledgements, by class index.
    pub per_class_useful: [u64; Class::COUNT],
}

impl ClosedStats {
    /// Transmissions per request — the retry-amplification factor. 1.0
    /// means no retries; the metastable regime sends this toward the
    /// retry-budget limit.
    pub fn retry_amplification(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.transmissions as f64 / self.requests as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// The client starts its next request at this time.
    Think,
    /// The retransmit timer for `(client, req)` fires at this time.
    Timer,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time_s: f64,
    client: u32,
    req: u64,
    kind: EventKind,
}

impl Event {
    fn rank(&self) -> u8 {
        match self.kind {
            EventKind::Think => 0,
            EventKind::Timer => 1,
        }
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order with deterministic tie-breaks so heap pops are
        // reproducible across runs and thread counts.
        self.time_s
            .total_cmp(&other.time_s)
            .then(self.client.cmp(&other.client))
            .then(self.req.cmp(&other.req))
            .then(self.rank().cmp(&other.rank()))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Between requests (thinking) — a `Think` event is pending.
    Idle,
    /// A request is outstanding; the retransmit timer is armed.
    Waiting,
    /// Past the window with nothing outstanding: the client retires.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct ClientState {
    phase: Phase,
    /// Latest request sequence number started by this client.
    req: u64,
    /// First-transmission time of the outstanding request.
    start_s: f64,
    timer: RetransmitTimer,
    class: Class,
}

/// A deterministic population of retrying clients.
///
/// Drivers pull transmissions with [`ClosedPopulation::poll_sends`] up
/// to a causality frontier (the next simulator batch start) and feed
/// completions back with [`ClosedPopulation::ack`]. Because the
/// simulator runs batches in non-decreasing start order, every
/// acknowledgement with finish time ≤ the frontier is delivered before
/// the frontier advances past it — client timers never observe the
/// future.
#[derive(Debug)]
pub struct ClosedPopulation {
    think_s: f64,
    duration_s: f64,
    policy: RetryPolicy,
    clients: Vec<ClientState>,
    heap: BinaryHeap<Reverse<Event>>,
    rng: StdRng,
    chan: ImpairState,
    stats: ClosedStats,
    latencies_us: Vec<f64>,
}

impl ClosedPopulation {
    /// Builds the population and staggers each client's first request
    /// over one think-time draw, avoiding a synchronized herd at t=0.
    pub fn new(cfg: &ClosedConfig) -> Self {
        let policy = if cfg.retry_budget_on {
            cfg.retry
        } else {
            RetryPolicy {
                // Effectively unbounded: the client never abandons.
                max_retries: u32::MAX - 1,
                ..cfg.retry
            }
        };
        let mut pop = ClosedPopulation {
            think_s: cfg.think_s,
            duration_s: cfg.duration_s,
            policy,
            clients: Vec::with_capacity(cfg.clients as usize),
            heap: BinaryHeap::with_capacity(cfg.clients as usize),
            rng: StdRng::seed_from_u64(cfg.seed),
            chan: ImpairState::new(cfg.channel),
            stats: ClosedStats::default(),
            latencies_us: Vec::new(),
        };
        for client in 0..cfg.clients {
            pop.clients.push(ClientState {
                phase: Phase::Idle,
                req: 0,
                start_s: 0.0,
                timer: RetransmitTimer::arm(policy, 0.0),
                class: Class::of_client(client),
            });
            let first = pop.think_draw();
            pop.heap.push(Reverse(Event {
                time_s: first,
                client,
                req: 1,
                kind: EventKind::Think,
            }));
        }
        pop
    }

    /// One exponential think-time draw.
    fn think_draw(&mut self) -> f64 {
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        -self.think_s * u.ln()
    }

    /// The time of the next pending client event, if any.
    pub fn next_event_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(e)| e.time_s)
    }

    /// Whether every client has retired and no events are pending.
    pub fn drained(&self) -> bool {
        self.heap.is_empty()
    }

    /// Requests currently outstanding (sent, neither acknowledged nor
    /// abandoned).
    pub fn outstanding(&self) -> u64 {
        self.clients.iter().filter(|c| c.phase == Phase::Waiting).count() as u64
    }

    /// Counters so far.
    pub fn stats(&self) -> &ClosedStats {
        &self.stats
    }

    /// The impairment channel's own counters (for threading into a
    /// [`crate::stats::SimReport`]).
    pub fn channel_counters(&self) -> crate::impair::ImpairCounters {
        self.chan.counters()
    }

    /// Request latencies (first transmission → useful acknowledgement)
    /// in microseconds, in acknowledgement order.
    pub fn latencies_us(&self) -> &[f64] {
        &self.latencies_us
    }

    /// Processes every pending client event with time ≤ `until_s`,
    /// appending the transmissions the channel delivers to `out` in
    /// non-decreasing time order.
    pub fn poll_sends(&mut self, until_s: f64, out: &mut Vec<ClientSend>) {
        loop {
            match self.heap.peek() {
                Some(Reverse(e)) if e.time_s <= until_s => {}
                _ => break,
            }
            let Some(Reverse(ev)) = self.heap.pop() else {
                break;
            };
            self.handle(ev, out);
        }
    }

    fn handle(&mut self, ev: Event, out: &mut Vec<ClientSend>) {
        match ev.kind {
            EventKind::Think => {
                let (class, req, deadline) = {
                    let Some(c) = self.clients.get_mut(ev.client as usize) else {
                        return;
                    };
                    if c.phase != Phase::Idle {
                        return;
                    }
                    if ev.time_s > self.duration_s {
                        // The window closed while this client thought;
                        // it retires instead of starting a request.
                        c.phase = Phase::Done;
                        return;
                    }
                    c.req += 1;
                    c.start_s = ev.time_s;
                    c.phase = Phase::Waiting;
                    c.timer = RetransmitTimer::arm(self.policy, ev.time_s);
                    (c.class, c.req, c.timer.deadline_s())
                };
                self.stats.requests += 1;
                if let Some(n) = self.stats.per_class_requests.get_mut(class.index()) {
                    *n += 1;
                }
                self.transmit(ev.time_s, ev.client, req, class, out);
                self.heap.push(Reverse(Event {
                    time_s: deadline,
                    client: ev.client,
                    req,
                    kind: EventKind::Timer,
                }));
            }
            EventKind::Timer => {
                let fired = {
                    let Some(c) = self.clients.get_mut(ev.client as usize) else {
                        return;
                    };
                    if c.phase != Phase::Waiting || c.req != ev.req {
                        // Acknowledged or superseded since armed.
                        return;
                    }
                    match c.timer.expire() {
                        Some(retx_s) => Some((retx_s, c.class, c.timer.deadline_s())),
                        None => {
                            c.phase = Phase::Idle;
                            None
                        }
                    }
                };
                match fired {
                    Some((retx_s, class, deadline)) => {
                        self.transmit(retx_s, ev.client, ev.req, class, out);
                        self.heap.push(Reverse(Event {
                            time_s: deadline,
                            client: ev.client,
                            req: ev.req,
                            kind: EventKind::Timer,
                        }));
                    }
                    None => {
                        // Budget spent: the request is abandoned and the
                        // client thinks up its next one. Any copies still
                        // in the simulator will complete stale.
                        self.stats.abandoned_requests += 1;
                        let next = ev.time_s + self.think_draw();
                        self.heap.push(Reverse(Event {
                            time_s: next,
                            client: ev.client,
                            req: ev.req + 1,
                            kind: EventKind::Think,
                        }));
                    }
                }
            }
        }
    }

    /// Pushes one transmission through the channel.
    fn transmit(
        &mut self,
        time_s: f64,
        client: u32,
        req: u64,
        class: Class,
        out: &mut Vec<ClientSend>,
    ) {
        self.stats.transmissions += 1;
        let fate = self.chan.next_fate();
        if fate.dropped {
            // Lost on the wire: the client's timer fires regardless.
            self.stats.channel_dropped += 1;
            return;
        }
        let send = ClientSend {
            time_s,
            client,
            req,
            bytes: class.bytes(),
            corrupted: fate.corrupted,
            class,
        };
        out.push(send);
        self.stats.offered += 1;
        if fate.duplicated {
            out.push(send);
            self.stats.offered += 1;
        }
    }

    /// Feeds a completion back: the simulator finished processing a
    /// clean (non-corrupted) copy of `(client, req)` at `t_s`. Returns
    /// whether the completion was useful or stale; stale completions
    /// land in the `abandoned` conservation bucket.
    pub fn ack(&mut self, client: u32, req: u64, t_s: f64) -> AckKind {
        let (latency_us, class) = {
            let Some(c) = self.clients.get_mut(client as usize) else {
                return AckKind::Stale;
            };
            if c.phase != Phase::Waiting || c.req != req {
                return AckKind::Stale;
            }
            c.phase = Phase::Idle;
            ((t_s - c.start_s) * 1e6, c.class)
        };
        self.stats.useful += 1;
        if let Some(n) = self.stats.per_class_useful.get_mut(class.index()) {
            *n += 1;
        }
        self.latencies_us.push(latency_us);
        let next = t_s + self.think_draw();
        self.heap.push(Reverse(Event {
            time_s: next,
            client,
            req: req + 1,
            kind: EventKind::Think,
        }));
        AckKind::Useful { latency_us }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_caps_at_max_rto() {
        // Regression for the unbounded `rto_s * backoff^(sent-1)`
        // growth: with a deep budget, the cap binds exactly at the
        // boundary step and every later timeout stays flat.
        let p = RetryPolicy {
            rto_s: 0.01,
            backoff: 2.0,
            max_retries: 10,
            max_rto_s: 0.04,
        };
        assert_eq!(p.timeout_s(1), 0.01);
        assert_eq!(p.timeout_s(2), 0.02);
        assert_eq!(p.timeout_s(3), 0.04, "boundary: uncapped value equals the cap");
        assert_eq!(p.timeout_s(4), 0.04, "first capped step");
        assert_eq!(p.timeout_s(11), 0.04, "stays flat forever after");
        let mut t = RetransmitTimer::arm(p, 0.0);
        for _ in 0..10 {
            assert!(t.expire().is_some());
        }
        // 0.01 + 0.02 + 0.04 * 9 = 0.39, not 0.01 * (2^11 - 1) = 20.47.
        assert!((t.deadline_s() - 0.39).abs() < 1e-12, "deadline sum is capped");
        assert_eq!(t.expire(), None);
    }

    #[test]
    fn default_cap_never_binds_for_default_policy() {
        // The default must keep every pre-existing figure byte-identical:
        // the deepest default timeout is 40 ms, far under the 1 s cap.
        let p = RetryPolicy::default();
        for sent in 1..=p.max_retries + 1 {
            let uncapped = p.rto_s * p.backoff.powi(sent.saturating_sub(1) as i32);
            assert_eq!(p.timeout_s(sent), uncapped);
        }
    }

    /// Serves every send instantly `service_s` after transmission,
    /// acking clean copies; returns (useful, stale) completions.
    fn serve_all(pop: &mut ClosedPopulation, service_s: f64, horizon_s: f64) -> (u64, u64) {
        let mut useful = 0;
        let mut stale = 0;
        let mut sends = Vec::new();
        while let Some(t) = pop.next_event_time() {
            if t > horizon_s {
                break;
            }
            sends.clear();
            pop.poll_sends(t, &mut sends);
            for s in &sends {
                if s.corrupted {
                    continue;
                }
                match pop.ack(s.client, s.req, s.time_s + service_s) {
                    AckKind::Useful { .. } => useful += 1,
                    AckKind::Stale => stale += 1,
                }
            }
        }
        (useful, stale)
    }

    #[test]
    fn fast_server_acks_every_request_without_retries() {
        let cfg = ClosedConfig::new(50, 0.01, 0.5, 7);
        let mut pop = ClosedPopulation::new(&cfg);
        let (useful, stale) = serve_all(&mut pop, 1e-4, 10.0);
        let st = *pop.stats();
        assert!(st.requests > 100, "closed loop keeps generating");
        assert_eq!(useful, st.useful);
        assert_eq!(stale, 0, "instant service leaves nothing stale");
        assert_eq!(st.transmissions, st.requests, "no retries needed");
        assert_eq!(st.abandoned_requests, 0);
        assert_eq!(st.useful + pop.outstanding(), st.requests);
        assert!(pop.drained(), "window closed and every client retired");
        assert_eq!(pop.latencies_us().len() as u64, st.useful);
        let by_class: u64 = st.per_class_requests.iter().sum();
        assert_eq!(by_class, st.requests);
    }

    #[test]
    fn unanswered_requests_retry_then_abandon() {
        // Never ack: every request retries max_retries times, is
        // abandoned, and the client moves on — the loop terminates.
        let cfg = ClosedConfig {
            think_s: 0.02,
            ..ClosedConfig::new(10, 0.02, 0.2, 3)
        };
        let mut pop = ClosedPopulation::new(&cfg);
        let mut sends = Vec::new();
        while let Some(t) = pop.next_event_time() {
            assert!(t < 100.0, "event horizon runaway");
            pop.poll_sends(t, &mut sends);
        }
        let st = *pop.stats();
        assert_eq!(st.useful, 0);
        assert_eq!(st.abandoned_requests, st.requests, "every request abandoned");
        assert_eq!(
            st.transmissions,
            st.requests * (1 + cfg.retry.max_retries as u64),
            "initial send plus the full retry budget each"
        );
        assert!((pop.stats().retry_amplification() - 4.0).abs() < 1e-12);
        assert!(pop.drained());
    }

    #[test]
    fn stale_ack_after_abandon_is_not_useful() {
        let cfg = ClosedConfig::new(1, 0.01, 0.05, 9);
        let mut pop = ClosedPopulation::new(&cfg);
        let mut sends = Vec::new();
        // Let the first request exhaust its budget unanswered.
        let mut first: Option<ClientSend> = None;
        while let Some(t) = pop.next_event_time() {
            if pop.stats().abandoned_requests > 0 {
                break;
            }
            pop.poll_sends(t, &mut sends);
            if first.is_none() {
                first = sends.first().copied();
            }
            sends.clear();
        }
        let Some(s) = first else {
            unreachable!("population emitted no sends");
        };
        assert_eq!(pop.stats().abandoned_requests, 1);
        // The server finally finishes the abandoned request's copy.
        assert_eq!(pop.ack(s.client, s.req, 1.0), AckKind::Stale);
        // And a duplicate of an acknowledged request is stale too.
        while let Some(t) = pop.next_event_time() {
            sends.clear();
            pop.poll_sends(t, &mut sends);
            if let Some(s2) = sends.first().copied() {
                assert!(matches!(
                    pop.ack(s2.client, s2.req, s2.time_s + 1e-4),
                    AckKind::Useful { .. }
                ));
                assert_eq!(pop.ack(s2.client, s2.req, s2.time_s + 2e-4), AckKind::Stale);
                break;
            }
        }
    }

    #[test]
    fn no_new_requests_after_the_window() {
        let cfg = ClosedConfig::new(20, 0.005, 0.1, 11);
        let mut pop = ClosedPopulation::new(&cfg);
        let mut sends = Vec::new();
        while let Some(t) = pop.next_event_time() {
            sends.clear();
            pop.poll_sends(t, &mut sends);
            for s in &sends {
                assert!(s.time_s <= cfg.duration_s, "no sends start past the window");
                pop.ack(s.client, s.req, s.time_s + 1e-4);
            }
        }
        assert!(pop.drained());
    }

    #[test]
    fn unbounded_budget_never_abandons() {
        let cfg = ClosedConfig {
            retry_budget_on: false,
            ..ClosedConfig::new(5, 0.01, 0.02, 13)
        };
        let mut pop = ClosedPopulation::new(&cfg);
        let mut sends = Vec::new();
        // Withhold acks for a long stretch: clients must keep retrying
        // (capped backoff) without ever abandoning.
        let mut polled = 0u32;
        while let Some(t) = pop.next_event_time() {
            if t > 30.0 {
                break;
            }
            sends.clear();
            pop.poll_sends(t, &mut sends);
            polled += 1;
            if polled > 10_000 {
                break;
            }
        }
        let st = *pop.stats();
        assert_eq!(st.abandoned_requests, 0, "budget off: nobody gives up");
        assert!(
            st.transmissions > st.requests * 8,
            "retry amplification runs past any default budget"
        );
        // Acking now resolves the outstanding requests and drains.
        while let Some(t) = pop.next_event_time() {
            sends.clear();
            pop.poll_sends(t, &mut sends);
            for s in &sends {
                pop.ack(s.client, s.req, s.time_s + 1e-5);
            }
        }
        assert!(pop.drained());
    }

    #[test]
    fn channel_drops_fire_timers_and_duplicates_arrive_twice() {
        let cfg = ClosedConfig {
            channel: ImpairConfig {
                drop_prob: 0.3,
                dup_prob: 0.2,
                corrupt_prob: 0.1,
                seed: 5,
                ..ImpairConfig::default()
            },
            ..ClosedConfig::new(40, 0.01, 0.3, 17)
        };
        let mut pop = ClosedPopulation::new(&cfg);
        let (useful, stale) = serve_all(&mut pop, 1e-4, 50.0);
        let st = *pop.stats();
        assert_eq!(st.offered + st.channel_dropped, st.transmissions + duplicated(&st));
        assert!(st.channel_dropped > 0);
        assert!(stale > 0, "duplicates produce stale completions");
        assert_eq!(useful, st.useful);
        assert_eq!(st.useful + st.abandoned_requests + pop.outstanding(), st.requests);
    }

    /// Duplicated deliveries inferred from the counters: each one adds
    /// a second `offered` for a single transmission.
    fn duplicated(st: &ClosedStats) -> u64 {
        st.offered + st.channel_dropped - st.transmissions
    }

    #[test]
    fn population_is_deterministic() {
        let cfg = ClosedConfig {
            channel: ImpairConfig::loss(0.1, 3),
            ..ClosedConfig::new(30, 0.01, 0.2, 23)
        };
        let run = |cfg: &ClosedConfig| {
            let mut pop = ClosedPopulation::new(cfg);
            let mut all = Vec::new();
            while let Some(t) = pop.next_event_time() {
                let mut sends = Vec::new();
                pop.poll_sends(t, &mut sends);
                for s in &sends {
                    if !s.corrupted {
                        pop.ack(s.client, s.req, s.time_s + 2e-4);
                    }
                }
                all.extend(sends);
            }
            (all, *pop.stats())
        };
        let (a1, s1) = run(&cfg);
        let (a2, s2) = run(&cfg);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        assert!(a1.windows(2).all(|w| w[0].time_s <= w[1].time_s), "time-ordered");
    }
}
