//! Statistics: latency distributions, per-message miss averages, and a
//! Hurst-parameter estimator for validating the self-similar source.
//!
//! Accounting here is conservation-law truthful: every arrival the
//! simulator was offered is classified as completed, rejected (checksum
//! failure), dropped (refused admission), shed (evicted by the admission
//! policy), left in flight, or — for closed-loop sources — completed
//! stale after the client stopped waiting (`abandoned`), and
//! [`SimReport::conservation_holds`] checks that the books balance. Rates are computed over the *actual
//! processing span* (arrival window plus drain time), not the arrival
//! window, so an overloaded run can no longer report a throughput it
//! never achieved.

use crate::impair::ImpairCounters;
use std::fmt;

/// Raw run-level tallies handed to [`SimReport::from_samples`] alongside
/// the per-message samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTally {
    /// Arrivals presented to the NIC (after any impairment channel).
    pub offered: u64,
    /// Messages processed but discarded at checksum verification.
    pub rejected: u64,
    /// Arrivals refused admission because the buffer was full.
    pub drops: u64,
    /// Queued packets evicted by the admission policy to make room.
    pub shed: u64,
    /// Packets still queued when the run ended.
    pub in_flight: u64,
    /// Completions that were stale by the time they finished: the
    /// closed-loop client had already been acknowledged by another copy
    /// or had abandoned the request (zero for open-loop sources).
    pub abandoned: u64,
    /// Arrival window in seconds.
    pub duration_s: f64,
    /// Actual span from start to the last completion, in seconds. Values
    /// <= 0 fall back to `duration_s` (e.g. a run with no completions).
    pub span_s: f64,
    /// Batches processed.
    pub batches: u64,
    /// What the impairment channel did upstream of the NIC.
    pub net: ImpairCounters,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Messages fully processed and delivered.
    pub completed: u64,
    /// Messages processed up to checksum verification and discarded
    /// there (cycles spent, no useful work).
    pub rejected: u64,
    /// Arrivals dropped because the NIC buffer was full.
    pub drops: u64,
    /// Queued packets evicted by the admission policy.
    pub shed: u64,
    /// Packets still queued when the run ended.
    pub in_flight: u64,
    /// Stale completions: the server finished the work after the
    /// closed-loop client stopped waiting for it (acknowledged via
    /// another copy, or the request abandoned). Always zero for
    /// open-loop sources; under closed-loop overload this is the wasted
    /// work that separates throughput from goodput.
    pub abandoned: u64,
    /// Arrivals presented to the NIC.
    pub offered: u64,
    /// Packets the impairment channel lost upstream of the NIC.
    pub net_dropped: u64,
    /// Packets the impairment channel delivered with damaged payloads.
    pub net_corrupted: u64,
    /// Extra copies the impairment channel injected.
    pub net_duplicated: u64,
    /// Run length in seconds (the span arrivals were drawn over).
    pub duration_s: f64,
    /// Start-to-last-completion span in seconds; equals `duration_s`
    /// when the queue drains inside the arrival window, exceeds it when
    /// the backlog drains past the end.
    pub span_s: f64,
    /// Mean latency (arrival to last-layer completion) in microseconds.
    pub mean_latency_us: f64,
    /// Median latency in microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_latency_us: f64,
    /// Largest observed latency in microseconds.
    pub max_latency_us: f64,
    /// Mean instruction-cache misses per message.
    pub mean_imiss: f64,
    /// Mean data-cache misses per message.
    pub mean_dmiss: f64,
    /// Messages processed (completed + rejected) per second of `span_s`.
    pub throughput: f64,
    /// *Useful* completions per second of `span_s` — excludes rejected
    /// messages, which consumed cycles but delivered nothing.
    pub goodput: f64,
    /// Arrivals per second of the arrival window (`offered / duration_s`).
    pub offered_load: f64,
    /// Mean batch size over all processed batches.
    pub mean_batch: f64,
    /// Standard deviation of `mean_latency_us` across the averaged runs
    /// (0 for a single run; populated by [`SimReport::average`]).
    pub latency_std_us: f64,
    /// Standard deviation of `mean_imiss` across the averaged runs.
    pub imiss_std: f64,
}

impl SimReport {
    /// Builds a report from raw per-message observations. `latencies_us`
    /// holds one sample per *completed* (not rejected) message.
    pub fn from_samples(
        latencies_us: &mut [f64],
        imisses: &[u64],
        dmisses: &[u64],
        tally: RunTally,
    ) -> SimReport {
        let span_s = if tally.span_s > 0.0 {
            tally.span_s
        } else {
            tally.duration_s
        };
        let offered_load = if tally.duration_s > 0.0 {
            tally.offered as f64 / tally.duration_s
        } else {
            0.0
        };
        let n = latencies_us.len();
        // Stale (abandoned) completions consumed the machine exactly
        // like useful ones — they count toward throughput and batch
        // sizing, never toward goodput (no latency sample is recorded).
        let processed = n as u64 + tally.rejected + tally.abandoned;
        let mut r = SimReport {
            completed: n as u64,
            rejected: tally.rejected,
            drops: tally.drops,
            shed: tally.shed,
            in_flight: tally.in_flight,
            abandoned: tally.abandoned,
            offered: tally.offered,
            net_dropped: tally.net.dropped,
            net_corrupted: tally.net.corrupted,
            net_duplicated: tally.net.duplicated,
            duration_s: tally.duration_s,
            span_s,
            throughput: processed as f64 / span_s,
            goodput: n as f64 / span_s,
            offered_load,
            mean_batch: if tally.batches == 0 {
                0.0
            } else {
                processed as f64 / tally.batches as f64
            },
            ..SimReport::default()
        };
        if n == 0 {
            return r;
        }
        // Misses are recorded for every processed message (rejected ones
        // still cost cache lines), so these slices can be longer than
        // the latency sample set.
        let miss_n = imisses.len().max(1) as f64;
        latencies_us.sort_by(|a, b| a.total_cmp(b));
        r.mean_latency_us = latencies_us.iter().sum::<f64>() / n as f64;
        r.p50_latency_us = percentile(latencies_us, 0.50);
        r.p99_latency_us = percentile(latencies_us, 0.99);
        // analyze::allow(panic-free-library, reason = "guarded by the n == 0 early return above")
        r.max_latency_us = *latencies_us.last().expect("n > 0");
        r.mean_imiss = imisses.iter().sum::<u64>() as f64 / miss_n;
        r.mean_dmiss = dmisses.iter().sum::<u64>() as f64 / miss_n;
        r
    }

    /// True iff every offered arrival is accounted for exactly once:
    /// `offered == completed + rejected + drops + shed + in_flight +
    /// abandoned` (the last term is the closed-loop stale-completion
    /// bucket, zero for open-loop sources).
    pub fn conservation_holds(&self) -> bool {
        self.offered
            == self.completed
                + self.rejected
                + self.drops
                + self.shed
                + self.in_flight
                + self.abandoned
    }

    /// Averages several reports (e.g. over random placements), weighting
    /// each run equally as the paper does. Counter fields become rounded
    /// per-run means, so conservation is checked per run, not on the
    /// average.
    ///
    /// Returns `None` for an empty slice: an all-zero report would
    /// vacuously pass [`SimReport::conservation_holds`] and read as "a
    /// run that offered nothing and lost nothing", silently masking a
    /// caller bug (e.g. a sweep configured with zero seeds).
    pub fn average(reports: &[SimReport]) -> Option<SimReport> {
        if reports.is_empty() {
            return None;
        }
        let n = reports.len() as f64;
        let sum = |f: fn(&SimReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
        // Counters are *rounded* per-run means; plain `as u64` truncation
        // biased every averaged counter low by up to one unit (e.g. 3
        // runs completing 100, 100, 101 messages averaged to 100, not
        // 100.33 → 100… but 1, 2, 2 averaged to 1 instead of 2).
        let sum_u = |f: fn(&SimReport) -> u64| {
            (reports.iter().map(f).sum::<u64>() as f64 / n).round() as u64
        };
        let std = |f: fn(&SimReport) -> f64| {
            let mean = reports.iter().map(f).sum::<f64>() / n;
            (reports.iter().map(|r| (f(r) - mean).powi(2)).sum::<f64>() / n).sqrt()
        };
        Some(SimReport {
            completed: sum_u(|r| r.completed),
            rejected: sum_u(|r| r.rejected),
            drops: sum_u(|r| r.drops),
            shed: sum_u(|r| r.shed),
            in_flight: sum_u(|r| r.in_flight),
            abandoned: sum_u(|r| r.abandoned),
            offered: sum_u(|r| r.offered),
            net_dropped: sum_u(|r| r.net_dropped),
            net_corrupted: sum_u(|r| r.net_corrupted),
            net_duplicated: sum_u(|r| r.net_duplicated),
            duration_s: sum(|r| r.duration_s),
            span_s: sum(|r| r.span_s),
            mean_latency_us: sum(|r| r.mean_latency_us),
            p50_latency_us: sum(|r| r.p50_latency_us),
            p99_latency_us: sum(|r| r.p99_latency_us),
            max_latency_us: sum(|r| r.max_latency_us),
            mean_imiss: sum(|r| r.mean_imiss),
            mean_dmiss: sum(|r| r.mean_dmiss),
            throughput: sum(|r| r.throughput),
            goodput: sum(|r| r.goodput),
            offered_load: sum(|r| r.offered_load),
            mean_batch: sum(|r| r.mean_batch),
            latency_std_us: std(|r| r.mean_latency_us),
            imiss_std: std(|r| r.mean_imiss),
        })
    }
}

/// Per-traffic-class raw samples for one run: the conservation buckets
/// plus the miss and latency observations, accumulated by the simulator
/// while a mixed multi-class stream runs. Storage is reusable across
/// runs ([`ClassSamples::clear`] keeps capacity) so the steady-state
/// run loop stays allocation-free once warm.
#[derive(Debug, Clone, Default)]
pub struct ClassSamples {
    /// Arrivals of this class presented to the NIC.
    pub offered: u64,
    /// Messages of this class fully processed and delivered.
    pub completed: u64,
    /// Messages of this class discarded at checksum verification.
    pub rejected: u64,
    /// Arrivals of this class refused admission.
    pub drops: u64,
    /// Queued packets of this class evicted by the admission policy.
    pub shed: u64,
    /// I-cache misses summed over processed (completed + rejected)
    /// messages of this class.
    pub imiss_sum: u64,
    /// D-cache misses summed over processed messages of this class.
    pub dmiss_sum: u64,
    /// One latency sample per completed message, microseconds.
    pub latencies_us: Vec<f64>,
}

impl ClassSamples {
    /// Resets the counters and samples, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.offered = 0;
        self.completed = 0;
        self.rejected = 0;
        self.drops = 0;
        self.shed = 0;
        self.imiss_sum = 0;
        self.dmiss_sum = 0;
        self.latencies_us.clear();
    }

    /// True iff every offered arrival of this class is accounted for on
    /// a drained run: `offered == completed + rejected + drops + shed`.
    pub fn conservation_holds(&self) -> bool {
        self.offered == self.completed + self.rejected + self.drops + self.shed
    }

    /// Distills the samples into a [`ClassReport`], sorting the latency
    /// samples in place. `slo_us` is the class's latency objective
    /// (0 = none; attainment reports 1 then).
    pub fn report(&mut self, slo_us: f64) -> ClassReport {
        self.latencies_us.sort_by(|a, b| a.total_cmp(b));
        let processed = (self.completed + self.rejected).max(1) as f64;
        let within = if slo_us > 0.0 {
            self.latencies_us.iter().filter(|&&l| l <= slo_us).count() as u64
        } else {
            self.completed
        };
        ClassReport {
            offered: self.offered,
            completed: self.completed,
            rejected: self.rejected,
            drops: self.drops,
            shed: self.shed,
            p50_latency_us: percentile(&self.latencies_us, 0.50),
            p99_latency_us: percentile(&self.latencies_us, 0.99),
            mean_imiss: self.imiss_sum as f64 / processed,
            mean_dmiss: self.dmiss_sum as f64 / processed,
            slo_us,
            slo_attainment: within as f64 / self.completed.max(1) as f64,
        }
    }
}

/// Aggregated per-class results of one run (or a seed average): the
/// per-class slice of the conservation law plus the latency tail, the
/// per-message miss costs, and attainment against the class's latency
/// SLO.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassReport {
    /// Arrivals of this class presented to the NIC.
    pub offered: u64,
    /// Messages of this class fully processed and delivered.
    pub completed: u64,
    /// Messages of this class discarded at checksum verification.
    pub rejected: u64,
    /// Arrivals of this class refused admission.
    pub drops: u64,
    /// Queued packets of this class evicted by the admission policy.
    pub shed: u64,
    /// Median latency of completed messages, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile latency of completed messages, microseconds.
    pub p99_latency_us: f64,
    /// Mean I-cache misses per processed message of this class.
    pub mean_imiss: f64,
    /// Mean D-cache misses per processed message of this class.
    pub mean_dmiss: f64,
    /// The latency objective the class was held to (0 = none).
    pub slo_us: f64,
    /// Fraction of completed messages within `slo_us` (1 when no SLO;
    /// 0 when nothing completed).
    pub slo_attainment: f64,
}

impl ClassReport {
    /// Averages several per-class reports (e.g. over seeds), weighting
    /// each run equally. Counter fields become rounded per-run means,
    /// mirroring [`SimReport::average`]. Returns `None` for an empty
    /// slice.
    pub fn average(reports: &[ClassReport]) -> Option<ClassReport> {
        if reports.is_empty() {
            return None;
        }
        let n = reports.len() as f64;
        let sum = |f: fn(&ClassReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
        let sum_u = |f: fn(&ClassReport) -> u64| {
            (reports.iter().map(f).sum::<u64>() as f64 / n).round() as u64
        };
        Some(ClassReport {
            offered: sum_u(|r| r.offered),
            completed: sum_u(|r| r.completed),
            rejected: sum_u(|r| r.rejected),
            drops: sum_u(|r| r.drops),
            shed: sum_u(|r| r.shed),
            p50_latency_us: sum(|r| r.p50_latency_us),
            p99_latency_us: sum(|r| r.p99_latency_us),
            mean_imiss: sum(|r| r.mean_imiss),
            mean_dmiss: sum(|r| r.mean_dmiss),
            slo_us: sum(|r| r.slo_us),
            slo_attainment: sum(|r| r.slo_attainment),
        })
    }
}

/// Percentile of an ascending-sorted slice, `q` in [0, 1], with linear
/// interpolation between ranks. (Nearest-rank rounding collapsed p99 to
/// the maximum for fewer than ~67 samples — a short run's tail latency
/// was whatever its single worst message happened to be.)
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi.min(sorted.len() - 1)] * frac
}

/// Why a Hurst estimate could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HurstError {
    /// The count series is too short for the aggregated-variance method.
    TooShort {
        /// Number of samples supplied.
        len: usize,
        /// Minimum the estimator needs.
        need: usize,
    },
    /// Fewer than two usable variance points (e.g. a constant series),
    /// so the log-log regression has no defined slope.
    DegenerateVariance,
}

impl fmt::Display for HurstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HurstError::TooShort { len, need } => write!(
                f,
                "count series of {len} samples is too short for the \
                 aggregated-variance estimator (need at least {need})"
            ),
            HurstError::DegenerateVariance => write!(
                f,
                "fewer than two non-zero variance points; the series is \
                 (nearly) constant and has no defined scaling slope"
            ),
        }
    }
}

impl std::error::Error for HurstError {}

/// Minimum count-series length [`estimate_hurst`] accepts.
pub const HURST_MIN_SAMPLES: usize = 64;

/// Estimates the Hurst parameter of a count process by the
/// aggregated-variance method: for self-similar traffic the variance of
/// the aggregated series at block size `m` scales as `m^(2H-2)`; a
/// least-squares fit of `log Var(m)` against `log m` gives `H`.
///
/// Returns an error (rather than a silent NaN) when the series is too
/// short or so close to constant that the regression is undefined.
pub fn estimate_hurst(counts: &[f64]) -> Result<f64, HurstError> {
    if counts.len() < HURST_MIN_SAMPLES {
        return Err(HurstError::TooShort {
            len: counts.len(),
            need: HURST_MIN_SAMPLES,
        });
    }
    let mean_all = counts.iter().sum::<f64>() / counts.len() as f64;
    let mut points = Vec::new();
    let mut m = 1usize;
    while counts.len() / m >= 16 {
        let blocks = counts.len() / m;
        let mut var = 0.0;
        for b in 0..blocks {
            let s: f64 = counts[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64;
            var += (s - mean_all).powi(2);
        }
        var /= blocks as f64;
        if var > 0.0 {
            points.push(((m as f64).ln(), var.ln()));
        }
        m *= 2;
    }
    // Least-squares slope of log Var vs log m; H = 1 + slope / 2.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if points.len() < 2 || denom.abs() < f64::EPSILON {
        return Err(HurstError::DegenerateVariance);
    }
    let slope = (n * sxy - sx * sy) / denom;
    Ok(1.0 + slope / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{PoissonSource, SelfSimilarSource, TrafficSource};

    fn tally(drops: u64, duration_s: f64, batches: u64) -> RunTally {
        RunTally {
            drops,
            duration_s,
            batches,
            ..RunTally::default()
        }
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        // Rank (5-1)*0.99 = 3.96: between 4.0 and 5.0, not clamped to max.
        assert!((percentile(&v, 0.99) - 4.96).abs() < 1e-12);
        assert!((percentile(&v, 0.25) - 2.0).abs() < 1e-12);
        // Two samples: the median is their midpoint.
        assert_eq!(percentile(&[10.0, 20.0], 0.5), 15.0);
    }

    #[test]
    fn p99_no_longer_collapses_to_max_for_small_n() {
        // 50 samples with one huge outlier: nearest-rank rounding used to
        // report the outlier as p99; interpolation stays below it.
        let mut v: Vec<f64> = (0..49).map(|i| i as f64).collect();
        v.push(10_000.0);
        let p99 = percentile(&v, 0.99);
        assert!(p99 < 10_000.0, "p99 {p99} must not equal the max");
        assert!(p99 > 48.0);
    }

    #[test]
    fn report_from_samples() {
        let mut lat = vec![3.0, 1.0, 2.0];
        let r = SimReport::from_samples(&mut lat, &[10, 20, 30], &[1, 2, 3], tally(5, 1.0, 2));
        assert_eq!(r.completed, 3);
        assert_eq!(r.drops, 5);
        assert_eq!(r.mean_latency_us, 2.0);
        assert_eq!(r.p50_latency_us, 2.0);
        assert_eq!(r.max_latency_us, 3.0);
        assert_eq!(r.mean_imiss, 20.0);
        assert_eq!(r.throughput, 3.0);
        assert_eq!(r.goodput, 3.0);
        assert_eq!(r.mean_batch, 1.5);
    }

    #[test]
    fn throughput_uses_the_actual_span_not_the_arrival_window() {
        // 100 completions whose processing drained 1 s past the 1 s
        // arrival window: the old accounting claimed 100 msg/s, double
        // the rate the machine actually sustained.
        let mut lat: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let im = vec![0u64; 100];
        let t = RunTally {
            offered: 100,
            duration_s: 1.0,
            span_s: 2.0,
            batches: 100,
            ..RunTally::default()
        };
        let r = SimReport::from_samples(&mut lat, &im, &im, t);
        assert_eq!(r.throughput, 50.0);
        assert_eq!(r.goodput, 50.0);
        assert_eq!(r.offered_load, 100.0);
        assert_eq!(r.span_s, 2.0);
        assert!(r.conservation_holds());
    }

    #[test]
    fn rejected_messages_count_in_throughput_but_not_goodput() {
        let mut lat = vec![1.0, 2.0];
        let im = [5u64, 5, 5];
        let t = RunTally {
            offered: 3,
            rejected: 1,
            duration_s: 1.0,
            span_s: 1.0,
            batches: 3,
            ..RunTally::default()
        };
        let r = SimReport::from_samples(&mut lat, &im, &im, t);
        assert_eq!(r.completed, 2);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.throughput, 3.0, "rejected work still consumed the machine");
        assert_eq!(r.goodput, 2.0, "but it is not useful output");
        assert_eq!(r.mean_imiss, 5.0, "misses averaged over all processed");
        assert!(r.conservation_holds());
    }

    #[test]
    fn abandoned_work_counts_in_throughput_but_not_goodput() {
        // Two useful completions plus one stale one (the closed-loop
        // client had stopped waiting): the machine processed three
        // messages but only two were useful.
        let mut lat = vec![1.0, 2.0];
        let im = [5u64, 5, 5];
        let t = RunTally {
            offered: 3,
            abandoned: 1,
            duration_s: 1.0,
            span_s: 1.0,
            batches: 3,
            ..RunTally::default()
        };
        let r = SimReport::from_samples(&mut lat, &im, &im, t);
        assert_eq!(r.completed, 2);
        assert_eq!(r.abandoned, 1);
        assert_eq!(r.throughput, 3.0, "stale work still consumed the machine");
        assert_eq!(r.goodput, 2.0, "but delivered nothing the client wanted");
        assert_eq!(r.mean_batch, 1.0);
        assert!(r.conservation_holds(), "abandoned closes the books");
        let avg = SimReport::average(&[r.clone(), r]).expect("non-empty");
        assert_eq!(avg.abandoned, 1, "averaging carries the bucket");
    }

    #[test]
    fn conservation_detects_lost_arrivals() {
        let t = RunTally {
            offered: 10,
            drops: 2,
            duration_s: 1.0,
            ..RunTally::default()
        };
        let mut lat = vec![1.0; 7];
        let im = vec![0u64; 7];
        let r = SimReport::from_samples(&mut lat, &im, &im, t);
        assert!(!r.conservation_holds(), "7 + 2 != 10: one arrival vanished");
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::from_samples(&mut [], &[], &[], tally(7, 1.0, 0));
        assert_eq!(r.completed, 0);
        assert_eq!(r.drops, 7);
        assert_eq!(r.mean_latency_us, 0.0);
        assert_eq!(r.span_s, 1.0, "span falls back to the arrival window");
    }

    #[test]
    fn averaging_reports() {
        let a = SimReport {
            mean_latency_us: 10.0,
            completed: 100,
            goodput: 50.0,
            ..SimReport::default()
        };
        let b = SimReport {
            mean_latency_us: 30.0,
            completed: 200,
            goodput: 150.0,
            ..SimReport::default()
        };
        let avg = SimReport::average(&[a, b]).expect("non-empty");
        assert_eq!(avg.mean_latency_us, 20.0);
        assert_eq!(avg.completed, 150);
        assert_eq!(avg.goodput, 100.0);
        assert_eq!(avg.latency_std_us, 10.0, "population std of 10 and 30");
    }

    #[test]
    fn averaging_counters_rounds_instead_of_truncating() {
        // Three runs completing 1, 2, 2: the mean is 5/3 ≈ 1.67, which
        // truncation used to report as 1.
        let reports: Vec<SimReport> = [1u64, 2, 2]
            .iter()
            .map(|&completed| SimReport {
                completed,
                ..SimReport::default()
            })
            .collect();
        let avg = SimReport::average(&reports).expect("non-empty");
        assert_eq!(avg.completed, 2, "5/3 rounds to 2, not down to 1");
    }

    #[test]
    fn averaging_no_reports_is_explicit_not_all_zero() {
        // The old all-zero report passed conservation_holds() and hid
        // zero-seed configuration bugs.
        assert!(SimReport::average(&[]).is_none());
    }

    #[test]
    fn class_samples_report_and_conservation() {
        let mut s = ClassSamples {
            offered: 10,
            completed: 6,
            rejected: 1,
            drops: 2,
            shed: 1,
            imiss_sum: 14,
            dmiss_sum: 7,
            latencies_us: vec![50.0, 10.0, 20.0, 30.0, 40.0, 60.0],
        };
        assert!(s.conservation_holds());
        let r = s.report(45.0);
        assert_eq!((r.offered, r.completed, r.rejected, r.drops, r.shed), (10, 6, 1, 2, 1));
        assert_eq!(r.mean_imiss, 2.0, "misses averaged over processed");
        assert_eq!(r.mean_dmiss, 1.0);
        assert_eq!(r.p50_latency_us, 35.0);
        // 4 of 6 completions landed within the 45 µs objective.
        assert!((r.slo_attainment - 4.0 / 6.0).abs() < 1e-12);
        s.offered += 1;
        assert!(!s.conservation_holds(), "one arrival vanished");
        s.clear();
        assert!(s.latencies_us.is_empty() && s.offered == 0);
        let empty = s.report(45.0);
        assert_eq!(empty.slo_attainment, 0.0, "nothing completed, nothing attained");
    }

    #[test]
    fn class_report_without_slo_is_vacuously_attained() {
        let mut s = ClassSamples {
            offered: 2,
            completed: 2,
            latencies_us: vec![1e9, 2e9],
            ..ClassSamples::default()
        };
        assert_eq!(s.report(0.0).slo_attainment, 1.0);
    }

    #[test]
    fn class_report_averaging_mirrors_sim_report() {
        let a = ClassReport {
            completed: 1,
            p99_latency_us: 10.0,
            slo_attainment: 1.0,
            ..ClassReport::default()
        };
        let b = ClassReport {
            completed: 2,
            p99_latency_us: 30.0,
            slo_attainment: 0.5,
            ..ClassReport::default()
        };
        let avg = ClassReport::average(&[a, b]).expect("non-empty");
        assert_eq!(avg.completed, 2, "3/2 rounds to 2");
        assert_eq!(avg.p99_latency_us, 20.0);
        assert_eq!(avg.slo_attainment, 0.75);
        assert!(ClassReport::average(&[]).is_none());
    }

    fn count_series(arrivals: &[crate::traffic::Arrival], bin_s: f64, duration: f64) -> Vec<f64> {
        let bins = (duration / bin_s) as usize;
        let mut counts = vec![0.0; bins];
        for a in arrivals {
            let b = (a.time_s / bin_s) as usize;
            if b < bins {
                counts[b] += 1.0;
            }
        }
        counts
    }

    #[test]
    fn hurst_separates_poisson_from_self_similar() {
        let poisson = PoissonSource::new(2000.0, 552, 2).take_until(60.0);
        let selfsim = SelfSimilarSource::bellcore_like(2).take_until(60.0);
        let hp = estimate_hurst(&count_series(&poisson, 0.01, 60.0)).expect("long series");
        let hs = estimate_hurst(&count_series(&selfsim, 0.01, 60.0)).expect("long series");
        assert!(hp < 0.65, "poisson H estimate {hp} should be near 0.5");
        assert!(hs > 0.7, "self-similar H estimate {hs} should be near 0.8");
        assert!(hs > hp + 0.1);
    }

    #[test]
    fn hurst_rejects_short_series_instead_of_panicking() {
        let err = estimate_hurst(&[1.0; 10]).unwrap_err();
        assert_eq!(
            err,
            HurstError::TooShort {
                len: 10,
                need: HURST_MIN_SAMPLES
            }
        );
        assert!(err.to_string().contains("too short"));
    }

    #[test]
    fn hurst_rejects_constant_series_instead_of_nan() {
        // A constant series has zero variance at every block size: the
        // old code silently returned NaN here.
        let err = estimate_hurst(&[5.0; 256]).unwrap_err();
        assert_eq!(err, HurstError::DegenerateVariance);
    }
}
