//! Statistics: latency distributions, per-message miss averages, and a
//! Hurst-parameter estimator for validating the self-similar source.

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Messages fully processed.
    pub completed: u64,
    /// Arrivals dropped because the NIC buffer was full.
    pub drops: u64,
    /// Run length in seconds (the span arrivals were drawn over).
    pub duration_s: f64,
    /// Mean latency (arrival to last-layer completion) in microseconds.
    pub mean_latency_us: f64,
    /// Median latency in microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_latency_us: f64,
    /// Largest observed latency in microseconds.
    pub max_latency_us: f64,
    /// Mean instruction-cache misses per message.
    pub mean_imiss: f64,
    /// Mean data-cache misses per message.
    pub mean_dmiss: f64,
    /// Completed messages per second.
    pub throughput: f64,
    /// Mean batch size over all processed batches.
    pub mean_batch: f64,
    /// Standard deviation of `mean_latency_us` across the averaged runs
    /// (0 for a single run; populated by [`SimReport::average`]).
    pub latency_std_us: f64,
    /// Standard deviation of `mean_imiss` across the averaged runs.
    pub imiss_std: f64,
}

impl SimReport {
    /// Builds a report from raw per-message observations.
    pub fn from_samples(
        latencies_us: &mut [f64],
        imisses: &[u64],
        dmisses: &[u64],
        drops: u64,
        duration_s: f64,
        batches: u64,
    ) -> SimReport {
        let n = latencies_us.len();
        if n == 0 {
            return SimReport {
                drops,
                duration_s,
                ..SimReport::default()
            };
        }
        latencies_us.sort_by(|a, b| a.total_cmp(b));
        let mean = latencies_us.iter().sum::<f64>() / n as f64;
        SimReport {
            completed: n as u64,
            drops,
            duration_s,
            mean_latency_us: mean,
            p50_latency_us: percentile(latencies_us, 0.50),
            p99_latency_us: percentile(latencies_us, 0.99),
            max_latency_us: *latencies_us.last().expect("n > 0"),
            mean_imiss: imisses.iter().sum::<u64>() as f64 / n as f64,
            mean_dmiss: dmisses.iter().sum::<u64>() as f64 / n as f64,
            throughput: n as f64 / duration_s,
            mean_batch: if batches == 0 {
                0.0
            } else {
                n as f64 / batches as f64
            },
            latency_std_us: 0.0,
            imiss_std: 0.0,
        }
    }

    /// Averages several reports (e.g. over random placements), weighting
    /// each run equally as the paper does.
    pub fn average(reports: &[SimReport]) -> SimReport {
        let n = reports.len().max(1) as f64;
        let sum = |f: fn(&SimReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
        let std = |f: fn(&SimReport) -> f64| {
            let mean = reports.iter().map(f).sum::<f64>() / n;
            (reports.iter().map(|r| (f(r) - mean).powi(2)).sum::<f64>() / n).sqrt()
        };
        SimReport {
            completed: (reports.iter().map(|r| r.completed).sum::<u64>() as f64 / n) as u64,
            drops: (reports.iter().map(|r| r.drops).sum::<u64>() as f64 / n) as u64,
            duration_s: sum(|r| r.duration_s),
            mean_latency_us: sum(|r| r.mean_latency_us),
            p50_latency_us: sum(|r| r.p50_latency_us),
            p99_latency_us: sum(|r| r.p99_latency_us),
            max_latency_us: sum(|r| r.max_latency_us),
            mean_imiss: sum(|r| r.mean_imiss),
            mean_dmiss: sum(|r| r.mean_dmiss),
            throughput: sum(|r| r.throughput),
            mean_batch: sum(|r| r.mean_batch),
            latency_std_us: std(|r| r.mean_latency_us),
            imiss_std: std(|r| r.mean_imiss),
        }
    }
}

/// Percentile of an ascending-sorted slice, `q` in [0, 1].
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Estimates the Hurst parameter of a count process by the
/// aggregated-variance method: for self-similar traffic the variance of
/// the aggregated series at block size `m` scales as `m^(2H-2)`; a
/// least-squares fit of `log Var(m)` against `log m` gives `H`.
pub fn estimate_hurst(counts: &[f64]) -> f64 {
    assert!(counts.len() >= 64, "need a reasonably long count series");
    let mean_all = counts.iter().sum::<f64>() / counts.len() as f64;
    let mut points = Vec::new();
    let mut m = 1usize;
    while counts.len() / m >= 16 {
        let blocks = counts.len() / m;
        let mut var = 0.0;
        for b in 0..blocks {
            let s: f64 = counts[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64;
            var += (s - mean_all).powi(2);
        }
        var /= blocks as f64;
        if var > 0.0 {
            points.push(((m as f64).ln(), var.ln()));
        }
        m *= 2;
    }
    // Least-squares slope of log Var vs log m; H = 1 + slope / 2.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    1.0 + slope / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{PoissonSource, SelfSimilarSource, TrafficSource};

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn report_from_samples() {
        let mut lat = vec![3.0, 1.0, 2.0];
        let r = SimReport::from_samples(&mut lat, &[10, 20, 30], &[1, 2, 3], 5, 1.0, 2);
        assert_eq!(r.completed, 3);
        assert_eq!(r.drops, 5);
        assert_eq!(r.mean_latency_us, 2.0);
        assert_eq!(r.p50_latency_us, 2.0);
        assert_eq!(r.max_latency_us, 3.0);
        assert_eq!(r.mean_imiss, 20.0);
        assert_eq!(r.throughput, 3.0);
        assert_eq!(r.mean_batch, 1.5);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::from_samples(&mut [], &[], &[], 7, 1.0, 0);
        assert_eq!(r.completed, 0);
        assert_eq!(r.drops, 7);
        assert_eq!(r.mean_latency_us, 0.0);
    }

    #[test]
    fn averaging_reports() {
        let a = SimReport {
            mean_latency_us: 10.0,
            completed: 100,
            ..SimReport::default()
        };
        let b = SimReport {
            mean_latency_us: 30.0,
            completed: 200,
            ..SimReport::default()
        };
        let avg = SimReport::average(&[a, b]);
        assert_eq!(avg.mean_latency_us, 20.0);
        assert_eq!(avg.completed, 150);
        assert_eq!(avg.latency_std_us, 10.0, "population std of 10 and 30");
    }

    fn count_series(arrivals: &[crate::traffic::Arrival], bin_s: f64, duration: f64) -> Vec<f64> {
        let bins = (duration / bin_s) as usize;
        let mut counts = vec![0.0; bins];
        for a in arrivals {
            let b = (a.time_s / bin_s) as usize;
            if b < bins {
                counts[b] += 1.0;
            }
        }
        counts
    }

    #[test]
    fn hurst_separates_poisson_from_self_similar() {
        let poisson = PoissonSource::new(2000.0, 552, 2).take_until(60.0);
        let selfsim = SelfSimilarSource::bellcore_like(2).take_until(60.0);
        let hp = estimate_hurst(&count_series(&poisson, 0.01, 60.0));
        let hs = estimate_hurst(&count_series(&selfsim, 0.01, 60.0));
        assert!(hp < 0.65, "poisson H estimate {hp} should be near 0.5");
        assert!(hs > 0.7, "self-similar H estimate {hs} should be near 0.8");
        assert!(hs > hp + 0.1);
    }
}
