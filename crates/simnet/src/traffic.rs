//! Arrival processes.
//!
//! All sources are deterministic given their seed and produce arrivals in
//! non-decreasing time order. Times are in seconds; the simulator converts
//! to machine cycles at the configured clock.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BinaryHeap;

/// One message arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time in seconds from the start of the run.
    pub time_s: f64,
    /// Message size in bytes.
    pub bytes: u32,
}

/// A stream of arrivals in non-decreasing time order.
pub trait TrafficSource {
    /// The next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;

    /// Collects all arrivals strictly before `duration_s`.
    fn take_until(&mut self, duration_s: f64) -> Vec<Arrival> {
        let mut out = Vec::new();
        while let Some(a) = self.next_arrival() {
            if a.time_s >= duration_s {
                break;
            }
            out.push(a);
        }
        out
    }
}

/// Poisson arrivals (exponential interarrival times) of fixed-size
/// messages — the source of Figures 5 and 6, with 552-byte messages.
#[derive(Debug)]
pub struct PoissonSource {
    rate: f64,
    bytes: u32,
    t: f64,
    rng: StdRng,
}

impl PoissonSource {
    /// `rate` messages per second of `bytes`-byte messages.
    pub fn new(rate: f64, bytes: u32, seed: u64) -> Self {
        assert!(rate > 0.0);
        PoissonSource {
            rate,
            bytes,
            t: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TrafficSource for PoissonSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        // Inverse-CDF exponential variate.
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        self.t += -u.ln() / self.rate;
        Some(Arrival {
            time_s: self.t,
            bytes: self.bytes,
        })
    }
}

/// Deterministic arrivals at a fixed interval (for exact-value tests).
#[derive(Debug)]
pub struct ConstantSource {
    interval_s: f64,
    bytes: u32,
    n: u64,
}

impl ConstantSource {
    /// One `bytes`-byte message every `interval_s` seconds, starting at
    /// `interval_s`.
    pub fn new(interval_s: f64, bytes: u32) -> Self {
        ConstantSource {
            interval_s,
            bytes,
            n: 0,
        }
    }
}

impl TrafficSource for ConstantSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        self.n += 1;
        Some(Arrival {
            time_s: self.n as f64 * self.interval_s,
            bytes: self.bytes,
        })
    }
}

/// Replays an explicit arrival list (e.g. a parsed trace file).
#[derive(Debug)]
pub struct TraceSource {
    arrivals: Vec<Arrival>,
    next: usize,
}

impl TraceSource {
    /// Wraps a pre-built arrival list (must be time-sorted).
    pub fn new(arrivals: Vec<Arrival>) -> Self {
        // analyze::allow(panic-free-library, reason = "windows(2) yields exactly-2-element slices, and debug_assert compiles out of release sweeps")
        debug_assert!(arrivals.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        TraceSource { arrivals, next: 0 }
    }

    /// Parses a whitespace-separated `time_seconds size_bytes` text trace
    /// (the format of the published Bellcore traces). Lines starting with
    /// `#` are skipped.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut arrivals = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let time: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing time", ln + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad time: {e}", ln + 1))?;
            let bytes: u32 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing size", ln + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad size: {e}", ln + 1))?;
            arrivals.push(Arrival {
                time_s: time,
                bytes,
            });
        }
        arrivals.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        Ok(TraceSource::new(arrivals))
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

impl TrafficSource for TraceSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = self.arrivals.get(self.next).copied();
        self.next += 1;
        a
    }
}

/// Self-similar traffic: a superposition of Pareto ON/OFF sources.
///
/// Each of `n_sources` alternates between ON periods (emitting packets at
/// a fixed per-source rate) and OFF periods, with Pareto-distributed
/// durations (`alpha` < 2 gives infinite variance and long-range
/// dependence; the aggregate converges to fractional Gaussian noise with
/// `H = (3 - alpha) / 2`). This is the standard constructive model for
/// the self-similarity Leland et al. measured in the Bellcore traces the
/// paper replays for Figure 7.
#[derive(Debug)]
pub struct SelfSimilarSource {
    /// Per-source state heaps as (negated next-emit time, source id).
    heap: BinaryHeap<HeapEntry>,
    sources: Vec<OnOff>,
    rng: StdRng,
    sizes: SizeMix,
}

#[derive(Debug)]
struct OnOff {
    /// Packets per second while ON.
    peak_rate: f64,
    mean_on_s: f64,
    mean_off_s: f64,
    alpha: f64,
    /// End of the current ON period (valid while emitting).
    on_until: f64,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    /// Negated time so the max-heap pops the earliest event.
    neg_time: f64,
    source: usize,
}

impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.neg_time
            .total_cmp(&other.neg_time)
            .then(self.source.cmp(&other.source))
    }
}

/// Packet-size mixture: cumulative percentage thresholds and sizes.
#[derive(Debug, Clone)]
pub struct SizeMix {
    /// `(cumulative_permille, bytes)` entries, last must be `(1000, _)`.
    entries: Vec<(u32, u32)>,
}

impl SizeMix {
    /// A fixed size for every packet.
    pub fn fixed(bytes: u32) -> Self {
        SizeMix {
            entries: vec![(1000, bytes)],
        }
    }

    /// The bimodal-ish mix of late-80s Ethernet traffic: most packets are
    /// minimum-size (interactive, ACKs), a long tail are near-MTU bulk
    /// segments.
    pub fn bellcore_like() -> Self {
        SizeMix {
            entries: vec![
                (450, 64),   // 45% minimum-size
                (550, 128),  // 10%
                (620, 256),  // 7%
                (780, 552),  // 16% the classic internet MSS
                (860, 1072), // 8%
                (1000, 1518),// 14% full MTU
            ],
        }
    }

    fn draw(&self, rng: &mut StdRng) -> u32 {
        let p = (rng.random::<f64>() * 1000.0) as u32;
        for &(cum, bytes) in &self.entries {
            if p < cum {
                return bytes;
            }
        }
        // analyze::allow(panic-free-library, reason = "the mix is validated non-empty at construction; last() is the cumulative-distribution fallback bucket")
        self.entries.last().expect("non-empty mix").1
    }

    /// Mean packet size of the mix in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let mut prev = 0u32;
        let mut mean = 0.0;
        for &(cum, bytes) in &self.entries {
            mean += ((cum - prev) as f64 / 1000.0) * bytes as f64;
            prev = cum;
        }
        mean
    }
}

fn pareto(rng: &mut StdRng, alpha: f64, mean: f64) -> f64 {
    // A Pareto with shape alpha and mean m has scale xm = m (alpha-1)/alpha.
    let xm = mean * (alpha - 1.0) / alpha;
    let u: f64 = rng.random::<f64>().max(1e-12);
    xm / u.powf(1.0 / alpha)
}

impl SelfSimilarSource {
    /// A source aggregating `n_sources` Pareto ON/OFF processes with the
    /// given mean aggregate rate (packets/second) and size mix.
    ///
    /// `alpha` in (1, 2) controls burstiness; 1.4 gives a Hurst parameter
    /// around 0.8, matching the Bellcore measurements.
    pub fn new(n_sources: usize, mean_rate: f64, alpha: f64, sizes: SizeMix, seed: u64) -> Self {
        assert!(n_sources > 0 && mean_rate > 0.0 && alpha > 1.0 && alpha < 2.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mean_on_s = 0.1;
        let mean_off_s = 1.0;
        let duty = mean_on_s / (mean_on_s + mean_off_s);
        let peak_rate = mean_rate / (n_sources as f64 * duty);
        let mut heap = BinaryHeap::new();
        let mut sources = Vec::with_capacity(n_sources);
        for i in 0..n_sources {
            // Start each source in an OFF period of random residual life.
            let first_on = rng.random::<f64>() * (mean_on_s + mean_off_s);
            sources.push(OnOff {
                peak_rate,
                mean_on_s,
                mean_off_s,
                alpha,
                on_until: 0.0,
            });
            heap.push(HeapEntry {
                neg_time: -first_on,
                source: i,
            });
        }
        SelfSimilarSource {
            heap,
            sources,
            rng,
            sizes,
        }
    }

    /// Calibrated stand-in for the October 1989 Bellcore trace the paper
    /// uses in Figure 7: ~1000 pkt/s mean with H near 0.8 and the late-80s
    /// Ethernet size mix.
    pub fn bellcore_like(seed: u64) -> Self {
        SelfSimilarSource::new(64, 1000.0, 1.4, SizeMix::bellcore_like(), seed)
    }
}

impl TrafficSource for SelfSimilarSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let entry = self.heap.pop()?;
        let t = -entry.neg_time;
        let si = entry.source;
        let (alpha, mean_on, mean_off, peak) = {
            let s = &self.sources[si];
            (s.alpha, s.mean_on_s, s.mean_off_s, s.peak_rate)
        };
        if t >= self.sources[si].on_until {
            // This event begins a new ON period.
            self.sources[si].on_until = t + pareto(&mut self.rng, alpha, mean_on);
        }
        let on_until = self.sources[si].on_until;
        // Schedule this source's next emission: within the ON period the
        // source is a Poisson process at its peak rate; otherwise it goes
        // quiet for a Pareto OFF gap.
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        let next = t - u.ln() / peak;
        let next = if next < on_until {
            next
        } else {
            on_until.max(t) + pareto(&mut self.rng, alpha, mean_off)
        };
        self.heap.push(HeapEntry {
            neg_time: -next,
            source: si,
        });
        Some(Arrival {
            time_s: t,
            bytes: self.sizes.draw(&mut self.rng),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_calibrated() {
        let mut s = PoissonSource::new(5000.0, 552, 42);
        let arrivals = s.take_until(2.0);
        let rate = arrivals.len() as f64 / 2.0;
        assert!(
            (rate - 5000.0).abs() < 250.0,
            "measured rate {rate} too far from 5000"
        );
        assert!(arrivals.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        assert!(arrivals.iter().all(|a| a.bytes == 552));
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = PoissonSource::new(100.0, 552, 7).take_until(1.0);
        let b = PoissonSource::new(100.0, 552, 7).take_until(1.0);
        let c = PoissonSource::new(100.0, 552, 8).take_until(1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn constant_source_exact_times() {
        let mut s = ConstantSource::new(0.25, 100);
        let a = s.take_until(1.01);
        assert_eq!(a.len(), 4);
        assert!((a[3].time_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_parse_round_trip() {
        let text = "# time size\n0.001 64\n0.002 1518\n\n0.0015 552\n";
        let mut t = TraceSource::parse(text).unwrap();
        assert_eq!(t.len(), 3);
        let a = t.take_until(1.0);
        // Sorted by time despite out-of-order input.
        assert_eq!(a[1].bytes, 552);
        assert!(TraceSource::parse("bogus line").is_err());
    }

    #[test]
    fn self_similar_rate_calibration() {
        let mut s = SelfSimilarSource::bellcore_like(3);
        let arrivals = s.take_until(30.0);
        let rate = arrivals.len() as f64 / 30.0;
        assert!(
            (400.0..2500.0).contains(&rate),
            "mean rate {rate} far from the ~1000/s calibration"
        );
        assert!(arrivals.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn self_similar_is_burstier_than_poisson() {
        // Index of dispersion (var/mean of 10 ms counts) is ~1 for
        // Poisson, well above 1 for the ON/OFF aggregate.
        fn dispersion(arrivals: &[Arrival], duration: f64) -> f64 {
            let bins = (duration / 0.01) as usize;
            let mut counts = vec![0f64; bins];
            for a in arrivals {
                let b = (a.time_s / 0.01) as usize;
                if b < bins {
                    counts[b] += 1.0;
                }
            }
            let mean = counts.iter().sum::<f64>() / bins as f64;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64;
            var / mean
        }
        let poisson = PoissonSource::new(1000.0, 552, 1).take_until(20.0);
        let selfsim = SelfSimilarSource::bellcore_like(1).take_until(20.0);
        let dp = dispersion(&poisson, 20.0);
        let ds = dispersion(&selfsim, 20.0);
        assert!(dp < 1.5, "poisson dispersion {dp}");
        assert!(ds > 2.0 * dp, "self-similar {ds} vs poisson {dp}");
    }

    #[test]
    fn size_mix_statistics() {
        let mix = SizeMix::bellcore_like();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen_small = 0;
        let mut seen_big = 0;
        for _ in 0..10_000 {
            match mix.draw(&mut rng) {
                64 => seen_small += 1,
                1518 => seen_big += 1,
                _ => {}
            }
        }
        assert!((3_500..5_500).contains(&seen_small), "{seen_small} minimum-size");
        assert!((800..2_000).contains(&seen_big), "{seen_big} MTU-size");
        assert!((300.0..500.0).contains(&mix.mean_bytes()));
        assert_eq!(SizeMix::fixed(552).mean_bytes(), 552.0);
    }

    #[test]
    fn pareto_mean_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| pareto(&mut rng, 1.8, 0.5)).sum::<f64>() / n as f64;
        // alpha=1.8 has finite mean; the sample mean converges slowly but
        // should land in a generous band.
        assert!((0.3..0.9).contains(&mean), "sample mean {mean}");
    }
}

/// Markov-modulated Poisson process: a continuous-time Markov chain over
/// `states`, each with its own Poisson rate. A classic telephony/signalling
/// load model — call-arrival intensity shifts between regimes (quiet,
/// busy-hour, flash crowd) at exponentially distributed epochs.
#[derive(Debug)]
pub struct MmppSource {
    /// `(arrival_rate, mean_holding_s)` per state.
    states: Vec<(f64, f64)>,
    state: usize,
    /// When the chain leaves the current state.
    state_until: f64,
    t: f64,
    bytes: u32,
    rng: StdRng,
}

impl MmppSource {
    /// Builds an MMPP over `states`; transitions cycle through states in
    /// order (a ring), which captures regime-switching without a full
    /// transition matrix.
    pub fn new(states: Vec<(f64, f64)>, bytes: u32, seed: u64) -> Self {
        assert!(!states.is_empty());
        assert!(states.iter().all(|&(r, h)| r > 0.0 && h > 0.0));
        let mut rng = StdRng::seed_from_u64(seed);
        let u: f64 = rng.random::<f64>().max(1e-12);
        // analyze::allow(panic-free-library, reason = "guarded by the assert!(!states.is_empty()) two lines up")
        let state_until = -u.ln() * states[0].1;
        MmppSource {
            states,
            state: 0,
            state_until,
            t: 0.0,
            bytes,
            rng,
        }
    }

    /// A two-state quiet/burst source with the given rates and a mean
    /// regime length of `holding_s`.
    pub fn two_state(quiet: f64, burst: f64, holding_s: f64, bytes: u32, seed: u64) -> Self {
        Self::new(vec![(quiet, holding_s), (burst, holding_s)], bytes, seed)
    }

    /// The long-run mean arrival rate (state holding times weighted).
    pub fn mean_rate(&self) -> f64 {
        let total_hold: f64 = self.states.iter().map(|&(_, h)| h).sum();
        self.states.iter().map(|&(r, h)| r * h).sum::<f64>() / total_hold
    }
}

impl TrafficSource for MmppSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        loop {
            let (rate, _) = self.states[self.state];
            let u: f64 = self.rng.random::<f64>().max(1e-12);
            let candidate = self.t - u.ln() / rate;
            if candidate <= self.state_until {
                self.t = candidate;
                return Some(Arrival {
                    time_s: self.t,
                    bytes: self.bytes,
                });
            }
            // Regime switch: advance to the boundary and move on.
            self.t = self.state_until;
            self.state = (self.state + 1) % self.states.len();
            let u: f64 = self.rng.random::<f64>().max(1e-12);
            self.state_until = self.t - u.ln() * self.states[self.state].1;
        }
    }
}

/// Back-to-back packet trains: bursts of `train_len` packets at
/// line rate (negligible intra-train gaps), trains arriving Poisson.
/// Jain & Routhier's classic observation about LAN traffic, and the
/// most LDLP-friendly arrival pattern possible: whole batches arrive
/// together.
#[derive(Debug)]
pub struct TrainSource {
    trains: PoissonSource,
    train_len: u32,
    intra_gap_s: f64,
    pending: VecDeque<Arrival>,
}

use std::collections::VecDeque;

impl TrainSource {
    /// `trains_per_s` trains of `train_len` packets of `bytes` each,
    /// `intra_gap_s` apart within the train.
    pub fn new(
        trains_per_s: f64,
        train_len: u32,
        intra_gap_s: f64,
        bytes: u32,
        seed: u64,
    ) -> Self {
        assert!(train_len >= 1);
        TrainSource {
            trains: PoissonSource::new(trains_per_s, bytes, seed),
            train_len,
            intra_gap_s,
            pending: VecDeque::new(),
        }
    }
}

impl TrafficSource for TrainSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        if let Some(a) = self.pending.pop_front() {
            return Some(a);
        }
        let head = self.trains.next_arrival()?;
        for i in 1..self.train_len {
            self.pending.push_back(Arrival {
                time_s: head.time_s + i as f64 * self.intra_gap_s,
                bytes: head.bytes,
            });
        }
        Some(head)
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn mmpp_mean_rate_calibration() {
        let mut s = MmppSource::two_state(500.0, 5000.0, 0.1, 552, 4);
        assert!((s.mean_rate() - 2750.0).abs() < 1e-9);
        let arrivals = s.take_until(20.0);
        let rate = arrivals.len() as f64 / 20.0;
        assert!(
            (2200.0..3300.0).contains(&rate),
            "measured {rate} vs mean 2750"
        );
        assert!(arrivals.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let arrivals = MmppSource::two_state(200.0, 8000.0, 0.05, 552, 9).take_until(10.0);
        let bins = 1000;
        let mut counts = vec![0f64; bins];
        for a in &arrivals {
            let b = ((a.time_s / 10.0) * bins as f64) as usize;
            if b < bins {
                counts[b] += 1.0;
            }
        }
        let mean = counts.iter().sum::<f64>() / bins as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64;
        assert!(var / mean > 3.0, "dispersion {} should be super-Poisson", var / mean);
    }

    #[test]
    fn trains_arrive_back_to_back() {
        let mut s = TrainSource::new(100.0, 5, 1e-5, 64, 3);
        let arrivals = s.take_until(1.0);
        assert!(arrivals.len() >= 400, "got {}", arrivals.len());
        // Within a train, gaps are tiny; between trains, Poisson-sized.
        let mut tiny = 0;
        for w in arrivals.windows(2) {
            if (w[1].time_s - w[0].time_s - 1e-5).abs() < 1e-12 {
                tiny += 1;
            }
        }
        assert!(tiny as f64 > arrivals.len() as f64 * 0.7, "{tiny} intra-train gaps");
    }
}
