//! An ONC-RPC / NFS-shaped request protocol.
//!
//! The paper's list of ubiquitous small-message protocols ends with "all
//! except two messages in NFS" — every NFS procedure other than READ and
//! WRITE moves attribute-sized payloads through the full RPC/UDP/IP
//! stack. This module provides a compact ONC-RPC (RFC 1057) codec —
//! XID, call/reply discriminant, program/version/procedure, accept
//! status — and an NFS-flavoured attribute server (GETATTR / LOOKUP /
//! ACCESS over an in-memory namespace), giving the workload suite a third
//! functional small-message protocol.

use std::collections::BTreeMap;

/// RPC message direction.
const CALL: u32 = 0;
const REPLY: u32 = 1;

/// The NFS-ish program number we serve.
pub const PROGRAM: u32 = 100_003;
/// Program version.
pub const VERSION: u32 = 2;

/// Procedures (an attribute-flavoured subset of NFSv2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Procedure {
    Null,
    GetAttr,
    Lookup,
    Access,
}

impl Procedure {
    fn to_u32(self) -> u32 {
        match self {
            Procedure::Null => 0,
            Procedure::GetAttr => 1,
            Procedure::Lookup => 4,
            Procedure::Access => 18,
        }
    }

    fn from_u32(v: u32) -> Option<Procedure> {
        Some(match v {
            0 => Procedure::Null,
            1 => Procedure::GetAttr,
            4 => Procedure::Lookup,
            18 => Procedure::Access,
            _ => return None,
        })
    }
}

/// Reply status (RFC 1057 accept_stat subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    Success,
    ProgUnavail,
    ProcUnavail,
    GarbageArgs,
}

impl Status {
    fn to_u32(self) -> u32 {
        match self {
            Status::Success => 0,
            Status::ProgUnavail => 1,
            Status::ProcUnavail => 3,
            Status::GarbageArgs => 4,
        }
    }

    fn from_u32(v: u32) -> Status {
        match v {
            0 => Status::Success,
            1 => Status::ProgUnavail,
            4 => Status::GarbageArgs,
            _ => Status::ProcUnavail,
        }
    }
}

/// File attributes (a compact fattr).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attrs {
    /// 0 = regular file, 1 = directory.
    pub kind: u32,
    pub mode: u32,
    pub size: u64,
    pub fileid: u64,
}

/// An RPC message: a call with arguments, or a reply with results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMessage {
    Call {
        xid: u32,
        proc: Procedure,
        /// Opaque file handle (GETATTR/ACCESS) or parent handle (LOOKUP).
        handle: u64,
        /// Name argument for LOOKUP, empty otherwise.
        name: Vec<u8>,
    },
    Reply {
        xid: u32,
        status: Status,
        /// Result attributes on success.
        attrs: Option<Attrs>,
        /// Looked-up handle (LOOKUP success).
        handle: Option<u64>,
    },
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, String> {
    let b = buf
        .get(*pos..*pos + 4)
        .ok_or("truncated u32")?;
    *pos += 4;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let hi = get_u32(buf, pos)? as u64;
    let lo = get_u32(buf, pos)? as u64;
    Ok(hi << 32 | lo)
}

impl RpcMessage {
    /// Serializes with XDR-style 4-byte alignment.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            RpcMessage::Call {
                xid,
                proc,
                handle,
                name,
            } => {
                put_u32(&mut out, *xid);
                put_u32(&mut out, CALL);
                put_u32(&mut out, 2); // RPC version
                put_u32(&mut out, PROGRAM);
                put_u32(&mut out, VERSION);
                put_u32(&mut out, proc.to_u32());
                put_u32(&mut out, 0); // auth flavor AUTH_NONE
                put_u32(&mut out, 0); // auth length
                put_u64(&mut out, *handle);
                put_u32(&mut out, name.len() as u32);
                out.extend_from_slice(name);
                while out.len() % 4 != 0 {
                    out.push(0);
                }
            }
            RpcMessage::Reply {
                xid,
                status,
                attrs,
                handle,
            } => {
                put_u32(&mut out, *xid);
                put_u32(&mut out, REPLY);
                put_u32(&mut out, 0); // MSG_ACCEPTED
                put_u32(&mut out, status.to_u32());
                match attrs {
                    Some(a) => {
                        put_u32(&mut out, 1);
                        put_u32(&mut out, a.kind);
                        put_u32(&mut out, a.mode);
                        put_u64(&mut out, a.size);
                        put_u64(&mut out, a.fileid);
                    }
                    None => put_u32(&mut out, 0),
                }
                match handle {
                    Some(h) => {
                        put_u32(&mut out, 1);
                        put_u64(&mut out, *h);
                    }
                    None => put_u32(&mut out, 0),
                }
            }
        }
        out
    }

    /// Parses a message.
    pub fn decode(buf: &[u8]) -> Result<RpcMessage, String> {
        let mut pos = 0;
        let xid = get_u32(buf, &mut pos)?;
        match get_u32(buf, &mut pos)? {
            CALL => {
                let rpcvers = get_u32(buf, &mut pos)?;
                let prog = get_u32(buf, &mut pos)?;
                let vers = get_u32(buf, &mut pos)?;
                let proc_no = get_u32(buf, &mut pos)?;
                let _flavor = get_u32(buf, &mut pos)?;
                let auth_len = get_u32(buf, &mut pos)? as usize;
                pos += auth_len;
                if rpcvers != 2 {
                    return Err("bad RPC version".into());
                }
                if prog != PROGRAM || vers != VERSION {
                    return Err("unknown program".into());
                }
                let proc_ = Procedure::from_u32(proc_no)
                    .ok_or_else(|| format!("unknown procedure {proc_no}"))?;
                let handle = get_u64(buf, &mut pos)?;
                let name_len = get_u32(buf, &mut pos)? as usize;
                if name_len > 255 {
                    return Err("name too long".into());
                }
                let name = buf
                    .get(pos..pos + name_len)
                    .ok_or("truncated name")?
                    .to_vec();
                Ok(RpcMessage::Call {
                    xid,
                    proc: proc_,
                    handle,
                    name,
                })
            }
            REPLY => {
                let _accepted = get_u32(buf, &mut pos)?;
                let status = Status::from_u32(get_u32(buf, &mut pos)?);
                let attrs = if get_u32(buf, &mut pos)? == 1 {
                    Some(Attrs {
                        kind: get_u32(buf, &mut pos)?,
                        mode: get_u32(buf, &mut pos)?,
                        size: get_u64(buf, &mut pos)?,
                        fileid: get_u64(buf, &mut pos)?,
                    })
                } else {
                    None
                };
                let handle = if get_u32(buf, &mut pos)? == 1 {
                    Some(get_u64(buf, &mut pos)?)
                } else {
                    None
                };
                Ok(RpcMessage::Reply {
                    xid,
                    status,
                    attrs,
                    handle,
                })
            }
            other => Err(format!("bad direction {other}")),
        }
    }
}

/// Server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcStats {
    pub calls: u64,
    pub getattrs: u64,
    pub lookups: u64,
    pub errors: u64,
}

/// A file-attribute server over an in-memory namespace.
#[derive(Debug)]
pub struct AttrServer {
    /// handle -> attributes.
    attrs: BTreeMap<u64, Attrs>,
    /// (parent handle, name) -> child handle.
    names: BTreeMap<(u64, Vec<u8>), u64>,
    next_handle: u64,
    stats: RpcStats,
}

/// The root directory's file handle.
pub const ROOT_HANDLE: u64 = 1;

impl Default for AttrServer {
    fn default() -> Self {
        Self::new()
    }
}

impl AttrServer {
    /// A server with an empty root directory.
    pub fn new() -> Self {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            ROOT_HANDLE,
            Attrs {
                kind: 1,
                mode: 0o755,
                size: 0,
                fileid: ROOT_HANDLE,
            },
        );
        AttrServer {
            attrs,
            names: BTreeMap::new(),
            next_handle: 2,
            stats: RpcStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> RpcStats {
        self.stats
    }

    /// Creates a file under `parent`, returning its handle.
    pub fn add_file(&mut self, parent: u64, name: &[u8], size: u64) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.attrs.insert(
            h,
            Attrs {
                kind: 0,
                mode: 0o644,
                size,
                fileid: h,
            },
        );
        self.names.insert((parent, name.to_vec()), h);
        h
    }

    /// Handles one call datagram, returning the reply datagram.
    pub fn handle(&mut self, call_bytes: &[u8]) -> Vec<u8> {
        self.stats.calls += 1;
        let reply = match RpcMessage::decode(call_bytes) {
            Ok(RpcMessage::Call {
                xid,
                proc,
                handle,
                name,
            }) => match proc {
                Procedure::Null => RpcMessage::Reply {
                    xid,
                    status: Status::Success,
                    attrs: None,
                    handle: None,
                },
                Procedure::GetAttr | Procedure::Access => {
                    self.stats.getattrs += 1;
                    match self.attrs.get(&handle) {
                        Some(a) => RpcMessage::Reply {
                            xid,
                            status: Status::Success,
                            attrs: Some(*a),
                            handle: None,
                        },
                        None => {
                            self.stats.errors += 1;
                            RpcMessage::Reply {
                                xid,
                                status: Status::GarbageArgs,
                                attrs: None,
                                handle: None,
                            }
                        }
                    }
                }
                Procedure::Lookup => {
                    self.stats.lookups += 1;
                    match self.names.get(&(handle, name)) {
                        Some(&child) => RpcMessage::Reply {
                            xid,
                            status: Status::Success,
                            attrs: self.attrs.get(&child).copied(),
                            handle: Some(child),
                        },
                        None => {
                            self.stats.errors += 1;
                            RpcMessage::Reply {
                                xid,
                                status: Status::GarbageArgs,
                                attrs: None,
                                handle: None,
                            }
                        }
                    }
                }
            },
            Ok(RpcMessage::Reply { .. }) => {
                self.stats.errors += 1;
                RpcMessage::Reply {
                    xid: 0,
                    status: Status::GarbageArgs,
                    attrs: None,
                    handle: None,
                }
            }
            Err(_) => {
                self.stats.errors += 1;
                let xid = call_bytes
                    .get(0..4)
                    .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
                    .unwrap_or(0);
                RpcMessage::Reply {
                    xid,
                    status: Status::GarbageArgs,
                    attrs: None,
                    handle: None,
                }
            }
        };
        reply.encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_and_reply_round_trip() {
        let call = RpcMessage::Call {
            xid: 0xfeed,
            proc: Procedure::Lookup,
            handle: ROOT_HANDLE,
            name: b"etc".to_vec(),
        };
        assert_eq!(RpcMessage::decode(&call.encode()).unwrap(), call);
        let reply = RpcMessage::Reply {
            xid: 0xfeed,
            status: Status::Success,
            attrs: Some(Attrs {
                kind: 1,
                mode: 0o755,
                size: 0,
                fileid: 7,
            }),
            handle: Some(7),
        };
        assert_eq!(RpcMessage::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn messages_are_small() {
        // The paper's point: NFS control messages are ~100 bytes.
        let call = RpcMessage::Call {
            xid: 1,
            proc: Procedure::GetAttr,
            handle: 42,
            name: Vec::new(),
        };
        assert!(call.encode().len() < 64, "{}", call.encode().len());
    }

    #[test]
    fn lookup_then_getattr() {
        let mut s = AttrServer::new();
        let fh = s.add_file(ROOT_HANDLE, b"paper.ps", 183_000);
        let lookup = RpcMessage::Call {
            xid: 1,
            proc: Procedure::Lookup,
            handle: ROOT_HANDLE,
            name: b"paper.ps".to_vec(),
        };
        let reply = RpcMessage::decode(&s.handle(&lookup.encode())).unwrap();
        match reply {
            RpcMessage::Reply {
                status: Status::Success,
                handle: Some(h),
                attrs: Some(a),
                ..
            } => {
                assert_eq!(h, fh);
                assert_eq!(a.size, 183_000);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let getattr = RpcMessage::Call {
            xid: 2,
            proc: Procedure::GetAttr,
            handle: fh,
            name: Vec::new(),
        };
        let reply = RpcMessage::decode(&s.handle(&getattr.encode())).unwrap();
        assert!(matches!(
            reply,
            RpcMessage::Reply {
                status: Status::Success,
                attrs: Some(_),
                ..
            }
        ));
        assert_eq!(s.stats().lookups, 1);
        assert_eq!(s.stats().getattrs, 1);
    }

    #[test]
    fn unknown_handle_and_name_error() {
        let mut s = AttrServer::new();
        let bad = RpcMessage::Call {
            xid: 9,
            proc: Procedure::GetAttr,
            handle: 999,
            name: Vec::new(),
        };
        let reply = RpcMessage::decode(&s.handle(&bad.encode())).unwrap();
        assert!(matches!(
            reply,
            RpcMessage::Reply {
                status: Status::GarbageArgs,
                ..
            }
        ));
        assert_eq!(s.stats().errors, 1);
    }

    #[test]
    fn garbage_input_gets_error_reply() {
        let mut s = AttrServer::new();
        let reply = RpcMessage::decode(&s.handle(&[1, 2, 3])).unwrap();
        assert!(matches!(
            reply,
            RpcMessage::Reply {
                status: Status::GarbageArgs,
                ..
            }
        ));
    }

    #[test]
    fn name_padding_is_xdr_aligned() {
        for len in 0..8 {
            let call = RpcMessage::Call {
                xid: 3,
                proc: Procedure::Lookup,
                handle: 1,
                name: vec![b'x'; len],
            };
            let bytes = call.encode();
            assert_eq!(bytes.len() % 4, 0, "XDR alignment for name len {len}");
            assert_eq!(RpcMessage::decode(&bytes).unwrap(), call);
        }
    }
}
