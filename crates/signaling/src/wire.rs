//! Q.93B-flavoured wire format.
//!
//! Real Q.93B (ITU Q.2931) messages are a protocol discriminator, a call
//! reference, a message type, a length, and a sequence of TLV information
//! elements. This codec keeps that structure (and the small-message sizes
//! that come with it) while trimming the option space to what the call
//! machines use.

/// Protocol discriminator for our Q.93B-like protocol.
pub const DISCRIMINATOR: u8 = 0x09;
/// Fixed header length: discriminator, 3-byte call reference, message
/// type, 2-byte message length.
pub const HEADER_LEN: usize = 7;

/// Message types (a subset of Q.2931 §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    Setup,
    CallProceeding,
    Connect,
    ConnectAck,
    Release,
    ReleaseComplete,
    Status,
}

impl MessageType {
    fn to_byte(self) -> u8 {
        match self {
            MessageType::Setup => 0x05,
            MessageType::CallProceeding => 0x02,
            MessageType::Connect => 0x07,
            MessageType::ConnectAck => 0x0f,
            MessageType::Release => 0x4d,
            MessageType::ReleaseComplete => 0x5a,
            MessageType::Status => 0x7d,
        }
    }

    fn from_byte(b: u8) -> Option<MessageType> {
        Some(match b {
            0x05 => MessageType::Setup,
            0x02 => MessageType::CallProceeding,
            0x07 => MessageType::Connect,
            0x0f => MessageType::ConnectAck,
            0x4d => MessageType::Release,
            0x5a => MessageType::ReleaseComplete,
            0x7d => MessageType::Status,
            _ => return None,
        })
    }
}

/// Release/status cause values (Q.850-flavoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    NormalClearing,
    UserBusy,
    NoRouteToDestination,
    ResourceUnavailable,
    InvalidCallReference,
    Other(u8),
}

impl Cause {
    fn to_byte(self) -> u8 {
        match self {
            Cause::NormalClearing => 16,
            Cause::UserBusy => 17,
            Cause::NoRouteToDestination => 3,
            Cause::ResourceUnavailable => 47,
            Cause::InvalidCallReference => 81,
            Cause::Other(v) => v,
        }
    }

    fn from_byte(b: u8) -> Cause {
        match b {
            16 => Cause::NormalClearing,
            17 => Cause::UserBusy,
            3 => Cause::NoRouteToDestination,
            47 => Cause::ResourceUnavailable,
            81 => Cause::InvalidCallReference,
            v => Cause::Other(v),
        }
    }
}

/// Information elements (TLVs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InfoElement {
    /// E.164-ish called party digits.
    CalledParty(Vec<u8>),
    /// Calling party digits.
    CallingParty(Vec<u8>),
    /// Peak cell rate, cells/second.
    TrafficDescriptor { pcr: u32 },
    /// VPI/VCI assigned to the call.
    ConnectionId { vpi: u16, vci: u16 },
    /// Release cause.
    Cause(Cause),
    /// Anything we don't interpret, carried verbatim.
    Unknown { id: u8, data: Vec<u8> },
}

impl InfoElement {
    fn id(&self) -> u8 {
        match self {
            InfoElement::CalledParty(_) => 0x70,
            InfoElement::CallingParty(_) => 0x6c,
            InfoElement::TrafficDescriptor { .. } => 0x59,
            InfoElement::ConnectionId { .. } => 0x5a,
            InfoElement::Cause(_) => 0x08,
            InfoElement::Unknown { id, .. } => *id,
        }
    }

    fn encode_value(&self, out: &mut Vec<u8>) {
        match self {
            InfoElement::CalledParty(d) | InfoElement::CallingParty(d) => {
                out.extend_from_slice(d)
            }
            InfoElement::TrafficDescriptor { pcr } => out.extend_from_slice(&pcr.to_be_bytes()),
            InfoElement::ConnectionId { vpi, vci } => {
                out.extend_from_slice(&vpi.to_be_bytes());
                out.extend_from_slice(&vci.to_be_bytes());
            }
            InfoElement::Cause(c) => out.push(c.to_byte()),
            InfoElement::Unknown { data, .. } => out.extend_from_slice(data),
        }
    }

    fn decode(id: u8, value: &[u8]) -> Result<InfoElement, String> {
        Ok(match id {
            0x70 => InfoElement::CalledParty(value.to_vec()),
            0x6c => InfoElement::CallingParty(value.to_vec()),
            0x59 => {
                if value.len() != 4 {
                    return Err("traffic descriptor must be 4 bytes".into());
                }
                InfoElement::TrafficDescriptor {
                    pcr: u32::from_be_bytes([value[0], value[1], value[2], value[3]]),
                }
            }
            0x5a => {
                if value.len() != 4 {
                    return Err("connection id must be 4 bytes".into());
                }
                InfoElement::ConnectionId {
                    vpi: u16::from_be_bytes([value[0], value[1]]),
                    vci: u16::from_be_bytes([value[2], value[3]]),
                }
            }
            0x08 => {
                if value.len() != 1 {
                    return Err("cause must be 1 byte".into());
                }
                InfoElement::Cause(Cause::from_byte(value[0]))
            }
            _ => InfoElement::Unknown {
                id,
                data: value.to_vec(),
            },
        })
    }
}

/// A complete signalling message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Call reference: identifies the call on the interface. The high bit
    /// flags the side that allocated it, as in Q.2931.
    pub call_ref: u32,
    pub kind: MessageType,
    pub elements: Vec<InfoElement>,
}

impl Message {
    /// Creates a message with no information elements.
    pub fn new(call_ref: u32, kind: MessageType) -> Self {
        Message {
            call_ref,
            kind,
            elements: Vec::new(),
        }
    }

    /// Builder-style IE append.
    pub fn with(mut self, ie: InfoElement) -> Self {
        self.elements.push(ie);
        self
    }

    /// Finds the first IE matching the predicate-projection.
    pub fn find<T>(&self, f: impl Fn(&InfoElement) -> Option<T>) -> Option<T> {
        self.elements.iter().find_map(f)
    }

    /// The assigned VPI/VCI, if present.
    pub fn connection_id(&self) -> Option<(u16, u16)> {
        self.find(|ie| match ie {
            InfoElement::ConnectionId { vpi, vci } => Some((*vpi, *vci)),
            _ => None,
        })
    }

    /// The cause IE, if present.
    pub fn cause(&self) -> Option<Cause> {
        self.find(|ie| match ie {
            InfoElement::Cause(c) => Some(*c),
            _ => None,
        })
    }

    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Serializes the message by appending to `out`, so callers that
    /// frame signalling inside an outer envelope (e.g. the workload
    /// generator's class frames) reuse one buffer instead of splicing
    /// a fresh `Vec` per message.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let at = out.len();
        out.push(DISCRIMINATOR);
        // 3-byte call reference (masked to 24 bits, as in Q.2931).
        let cr = self.call_ref & 0x00ff_ffff;
        out.extend_from_slice(&cr.to_be_bytes()[1..4]);
        out.push(self.kind.to_byte());
        out.extend_from_slice(&[0, 0]); // length, patched below
        for ie in &self.elements {
            out.push(ie.id());
            let len_at = out.len();
            out.extend_from_slice(&[0, 0]);
            ie.encode_value(out);
            let len = (out.len() - len_at - 2) as u16;
            out[len_at..len_at + 2].copy_from_slice(&len.to_be_bytes());
        }
        let body = (out.len() - at - HEADER_LEN) as u16;
        out[at + 5..at + 7].copy_from_slice(&body.to_be_bytes());
    }

    /// Parses a message, validating structure and lengths.
    pub fn decode(buf: &[u8]) -> Result<Message, String> {
        if buf.len() < HEADER_LEN {
            return Err("truncated header".into());
        }
        if buf[0] != DISCRIMINATOR {
            return Err(format!("bad discriminator {:#x}", buf[0]));
        }
        let call_ref = u32::from_be_bytes([0, buf[1], buf[2], buf[3]]);
        let kind = MessageType::from_byte(buf[4])
            .ok_or_else(|| format!("unknown message type {:#x}", buf[4]))?;
        let body = u16::from_be_bytes([buf[5], buf[6]]) as usize;
        if HEADER_LEN + body > buf.len() {
            return Err("declared length exceeds buffer".into());
        }
        let mut elements = Vec::new();
        let mut rest = &buf[HEADER_LEN..HEADER_LEN + body];
        while !rest.is_empty() {
            if rest.len() < 3 {
                return Err("truncated IE header".into());
            }
            let id = rest[0];
            let len = u16::from_be_bytes([rest[1], rest[2]]) as usize;
            if rest.len() < 3 + len {
                return Err("truncated IE value".into());
            }
            elements.push(InfoElement::decode(id, &rest[3..3 + len])?);
            rest = &rest[3 + len..];
        }
        Ok(Message {
            call_ref,
            kind,
            elements,
        })
    }

    /// Encoded size in bytes — signalling messages are small, which is
    /// the whole point of the paper.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// A typical SETUP for tests and workloads: called/calling numbers and a
/// traffic descriptor, ~100 bytes encoded.
pub fn sample_setup(call_ref: u32) -> Message {
    Message::new(call_ref, MessageType::Setup)
        .with(InfoElement::CalledParty(
            b"14155551212francisco".to_vec(),
        ))
        .with(InfoElement::CallingParty(b"16175554242cambridge".to_vec()))
        .with(InfoElement::TrafficDescriptor { pcr: 353_207 })
        .with(InfoElement::Unknown {
            id: 0x42,
            data: vec![0xaa; 30],
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_message_types() {
        for kind in [
            MessageType::Setup,
            MessageType::CallProceeding,
            MessageType::Connect,
            MessageType::ConnectAck,
            MessageType::Release,
            MessageType::ReleaseComplete,
            MessageType::Status,
        ] {
            let m = Message::new(0x1234, kind)
                .with(InfoElement::ConnectionId { vpi: 3, vci: 1789 })
                .with(InfoElement::Cause(Cause::NormalClearing));
            let decoded = Message::decode(&m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn encode_into_appends_identically_at_any_offset() {
        let m = sample_setup(77);
        let flat = m.encode();
        let mut buf = vec![0xEE; 13];
        m.encode_into(&mut buf);
        assert_eq!(&buf[..13], &[0xEE; 13][..], "prefix untouched");
        assert_eq!(&buf[13..], &flat[..], "appended bytes match encode()");
        assert_eq!(Message::decode(&buf[13..]).unwrap(), m);
    }

    #[test]
    fn setup_is_about_a_hundred_bytes() {
        let len = sample_setup(1).encoded_len();
        assert!(
            (80..160).contains(&len),
            "SETUP should be ~100 bytes, got {len}"
        );
    }

    #[test]
    fn call_ref_is_24_bits() {
        let m = Message::new(0xff_123456, MessageType::Setup);
        let d = Message::decode(&m.encode()).unwrap();
        assert_eq!(d.call_ref, 0x123456);
    }

    #[test]
    fn accessors_find_elements() {
        let m = Message::new(9, MessageType::Connect)
            .with(InfoElement::ConnectionId { vpi: 1, vci: 42 });
        assert_eq!(m.connection_id(), Some((1, 42)));
        assert_eq!(m.cause(), None);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[0x08, 0, 0, 1, 0x05, 0, 0]).is_err(), "bad discriminator");
        let mut good = Message::new(1, MessageType::Setup).encode();
        good[4] = 0xee;
        assert!(Message::decode(&good).is_err(), "unknown type");
        let mut truncated_ie = Message::new(1, MessageType::Setup)
            .with(InfoElement::Cause(Cause::UserBusy))
            .encode();
        truncated_ie.truncate(truncated_ie.len() - 1);
        // Header length now exceeds the buffer.
        assert!(Message::decode(&truncated_ie).is_err());
    }

    #[test]
    fn unknown_ies_are_preserved() {
        let m = Message::new(7, MessageType::Status).with(InfoElement::Unknown {
            id: 0x99,
            data: vec![1, 2, 3],
        });
        let d = Message::decode(&m.encode()).unwrap();
        assert_eq!(d.elements.len(), 1);
        assert!(matches!(&d.elements[0], InfoElement::Unknown { id: 0x99, data } if data == &[1,2,3]));
    }

    #[test]
    fn ie_length_validation() {
        // A cause IE with a 2-byte value is malformed.
        let mut bytes = Message::new(1, MessageType::Release).encode();
        bytes.extend_from_slice(&[0x08, 0, 2, 16, 16]);
        let body = (bytes.len() - HEADER_LEN) as u16;
        bytes[5..7].copy_from_slice(&body.to_be_bytes());
        assert!(Message::decode(&bytes).is_err());
    }
}
