//! A DNS-shaped query/response protocol (RFC 1035 subset).
//!
//! DNS heads the paper's list of ubiquitous small-message protocols
//! ("DNS, ICMP, IGMP, TCP's connection control messages, all except two
//! messages in NFS"). This module provides a real codec — header, QNAME
//! label encoding, question and A-record answer sections — and a tiny
//! authoritative server, so the small-message workloads have a second
//! functional protocol beside Q.93B.
//!
//! Kept deliberately narrow, smoltcp-style: queries for A records over
//! UDP framing, no name compression on parse (emitted names are always
//! uncompressed), no EDNS.

use netstack::table::OaTable;
use netstack::wire::ipv4::Ipv4Addr;

/// DNS response codes we produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    NoError,
    FormErr,
    NxDomain,
    NotImp,
}

impl Rcode {
    fn to_bits(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
        }
    }

    fn from_bits(b: u16) -> Rcode {
        match b & 0xf {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            3 => Rcode::NxDomain,
            _ => Rcode::NotImp,
        }
    }
}

/// A parsed DNS message (single-question, A-record answers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// True for responses.
    pub response: bool,
    /// Response code (`NoError` on queries).
    pub rcode: Rcode,
    /// The question name, as dotted labels (e.g. `www.example.com`).
    pub qname: String,
    /// Answer addresses (empty on queries and errors).
    pub answers: Vec<Ipv4Addr>,
}

/// QTYPE A, QCLASS IN — the only question we speak.
const QTYPE_A: u16 = 1;
const QCLASS_IN: u16 = 1;

impl DnsMessage {
    /// A query for the A records of `qname`.
    pub fn query(id: u16, qname: &str) -> Self {
        DnsMessage {
            id,
            response: false,
            rcode: Rcode::NoError,
            qname: qname.to_string(),
            answers: Vec::new(),
        }
    }

    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut flags = 0u16;
        if self.response {
            flags |= 0x8000; // QR
            flags |= 0x0400; // AA
        } else {
            flags |= 0x0100; // RD
        }
        flags |= self.rcode.to_bits();
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes()); // ANCOUNT
        out.extend_from_slice(&0u16.to_be_bytes()); // NSCOUNT
        out.extend_from_slice(&0u16.to_be_bytes()); // ARCOUNT
        // Question.
        encode_name(&self.qname, &mut out);
        out.extend_from_slice(&QTYPE_A.to_be_bytes());
        out.extend_from_slice(&QCLASS_IN.to_be_bytes());
        // Answers: repeat the name uncompressed, TTL 300, RDLENGTH 4.
        for a in &self.answers {
            encode_name(&self.qname, &mut out);
            out.extend_from_slice(&QTYPE_A.to_be_bytes());
            out.extend_from_slice(&QCLASS_IN.to_be_bytes());
            out.extend_from_slice(&300u32.to_be_bytes());
            out.extend_from_slice(&4u16.to_be_bytes());
            out.extend_from_slice(&a.0);
        }
        out
    }

    /// Parses a message (single question; A/IN answers kept, others
    /// rejected as `NotImp` by the server rather than here).
    pub fn decode(buf: &[u8]) -> Result<DnsMessage, String> {
        if buf.len() < 12 {
            return Err("truncated header".into());
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let flags = u16::from_be_bytes([buf[2], buf[3]]);
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]);
        let ancount = u16::from_be_bytes([buf[6], buf[7]]);
        if qdcount != 1 {
            return Err(format!("expected exactly one question, got {qdcount}"));
        }
        let mut pos = 12;
        let qname = decode_name(buf, &mut pos)?;
        if pos + 4 > buf.len() {
            return Err("truncated question".into());
        }
        let qtype = u16::from_be_bytes([buf[pos], buf[pos + 1]]);
        let qclass = u16::from_be_bytes([buf[pos + 2], buf[pos + 3]]);
        pos += 4;
        if qtype != QTYPE_A || qclass != QCLASS_IN {
            return Err("only A/IN questions supported".into());
        }
        let mut answers = Vec::new();
        for _ in 0..ancount {
            let _name = decode_name(buf, &mut pos)?;
            if pos + 10 > buf.len() {
                return Err("truncated answer".into());
            }
            let rdlen =
                u16::from_be_bytes([buf[pos + 8], buf[pos + 9]]) as usize;
            let rdata_at = pos + 10;
            if rdata_at + rdlen > buf.len() {
                return Err("truncated rdata".into());
            }
            if rdlen == 4 {
                answers.push(Ipv4Addr([
                    buf[rdata_at],
                    buf[rdata_at + 1],
                    buf[rdata_at + 2],
                    buf[rdata_at + 3],
                ]));
            }
            pos = rdata_at + rdlen;
        }
        Ok(DnsMessage {
            id,
            response: flags & 0x8000 != 0,
            rcode: Rcode::from_bits(flags),
            qname,
            answers,
        })
    }
}

fn encode_name(name: &str, out: &mut Vec<u8>) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        debug_assert!(label.len() < 64, "labels are at most 63 bytes");
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

fn decode_name(buf: &[u8], pos: &mut usize) -> Result<String, String> {
    let mut labels: Vec<String> = Vec::new();
    loop {
        let len = *buf.get(*pos).ok_or("truncated name")? as usize;
        *pos += 1;
        if len == 0 {
            break;
        }
        if len & 0xc0 != 0 {
            return Err("compressed names not supported".into());
        }
        if labels.len() > 32 || *pos + len > buf.len() {
            return Err("bad label".into());
        }
        labels.push(
            String::from_utf8(buf[*pos..*pos + len].to_vec())
                .map_err(|_| "non-utf8 label".to_string())?,
        );
        *pos += len;
    }
    Ok(labels.join("."))
}

/// Server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DnsStats {
    pub queries: u64,
    pub answered: u64,
    pub nxdomain: u64,
    pub formerr: u64,
}

/// A tiny authoritative server over an in-memory zone.
///
/// The zone is an open-addressing table (`netstack::table`) so query
/// handling at large zone sizes walks a short probe run rather than a
/// tree; lookups are point queries, so behavior is unchanged.
#[derive(Debug, Default)]
pub struct DnsServer {
    zone: OaTable<String, Vec<Ipv4Addr>>,
    stats: DnsStats,
}

impl DnsServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an A record.
    pub fn add_record(&mut self, name: &str, addr: Ipv4Addr) {
        let key = name.to_ascii_lowercase();
        match self.zone.get_mut(&key) {
            Some(addrs) => addrs.push(addr),
            None => {
                self.zone.insert(key, vec![addr]);
            }
        }
    }

    /// Counters.
    pub fn stats(&self) -> DnsStats {
        self.stats
    }

    /// Handles one query datagram, returning the response datagram.
    pub fn handle(&mut self, query_bytes: &[u8]) -> Vec<u8> {
        self.stats.queries += 1;
        match DnsMessage::decode(query_bytes) {
            Ok(q) if !q.response => {
                let key = q.qname.to_ascii_lowercase();
                match self.zone.get(&key) {
                    Some(addrs) => {
                        self.stats.answered += 1;
                        DnsMessage {
                            response: true,
                            rcode: Rcode::NoError,
                            answers: addrs.clone(),
                            ..q
                        }
                        .encode()
                    }
                    None => {
                        self.stats.nxdomain += 1;
                        DnsMessage {
                            response: true,
                            rcode: Rcode::NxDomain,
                            ..q
                        }
                        .encode()
                    }
                }
            }
            _ => {
                self.stats.formerr += 1;
                // Minimal FORMERR with a best-effort id echo.
                let id = query_bytes
                    .get(0..2)
                    .map(|b| u16::from_be_bytes([b[0], b[1]]))
                    .unwrap_or(0);
                DnsMessage {
                    id,
                    response: true,
                    rcode: Rcode::FormErr,
                    qname: String::new(),
                    answers: Vec::new(),
                }
                .encode()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let q = DnsMessage::query(0xbeef, "www.example.com");
        let d = DnsMessage::decode(&q.encode()).unwrap();
        assert_eq!(d, q);
        assert!(!d.response);
        // DNS queries are the paper's canonical small message.
        assert!(q.encode().len() < 64, "query is {} bytes", q.encode().len());
    }

    #[test]
    fn response_round_trip_with_answers() {
        let mut r = DnsMessage::query(7, "a.b.c");
        r.response = true;
        r.answers = vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)];
        let d = DnsMessage::decode(&r.encode()).unwrap();
        assert_eq!(d.answers, r.answers);
        assert!(d.response);
    }

    #[test]
    fn server_answers_known_names() {
        let mut s = DnsServer::new();
        s.add_record("ns.example.com", Ipv4Addr::new(192, 168, 69, 1));
        s.add_record("ns.example.com", Ipv4Addr::new(192, 168, 69, 2));
        let reply = s.handle(&DnsMessage::query(1, "NS.Example.Com").encode());
        let d = DnsMessage::decode(&reply).unwrap();
        assert_eq!(d.rcode, Rcode::NoError);
        assert_eq!(d.answers.len(), 2, "case-insensitive lookup");
        assert_eq!(d.id, 1);
    }

    #[test]
    fn server_nxdomain_and_formerr() {
        let mut s = DnsServer::new();
        let reply = s.handle(&DnsMessage::query(2, "nope.invalid").encode());
        assert_eq!(DnsMessage::decode(&reply).unwrap().rcode, Rcode::NxDomain);
        let reply = s.handle(&[0xde, 0xad, 0xbe]);
        assert_eq!(DnsMessage::decode(&reply).unwrap().rcode, Rcode::FormErr);
        assert_eq!(s.stats().nxdomain, 1);
        assert_eq!(s.stats().formerr, 1);
    }

    #[test]
    fn malformed_names_rejected() {
        let mut q = DnsMessage::query(1, "ok.example").encode();
        q[12] = 0xc0; // compression pointer in the question
        assert!(DnsMessage::decode(&q).is_err());
        assert!(DnsMessage::decode(&[0u8; 11]).is_err());
        // Label length running past the buffer.
        let mut q = DnsMessage::query(1, "x").encode();
        q[12] = 60;
        assert!(DnsMessage::decode(&q).is_err());
    }

    #[test]
    fn round_trip_over_udp_framing() {
        // The full small-message round trip: DNS in UDP in IPv4.
        use netstack::wire::udp::UdpRepr;
        let src = Ipv4Addr::new(10, 0, 0, 9);
        let dst = Ipv4Addr::new(10, 0, 0, 53);
        let query = DnsMessage::query(9, "tiny.example").encode();
        let dgram = UdpRepr {
            src_port: 4000,
            dst_port: 53,
        }
        .packet(src, dst, &query);
        let (_, off) = UdpRepr::parse(&dgram, src, dst).unwrap();
        let mut server = DnsServer::new();
        server.add_record("tiny.example", Ipv4Addr::new(1, 2, 3, 4));
        let reply = server.handle(&dgram[off..]);
        let d = DnsMessage::decode(&reply).unwrap();
        assert_eq!(d.answers, vec![Ipv4Addr::new(1, 2, 3, 4)]);
        assert!(dgram.len() < 80, "query datagram is small: {}", dgram.len());
    }
}
