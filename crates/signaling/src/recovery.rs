//! Loss recovery for the signalling workload: per-call retransmit timers
//! with exponential backoff and the max-retry RELEASE path.
//!
//! Q.93B runs over an SSCOP-like reliable transport; on a lossy link the
//! sender's timer (T303 for SETUP) fires and the message is retransmitted
//! with exponentially growing timeouts. After `max_retries` unanswered
//! retransmissions the call is *abandoned*: call control gives up on the
//! half-open call and sends a RELEASE to tear it down — so even a failed
//! call costs the switch processing work. This module generates the
//! delivery stream a switch actually sees when the paired SETUP/RELEASE
//! load of [`crate::workload::call_arrivals`] crosses an impairment
//! channel, which is exactly what `run_sim_impaired` consumes — the goal
//! experiment rerun under loss.
//!
//! Channel semantics per transmission: a *dropped* message delivers
//! nothing and the timer fires; a *corrupted* message delivers its bytes
//! (the switch spends cycles and rejects it at checksum verification) and
//! the timer still fires; a clean delivery cancels the timer. Duplicates
//! deliver twice. Reordering has no meaning at this per-call level and is
//! ignored — compose [`simnet::impair::ImpairedSource`] in front of the
//! NIC to study it.

use crate::workload::{RELEASE_BYTES, SETUP_BYTES};
use simnet::impair::{ImpairConfig, ImpairCounters, ImpairState, ImpairedArrival};
use simnet::traffic::{PoissonSource, TrafficSource};

// The timer machinery is shared with the closed-loop client population
// (`simnet::closed` uses it from the *client* side, and `signaling`
// depends on `simnet`, so the definition lives there). The re-export
// keeps this module's API unchanged; `RetryPolicy` additionally gained
// an SSCOP-style `max_rto_s` cap on the backed-off timeout.
pub use simnet::closed::{RetransmitTimer, RetryPolicy};

/// Parameters of a lossy signalling run.
#[derive(Debug, Clone, Copy)]
pub struct LossyCallConfig {
    /// Poisson call-attempt rate (each call is a SETUP + RELEASE pair).
    pub pairs_per_s: f64,
    /// Mean call hold time: RELEASE follows the successful SETUP by this.
    pub hold_s: f64,
    /// Arrival window in seconds (matches `SimConfig::duration_s`).
    pub duration_s: f64,
    /// Seed for the call-arrival process.
    pub seed: u64,
    /// The impairment channel every transmission crosses.
    pub channel: ImpairConfig,
    /// Transport retransmission policy.
    pub retry: RetryPolicy,
}

/// What loss recovery did across one generated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Call attempts generated.
    pub calls: u64,
    /// Calls whose SETUP was eventually delivered clean.
    pub connected: u64,
    /// Calls abandoned after the SETUP retry budget was spent.
    pub abandoned: u64,
    /// Total transmissions (SETUP and RELEASE, initial + retransmit).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retransmits: u64,
    /// RELEASE exchanges initiated (normal teardown and abandon path).
    pub releases_sent: u64,
    /// RELEASEs sent on the max-retry path for abandoned calls.
    pub abandon_releases: u64,
    /// Messages (SETUP or RELEASE) whose retry budget was spent without
    /// a clean delivery.
    pub exhausted_sends: u64,
}

/// Outcome of pushing one message through the channel with retries.
enum SendOutcome {
    /// Clean delivery at this time.
    Delivered(f64),
    /// Retry budget exhausted; abandoned at this time.
    Exhausted(f64),
}

/// Transmits one message reliably: initial send at `t0_s`, retransmit on
/// every timer expiry, stop on clean delivery or retry exhaustion. Every
/// delivered copy (corrupt ones included) lands in `out`.
fn send_reliable(
    t0_s: f64,
    bytes: u32,
    chan: &mut ImpairState,
    retry: RetryPolicy,
    out: &mut Vec<ImpairedArrival>,
    stats: &mut RecoveryStats,
) -> SendOutcome {
    let mut timer = RetransmitTimer::arm(retry, t0_s);
    let mut tx_s = t0_s;
    loop {
        stats.transmissions += 1;
        if timer.transmissions() > 1 {
            stats.retransmits += 1;
        }
        let fate = chan.next_fate();
        if !fate.dropped {
            let delivery = ImpairedArrival {
                time_s: tx_s,
                bytes,
                corrupted: fate.corrupted,
            };
            out.push(delivery);
            if fate.duplicated {
                out.push(delivery);
            }
            if !fate.corrupted {
                return SendOutcome::Delivered(tx_s);
            }
        }
        match timer.expire() {
            Some(retx_s) => tx_s = retx_s,
            None => {
                stats.exhausted_sends += 1;
                return SendOutcome::Exhausted(timer.deadline_s());
            }
        }
    }
}

/// Generates the delivery stream of the paired SETUP/RELEASE workload
/// across an impairment channel with retransmission. Returns the
/// time-sorted deliveries (feed to `simnet::run_sim_impaired`), the
/// channel counters, and the recovery bookkeeping.
///
/// With a transparent channel this reproduces
/// [`crate::workload::call_arrivals`] exactly: every SETUP delivers
/// first try and every RELEASE inside the window follows one hold time
/// later.
pub fn lossy_call_arrivals(
    cfg: &LossyCallConfig,
) -> (Vec<ImpairedArrival>, ImpairCounters, RecoveryStats) {
    let mut chan = ImpairState::new(cfg.channel);
    let mut stats = RecoveryStats::default();
    let mut out = Vec::new();
    let mut setups = PoissonSource::new(cfg.pairs_per_s, SETUP_BYTES, cfg.seed);
    for s in setups.take_until(cfg.duration_s) {
        stats.calls += 1;
        match send_reliable(s.time_s, SETUP_BYTES, &mut chan, cfg.retry, &mut out, &mut stats) {
            SendOutcome::Delivered(connect_s) => {
                stats.connected += 1;
                let release_s = connect_s + cfg.hold_s;
                if release_s < cfg.duration_s {
                    stats.releases_sent += 1;
                    send_reliable(
                        release_s,
                        RELEASE_BYTES,
                        &mut chan,
                        cfg.retry,
                        &mut out,
                        &mut stats,
                    );
                }
            }
            SendOutcome::Exhausted(abandon_s) => {
                // The max-retry RELEASE path: tear down the half-open
                // call so the switch can free its state.
                stats.abandoned += 1;
                stats.releases_sent += 1;
                stats.abandon_releases += 1;
                send_reliable(
                    abandon_s,
                    RELEASE_BYTES,
                    &mut chan,
                    cfg.retry,
                    &mut out,
                    &mut stats,
                );
            }
        }
    }
    out.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    (out, chan.counters(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::call_arrivals;

    fn base_cfg(channel: ImpairConfig) -> LossyCallConfig {
        LossyCallConfig {
            pairs_per_s: 2000.0,
            hold_s: 0.02,
            duration_s: 0.5,
            seed: 7,
            channel,
            retry: RetryPolicy::default(),
        }
    }

    #[test]
    fn backoff_doubles_and_budget_is_finite() {
        let p = RetryPolicy {
            rto_s: 0.01,
            backoff: 2.0,
            max_retries: 3,
            ..RetryPolicy::default()
        };
        let mut t = RetransmitTimer::arm(p, 1.0);
        assert_eq!(t.deadline_s(), 1.01);
        assert_eq!(t.expire(), Some(1.01), "first retransmission at the deadline");
        assert!((t.deadline_s() - 1.03).abs() < 1e-12, "next timeout doubled");
        assert_eq!(t.expire(), Some(1.03));
        assert!((t.deadline_s() - 1.07).abs() < 1e-12);
        assert_eq!(t.expire(), Some(1.07));
        assert_eq!(t.transmissions(), 4, "initial + 3 retries");
        assert_eq!(t.expire(), None, "budget spent");
        assert_eq!(t.expire(), None, "stays exhausted");
    }

    #[test]
    fn transparent_channel_reproduces_the_clean_workload() {
        let cfg = base_cfg(ImpairConfig::default());
        let (deliveries, counters, stats) = lossy_call_arrivals(&cfg);
        let clean = call_arrivals(cfg.pairs_per_s, cfg.hold_s, cfg.duration_s, cfg.seed);
        assert_eq!(deliveries.len(), clean.len());
        for (d, c) in deliveries.iter().zip(&clean) {
            assert_eq!(d.time_s, c.time_s);
            assert_eq!(d.bytes, c.bytes);
            assert!(!d.corrupted);
        }
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.abandoned, 0);
        assert_eq!(stats.connected, stats.calls);
        assert_eq!(counters.dropped, 0);
    }

    #[test]
    fn retransmission_recovers_moderate_loss() {
        let cfg = base_cfg(ImpairConfig::loss(0.05, 3));
        let (deliveries, counters, stats) = lossy_call_arrivals(&cfg);
        assert!(stats.retransmits > 0, "5% loss must trigger retransmissions");
        // P(abandon) = 0.05^4 ~ 6e-6: essentially every call connects.
        assert_eq!(stats.abandoned, 0, "four attempts survive 5% loss");
        assert_eq!(stats.connected, stats.calls);
        assert_eq!(
            deliveries.len() as u64,
            counters.delivered,
            "every channel delivery reaches the switch"
        );
        assert_eq!(
            stats.transmissions,
            counters.offered,
            "every transmission crossed the channel"
        );
    }

    #[test]
    fn exhausted_retries_take_the_release_path() {
        let cfg = LossyCallConfig {
            retry: RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..base_cfg(ImpairConfig::loss(0.5, 11))
        };
        let (_, _, stats) = lossy_call_arrivals(&cfg);
        // P(abandon) = 0.25 with two attempts at 50% loss.
        assert!(stats.abandoned > stats.calls / 8, "heavy loss abandons calls");
        assert!(stats.connected + stats.abandoned == stats.calls);
        assert!(
            stats.abandon_releases == stats.abandoned,
            "every abandoned call still tears down via RELEASE"
        );
        assert!(stats.releases_sent >= stats.abandon_releases);
    }

    #[test]
    fn corruption_forces_retransmission_but_still_costs_the_switch() {
        let cfg = base_cfg(ImpairConfig {
            corrupt_prob: 0.2,
            seed: 9,
            ..ImpairConfig::default()
        });
        let (deliveries, counters, stats) = lossy_call_arrivals(&cfg);
        assert!(counters.corrupted > 0);
        let corrupt = deliveries.iter().filter(|d| d.corrupted).count() as u64;
        assert_eq!(corrupt, counters.corrupted, "corrupt copies reach the switch");
        // With corruption the only failure mode, every failed attempt is
        // either retransmitted or the final one of an exhausted message.
        assert_eq!(
            stats.retransmits + stats.exhausted_sends,
            counters.corrupted,
            "failed attempts are retransmitted or exhausted, nothing else"
        );
        assert!(deliveries.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = base_cfg(ImpairConfig {
            drop_prob: 0.08,
            corrupt_prob: 0.04,
            dup_prob: 0.02,
            seed: 21,
            ..ImpairConfig::default()
        });
        let (d1, c1, s1) = lossy_call_arrivals(&cfg);
        let (d2, c2, s2) = lossy_call_arrivals(&cfg);
        assert_eq!(d1, d2);
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
    }
}
