//! Call-control state machines.
//!
//! [`SignalingSwitch`] is the network side the paper worries about: an ATM
//! switch on the path of a connection, processing each SETUP/RELEASE in a
//! few tens of microseconds if it is to support thousands of call
//! attempts per second. [`Caller`] is a user side for tests and traffic
//! generation.

use crate::wire::{Cause, InfoElement, Message, MessageType};
use netstack::table::OaTable;
use std::collections::BTreeMap;

/// Call states (a condensed Q.2931 state set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallState {
    Null,
    /// SETUP received, CALL PROCEEDING sent (network side).
    Incoming,
    /// CONNECT sent, awaiting CONNECT ACK.
    ConnectRequest,
    /// The call is up.
    Active,
    /// RELEASE sent, awaiting RELEASE COMPLETE.
    ReleaseRequest,
}

/// One call's record in the switch.
#[derive(Debug, Clone)]
struct Call {
    state: CallState,
    vpi: u16,
    vci: u16,
}

/// Switch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    pub setups: u64,
    pub connects: u64,
    pub releases: u64,
    pub rejected: u64,
    pub protocol_errors: u64,
}

/// Simulated footprint of one VC-table entry, for the SMP shared-state
/// cost model (`crates/smp`): the call table is mutable state shared by
/// every core that handles signaling messages, so each per-message
/// state-machine step goes through the shared L2 with coherence
/// accounting. One entry ≈ call state + VCI map — two 32-byte lines.
pub const CALL_SLOT_BYTES: u64 = 64;
/// Simulated VC-table capacity used by the SMP model (a modest switch
/// port; the in-memory [`SignalingSwitch`] capacity is per-instance).
pub const CALL_TABLE_SLOTS: u64 = 64;
/// Total simulated footprint of the shared call table.
pub const CALL_TABLE_BYTES: u64 = CALL_TABLE_SLOTS * CALL_SLOT_BYTES;

/// The network-side call controller of one switch port.
///
/// The call table is an open-addressing map (`netstack::table`): at the
/// million-call populations `figure10` simulates, a per-message tree
/// walk would under-report the data working set. All uses here are
/// point lookups, so the switch behaves identically to the old
/// `BTreeMap` form.
#[derive(Debug)]
pub struct SignalingSwitch {
    calls: OaTable<u32, Call>,
    stats: SwitchStats,
    next_vci: u16,
    /// Maximum simultaneous calls (VC table capacity).
    capacity: usize,
}

impl SignalingSwitch {
    /// A switch port able to hold `capacity` simultaneous calls.
    pub fn new(capacity: usize) -> Self {
        SignalingSwitch {
            calls: OaTable::with_capacity(capacity.min(1 << 20)),
            stats: SwitchStats::default(),
            next_vci: 32, // VCIs below 32 are reserved
            capacity,
        }
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Number of calls currently in the table.
    pub fn active_calls(&self) -> usize {
        self.calls.len()
    }

    /// State of a call reference, `Null` if unknown.
    pub fn call_state(&self, call_ref: u32) -> CallState {
        self.calls
            .get(&call_ref)
            .map(|c| c.state)
            .unwrap_or(CallState::Null)
    }

    fn alloc_vci(&mut self) -> u16 {
        let v = self.next_vci;
        self.next_vci = if self.next_vci == u16::MAX {
            32
        } else {
            self.next_vci + 1
        };
        v
    }

    /// Processes one incoming message, returning the replies to send.
    ///
    /// SETUP is answered with CALL PROCEEDING and then CONNECT carrying
    /// the allocated VPI/VCI (this switch model answers for the callee,
    /// like a switch terminating the call on a local port). RELEASE is
    /// answered with RELEASE COMPLETE. Messages for unknown calls get
    /// RELEASE COMPLETE with cause "invalid call reference", per Q.2931
    /// §5.6.
    // analyze::hot_path(signaling-call-path, rules = "panic-path")
    pub fn handle(&mut self, msg: &Message) -> Vec<Message> {
        match msg.kind {
            MessageType::Setup => {
                self.stats.setups += 1;
                if self.calls.contains_key(&msg.call_ref) {
                    self.stats.protocol_errors += 1;
                    return vec![Message::new(msg.call_ref, MessageType::Status)
                        .with(InfoElement::Cause(Cause::InvalidCallReference))];
                }
                if self.calls.len() >= self.capacity {
                    self.stats.rejected += 1;
                    return vec![Message::new(msg.call_ref, MessageType::ReleaseComplete)
                        .with(InfoElement::Cause(Cause::ResourceUnavailable))];
                }
                let vci = self.alloc_vci();
                self.calls.insert(
                    msg.call_ref,
                    Call {
                        state: CallState::ConnectRequest,
                        vpi: 0,
                        vci,
                    },
                );
                self.stats.connects += 1;
                vec![
                    Message::new(msg.call_ref, MessageType::CallProceeding),
                    Message::new(msg.call_ref, MessageType::Connect)
                        .with(InfoElement::ConnectionId { vpi: 0, vci }),
                ]
            }
            MessageType::ConnectAck => match self.calls.get_mut(&msg.call_ref) {
                Some(call) if call.state == CallState::ConnectRequest => {
                    call.state = CallState::Active;
                    vec![]
                }
                _ => {
                    self.stats.protocol_errors += 1;
                    vec![Message::new(msg.call_ref, MessageType::Status)
                        .with(InfoElement::Cause(Cause::InvalidCallReference))]
                }
            },
            MessageType::Release => {
                self.stats.releases += 1;
                match self.calls.remove(&msg.call_ref) {
                    Some(_) => vec![Message::new(msg.call_ref, MessageType::ReleaseComplete)
                        .with(InfoElement::Cause(
                            msg.cause().unwrap_or(Cause::NormalClearing),
                        ))],
                    None => {
                        self.stats.protocol_errors += 1;
                        vec![Message::new(msg.call_ref, MessageType::ReleaseComplete)
                            .with(InfoElement::Cause(Cause::InvalidCallReference))]
                    }
                }
            }
            MessageType::ReleaseComplete => {
                // Clears any lingering state; no reply (Q.2931 §5.4).
                self.calls.remove(&msg.call_ref);
                vec![]
            }
            MessageType::CallProceeding | MessageType::Connect | MessageType::Status => {
                // Network side does not expect these from the user.
                self.stats.protocol_errors += 1;
                vec![]
            }
        }
    }

    /// The VPI/VCI assigned to an active call, if any.
    pub fn connection_of(&self, call_ref: u32) -> Option<(u16, u16)> {
        self.calls.get(&call_ref).map(|c| (c.vpi, c.vci))
    }
}

/// Call references are 24 bits on the wire (Q.2931); the all-zero
/// value is reserved for the global call reference and is never
/// assigned to a call.
pub const CALL_REF_MASK: u32 = 0x00ff_ffff;

/// User-side endpoint: originates calls, consumes responses.
#[derive(Debug, Default)]
pub struct Caller {
    next_ref: u32,
    /// Calls we believe are up, with their assigned VPI/VCI. Kept as a
    /// `BTreeMap`: [`Caller::release`] with no explicit ref tears down
    /// the *oldest* (smallest) ref, so ordered iteration is load-bearing.
    active: BTreeMap<u32, (u16, u16)>,
}

impl Caller {
    /// A fresh caller.
    pub fn new() -> Self {
        Self::starting_at(1)
    }

    /// A caller whose first SETUP uses `next_ref` (masked to 24 bits;
    /// the reserved value 0 becomes 1). Lets tests drive the counter
    /// across the 2^24 wrap without 16M warm-up calls.
    pub fn starting_at(next_ref: u32) -> Self {
        Caller {
            next_ref: (next_ref & CALL_REF_MASK).max(1),
            active: BTreeMap::new(),
        }
    }

    /// Builds the next SETUP message.
    ///
    /// The ref counter wraps at 24 bits: mask *first*, then clamp away
    /// the reserved global ref 0 (the old order, `.max(1)` before the
    /// mask, emitted ref 0 right after the wrap), and skip refs that
    /// still have live state so a long-lived call's ref is never
    /// reissued. Bounded: at most `active.len() + 1` candidates are
    /// probed, since the live set cannot cover them all.
    pub fn setup(&mut self) -> Message {
        let mut call_ref = (self.next_ref & CALL_REF_MASK).max(1);
        let mut candidates = self.active.len() + 1;
        while candidates > 0 && self.active.contains_key(&call_ref) {
            call_ref = (call_ref.wrapping_add(1) & CALL_REF_MASK).max(1);
            candidates -= 1;
        }
        self.next_ref = (call_ref.wrapping_add(1) & CALL_REF_MASK).max(1);
        crate::wire::sample_setup(call_ref)
    }

    /// Builds a RELEASE for an active call (the oldest, if `call_ref` is
    /// `None`).
    pub fn release(&mut self, call_ref: Option<u32>) -> Option<Message> {
        let cr = call_ref.or_else(|| self.active.keys().next().copied())?;
        self.active.remove(&cr);
        Some(
            Message::new(cr, MessageType::Release)
                .with(InfoElement::Cause(Cause::NormalClearing)),
        )
    }

    /// Consumes a response from the network; returns the CONNECT ACK to
    /// send when the call completes.
    pub fn handle(&mut self, msg: &Message) -> Option<Message> {
        match msg.kind {
            MessageType::Connect => {
                let id = msg.connection_id().unwrap_or((0, 0));
                self.active.insert(msg.call_ref, id);
                Some(Message::new(msg.call_ref, MessageType::ConnectAck))
            }
            _ => None,
        }
    }

    /// Number of calls the caller believes are up.
    pub fn active_calls(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full setup/teardown handshake through encode/decode.
    #[test]
    fn call_lifecycle() {
        let mut switch = SignalingSwitch::new(1024);
        let mut caller = Caller::new();

        let setup = caller.setup();
        let wire = setup.encode();
        let replies = switch.handle(&Message::decode(&wire).unwrap());
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].kind, MessageType::CallProceeding);
        assert_eq!(replies[1].kind, MessageType::Connect);
        let vci = replies[1].connection_id().unwrap().1;
        assert!(vci >= 32);
        assert_eq!(switch.call_state(setup.call_ref), CallState::ConnectRequest);

        let ack = caller.handle(&replies[1]).expect("connect ack");
        assert!(switch.handle(&ack).is_empty());
        assert_eq!(switch.call_state(setup.call_ref), CallState::Active);
        assert_eq!(caller.active_calls(), 1);

        let release = caller.release(None).unwrap();
        let replies = switch.handle(&release);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].kind, MessageType::ReleaseComplete);
        assert_eq!(replies[0].cause(), Some(Cause::NormalClearing));
        assert_eq!(switch.active_calls(), 0);
        assert_eq!(caller.active_calls(), 0);
    }

    #[test]
    fn capacity_exhaustion_rejects_with_cause() {
        let mut switch = SignalingSwitch::new(2);
        let mut caller = Caller::new();
        for _ in 0..2 {
            let s = caller.setup();
            let r = switch.handle(&s);
            assert_eq!(r[1].kind, MessageType::Connect);
        }
        let s = caller.setup();
        let r = switch.handle(&s);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, MessageType::ReleaseComplete);
        assert_eq!(r[0].cause(), Some(Cause::ResourceUnavailable));
        assert_eq!(switch.stats().rejected, 1);
    }

    #[test]
    fn release_of_unknown_call() {
        let mut switch = SignalingSwitch::new(8);
        let r = switch.handle(&Message::new(777, MessageType::Release));
        assert_eq!(r[0].cause(), Some(Cause::InvalidCallReference));
        assert_eq!(switch.stats().protocol_errors, 1);
    }

    #[test]
    fn duplicate_setup_is_a_protocol_error() {
        let mut switch = SignalingSwitch::new(8);
        let setup = crate::wire::sample_setup(42);
        switch.handle(&setup);
        let r = switch.handle(&setup);
        assert_eq!(r[0].kind, MessageType::Status);
        assert_eq!(switch.stats().protocol_errors, 1);
    }

    #[test]
    fn vcis_are_distinct_across_calls() {
        let mut switch = SignalingSwitch::new(64);
        let mut caller = Caller::new();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let replies = switch.handle(&caller.setup());
            let (_, vci) = replies[1].connection_id().unwrap();
            assert!(seen.insert(vci), "vci {vci} reused while active");
        }
    }

    /// Regression: drive the 24-bit call-ref counter across the wrap.
    /// The old code applied `.max(1)` *before* the mask, so the first
    /// post-wrap SETUP carried the reserved global ref 0 — and nothing
    /// stopped it from reissuing a ref still held by a live call.
    #[test]
    fn call_ref_counter_survives_the_24_bit_wrap() {
        let mut caller = Caller::starting_at(CALL_REF_MASK - 1);
        // A long-lived call from the previous epoch holds ref 1.
        caller.active.insert(1, (0, 32));
        assert_eq!(caller.setup().call_ref, CALL_REF_MASK - 1);
        assert_eq!(caller.setup().call_ref, CALL_REF_MASK);
        let post_wrap = caller.setup().call_ref;
        assert_ne!(post_wrap, 0, "reserved global call ref must never be issued");
        assert_eq!(post_wrap, 2, "ref 1 is live and must be skipped");
        assert_eq!(caller.setup().call_ref, 3);
    }

    #[test]
    fn call_ref_wrap_without_live_state_resumes_at_one() {
        let mut caller = Caller::starting_at(CALL_REF_MASK);
        assert_eq!(caller.setup().call_ref, CALL_REF_MASK);
        assert_eq!(caller.setup().call_ref, 1);
        assert_eq!(caller.setup().call_ref, 2);
    }

    /// `starting_at` itself masks and clamps.
    #[test]
    fn starting_at_normalizes_reserved_and_oversized_refs() {
        assert_eq!(Caller::starting_at(0).setup().call_ref, 1);
        assert_eq!(
            Caller::starting_at(0x0100_0005).setup().call_ref,
            5,
            "out-of-range seeds are masked to 24 bits"
        );
    }

    #[test]
    fn connect_ack_for_unknown_call_is_error() {
        let mut switch = SignalingSwitch::new(8);
        let r = switch.handle(&Message::new(5, MessageType::ConnectAck));
        assert_eq!(r[0].kind, MessageType::Status);
    }
}
