//! The signalling performance experiment (DESIGN.md experiment G1).
//!
//! The paper's goal: "support 10000 pairs of setup/teardown requests per
//! second with processing latency of 100 microseconds for setup requests,
//! using just a commodity workstation processor" (Section 1), against the
//! observation that contemporary implementations spent 5–20 ms per
//! message. The experiment runs a four-layer signalling stack — AAL5
//! framing, an SSCOP-like reliable transport, the Q.93B codec, and call
//! control — under paired SETUP/RELEASE load, comparing conventional and
//! LDLP scheduling.
//!
//! Layer footprints are sized from the structure of real signalling
//! stacks (the codec dominates; per-message cycle counts in the low
//! thousands): together ~30 KB of code, far beyond an 8 KB I-cache —
//! exactly the "sum of the parts including more functionality than is
//! strictly necessary" regime the paper's conclusion describes.

use cachesim::{Machine, MachineConfig, Region};
use ldlp::layer::SyntheticLayer;
use ldlp::SimLayer;
use simnet::traffic::{Arrival, PoissonSource, TrafficSource};

/// Per-layer parameters of the signalling stack: name, code bytes, data
/// bytes, and base instruction cycles per message.
pub const SIGNALING_LAYERS: [(&str, u64, u64, u64); 4] = [
    ("aal5", 4 * 1024, 256, 1200),
    ("sscop", 8 * 1024, 512, 2000),
    ("q93b-codec", 10 * 1024, 512, 2600),
    ("call-control", 8 * 1024, 1024, 2200),
];

/// Encoded size of a SETUP used by the load generator (~100 bytes).
pub const SETUP_BYTES: u32 = 108;
/// Encoded size of a RELEASE.
pub const RELEASE_BYTES: u32 = 44;

/// Builds the signalling stack on `cfg` with seeded random placement.
pub fn signaling_stack(cfg: MachineConfig, seed: u64) -> (Machine, Vec<Box<dyn SimLayer>>) {
    let line = cfg.icache.line_size;
    let window = Region::new(0x0010_0000, 4 << 20);
    let data_window = Region::new(0x0800_0000, 1 << 20);
    let mut code_place = cachesim::RandomPlacement::new(seed, window, line);
    let mut data_place = cachesim::RandomPlacement::new(seed ^ 0x5196, data_window, line);
    let layers = SIGNALING_LAYERS
        .iter()
        .map(|&(name, code, data, cycles)| {
            let code_region = code_place.place(((code as f64) * cfg.code_density) as u64);
            let data_region = data_place.place(data);
            Box::new(
                SyntheticLayer::new(name, code_region, data_region, line)
                    .with_cycles(cycles, 0.5),
            ) as Box<dyn SimLayer>
        })
        .collect();
    (Machine::new(cfg), layers)
}

/// A 1996 "commodity workstation processor" for the goal experiment: a
/// 500 MHz Alpha-21164-class part with the same 8 KB primary caches and a
/// 30-cycle primary-miss penalty (faster clocks widen the CPU/memory
/// gap — cf. Rosenblum's prediction quoted in Section 1.2).
pub fn goal_machine() -> MachineConfig {
    MachineConfig {
        read_miss_penalty: 30,
        clock_mhz: 500.0,
        ..MachineConfig::synthetic_benchmark()
    }
}

/// Generates paired setup/teardown load: `pairs_per_s` Poisson call
/// attempts per second, each contributing a SETUP and, a mean hold time
/// later, a RELEASE. Returns a time-sorted arrival list.
pub fn call_arrivals(pairs_per_s: f64, hold_s: f64, duration_s: f64, seed: u64) -> Vec<Arrival> {
    let mut setups = PoissonSource::new(pairs_per_s, SETUP_BYTES, seed);
    let mut out = Vec::new();
    for s in setups.take_until(duration_s) {
        out.push(s);
        let release_t = s.time_s + hold_s;
        if release_t < duration_s {
            out.push(Arrival {
                time_s: release_t,
                bytes: RELEASE_BYTES,
            });
        }
    }
    out.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use simnet::{run_sim, SimConfig};

    #[test]
    fn stack_shape() {
        let (m, layers) = signaling_stack(goal_machine(), 1);
        assert_eq!(layers.len(), 4);
        let code: u64 = layers.iter().map(|l| l.code_lines().len() as u64 * 32).sum();
        assert!(code > 28 * 1024, "stack code ~30 KB, got {code}");
        assert_eq!(m.config().clock_mhz, 500.0);
    }

    #[test]
    fn arrivals_are_paired_and_sorted() {
        let a = call_arrivals(1000.0, 0.05, 1.0, 3);
        assert!(a.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        let setups = a.iter().filter(|x| x.bytes == SETUP_BYTES).count();
        let releases = a.iter().filter(|x| x.bytes == RELEASE_BYTES).count();
        assert!(setups >= releases);
        assert!(setups - releases < 100, "only tail setups lack releases");
    }

    /// A scaled-down version of experiment G1: at 10k pairs/s (20k
    /// messages/s), LDLP meets the paper's goal and conventional
    /// scheduling does not.
    #[test]
    fn goal_experiment_smoke() {
        let arrivals = call_arrivals(10_000.0, 0.02, 0.25, 7);
        let cfg = SimConfig {
            duration_s: 0.25,
            ..SimConfig::default()
        };
        let (m, layers) = signaling_stack(goal_machine(), 5);
        let mut ldlp = StackEngine::new(m, layers, Discipline::Ldlp(BatchPolicy::DCacheFit));
        let rl = run_sim(&mut ldlp, &arrivals, &cfg);

        let (m, layers) = signaling_stack(goal_machine(), 5);
        let mut conv = StackEngine::new(m, layers, Discipline::Conventional);
        let rc = run_sim(&mut conv, &arrivals, &cfg);

        assert_eq!(rl.drops, 0, "LDLP must sustain 20k msgs/s");
        assert!(
            rl.p99_latency_us < 1000.0,
            "LDLP p99 {} us should be well-behaved",
            rl.p99_latency_us
        );
        // Amortized processing cost per message (excluding queueing)
        // meets the paper's 100 us goal.
        let clock = goal_machine().clock_mhz;
        let instr: u64 = SIGNALING_LAYERS.iter().map(|l| l.3).sum();
        let processing_us =
            (instr as f64 + rl.mean_imiss * goal_machine().read_miss_penalty as f64) / clock;
        assert!(
            processing_us < 100.0,
            "amortized processing {processing_us} us misses the goal"
        );
        assert!(
            rl.mean_latency_us < rc.mean_latency_us / 10.0,
            "LDLP {} vs conventional {}",
            rl.mean_latency_us,
            rc.mean_latency_us
        );
        assert!(rc.drops > 0, "conventional should shed load at 20k msgs/s");
    }
}
