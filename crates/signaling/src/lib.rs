//! # signaling — a Q.93B-shaped ATM signalling protocol
//!
//! The paper's motivation (Section 1) is signalling performance: "Our
//! performance goal is to support 10000 pairs of setup/teardown requests
//! per second with processing latency of 100 microseconds for setup
//! requests, using just a commodity workstation processor." This crate
//! provides that workload:
//!
//! * [`wire`] — a Q.93B-flavoured message codec: protocol discriminator,
//!   call reference, message type, and TLV information elements (called/
//!   calling party, traffic descriptor, connection identifier/VPI-VCI,
//!   cause). Small messages — a SETUP is ~100 bytes, exactly the regime
//!   the paper targets.
//! * [`call`] — call-control state machines: a network-side
//!   [`call::SignalingSwitch`] that admits calls, allocates VPI/VCI pairs,
//!   and tears them down; and a user-side [`call::Caller`].
//! * [`workload`] — the performance experiment: the signalling protocol
//!   as a four-layer stack (AAL5/SSCOP/Q.93B codec/call control) with
//!   realistic code footprints, and arrival generators for paired
//!   setup/release load (experiment G1 in DESIGN.md).
//! * [`recovery`] — loss recovery: per-call retransmit timers with
//!   exponential backoff, and the max-retry RELEASE path that tears down
//!   calls whose SETUP never got through — so the goal experiment can be
//!   rerun across a lossy channel.

pub mod call;
pub mod dns;
pub mod recovery;
pub mod rpc;
pub mod wire;
pub mod workload;

pub use call::{Caller, CallState, SignalingSwitch};
pub use recovery::{
    lossy_call_arrivals, LossyCallConfig, RecoveryStats, RetransmitTimer, RetryPolicy,
};
pub use wire::{Cause, InfoElement, Message, MessageType};
