//! Zero-allocation assertion for the multi-core run loop: after
//! warm-up, `SmpSim::run` must process a whole arrival stream —
//! steering, batching, shared-L2 charging, hand-offs, metrics
//! recording — without touching the heap. The allocating report
//! assembly is deliberately split into `SmpSim::outcome`, which runs
//! outside the measured window.
//!
//! A counting global allocator (this test binary only) measures exact
//! allocation counts around the steady-state loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ldlp::{BatchPolicy, Discipline};
use simnet::traffic::{PoissonSource, TrafficSource};
use smp::{tag_flows, DispatchPolicy, FlowArrival, SmpConfig, SmpSim};

struct CountingAlloc;

// Per-thread count, so a measurement window only sees its own test's
// allocations — the harness runs tests (and its own bookkeeping) on
// concurrent threads. `Cell<u64>` has no destructor and const init, so
// the allocator never recurses or touches torn-down TLS.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: pure pass-through to the System allocator; the only extra
// work is bumping a no-destructor, const-initialised thread-local
// counter, which never allocates, never unwinds, and never re-enters
// the allocator — so System's layout/aliasing contracts are preserved
// verbatim.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to System.alloc with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    // SAFETY: delegates to System.dealloc; `ptr`/`layout` obligations
    // pass straight through from the caller.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to System.realloc; `ptr`/`layout`/`new_size`
    // obligations pass straight through from the caller.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn steady_state_allocs(dispatch: DispatchPolicy, metrics: bool) -> u64 {
    let duration_s = 0.02;
    let cfg = SmpConfig {
        duration_s,
        ..SmpConfig::new(4, dispatch, Discipline::Ldlp(BatchPolicy::DCacheFit))
    };
    let raw = PoissonSource::new(4000.0, 552, 7).take_until(duration_s);
    let arrivals: Vec<FlowArrival> = tag_flows(&raw, 32, 7);

    let mut sim = SmpSim::new(&cfg);
    if metrics {
        // Interning happens here, outside the measurement window; the
        // per-batch fold must then be allocation-free.
        sim.set_sinks(false);
    }

    // Warm up: grow the sample vectors, scratch buffers, replay memo
    // tables, steering map, and the coherence directory to their fixed
    // points. The data-sweep memo keys on D-cache + DTLB state, so under
    // flow-hash steering its state graph takes ~75 runs to close; 150
    // leaves margin.
    for _ in 0..150 {
        sim.run(&arrivals);
    }

    let before = ALLOCS.with(|c| c.get());
    for _ in 0..100 {
        sim.run(&arrivals);
    }
    ALLOCS.with(|c| c.get()) - before
}

#[test]
fn flow_hash_run_loop_does_not_allocate() {
    assert_eq!(
        steady_state_allocs(DispatchPolicy::FlowHash, false),
        0,
        "steady-state multi-core runs must reuse preallocated state"
    );
}

#[test]
fn round_robin_run_loop_does_not_allocate() {
    assert_eq!(
        steady_state_allocs(DispatchPolicy::RoundRobin, false),
        0,
        "steady-state multi-core runs must reuse preallocated state"
    );
}

#[test]
fn layer_affinity_run_loop_does_not_allocate() {
    assert_eq!(
        steady_state_allocs(DispatchPolicy::LayerAffinity, false),
        0,
        "pipelined hand-offs must reuse preallocated queues"
    );
}

#[test]
fn metrics_sink_run_loop_does_not_allocate() {
    // Metrics mode (no span collection) folds every per-core event into
    // preallocated accumulators: observing must not add heap traffic.
    assert_eq!(
        steady_state_allocs(DispatchPolicy::LayerAffinity, true),
        0,
        "metrics-mode observation must not allocate per batch"
    );
}
