//! Property tests for flow steering and the multi-core conservation
//! law.
//!
//! * Flow affinity: every packet of a flow lands on the same core under
//!   *any* dispatch policy — the invariant per-flow protocol state
//!   depends on.
//! * Seed stability: flow synthesis, tagging, and steering are pure
//!   functions of their seeds; same inputs, same dispatch, always.
//! * Load balance: for uniformly-drawn flows, no core is starved and no
//!   core is severely overloaded (round-robin is exactly balanced over
//!   flows; RSS hashing is statistically balanced).
//! * Conservation: `offered == completed + rejected + drops + shed`
//!   holds across cores and hand-off queues under arbitrary
//!   duplication + corruption impairments, for every dispatch policy.

use proptest::prelude::*;
use smp::{
    run_smp_impaired, tag_flows, tag_impaired, DispatchPolicy, FlowKey, HandoffFlowControl,
    SmpConfig, SmpSim, Steerer,
};

use ldlp::{AdmissionPolicy, BatchPolicy, Discipline};
use simnet::closed::ClosedPopulation;
use simnet::impair::{impair_arrivals, ImpairConfig};
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::ClosedConfig;

fn policies() -> [DispatchPolicy; 3] {
    [
        DispatchPolicy::FlowHash,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LayerAffinity,
    ]
}

proptest! {
    /// Same flow → same core, no matter the policy, the order flows
    /// first appear, or how often each is asked about.
    #[test]
    fn steering_is_flow_affine(
        cores in 1usize..9,
        flows in 1u32..64,
        seed in 1u64..1000,
        queries in proptest::collection::vec(0u32..64, 1..200),
    ) {
        for policy in policies() {
            let mut steer = Steerer::new(policy, cores);
            let mut first: Vec<Option<usize>> = vec![None; flows as usize];
            for &q in &queries {
                let flow = q % flows;
                let key = FlowKey::synth(flow, seed);
                let core = steer.core_for(&key);
                prop_assert!(core < cores, "core {core} out of range");
                match first[flow as usize] {
                    None => first[flow as usize] = Some(core),
                    Some(prev) => prop_assert_eq!(
                        prev, core,
                        "flow {} moved cores under {:?}", flow, policy
                    ),
                }
            }
        }
    }

    /// Steering is a pure function of (seed, policy, arrival order):
    /// re-running the whole synthesis + dispatch pipeline reproduces
    /// the exact core sequence.
    #[test]
    fn steering_is_seed_stable(
        cores in 1usize..9,
        flows in 1u32..64,
        seed in 1u64..1000,
        rate in 500u32..4000,
    ) {
        let arrivals = PoissonSource::new(rate as f64, 552, seed).take_until(0.05);
        let tagged_a = tag_flows(&arrivals, flows, seed);
        let tagged_b = tag_flows(&arrivals, flows, seed);
        prop_assert_eq!(&tagged_a, &tagged_b, "tagging must be deterministic");
        for policy in policies() {
            let mut sa = Steerer::new(policy, cores);
            let mut sb = Steerer::new(policy, cores);
            for (a, b) in tagged_a.iter().zip(&tagged_b) {
                prop_assert_eq!(sa.core_for(&a.key), sb.core_for(&b.key));
            }
        }
    }

    /// Uniform flows spread evenly: round-robin assigns flows to cores
    /// exactly evenly (spread ≤ 1), and RSS hashing keeps every core
    /// within a constant factor of the mean when there are enough flows
    /// to average over.
    #[test]
    fn uniform_flows_are_balance_bounded(
        cores in 2usize..9,
        seed in 1u64..1000,
    ) {
        let flows: u32 = 64 * cores as u32;
        let mut rr = Steerer::new(DispatchPolicy::RoundRobin, cores);
        let mut hash = Steerer::new(DispatchPolicy::FlowHash, cores);
        let mut rr_counts = vec![0u32; cores];
        let mut hash_counts = vec![0u32; cores];
        for flow in 0..flows {
            let key = FlowKey::synth(flow, seed);
            rr_counts[rr.core_for(&key)] += 1;
            hash_counts[hash.core_for(&key)] += 1;
        }
        let rr_min = *rr_counts.iter().min().unwrap_or(&0);
        let rr_max = *rr_counts.iter().max().unwrap_or(&0);
        prop_assert!(rr_max - rr_min <= 1, "round-robin flow spread {rr_counts:?}");

        let mean = flows as f64 / cores as f64;
        for (core, &n) in hash_counts.iter().enumerate() {
            prop_assert!(
                (n as f64) < 3.0 * mean,
                "hash overloads core {core}: {n} of {flows} flows ({hash_counts:?})"
            );
            prop_assert!(n > 0, "hash starves core {core} ({hash_counts:?})");
        }
    }

    /// The cross-core conservation law under an impairment channel:
    /// duplicated deliveries are fresh offered messages, corrupted ones
    /// are rejected at the verify stage, and nothing vanishes in a
    /// hand-off queue — for every dispatch policy and discipline.
    #[test]
    fn conservation_holds_across_cores_under_impairments(
        cores in 1usize..9,
        dup_pct in 0u32..40,
        corrupt_pct in 0u32..40,
        rate in 1000u32..8000,
        seed in 1u64..64,
        ldlp in any::<bool>(),
        policy_idx in 0usize..3,
    ) {
        let duration_s = 0.02;
        let arrivals = PoissonSource::new(rate as f64, 552, seed).take_until(duration_s);
        let (deliveries, counters) = impair_arrivals(
            &arrivals,
            ImpairConfig {
                dup_prob: dup_pct as f64 / 100.0,
                corrupt_prob: corrupt_pct as f64 / 100.0,
                seed: seed ^ 0xc0de,
                ..ImpairConfig::default()
            },
        );
        let tagged = tag_impaired(&deliveries, 32, seed);
        let discipline = if ldlp {
            Discipline::Ldlp(BatchPolicy::DCacheFit)
        } else {
            Discipline::Conventional
        };
        let cfg = SmpConfig {
            duration_s,
            placement_seed: seed,
            ..SmpConfig::new(cores, policies()[policy_idx], discipline)
        };
        let out = run_smp_impaired(&cfg, &tagged, counters);
        let r = &out.report;
        prop_assert!(r.conservation_holds(), "conservation violated: {r:?}");
        prop_assert_eq!(r.offered, tagged.len() as u64, "every delivery is offered");
        prop_assert_eq!(
            r.offered,
            r.completed + r.rejected + r.drops + r.shed,
            "a drained run leaves nothing in flight"
        );
        prop_assert_eq!(r.net_duplicated, counters.duplicated);
        prop_assert_eq!(r.net_corrupted, counters.corrupted);
        if corrupt_pct == 0 {
            prop_assert_eq!(r.rejected, 0, "clean runs reject nothing");
        }
        // The per-core tallies must agree with the aggregate report.
        let per_core: u64 = out.per_core.iter().map(|c| c.completed).sum();
        prop_assert_eq!(per_core, r.completed, "per-core completions disagree");
    }

    /// The conservation law for the *closed-loop* source: with retrying
    /// clients feeding back on completions, an arbitrary
    /// duplication + corruption channel, any admission policy
    /// (including weighted-fair with arbitrary weights), either
    /// hand-off flow-control mode, and any retry budget, a drained run
    /// splits `offered` exactly into
    /// `completed + rejected + drops + shed + abandoned` — duplicate
    /// copies the server finishes after the client was acknowledged
    /// land in `abandoned`, never vanish.
    #[test]
    fn closed_loop_conservation_holds_under_impairments(
        cores in 1usize..9,
        clients in 3u32..60,
        dup_pct in 0u32..40,
        corrupt_pct in 0u32..40,
        seed in 1u64..64,
        ldlp in any::<bool>(),
        policy_idx in 0usize..3,
        admission_idx in 0usize..4,
        budget_on in any::<bool>(),
        stall in any::<bool>(),
    ) {
        // Derived, not drawn: the vendored proptest samples tuples of at
        // most ten strategies. Spans 1..=7 per class across seeds.
        let weights = [
            1 + (seed % 7) as u32,
            1 + ((seed / 7) % 7) as u32,
            1 + ((seed / 49) % 7) as u32,
        ];
        let duration_s = 0.02;
        let mut pc = ClosedConfig::new(clients, 0.002, duration_s, seed);
        pc.retry_budget_on = budget_on;
        pc.channel = ImpairConfig {
            dup_prob: dup_pct as f64 / 100.0,
            corrupt_prob: corrupt_pct as f64 / 100.0,
            seed: seed ^ 0xc0de,
            ..ImpairConfig::default()
        };
        let mut pop = ClosedPopulation::new(&pc);
        let discipline = if ldlp {
            Discipline::Ldlp(BatchPolicy::DCacheFit)
        } else {
            Discipline::Conventional
        };
        let admissions = [
            AdmissionPolicy::TailDrop,
            AdmissionPolicy::HeadDrop,
            AdmissionPolicy::ShedOldest { down_to: 4 },
            AdmissionPolicy::WeightedFair,
        ];
        let cfg = SmpConfig {
            duration_s,
            placement_seed: seed,
            admission: admissions[admission_idx],
            buffer_cap: 64,
            handoff_cap: 4,
            flow_control: if stall {
                HandoffFlowControl::StallProducer
            } else {
                HandoffFlowControl::SizeToFree
            },
            ..SmpConfig::new(cores, policies()[policy_idx], discipline)
        };
        let mut sim = SmpSim::new(&cfg);
        // `run_closed` asserts the full transient-bucket conservation
        // law (queued + parked + unacked) at every drain internally.
        sim.run_closed(&mut pop, weights);
        let out = sim.outcome(pop.channel_counters());
        let r = &out.report;
        let st = pop.stats();
        prop_assert!(r.conservation_holds(), "conservation violated: {r:?}");
        prop_assert_eq!(r.offered, st.offered, "every delivered copy is offered");
        prop_assert_eq!(
            r.offered,
            r.completed + r.rejected + r.drops + r.shed + r.abandoned,
            "a drained closed-loop run leaves nothing in flight"
        );
        prop_assert_eq!(r.completed, st.useful, "completions are exactly useful acks");
        prop_assert!(st.useful <= st.requests, "acks never exceed requests");
        prop_assert_eq!(r.net_duplicated, pop.channel_counters().duplicated);
        prop_assert_eq!(r.net_corrupted, pop.channel_counters().corrupted);
        if corrupt_pct == 0 {
            prop_assert_eq!(r.rejected, 0, "clean runs reject nothing");
        }
        if budget_on {
            prop_assert!(
                st.useful + st.abandoned_requests <= st.requests,
                "every request is acknowledged or abandoned at most once"
            );
        }
        // Per-class accounting covers every shed/dropped packet.
        let by_class: u64 = out.shed_by_class.iter().chain(&out.drops_by_class).sum();
        prop_assert_eq!(by_class, r.shed + r.drops, "per-class loss tallies disagree");
    }
}
