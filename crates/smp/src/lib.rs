//! Simulated multi-core protocol processing: flow steering, a shared
//! L2 with coherence costs, and cross-core LDLP batching.
//!
//! The paper ("Speeding up Protocols for Small Messages") measures a
//! single CPU whose I-cache thrashes when five protocol layers each
//! touch ~6 KB of code per message. Multi-core packet processing gives
//! the same phenomenon a second axis: *which core* runs *which part* of
//! the stack decides what each private I-cache holds, and shared
//! mutable protocol state adds coherence traffic that no private cache
//! can hide. This crate composes the existing single-core machinery —
//! [`cachesim`] machines, [`ldlp`] stack engines, [`simnet`] traffic —
//! into an N-core model that asks the paper's question at SMP scale:
//!
//! * [`steer`] — deterministic flow synthesis and the three dispatch
//!   policies: RSS-style 5-tuple hashing, first-seen round-robin, and
//!   LDLP-aware layer affinity (software pipelining across cores).
//! * [`sim`] — the deterministic event loop: per-core engines over a
//!   [`cachesim::SharedL2`] coherence fabric, bounded
//!   structure-of-arrays descriptor rings between pipeline stages
//!   (`ring`), and a cross-core conservation law asserted on every
//!   run.
//!
//! The headline experiment is `figure9` in `crates/bench`: arrival rate
//! × core count × dispatch policy, Conventional vs. LDLP, reporting
//! I-misses per message and latency percentiles per cell.

#![forbid(unsafe_code)]

mod ring;
pub mod sim;
pub mod steer;

pub use sim::{
    run_smp, run_smp_impaired, CoreReport, HandoffFlowControl, SmpConfig, SmpOutcome, SmpSim,
    WClassProfile, MAX_WCLASS,
};
pub use steer::{tag_flows, tag_impaired, DispatchPolicy, FlowArrival, FlowKey, Steerer};
