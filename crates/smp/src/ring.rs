//! Structure-of-arrays descriptor ring for inter-core hand-offs.
//!
//! The pipeline stages used to park whole `Pending` structs (a
//! [`SimMessage`] plus per-message accounting) in a
//! [`simnet::Handoff`]'s `VecDeque`. Every scheduler pass scans the
//! queue front for takeable work, and with array-of-structs layout each
//! probed element drags a full 48-byte descriptor through the L1 even
//! though the scan only reads the ready time and the buffer length.
//!
//! [`DescRing`] keeps the same bounded-FIFO semantics (non-decreasing
//! ready times, refuse-when-full, producer/consumer sequence numbers)
//! but stores each descriptor field in its own fixed-capacity column:
//! headers (message id, buffer base/len, corruption flag), owners
//! (flow id), and timestamps (ready cycle, arrival cycle) live in
//! parallel arrays indexed by ring slot. The hot candidate scan in
//! `SmpSim::run_batch` then touches exactly two columns, and all
//! storage is allocated once at construction — the steady-state run
//! loop stays allocation-free (pinned by `tests/alloc.rs`).

use cachesim::Region;
use ldlp::SimMessage;

/// One popped descriptor, rebuilt from the columns. A transient bundle
/// for the caller's convenience — storage never holds this shape.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Desc {
    pub msg: SimMessage,
    pub arr: u64,
    pub flow_id: u32,
    pub wclass: u8,
    pub imiss: u64,
    pub dmiss: u64,
}

/// Bounded SoA ring of hand-off descriptors with per-item visibility
/// times. Mirrors the [`simnet::Handoff`] contract: FIFO order,
/// non-decreasing ready times, `push` refuses (rather than drops) when
/// full, and `pushed`/`popped` are the producer/consumer descriptor
/// sequence numbers (`pushed % cap` is the ring slot the next push
/// writes, which is what prices the descriptor-window fabric traffic).
#[derive(Debug, Clone)]
pub(crate) struct DescRing {
    cap: usize,
    head: usize,
    len: usize,
    pushed: u64,
    popped: u64,
    // Timestamp columns.
    ready: Box<[u64]>,
    arr: Box<[u64]>,
    // Header columns (the message, decomposed).
    id: Box<[u64]>,
    buf_base: Box<[u64]>,
    buf_len: Box<[u64]>,
    corrupted: Box<[bool]>,
    // Owner + accumulated-cost columns.
    flow: Box<[u32]>,
    wclass: Box<[u8]>,
    imiss: Box<[u64]>,
    dmiss: Box<[u64]>,
}

impl DescRing {
    /// An empty ring holding at most `cap` descriptors. `cap` must be
    /// positive; all columns are allocated here, never after.
    pub fn new(cap: usize) -> DescRing {
        assert!(cap > 0, "descriptor ring capacity must be positive");
        DescRing {
            cap,
            head: 0,
            len: 0,
            pushed: 0,
            popped: 0,
            ready: vec![0; cap].into_boxed_slice(),
            arr: vec![0; cap].into_boxed_slice(),
            id: vec![0; cap].into_boxed_slice(),
            buf_base: vec![0; cap].into_boxed_slice(),
            buf_len: vec![0; cap].into_boxed_slice(),
            corrupted: vec![false; cap].into_boxed_slice(),
            flow: vec![0; cap].into_boxed_slice(),
            wclass: vec![0; cap].into_boxed_slice(),
            imiss: vec![0; cap].into_boxed_slice(),
            dmiss: vec![0; cap].into_boxed_slice(),
        }
    }

    /// Descriptors currently parked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining slots before the ring is full.
    pub fn free(&self) -> usize {
        self.cap - self.len
    }

    /// Total descriptors ever pushed (producer sequence number).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total descriptors ever popped (consumer sequence number).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Ring slot of logical position `i` (0 = front).
    fn slot(&self, i: usize) -> usize {
        let idx = self.head + i;
        if idx >= self.cap {
            idx - self.cap
        } else {
            idx
        }
    }

    /// The cycle at which the front descriptor becomes visible, if any.
    pub fn next_ready(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.ready.get(self.head).copied()
    }

    /// Candidate scan for batch sizing: how many descriptors (from the
    /// front) are visible at cycle `now`, and the largest buffer length
    /// among them. Ready times are non-decreasing, so the scan stops at
    /// the first in-flight descriptor — and touches only the timestamp
    /// and buffer-length columns, which is the point of the layout.
    pub fn takeable(&self, now: u64) -> (usize, u64) {
        let mut n = 0usize;
        let mut max = 0u64;
        while n < self.len {
            let s = self.slot(n);
            let Some(&ready) = self.ready.get(s) else {
                break;
            };
            if ready > now {
                break;
            }
            max = max.max(self.buf_len.get(s).copied().unwrap_or(0));
            n += 1;
        }
        (n, max)
    }

    /// Parks a descriptor, visible downstream from cycle `ready`.
    /// Returns `false` (writing nothing) when the ring is full; callers
    /// size batches by [`DescRing::free`] first.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        ready: u64,
        msg: &SimMessage,
        arr: u64,
        flow_id: u32,
        wclass: u8,
        imiss: u64,
        dmiss: u64,
    ) -> bool {
        if self.len == self.cap {
            return false;
        }
        if self.len > 0 {
            let back = self.slot(self.len - 1);
            debug_assert!(
                self.ready.get(back).is_none_or(|&r| r <= ready),
                "descriptor ready times must be non-decreasing"
            );
        }
        let s = self.slot(self.len);
        if let (
            Some(rdy),
            Some(a),
            Some(id),
            Some(base),
            Some(blen),
            Some(cor),
            Some(fl),
            Some(wc),
            Some(im),
            Some(dm),
        ) = (
            self.ready.get_mut(s),
            self.arr.get_mut(s),
            self.id.get_mut(s),
            self.buf_base.get_mut(s),
            self.buf_len.get_mut(s),
            self.corrupted.get_mut(s),
            self.flow.get_mut(s),
            self.wclass.get_mut(s),
            self.imiss.get_mut(s),
            self.dmiss.get_mut(s),
        ) {
            *rdy = ready;
            *a = arr;
            *id = msg.id;
            *base = msg.buf.base;
            *blen = msg.buf.len;
            *cor = msg.corrupted;
            *fl = flow_id;
            *wc = wclass;
            *im = imiss;
            *dm = dmiss;
        }
        self.len += 1;
        self.pushed += 1;
        true
    }

    /// Pops the front descriptor if it is visible at cycle `now`.
    pub fn pop(&mut self, now: u64) -> Option<Desc> {
        if self.len == 0 {
            return None;
        }
        let s = self.head;
        let ready = self.ready.get(s).copied()?;
        if ready > now {
            return None;
        }
        let arr = self.arr.get(s).copied()?;
        let desc = Desc {
            msg: SimMessage {
                id: self.id.get(s).copied()?,
                arrival_cycles: arr,
                buf: Region::new(self.buf_base.get(s).copied()?, self.buf_len.get(s).copied()?),
                corrupted: self.corrupted.get(s).copied()?,
            },
            arr,
            flow_id: self.flow.get(s).copied()?,
            wclass: self.wclass.get(s).copied()?,
            imiss: self.imiss.get(s).copied()?,
            dmiss: self.dmiss.get(s).copied()?,
        };
        self.head = self.slot(1);
        self.len -= 1;
        self.popped += 1;
        Some(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, base: u64, len: u64, corrupted: bool) -> SimMessage {
        SimMessage {
            id,
            arrival_cycles: 0,
            buf: Region::new(base, len),
            corrupted,
        }
    }

    #[test]
    fn fifo_with_ready_times() {
        let mut q = DescRing::new(4);
        assert!(q.is_empty());
        assert!(q.push(10, &msg(1, 0x100, 552, false), 5, 7, 2, 2, 3));
        assert!(q.push(10, &msg(2, 0x200, 40, true), 6, 8, 0, 0, 0));
        assert!(q.push(25, &msg(3, 0x300, 1500, false), 7, 9, 1, 1, 1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_ready(), Some(10));
        assert_eq!(q.takeable(9), (0, 0));
        assert_eq!(q.takeable(10), (2, 552));
        assert_eq!(q.takeable(30), (3, 1500));
        assert!(q.pop(9).is_none(), "not visible yet");
        let a = q.pop(10).unwrap();
        assert_eq!((a.msg.id, a.arr, a.flow_id, a.imiss, a.dmiss), (1, 5, 7, 2, 3));
        assert_eq!(a.wclass, 2, "class tag survives the hand-off");
        assert_eq!((a.msg.buf.base, a.msg.buf.len), (0x100, 552));
        assert_eq!(a.msg.arrival_cycles, 5, "arrival rides the arr column");
        let b = q.pop(10).unwrap();
        assert!(b.msg.corrupted, "corruption flag survives the hand-off");
        assert!(q.pop(10).is_none(), "third descriptor still in flight");
        assert_eq!(q.pop(25).map(|d| d.msg.id), Some(3));
        assert_eq!((q.pushed(), q.popped()), (3, 3));
    }

    #[test]
    fn boundedness_refuses_when_full() {
        let mut q = DescRing::new(2);
        let m = msg(1, 0, 64, false);
        assert!(q.push(1, &m, 1, 0, 0, 0, 0));
        assert!(q.push(1, &m, 1, 0, 0, 0, 0));
        assert_eq!(q.free(), 0);
        assert!(!q.push(1, &m, 1, 0, 0, 0, 0), "full ring must refuse");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed(), 2, "refused push must not bump the sequence");
    }

    #[test]
    fn slots_wrap_and_sequence_numbers_advance() {
        let mut q = DescRing::new(3);
        for round in 0..10u64 {
            assert!(q.push(round, &msg(round, round * 64, 64, false), round, 0, 0, 0, 0));
            let d = q.pop(round).unwrap();
            assert_eq!(d.msg.id, round);
            assert_eq!(d.msg.buf.base, round * 64);
        }
        assert_eq!((q.pushed(), q.popped()), (10, 10));
        assert!(q.is_empty());
    }
}
