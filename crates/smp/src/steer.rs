//! Flow identity and packet-to-core dispatch.
//!
//! The paper's traffic model ([`simnet::traffic`]) knows arrival times
//! and sizes but not *flows*; a multi-core NIC steers by flow, so this
//! module synthesizes a deterministic flow population and three
//! dispatch policies:
//!
//! * **FlowHash** — RSS: a deterministic hash of the 5-tuple picks the
//!   core. Every packet of a flow lands on the same core, so per-flow
//!   protocol state stays core-local (RDCA's "steer into the right
//!   cache" premise).
//! * **RoundRobin** — naive parallelism: flows are assigned to cores in
//!   first-seen order. Still flow-affine (per-*packet* round-robin would
//!   break protocol state locality entirely), but blind to what each
//!   core's caches hold: every core ends up running the whole ~30 KB
//!   stack.
//! * **LayerAffinity** — LDLP-aware software pipelining: every packet
//!   enters at stage 0 and the *stack* is partitioned across cores
//!   (see [`ldlp::stage_partition`]), so each core's I-cache stays hot
//!   on its one-or-two layers while batches flow through bounded
//!   hand-off queues.
//!
//! Everything here is pure arithmetic on seeds: steering is
//! deterministic and seed-stable by construction (pinned by the
//! property tests in `tests/properties.rs`).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simnet::{Arrival, ImpairedArrival};
use std::collections::BTreeMap;

/// How arrivals are dispatched to cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// RSS-style deterministic 5-tuple hash.
    FlowHash,
    /// Flows assigned to cores in first-seen order.
    RoundRobin,
    /// All packets enter stage 0; layers are pinned to cores.
    LayerAffinity,
}

impl DispatchPolicy {
    /// Short CSV-friendly label.
    pub fn label(&self) -> &'static str {
        match self {
            DispatchPolicy::FlowHash => "hash",
            DispatchPolicy::RoundRobin => "rr",
            DispatchPolicy::LayerAffinity => "aff",
        }
    }
}

/// A connection 5-tuple in the simulated address plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol number.
    pub proto: u8,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FlowKey {
    /// Deterministically synthesizes the 5-tuple of flow `flow_id` in
    /// the population seeded by `seed`. Same inputs, same tuple —
    /// always.
    pub fn synth(flow_id: u32, seed: u64) -> FlowKey {
        let bits = splitmix(seed ^ ((flow_id as u64) << 20) ^ 0x5f10_77ab);
        FlowKey {
            src_ip: 0x0a00_0000 | (bits as u32 & 0x00ff_ffff),
            dst_ip: 0x0a80_0000 | ((bits >> 24) as u32 & 0x00ff_ffff),
            src_port: 1024 + ((bits >> 48) as u16 % 50_000),
            dst_port: 9,
            proto: 6,
        }
    }

    /// RSS hash over the 5-tuple: FNV-1a over the 13 tuple bytes. Not
    /// Toeplitz, but the property RSS needs — deterministic and well
    /// mixed — holds.
    pub fn rss_hash(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        let mut step = |b: u8| {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        };
        for b in self.src_ip.to_be_bytes() {
            step(b);
        }
        for b in self.dst_ip.to_be_bytes() {
            step(b);
        }
        for b in self.src_port.to_be_bytes() {
            step(b);
        }
        for b in self.dst_port.to_be_bytes() {
            step(b);
        }
        step(self.proto);
        h
    }
}

/// An arrival tagged with its flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowArrival {
    /// Arrival time in seconds.
    pub time_s: f64,
    /// Message size in bytes.
    pub bytes: u32,
    /// Damaged on the wire (rejected at the verify layer).
    pub corrupted: bool,
    /// Index of the flow within the synthesized population.
    pub flow_id: u32,
    /// The flow's 5-tuple.
    pub key: FlowKey,
    /// Workload message class (0 = untagged legacy traffic; nonzero
    /// indices are defined by `crates/workload`). Rides through the
    /// pipeline so per-class accounting can attribute completions.
    pub wclass: u8,
}

/// Tags each arrival with a flow drawn uniformly from a population of
/// `flows` synthesized flows. Deterministic per `seed`.
pub fn tag_flows(arrivals: &[Arrival], flows: u32, seed: u64) -> Vec<FlowArrival> {
    let clean: Vec<ImpairedArrival> = arrivals.iter().copied().map(Into::into).collect();
    tag_impaired(&clean, flows, seed)
}

/// [`tag_flows`] for a stream that already went through an impairment
/// channel (duplicates share their original's flow only by chance; each
/// delivery draws independently, which keeps the draw budget fixed at
/// one per delivery).
pub fn tag_impaired(deliveries: &[ImpairedArrival], flows: u32, seed: u64) -> Vec<FlowArrival> {
    let flows = flows.max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00f7_0e15);
    deliveries
        .iter()
        .map(|d| {
            let flow_id = rng.random_range(0..flows);
            FlowArrival {
                time_s: d.time_s,
                bytes: d.bytes,
                corrupted: d.corrupted,
                flow_id,
                key: FlowKey::synth(flow_id, seed),
                wclass: 0,
            }
        })
        .collect()
}

/// Stateful packet-to-entry-core dispatcher.
#[derive(Debug, Clone)]
pub struct Steerer {
    policy: DispatchPolicy,
    cores: usize,
    assigned: BTreeMap<FlowKey, usize>,
    next_rr: usize,
}

impl Steerer {
    /// A dispatcher over `cores` cores (must be > 0).
    pub fn new(policy: DispatchPolicy, cores: usize) -> Self {
        assert!(cores > 0, "steering needs at least one core");
        Steerer {
            policy,
            cores,
            assigned: BTreeMap::new(),
            next_rr: 0,
        }
    }

    /// The entry core for a packet of `flow`. Pure for FlowHash and
    /// LayerAffinity; for RoundRobin the first packet of a flow claims
    /// the next core and the mapping is remembered.
    pub fn core_for(&mut self, flow: &FlowKey) -> usize {
        match self.policy {
            // analyze::allow(panic-path, reason = "cores >= 1 is asserted by SmpConfig construction")
            DispatchPolicy::FlowHash => flow.rss_hash() as usize % self.cores,
            DispatchPolicy::LayerAffinity => 0,
            DispatchPolicy::RoundRobin => {
                if let Some(&core) = self.assigned.get(flow) {
                    core
                } else {
                    // analyze::allow(panic-path, reason = "cores >= 1 is asserted by SmpConfig construction")
                    let core = self.next_rr % self.cores;
                    self.next_rr += 1;
                    // analyze::allow(alloc-path, reason = "per-flow steering entry inserted on first sight of a flow; bounded by the flow population")
                    self.assigned.insert(*flow, core);
                    core
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_deterministic_and_seed_sensitive() {
        let a = FlowKey::synth(7, 42);
        assert_eq!(a, FlowKey::synth(7, 42));
        assert_ne!(a, FlowKey::synth(7, 43));
        assert_ne!(a, FlowKey::synth(8, 42));
        assert_eq!(a.rss_hash(), FlowKey::synth(7, 42).rss_hash());
    }

    #[test]
    fn round_robin_is_flow_affine_and_balanced() {
        let mut s = Steerer::new(DispatchPolicy::RoundRobin, 4);
        let keys: Vec<FlowKey> = (0..8).map(|i| FlowKey::synth(i, 1)).collect();
        let first: Vec<usize> = keys.iter().map(|k| s.core_for(k)).collect();
        assert_eq!(first, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Re-asking in any order returns the remembered assignment.
        for (i, k) in keys.iter().enumerate().rev() {
            assert_eq!(s.core_for(k), first[i]);
        }
    }

    #[test]
    fn layer_affinity_enters_at_stage_zero() {
        let mut s = Steerer::new(DispatchPolicy::LayerAffinity, 8);
        for i in 0..32 {
            assert_eq!(s.core_for(&FlowKey::synth(i, 9)), 0);
        }
    }

    #[test]
    fn tagging_is_deterministic_and_in_population() {
        let arrivals: Vec<Arrival> = (0..100)
            .map(|i| Arrival {
                time_s: i as f64 * 1e-4,
                bytes: 552,
            })
            .collect();
        let a = tag_flows(&arrivals, 16, 5);
        let b = tag_flows(&arrivals, 16, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|f| f.flow_id < 16));
        // More than one flow actually shows up.
        let distinct: std::collections::BTreeSet<u32> = a.iter().map(|f| f.flow_id).collect();
        assert!(distinct.len() > 4);
    }
}
