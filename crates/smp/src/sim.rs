//! The multi-core run loop: N per-core LDLP engines over a shared L2,
//! driven by one deterministic event loop.
//!
//! Each core is a private, replay-eligible [`cachesim::Machine`] (split
//! L1 I/D, the paper's single-penalty miss path) inside its own
//! [`StackEngine`]. The cores are composed — not merged — with a
//! [`SharedL2`] fabric: mutable state that several cores touch (the
//! reassembly table, the signaling call table, and the descriptor rings
//! of inter-core hand-off queues) is accessed only through the fabric,
//! which charges L2 hits/misses plus coherence transfer/invalidation
//! costs back to the accessing core. Keeping the shared level outside
//! the private machines keeps each core eligible for the footprint
//! replay memoizer — the multi-core model loses none of the single-core
//! simulation speed.
//!
//! Dispatch modes (see [`crate::steer`]):
//! * **FlowHash** / **RoundRobin** — every core runs the full stack on
//!   the flows steered to it; the NIC buffer is split evenly across the
//!   per-core entry queues. Both shared tables are touched by every
//!   core, so table slots ping-pong through the coherence fabric.
//! * **LayerAffinity** — the stack is partitioned contiguously across
//!   cores ([`ldlp::stage_partition`]); all packets enter stage 0 and
//!   whole layer-batches move between stages through bounded
//!   structure-of-arrays descriptor rings ([`crate::ring::DescRing`]),
//!   paying descriptor-ring traffic through the fabric instead. Each
//!   shared table has a single owning stage, so after warm-up its
//!   lines never migrate.
//!
//! Boundedness gives backpressure, in one of two flavours
//! ([`HandoffFlowControl`]): the stock mode sizes every batch to the
//! downstream queue's free space, so overload backs up into the entry
//! queue where the admission policy decides who is dropped — never
//! silently mid-pipeline. The flow-controlled mode lets a producer run
//! full batches and *stall* when the downstream ring refuses a push:
//! the refused descriptors wait in a bounded held buffer (hand-offs are
//! never lost), the producer cannot start new work until they drain,
//! and the waited cycles are charged to the core and surfaced as
//! `bp_stall` observability spans.
//!
//! Besides the open-loop [`SmpSim::run`], the simulator can drive a
//! closed-loop client population ([`SmpSim::run_closed`]): completions
//! are fed back as acknowledgements, retransmit timers fire against the
//! server's actual response times, and completions whose client already
//! gave up (or was acknowledged by another copy) land in the
//! `abandoned` conservation bucket — work the machine did for nobody.
//!
//! Timekeeping mirrors [`simnet::sim`]: one global cycle clock; each
//! core's machine counter only advances while that core processes, and
//! `offset = start − machine_cycles_at_batch_start` converts
//! per-completion machine times to global times. The scheduler always
//! runs the core with the earliest possible batch start (ties broken by
//! lowest core index), and admissions happen strictly in arrival order
//! before any batch that would start later — fully deterministic,
//! thread-free simulation.
//!
//! Accounting extends the single-core conservation law across cores:
//! `offered == Σ completed + Σ rejected + Σ drops + Σ shed +
//! Σ entry-queued + Σ hand-off-parked`, asserted at the end of every
//! run (the last two terms are zero then, because a run drains).

use crate::ring::{Desc, DescRing};
use crate::steer::{DispatchPolicy, FlowArrival, FlowKey, Steerer};
use cachesim::{
    CoherenceStats, MachineConfig, MachineStats, Region, ReplayStats, SharedL2, SharedL2Config,
};
use ldlp::synth::{paper_stack, MessagePool};
use ldlp::{
    stage_partition, weighted_fair_admit, AdmissionPolicy, Completion, Discipline, SimMessage,
    StackEngine,
};
use obs::{NameId, SpanEvent};
use simnet::closed::{AckKind, Class, ClientSend, ClosedPopulation};
use simnet::stats::{ClassReport, ClassSamples, RunTally, SimReport};
use simnet::ImpairCounters;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Where the shared mutable state lives in the flat simulated address
/// space — disjoint from the code/data/mbuf windows `ldlp::synth` uses.
const REASS_TABLE_BASE: u64 = 0x3000_0000;
const CALL_TABLE_BASE: u64 = 0x3100_0000;
const DESC_WINDOW_BASE: u64 = 0x3200_0000;
/// One hand-off descriptor: a cache line's worth of message metadata.
const DESC_BYTES: u64 = 64;
/// Per-workload-class windows: each class's shared service table and
/// handler code image live in their own stride of these two regions,
/// disjoint from everything above and from the stack's code/data/mbuf
/// windows.
const WCLASS_TABLE_BASE: u64 = 0x3300_0000;
const WCLASS_CODE_BASE: u64 = 0x3400_0000;
/// Address-space stride between per-class windows; bounds each class's
/// table footprint (stride / slot bytes slots).
const WCLASS_STRIDE: u64 = 1 << 20;
/// One class-table slot: a cache line of per-flow session state.
const WCLASS_SLOT_BYTES: u64 = 64;
/// Footprint-replay ids for per-class handler code. The stack engine
/// claims `0..2 * layers` for its rx/tx layer sweeps; class handlers
/// start well above so the id spaces can never collide.
const WCLASS_FID_BASE: u32 = 64;

/// Workload classes the simulator can account, ids `0..MAX_WCLASS`
/// (class 0 is untagged legacy traffic). Class ids outside the range
/// fold back in via a mask, so this must stay a power of two.
pub const MAX_WCLASS: usize = 8;

/// Per-workload-class processing profile ([`SmpConfig::wclass`]). The
/// default (all zeros) disables the class entirely — no handler fetch,
/// no table traffic, no per-class accounting — so runs that never set a
/// profile are bit-identical to the class-blind simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WClassProfile {
    /// Handler code swept once per message of this class at the top of
    /// the stack (bytes; 0 = no handler). Distinct classes get distinct
    /// code windows, so a heterogeneous mix contends for the I-cache
    /// exactly the way DEC-TR-592 warns.
    pub handler_code_bytes: u32,
    /// Slots in the class's shared service table (session/subscription
    /// state), read-modify-written once per message by the top-of-stack
    /// core; 0 = no table. Capped to the class window
    /// (`WCLASS_STRIDE / WCLASS_SLOT_BYTES` slots).
    pub table_slots: u64,
    /// Latency objective for the class in microseconds (0 = none);
    /// [`SmpOutcome::classes`] reports attainment against it.
    pub slo_us: f64,
}

/// Layers in the paper stack driven by this simulation.
const STACK_LAYERS: usize = 5;

/// How a pipeline stage behaves when its downstream hand-off ring has
/// less free space than the batch it could otherwise run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffFlowControl {
    /// Size every batch to the downstream ring's free space (the
    /// original behaviour, and the default): a stage never produces a
    /// completion it cannot hand off, so pushes are guaranteed and the
    /// producer never waits.
    SizeToFree,
    /// Run full batches and flow-control the hand-off: descriptors the
    /// ring refuses wait in a bounded held buffer, the producer stalls
    /// (it starts no new batch until the buffer drains), and the stall
    /// is charged — `bp_stall_cycles` in the [`CoreReport`], a
    /// `bp_stall` span in the observability stream. Models a real
    /// producer that discovers ring occupancy at push time instead of
    /// sizing its work to a snapshot.
    StallProducer,
}

/// Simulation parameters for one multi-core run.
#[derive(Debug, Clone, Copy)]
pub struct SmpConfig {
    /// Number of cores (≥ 1). Under LayerAffinity at most one core per
    /// layer does useful work; extra cores idle (and report zeros).
    pub cores: usize,
    /// How packets are dispatched to cores.
    pub dispatch: DispatchPolicy,
    /// Per-core processing discipline (Conventional / LDLP / ILP).
    pub discipline: Discipline,
    /// Per-core machine (private split L1s; leave `l2` unset so the
    /// footprint-replay memoizer stays eligible).
    pub machine: MachineConfig,
    /// Shared L2 + coherence fabric costs.
    pub shared: SharedL2Config,
    /// What to do with an arrival when its entry queue is full.
    pub admission: AdmissionPolicy,
    /// Total NIC buffering in packets, split evenly across entry queues
    /// (all cores under FlowHash/RoundRobin; stage 0 keeps the whole
    /// budget under LayerAffinity).
    pub buffer_cap: usize,
    /// Capacity of each inter-core hand-off queue, in messages.
    pub handoff_cap: usize,
    /// What a producer stage does when the downstream ring is fuller
    /// than its batch.
    pub flow_control: HandoffFlowControl,
    /// Arrival-window length in seconds (for rate accounting).
    pub duration_s: f64,
    /// Message-buffer pool entries per entry core.
    pub pool_bufs: usize,
    /// Message-buffer size in bytes.
    pub pool_buf_bytes: u64,
    /// Seed for code/data/buffer placement. All cores share one layout:
    /// one kernel image, mapped on every core.
    pub placement_seed: u64,
    /// Simulated shared call-table capacity in slots. The default is the
    /// modest switch port of `signaling::call::CALL_TABLE_SLOTS`;
    /// million-flow experiments size it with
    /// [`SmpConfig::sized_for_flows`] so per-message slot RMWs spread
    /// over a realistic footprint instead of ping-ponging 64 entries.
    pub call_table_slots: u64,
    /// Simulated shared reassembly-table capacity in slots.
    pub reass_table_slots: u64,
    /// Per-workload-class processing profiles, indexed by the
    /// [`FlowArrival::wclass`] tag. All-default profiles (the stock
    /// configuration) keep the simulator entirely class-blind.
    pub wclass: [WClassProfile; MAX_WCLASS],
}

impl SmpConfig {
    /// The defaults every figure-9 cell starts from: the paper's
    /// synthetic-benchmark machine per core, the paper's buffer budget,
    /// and the stock SMP fabric.
    pub fn new(cores: usize, dispatch: DispatchPolicy, discipline: Discipline) -> Self {
        SmpConfig {
            cores,
            dispatch,
            discipline,
            machine: MachineConfig::synthetic_benchmark(),
            shared: SharedL2Config::smp_default(),
            admission: AdmissionPolicy::TailDrop,
            buffer_cap: 500,
            handoff_cap: 64,
            flow_control: HandoffFlowControl::SizeToFree,
            duration_s: 1.0,
            pool_bufs: 64,
            pool_buf_bytes: 1536,
            placement_seed: 1,
            call_table_slots: signaling::call::CALL_TABLE_SLOTS,
            reass_table_slots: netstack::ipfrag::REASSEMBLY_TABLE_BYTES
                / netstack::ipfrag::REASSEMBLY_SLOT_BYTES,
            wclass: [WClassProfile::default(); MAX_WCLASS],
        }
    }

    /// Sizes both shared tables for a concurrent-flow population, the
    /// way the open-addressing tables do: next power of two above
    /// `flows`, never below the stock defaults.
    pub fn sized_for_flows(mut self, flows: u64) -> Self {
        let slots = flows.next_power_of_two();
        self.call_table_slots = slots.max(signaling::call::CALL_TABLE_SLOTS);
        self.reass_table_slots = slots.max(
            netstack::ipfrag::REASSEMBLY_TABLE_BYTES / netstack::ipfrag::REASSEMBLY_SLOT_BYTES,
        );
        self
    }
}

/// Per-core outcome of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreReport {
    /// Messages that finished their final stage on this core.
    pub completed: u64,
    /// Corrupted messages rejected at this core's verify layer.
    pub rejected: u64,
    /// Arrivals refused admission at this core's entry queue.
    pub drops: u64,
    /// Queued packets evicted by the admission policy.
    pub shed: u64,
    /// Batches processed.
    pub batches: u64,
    /// Messages processed on this core (any outcome, incl. handed off).
    pub msgs: u64,
    /// Cycles this core spent processing (not idling).
    pub busy_cycles: u64,
    /// L1 instruction-cache misses charged to this core.
    pub imisses: u64,
    /// L1 data-cache misses charged to this core.
    pub dmisses: u64,
    /// Hand-off stall episodes (a batch ended with descriptors the
    /// downstream ring refused; [`HandoffFlowControl::StallProducer`]).
    pub bp_stalls: u64,
    /// Cycles this core spent stalled waiting for downstream ring
    /// space, from batch end to the pop that freed the last held
    /// descriptor.
    pub bp_stall_cycles: u64,
}

/// Everything one multi-core run produced.
#[derive(Debug, Clone)]
pub struct SmpOutcome {
    /// Aggregate report in the single-core [`SimReport`] shape (a
    /// message's I/D-miss samples are summed across the stages it
    /// visited).
    pub report: SimReport,
    /// Per-core breakdown, one entry per configured core (idle cores
    /// under LayerAffinity report zeros).
    pub per_core: Vec<CoreReport>,
    /// Shared-L2 / coherence counters for the run.
    pub coherence: CoherenceStats,
    /// Messages that crossed an inter-core hand-off queue.
    pub handoff_msgs: u64,
    /// Footprint-replay memoizer counters for the run, summed across
    /// cores.
    pub replay: ReplayStats,
    /// Queued packets shed by the admission policy, by traffic class
    /// (closed-loop runs; open-loop runs are class-blind and account
    /// everything to [`Class::Rpc`]).
    pub shed_by_class: [u64; Class::COUNT],
    /// Arrivals refused admission, by traffic class (same caveat).
    pub drops_by_class: [u64; Class::COUNT],
    /// Per-workload-class reports, indexed by [`FlowArrival::wclass`],
    /// populated for open-loop runs when any [`SmpConfig::wclass`]
    /// profile is set (empty otherwise, and for closed-loop runs).
    pub classes: Vec<ClassReport>,
}

/// Interned per-core observability names.
#[derive(Debug, Clone, Copy)]
struct ObsIds {
    batch: NameId,
    latency: NameId,
    imiss: NameId,
    dmiss: NameId,
    bp_stall: NameId,
    /// Per-workload-class latency histograms (`w<class>/latency_us`),
    /// interned only when class profiles are configured — untracked
    /// runs add no names, so their metrics documents are unchanged.
    wlat: [Option<NameId>; MAX_WCLASS],
}

/// One packet waiting in an entry queue.
#[derive(Debug, Clone, Copy)]
struct EntryPkt {
    arr: u64,
    bytes: u32,
    corrupted: bool,
    flow_id: u32,
    /// Per-client request sequence number ties a closed-loop completion
    /// back to the population; 0 for open-loop arrivals.
    req: u64,
    /// Traffic class for weighted-fair accounting; open-loop arrivals
    /// are class-blind and ride as [`Class::Rpc`].
    class: Class,
    /// Workload message class (0 = untagged), for per-class accounting
    /// and per-class handler/table charging at the top of the stack.
    wclass: u8,
}

struct CoreState {
    engine: StackEngine,
    pool: MessagePool,
    entry: VecDeque<EntryPkt>,
    /// Hand-off queue feeding this core: an SoA descriptor ring (see
    /// [`crate::ring`]) carrying each message's accumulated per-message
    /// cost so the final stage can emit whole-path samples.
    inbox: DescRing,
    /// Descriptors the downstream ring refused at batch end
    /// ([`HandoffFlowControl::StallProducer`]); the producer is stalled
    /// until this drains. Bounded by one batch (≤ `pool_bufs`).
    held: VecDeque<Desc>,
    /// Global cycle the current stall episode began (batch end).
    held_since: u64,
    /// Entry-queue occupancy by traffic class, for weighted-fair
    /// admission.
    class_counts: [u64; Class::COUNT],
    busy_until: u64,
    /// Machine cycle count when the current run started.
    m0: u64,
    /// L1 miss counters when the current run started.
    icache0: u64,
    dcache0: u64,
    replay0: ReplayStats,
    obs: Option<ObsIds>,
    rep: CoreReport,
    // Reused per-batch scratch: the steady-state loop allocates
    // nothing. Per-message bookkeeping for the batch in flight is
    // columnar (parallel arrays indexed by batch position) to match
    // the descriptor-ring layout.
    batch: Vec<SimMessage>,
    b_arr: Vec<u64>,
    b_flow: Vec<u32>,
    b_wclass: Vec<u8>,
    b_imiss: Vec<u64>,
    b_dmiss: Vec<u64>,
    completions: Vec<Completion>,
}

/// The reusable multi-core simulator. Build once, [`SmpSim::run`] per
/// arrival stream, read the [`SmpSim::outcome`]. The run loop itself is
/// allocation-free in steady state (pinned by `tests/alloc.rs`); the
/// allocating report assembly lives in [`SmpSim::outcome`].
pub struct SmpSim {
    cfg: SmpConfig,
    pipeline: bool,
    /// Cores that actually run protocol code (== `cfg.cores` for
    /// full-stack dispatch, ≤ under LayerAffinity).
    stages: usize,
    cores: Vec<CoreState>,
    shared: SharedL2,
    steer: Steerer,
    entry_cap: usize,
    clock_mhz: f64,
    cycles_per_s: f64,
    latencies_us: Vec<f64>,
    imisses: Vec<u64>,
    dmisses: Vec<u64>,
    offered: u64,
    last_finish: u64,
    handoff_msgs: u64,
    batches: u64,
    msg_seq: u64,
    /// Whether the current run is closed-loop: final-stage completions
    /// are buffered in `ready_acks` for the driver to classify against
    /// the client population instead of being counted immediately.
    closed: bool,
    /// Stale completions — the machine finished work whose client had
    /// already been acknowledged or had given up.
    abandoned: u64,
    /// Clean final-stage completions awaiting delivery to the client
    /// population, as `(finish_cycle, message_id, core)` in a min-heap
    /// (message id breaks finish-time ties deterministically).
    ready_acks: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// `(client, req)` by message id, for acknowledgement routing.
    closed_meta: Vec<(u32, u64)>,
    /// Shed / refused admission counts by traffic class.
    shed_by_class: [u64; Class::COUNT],
    drops_by_class: [u64; Class::COUNT],
    /// Whether any workload-class profile is configured. False keeps
    /// every per-class branch cold: the run loop is bit-identical to
    /// the class-blind simulator.
    wtrack: bool,
    /// Per-class accounting, `MAX_WCLASS` entries when tracking
    /// (empty otherwise — `get_mut` then makes every bump a no-op).
    wsamples: Vec<ClassSamples>,
    /// Precomputed handler-code line lists per class (empty for
    /// classes with no handler), fed to the footprint-replay memoizer
    /// under fid `WCLASS_FID_BASE + class`.
    wlines: Vec<Vec<u64>>,
}

impl SmpSim {
    /// Builds the engines, queues, and fabric for `cfg`.
    pub fn new(cfg: &SmpConfig) -> SmpSim {
        assert!(cfg.cores > 0, "need at least one core");
        let pipeline = cfg.dispatch == DispatchPolicy::LayerAffinity;
        let sizes = stage_partition(STACK_LAYERS, cfg.cores);
        let stages = if pipeline { sizes.len() } else { cfg.cores };
        let entry_cores = if pipeline { 1 } else { cfg.cores };
        let entry_cap = (cfg.buffer_cap / entry_cores).max(1);

        let mut cores = Vec::with_capacity(stages);
        let mut offset = 0usize;
        for s in 0..stages {
            // Every core maps the same kernel image: one placement seed
            // for all, so layer code/data addresses agree across cores.
            let (machine, layers) = paper_stack(cfg.machine, cfg.placement_seed);
            let layers = if pipeline {
                let take = sizes.get(s).copied().unwrap_or(0);
                let chunk: Vec<_> = layers.into_iter().skip(offset).take(take).collect();
                offset += take;
                chunk
            } else {
                layers
            };
            let engine = StackEngine::new(machine, layers, cfg.discipline);
            cores.push(CoreState {
                engine,
                pool: MessagePool::new(cfg.pool_bufs, cfg.pool_buf_bytes, cfg.placement_seed),
                entry: VecDeque::with_capacity(entry_cap),
                inbox: DescRing::new(cfg.handoff_cap),
                held: VecDeque::with_capacity(cfg.pool_bufs),
                held_since: 0,
                class_counts: [0; Class::COUNT],
                busy_until: 0,
                m0: 0,
                icache0: 0,
                dcache0: 0,
                replay0: ReplayStats::default(),
                obs: None,
                rep: CoreReport::default(),
                batch: Vec::with_capacity(cfg.pool_bufs),
                b_arr: Vec::with_capacity(cfg.pool_bufs),
                b_flow: Vec::with_capacity(cfg.pool_bufs),
                b_wclass: Vec::with_capacity(cfg.pool_bufs),
                b_imiss: Vec::with_capacity(cfg.pool_bufs),
                b_dmiss: Vec::with_capacity(cfg.pool_bufs),
                completions: Vec::with_capacity(cfg.pool_bufs),
            });
        }

        let wtrack = cfg.wclass.iter().any(|p| *p != WClassProfile::default());
        let line = cfg.machine.icache.line_size.max(1);
        let wlines: Vec<Vec<u64>> = if wtrack {
            cfg.wclass
                .iter()
                .enumerate()
                .map(|(w, p)| {
                    // Handler images honour the machine's code density,
                    // like the layer code placed by `ldlp::synth`.
                    let bytes =
                        (f64::from(p.handler_code_bytes) * cfg.machine.code_density).ceil() as u64;
                    let base = (WCLASS_CODE_BASE + w as u64 * WCLASS_STRIDE) / line;
                    (0..bytes.div_ceil(line)).map(|i| base + i).collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        let wsamples: Vec<ClassSamples> = if wtrack {
            (0..MAX_WCLASS).map(|_| ClassSamples::default()).collect()
        } else {
            Vec::new()
        };

        let clock_mhz = cfg.machine.clock_mhz;
        SmpSim {
            pipeline,
            stages,
            cores,
            shared: SharedL2::new(cfg.shared),
            steer: Steerer::new(cfg.dispatch, if pipeline { 1 } else { cfg.cores }),
            entry_cap,
            clock_mhz,
            cycles_per_s: clock_mhz * 1e6,
            latencies_us: Vec::new(),
            imisses: Vec::new(),
            dmisses: Vec::new(),
            offered: 0,
            last_finish: 0,
            handoff_msgs: 0,
            batches: 0,
            msg_seq: 0,
            closed: false,
            abandoned: 0,
            ready_acks: BinaryHeap::new(),
            closed_meta: Vec::new(),
            shed_by_class: [0; Class::COUNT],
            drops_by_class: [0; Class::COUNT],
            wtrack,
            wsamples,
            wlines,
            cfg: *cfg,
        }
    }

    /// The configuration this simulator was built from.
    pub fn config(&self) -> &SmpConfig {
        &self.cfg
    }

    /// Number of cores that actually run protocol code.
    pub fn active_cores(&self) -> usize {
        self.stages
    }

    /// Attaches one observability sink per active core, with `c<i>/`
    /// name prefixes. `collect_spans` keeps raw events for tracing;
    /// `false` folds into metrics accumulators only.
    pub fn set_sinks(&mut self, collect_spans: bool) {
        let wtrack = self.wtrack;
        for (i, core) in self.cores.iter_mut().enumerate() {
            let prefix = format!("c{i}/");
            core.engine.set_sink(obs::Sink::record(collect_spans), &prefix);
            let mut wlat = [None; MAX_WCLASS];
            if wtrack {
                for (w, slot) in wlat.iter_mut().enumerate() {
                    *slot = core.engine.obs_intern(&format!("w{w}/latency_us"));
                }
            }
            core.obs = match (
                core.engine.obs_intern("batch"),
                core.engine.obs_intern("latency_us"),
                core.engine.obs_intern("imiss_per_msg"),
                core.engine.obs_intern("dmiss_per_msg"),
                core.engine.obs_intern("bp_stall"),
            ) {
                (Some(batch), Some(latency), Some(imiss), Some(dmiss), Some(bp_stall)) => {
                    Some(ObsIds {
                        batch,
                        latency,
                        imiss,
                        dmiss,
                        bp_stall,
                        wlat,
                    })
                }
                _ => None,
            };
        }
    }

    /// Detaches and returns the per-core recorders as
    /// `("core<i>", recorder)` pairs — one trace track per core.
    pub fn take_recorders(&mut self) -> Vec<(String, Box<obs::Recorder>)> {
        let mut out = Vec::new();
        for (i, core) in self.cores.iter_mut().enumerate() {
            if let Some(rec) = core.engine.take_sink().into_recorder() {
                out.push((format!("core{i}"), rec));
            }
            core.obs = None;
        }
        out
    }

    /// Runs one arrival stream to drain. Per-run counters and samples
    /// reset first; caches, the replay memo table, the coherence
    /// directory, and flow-steering state stay warm across runs (like
    /// real silicon across seconds). Asserts the multi-core
    /// conservation law before returning.
    // analyze::hot_path(smp-event-loop)
    pub fn run(&mut self, arrivals: &[FlowArrival]) {
        self.reset_run();
        self.offered = arrivals.len() as u64;

        let mut next_arrival = 0usize;
        'event: loop {
            let mut best = self.scan_best();

            // Admissions happen in arrival order before any batch that
            // would start later (inclusive: a batch forming at t sees
            // everything that arrived by t, as in the single-core loop).
            // Each admission touches exactly one core's entry queue, so
            // `best` is maintained incrementally — lexicographic
            // (start, core) minimum, matching the scan above — instead
            // of rescanning every core per arrival. The one case where
            // an admission can move a core's candidate *later* (the
            // policy evicted queued work, or the entry queue shadowed a
            // non-empty inbox) falls back to the full rescan.
            while next_arrival < arrivals.len() {
                let a = arrivals[next_arrival];
                let t = (a.time_s * self.cycles_per_s).round() as u64;
                if best.is_some_and(|(s, _)| t > s) {
                    break;
                }
                let (c, moved_later) = self.admit(&a, t);
                next_arrival += 1;
                if moved_later {
                    continue 'event;
                }
                if !self.blocked_downstream(c) && self.cores[c].held.is_empty() {
                    if let Some(ready) = self.next_ready(c) {
                        let start = ready.max(self.cores[c].busy_until);
                        if best.is_none_or(|(s, bc)| start < s || (start == s && c < bc)) {
                            best = Some((start, c));
                        }
                    }
                }
            }

            let Some((start, c)) = best else {
                // No runnable core and no arrivals left: drained.
                break;
            };
            self.run_batch(c, start);
            self.flush_held(c, start);
        }

        self.assert_conservation();
    }

    /// The earliest startable batch across cores — the strict `<`
    /// breaks ties toward the lowest core index. Cores stalled on a
    /// refused hand-off (non-empty held buffer) cannot start work.
    fn scan_best(&self) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for c in 0..self.cores.len() {
            if !self.cores[c].held.is_empty() {
                continue;
            }
            let Some(ready) = self.next_ready(c) else {
                continue;
            };
            if self.blocked_downstream(c) {
                continue;
            }
            let start = ready.max(self.cores[c].busy_until);
            if best.is_none_or(|(s, _)| start < s) {
                best = Some((start, c));
            }
        }
        best
    }

    /// Assembles the run's [`SmpOutcome`]. Allocates — call it outside
    /// the measured window; `net` carries impairment-channel counters
    /// into the report (use `default()` for a clean channel).
    pub fn outcome(&mut self, net: ImpairCounters) -> SmpOutcome {
        let mut rejected = 0u64;
        let mut drops = 0u64;
        let mut shed = 0u64;
        for core in &self.cores {
            rejected += core.rep.rejected;
            drops += core.rep.drops;
            shed += core.rep.shed;
        }
        let report = SimReport::from_samples(
            &mut self.latencies_us,
            &self.imisses,
            &self.dmisses,
            RunTally {
                offered: self.offered,
                rejected,
                drops,
                shed,
                in_flight: 0,
                abandoned: self.abandoned,
                duration_s: self.cfg.duration_s,
                span_s: self.last_finish as f64 / self.cycles_per_s,
                batches: self.batches,
                net,
            },
        );

        let mut per_core = Vec::with_capacity(self.cfg.cores);
        let mut replay = ReplayStats::default();
        for core in &self.cores {
            let stats: MachineStats = core.engine.machine().stats();
            let mut rep = core.rep;
            rep.imisses = stats.icache.misses - core.icache0;
            rep.dmisses = stats.dcache.misses - core.dcache0;
            per_core.push(rep);
            let r = core.engine.machine().replay_stats();
            replay.hits += r.hits - core.replay0.hits;
            replay.misses += r.misses - core.replay0.misses;
            replay.bypasses += r.bypasses - core.replay0.bypasses;
        }
        // Idle cores (LayerAffinity with more cores than layers).
        per_core.resize(self.cfg.cores, CoreReport::default());

        let classes: Vec<ClassReport> = self
            .wsamples
            .iter_mut()
            .zip(self.cfg.wclass.iter())
            .map(|(s, p)| s.report(p.slo_us))
            .collect();

        SmpOutcome {
            report,
            per_core,
            coherence: self.shared.stats(),
            handoff_msgs: self.handoff_msgs,
            replay,
            shed_by_class: self.shed_by_class,
            drops_by_class: self.drops_by_class,
            classes,
        }
    }

    fn reset_run(&mut self) {
        self.latencies_us.clear();
        self.imisses.clear();
        self.dmisses.clear();
        self.offered = 0;
        self.last_finish = 0;
        self.handoff_msgs = 0;
        self.batches = 0;
        self.msg_seq = 0;
        self.closed = false;
        self.abandoned = 0;
        self.ready_acks.clear();
        self.closed_meta.clear();
        self.shed_by_class = [0; Class::COUNT];
        self.drops_by_class = [0; Class::COUNT];
        for s in &mut self.wsamples {
            s.clear();
        }
        self.shared.reset_stats();
        for core in &mut self.cores {
            core.rep = CoreReport::default();
            core.busy_until = 0;
            core.held_since = 0;
            core.class_counts = [0; Class::COUNT];
            core.m0 = core.engine.machine().cycles();
            let stats = core.engine.machine().stats();
            core.icache0 = stats.icache.misses;
            core.dcache0 = stats.dcache.misses;
            core.replay0 = core.engine.machine().replay_stats();
            // analyze::allow(charge-coverage, reason = "head/tail occupancy reads model core-local ring registers; slot data movement is charged at push/pop via SharedL2 read/write")
            debug_assert!(core.entry.is_empty() && core.inbox.is_empty() && core.held.is_empty());
        }
    }

    fn next_ready(&self, c: usize) -> Option<u64> {
        let core = &self.cores[c];
        match core.entry.front() {
            Some(pkt) => Some(pkt.arr),
            // analyze::allow(charge-coverage, reason = "head/tail occupancy reads model core-local ring registers; slot data movement is charged at push/pop via SharedL2 read/write")
            None => core.inbox.next_ready(),
        }
    }

    fn blocked_downstream(&self, c: usize) -> bool {
        // Under StallProducer a full downstream ring never gates batch
        // *start* — the producer runs, then stalls on the refused push.
        self.pipeline
            && c + 1 < self.stages
            && self.cfg.flow_control == HandoffFlowControl::SizeToFree
            // analyze::allow(charge-coverage, reason = "head/tail occupancy reads model core-local ring registers; slot data movement is charged at push/pop via SharedL2 read/write")
            && self.cores[c + 1].inbox.free() == 0
    }

    /// Steers one arrival into its entry queue. Returns the core index
    /// and whether the core's next-ready time may have moved *later*
    /// (front-of-queue eviction, or a previously-empty entry queue now
    /// shadowing a non-empty inbox) — the run loop's incremental `best`
    /// tracking is only sound when candidates move earlier.
    fn admit(&mut self, a: &FlowArrival, t: u64) -> (usize, bool) {
        let c = self.steer.core_for(&a.key);
        let core = &mut self.cores[c];
        let was_empty = core.entry.is_empty();
        // Per-workload-class books (no-ops when untracked: `wsamples`
        // is empty and `get_mut` always misses).
        let wi = usize::from(a.wclass) & (MAX_WCLASS - 1);
        if let Some(ws) = self.wsamples.get_mut(wi) {
            ws.offered += 1;
        }
        let (evict, admit) = self.cfg.admission.admit(core.entry.len(), self.entry_cap);
        for _ in 0..evict {
            if let Some(victim) = core.entry.pop_front() {
                let vi = victim.class.index();
                core.class_counts[vi] = core.class_counts[vi].saturating_sub(1);
                self.shed_by_class[vi] += 1;
                let vw = usize::from(victim.wclass) & (MAX_WCLASS - 1);
                if let Some(ws) = self.wsamples.get_mut(vw) {
                    ws.shed += 1;
                }
            }
            core.rep.shed += 1;
        }
        if admit {
            core.class_counts[Class::Rpc.index()] += 1;
            // analyze::allow(alloc-path, reason = "pending queue is bounded by the arrival schedule; capacity is warm after the first batch")
            core.entry.push_back(EntryPkt {
                arr: t,
                bytes: a.bytes,
                corrupted: a.corrupted,
                flow_id: a.flow_id,
                req: 0,
                class: Class::Rpc,
                wclass: a.wclass,
            });
        } else {
            core.rep.drops += 1;
            self.drops_by_class[Class::Rpc.index()] += 1;
            if let Some(ws) = self.wsamples.get_mut(wi) {
                ws.drops += 1;
            }
        }
        // analyze::allow(charge-coverage, reason = "head/tail occupancy reads model core-local ring registers; slot data movement is charged at push/pop via SharedL2 read/write")
        (c, evict > 0 || (was_empty && !core.inbox.is_empty()))
    }

    /// Shared-table slot for `flow_id`: `slots` entries of `slot_bytes`
    /// at `base`.
    fn table_slot(base: u64, slots: u64, slot_bytes: u64, flow_id: u32) -> Region {
        // analyze::allow(panic-path, reason = "slots is the nonzero shared-table geometry from SmpConfig")
        Region::new(base + (u64::from(flow_id) % slots) * slot_bytes, slot_bytes)
    }

    /// Descriptor-ring slot `seq % cap` of the queue feeding `stage`.
    fn desc_region(handoff_cap: usize, stage: usize, seq: u64) -> Region {
        let cap = handoff_cap as u64;
        let ring = DESC_WINDOW_BASE + stage as u64 * cap * DESC_BYTES;
        // analyze::allow(panic-path, reason = "cap is the nonzero descriptor-ring size from SmpConfig")
        Region::new(ring + (seq % cap) * DESC_BYTES, DESC_BYTES)
    }

    fn run_batch(&mut self, c: usize, start: u64) {
        let has_down = self.pipeline && c + 1 < self.stages;
        let is_final = !has_down;
        let owns_bottom = !self.pipeline || c == 0;
        let owns_top = !self.pipeline || c + 1 == self.stages;
        let handoff_cap = self.cfg.handoff_cap;

        let stall_mode = self.cfg.flow_control == HandoffFlowControl::StallProducer;
        // Under StallProducer the batch is sized by the engine alone;
        // whatever the downstream ring refuses at push time is held and
        // the producer stalls.
        let downstream_free = if has_down && !stall_mode {
            self.cores[c + 1].inbox.free()
        } else {
            usize::MAX
        };

        let (left, right) = self.cores.split_at_mut(c + 1);
        let core = &mut left[c];
        let mut down = if has_down { right.first_mut() } else { None };

        // Candidate set: how many messages are takeable right now, and
        // how big the largest is (batch limits are sized conservatively
        // by the largest candidate, as in the single-core loop). The
        // ring scan reads only the ready-time and buffer-length columns.
        let (avail, max_bytes) = if core.entry.is_empty() {
            core.inbox.takeable(start)
        } else {
            (
                core.entry.len(),
                core.entry.iter().map(|p| u64::from(p.bytes)).max().unwrap_or(0),
            )
        };
        debug_assert!(avail > 0, "scheduled a core with no takeable work");
        let limit = core
            .engine
            .batch_limit(max_bytes.max(1))
            .min(avail)
            .min(self.cfg.pool_bufs)
            .min(downstream_free);

        let m_before_abs = core.engine.machine().cycles();
        let m_before = m_before_abs - core.m0;
        debug_assert!(start >= m_before, "busy accounting lost cycles");
        let stats_before = core.obs.map(|_| core.engine.machine().stats());

        // Form the batch. Entry cores materialize pool messages;
        // pipeline stages pop handed-off messages and pay the
        // consumer-side descriptor-ring read through the fabric.
        core.batch.clear();
        core.b_arr.clear();
        core.b_flow.clear();
        core.b_wclass.clear();
        core.b_imiss.clear();
        core.b_dmiss.clear();
        if core.entry.is_empty() {
            let popped0 = core.inbox.popped();
            for k in 0..limit as u64 {
                let Some(d) = core.inbox.pop(start) else {
                    break;
                };
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.batch.push(d.msg);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_arr.push(d.arr);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_flow.push(d.flow_id);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_wclass.push(d.wclass);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_imiss.push(d.imiss);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_dmiss.push(d.dmiss);
                let slot = Self::desc_region(handoff_cap, c, popped0 + k);
                self.shared.read(c as u8, slot, core.engine.machine_mut());
            }
        } else {
            for _ in 0..limit {
                let Some(pkt) = core.entry.pop_front() else {
                    break;
                };
                let pi = pkt.class.index();
                core.class_counts[pi] = core.class_counts[pi].saturating_sub(1);
                let mut msg = core.pool.make_message(self.msg_seq, u64::from(pkt.bytes));
                msg.arrival_cycles = pkt.arr;
                msg.corrupted = pkt.corrupted;
                self.msg_seq += 1;
                if self.closed {
                    // Route the eventual completion back to the client:
                    // `closed_meta[msg.id]` is `(client, req)`.
                    // analyze::allow(alloc-path, reason = "one entry per admitted message; capacity grows once per run")
                    self.closed_meta.push((pkt.flow_id, pkt.req));
                }
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.batch.push(msg);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_arr.push(pkt.arr);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_flow.push(pkt.flow_id);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_wclass.push(pkt.wclass);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_imiss.push(0);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                core.b_dmiss.push(0);
            }
        }

        // Shared mutable protocol state: the reassembly table at the
        // bottom of the stack, the call table at the top — one
        // read-modify-write per message each. Under full-stack dispatch
        // every core does both, so slots ping-pong through the fabric;
        // under layer affinity each table has one owning stage and its
        // lines stop migrating after warm-up.
        for k in 0..core.b_flow.len() {
            let flow = core.b_flow[k];
            if owns_bottom {
                let slot = Self::table_slot(
                    REASS_TABLE_BASE,
                    self.cfg.reass_table_slots,
                    netstack::ipfrag::REASSEMBLY_SLOT_BYTES,
                    flow,
                );
                self.shared.read(c as u8, slot, core.engine.machine_mut());
                self.shared.write(c as u8, slot, core.engine.machine_mut());
            }
            if owns_top {
                let slot = Self::table_slot(
                    CALL_TABLE_BASE,
                    self.cfg.call_table_slots,
                    signaling::call::CALL_SLOT_BYTES,
                    flow,
                );
                self.shared.read(c as u8, slot, core.engine.machine_mut());
                self.shared.write(c as u8, slot, core.engine.machine_mut());
            }
        }

        // Per-workload-class service work rides with the top of the
        // stack: the class handler's code sweep (memoized like the
        // layer sweeps, under its own footprint id) and one RMW of the
        // class's shared session table. The loop runs class by class —
        // the service dispatcher hands same-class work to its handler
        // back to back, the paper's layer-batching discipline applied
        // one level up — so a mixed batch sweeps each resident handler
        // image once instead of thrashing the I-cache in arrival order
        // (and the memoizer sees class *sets*, not class sequences).
        // Untracked runs skip the whole block.
        if self.wtrack && owns_top {
            for w in 0..MAX_WCLASS {
                for k in 0..core.b_flow.len() {
                    if usize::from(core.b_wclass[k]) & (MAX_WCLASS - 1) != w {
                        continue;
                    }
                    let s0 = core.engine.machine().stats();
                    if let Some(lines) = self.wlines.get(w) {
                        if !lines.is_empty() {
                            core.engine
                                .machine_mut()
                                .fetch_code_footprint(WCLASS_FID_BASE + w as u32, lines);
                        }
                    }
                    let slots = self.cfg.wclass[w]
                        .table_slots
                        .min(WCLASS_STRIDE / WCLASS_SLOT_BYTES);
                    if slots > 0 {
                        let slot = Self::table_slot(
                            WCLASS_TABLE_BASE + w as u64 * WCLASS_STRIDE,
                            slots,
                            WCLASS_SLOT_BYTES,
                            core.b_flow[k],
                        );
                        self.shared.read(c as u8, slot, core.engine.machine_mut());
                        self.shared.write(c as u8, slot, core.engine.machine_mut());
                    }
                    // Attribute the class work's misses to this message
                    // (`process_batch_into` only meters layer sweeps);
                    // the first message of a class in the batch absorbs
                    // the handler image's misses, followers ride warm.
                    let s1 = core.engine.machine().stats();
                    core.b_imiss[k] += s1.icache.misses - s0.icache.misses;
                    core.b_dmiss[k] += s1.dcache.misses - s0.dcache.misses;
                }
            }
        }

        core.engine.process_batch_into(&core.batch, &mut core.completions);

        // Producer-side descriptor writes for everything about to be
        // handed off — still inside this batch's busy window, so the
        // hand-off cost lands in the message's latency.
        if let Some(down) = down.as_deref() {
            let mut seq = down.inbox.pushed();
            for k in 0..core.completions.len() {
                if !core.completions[k].rejected {
                    let slot = Self::desc_region(handoff_cap, c + 1, seq);
                    self.shared.write(c as u8, slot, core.engine.machine_mut());
                    seq += 1;
                }
            }
        }

        let m_after_abs = core.engine.machine().cycles();
        let dur = m_after_abs - m_before_abs;
        let end_global = start + dur;
        let offset = start - m_before;
        core.busy_until = end_global;
        core.rep.busy_cycles += dur;
        core.rep.batches += 1;
        core.rep.msgs += core.batch.len() as u64;
        self.batches += 1;

        if let (Some(ids), Some(s0)) = (core.obs, stats_before) {
            let s1 = core.engine.machine().stats();
            let queue_after = core.entry.len() as u64 + core.inbox.len() as u64;
            let batch_len = core.batch.len() as u32;
            if let Some(rec) = core.engine.sink_mut().on_mut() {
                rec.span(SpanEvent {
                    name: ids.batch,
                    start: m_before_abs,
                    dur,
                    batch: batch_len,
                    aux: queue_after,
                    imisses: s1.icache.misses - s0.icache.misses,
                    dmisses: s1.dcache.misses - s0.dcache.misses,
                });
            }
        }

        for k in 0..core.completions.len() {
            let comp = core.completions[k];
            let arr = core.b_arr[k];
            let im = core.b_imiss[k] + comp.imisses;
            let dm = core.b_dmiss[k] + comp.dmisses;
            let finish = (comp.done_cycles - core.m0) + offset;
            let wi = usize::from(core.b_wclass[k]) & (MAX_WCLASS - 1);
            if comp.rejected {
                core.rep.rejected += 1;
                if let Some(ws) = self.wsamples.get_mut(wi) {
                    ws.rejected += 1;
                    ws.imiss_sum += im;
                    ws.dmiss_sum += dm;
                }
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                self.imisses.push(im);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                self.dmisses.push(dm);
                self.last_finish = self.last_finish.max(finish);
                if let Some(ids) = core.obs {
                    if let Some(rec) = core.engine.sink_mut().on_mut() {
                        rec.record_value(ids.imiss, im);
                        rec.record_value(ids.dmiss, dm);
                    }
                }
            } else if is_final && self.closed {
                // Useful-vs-stale classification happens when the driver
                // feeds this completion back to the population; the
                // machine work is spent either way, so the miss samples
                // and span clock advance now, latency/goodput later.
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                self.imisses.push(im);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                self.dmisses.push(dm);
                self.last_finish = self.last_finish.max(finish);
                // analyze::allow(alloc-path, reason = "ack buffer is bounded by in-flight completions; capacity is warm in steady state")
                self.ready_acks.push(Reverse((finish, core.batch[k].id, c)));
                if let Some(ids) = core.obs {
                    if let Some(rec) = core.engine.sink_mut().on_mut() {
                        rec.record_value(ids.imiss, im);
                        rec.record_value(ids.dmiss, dm);
                    }
                }
            } else if is_final {
                core.rep.completed += 1;
                let lat_cycles = finish.saturating_sub(arr);
                let lat_us = lat_cycles as f64 / self.clock_mhz;
                if let Some(ws) = self.wsamples.get_mut(wi) {
                    ws.completed += 1;
                    ws.imiss_sum += im;
                    ws.dmiss_sum += dm;
                    // analyze::allow(alloc-path, reason = "per-class latency samples are bounded by completions; capacity is warm in steady state")
                    ws.latencies_us.push(lat_us);
                }
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                self.latencies_us.push(lat_us);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                self.imisses.push(im);
                // analyze::allow(alloc-path, reason = "per-core SoA batch/report buffers are reused across batches; capacity is warm in steady state")
                self.dmisses.push(dm);
                self.last_finish = self.last_finish.max(finish);
                if let Some(ids) = core.obs {
                    if let Some(rec) = core.engine.sink_mut().on_mut() {
                        rec.record_value(ids.latency, lat_us as u64);
                        rec.record_value(ids.imiss, im);
                        rec.record_value(ids.dmiss, dm);
                        if let Some(wid) = ids.wlat[wi] {
                            rec.record_value(wid, lat_us as u64);
                        }
                    }
                }
            } else if let Some(down) = down.as_deref_mut() {
                let (fl, wc) = (core.b_flow[k], core.b_wclass[k]);
                // analyze::allow(alloc-path, reason = "ring storage is preallocated at construction; push writes in place")
                let pushed = down.inbox.push(end_global, &core.batch[k], arr, fl, wc, im, dm);
                if pushed {
                    self.handoff_msgs += 1;
                } else {
                    // Only StallProducer sizes batches past downstream
                    // free space; the refused descriptor parks in the
                    // bounded held buffer — never lost — and the core
                    // stalls until the consumer pops.
                    debug_assert!(stall_mode, "batch was sized by downstream free space");
                    // analyze::allow(alloc-path, reason = "held buffer is bounded by one batch (pool_bufs); capacity is reserved at construction")
                    core.held.push_back(Desc {
                        msg: core.batch[k],
                        arr,
                        flow_id: core.b_flow[k],
                        wclass: core.b_wclass[k],
                        imiss: im,
                        dmiss: dm,
                    });
                }
            }
        }

        if !core.held.is_empty() {
            // Stall episode: charged and surfaced when it resolves in
            // `flush_held`.
            core.rep.bp_stalls += 1;
            core.held_since = end_global;
        }
    }

    /// After core `c` ran a batch (popping its inbox at `start`), move
    /// as many of the upstream producer's held descriptors as now fit.
    /// When the buffer drains the producer's stall ends: the cycles it
    /// waited are charged to the core and emitted as a `bp_stall` span.
    fn flush_held(&mut self, c: usize, start: u64) {
        if !self.pipeline || c == 0 || c >= self.stages {
            return;
        }
        let (left, right) = self.cores.split_at_mut(c);
        let (Some(prod), Some(cons)) = (left.last_mut(), right.first_mut()) else {
            return;
        };
        if prod.held.is_empty() {
            return;
        }
        // The transfer happens when space frees (the consumer's pops at
        // `start`) or when the producer finished producing, whichever
        // is later.
        let t_flush = start.max(prod.held_since);
        let mut moved = 0u32;
        // analyze::allow(charge-coverage, reason = "head/tail occupancy reads model core-local ring registers; slot data movement is charged at push/pop via SharedL2 read/write")
        while cons.inbox.free() > 0 {
            let Some(d) = prod.held.pop_front() else {
                break;
            };
            // The descriptor bytes were already written (and charged)
            // during the producing batch; the stall was pure waiting.
            // analyze::allow(charge-coverage, reason = "descriptor slot bytes were charged via SharedL2 write during the producing batch; releasing a held descriptor is pure waiting, no new data movement")
            // analyze::allow(alloc-path, reason = "ring storage is preallocated at construction; push writes in place")
            let ok = cons.inbox.push(t_flush, &d.msg, d.arr, d.flow_id, d.wclass, d.imiss, d.dmiss);
            debug_assert!(ok, "free space was checked above");
            self.handoff_msgs += 1;
            moved += 1;
        }
        if prod.held.is_empty() {
            let stalled = t_flush - prod.held_since;
            prod.rep.bp_stall_cycles += stalled;
            prod.busy_until = prod.busy_until.max(t_flush);
            if stalled > 0 {
                let m_now = prod.engine.machine().cycles();
                if let Some(ids) = prod.obs {
                    if let Some(rec) = prod.engine.sink_mut().on_mut() {
                        rec.span(SpanEvent {
                            name: ids.bp_stall,
                            start: m_now,
                            dur: stalled,
                            batch: moved,
                            aux: t_flush,
                            imisses: 0,
                            dmisses: 0,
                        });
                    }
                }
            }
        }
    }

    fn assert_conservation(&self) {
        let mut completed = 0u64;
        let mut rejected = 0u64;
        let mut drops = 0u64;
        let mut shed = 0u64;
        let mut queued = 0u64;
        let mut parked = 0u64;
        for core in &self.cores {
            completed += core.rep.completed;
            rejected += core.rep.rejected;
            drops += core.rep.drops;
            shed += core.rep.shed;
            queued += core.entry.len() as u64;
            // analyze::allow(charge-coverage, reason = "head/tail occupancy reads model core-local ring registers; slot data movement is charged at push/pop via SharedL2 read/write")
            parked += core.inbox.len() as u64 + core.held.len() as u64;
        }
        let unacked = self.ready_acks.len() as u64;
        assert_eq!(
            self.offered,
            completed + rejected + drops + shed + queued + parked + unacked + self.abandoned,
            "multi-core conservation violated: offered {} != completed {completed} + \
             rejected {rejected} + drops {drops} + shed {shed} + entry-queued {queued} + \
             hand-off-parked {parked} + unacked {unacked} + abandoned {}",
            self.offered,
            self.abandoned
        );
    }

    /// Runs a closed-loop client population to drain: transmissions are
    /// pulled from `pop` up to the causality frontier (the earliest
    /// possible next batch start), completions are fed back as
    /// acknowledgements in finish order, and completions whose client
    /// already gave up or was already acknowledged count as `abandoned`
    /// — machine work done for nobody, the metastability signal
    /// `figure13` sweeps. `weights` are the per-class shares used when
    /// the admission policy is [`AdmissionPolicy::WeightedFair`]
    /// (ignored otherwise).
    ///
    /// Causal exactness: batches run in non-decreasing start order, so
    /// every acknowledgement that could cancel a client timer at time t
    /// is delivered before any event at t fires, and client events
    /// before an acknowledgement's finish time fire before the
    /// acknowledgement lands (`poll_sends` up to the frontier first).
    // analyze::hot_path(smp-closed-loop, rules = "panic-path, charge-coverage")
    pub fn run_closed(&mut self, pop: &mut ClosedPopulation, weights: [u32; Class::COUNT]) {
        self.reset_run();
        self.closed = true;

        let mut sends: Vec<ClientSend> = Vec::new();
        let mut pending: VecDeque<ClientSend> = VecDeque::new();

        loop {
            // Client-side fixpoint: fire every think/timer event,
            // deliver every acknowledgement, and admit every pending
            // transmission that happens at or before the earliest
            // possible next batch start. Events win finish-time ties
            // against acknowledgements (a timer due exactly when the
            // ack lands still fires), matching `signaling::recovery`.
            loop {
                let frontier = self.scan_best().map_or(u64::MAX, |(s, _)| s);
                let next_ev = pop.next_event_time();
                let next_ev_cyc = next_ev.map(|t| self.to_cycles(t));
                let next_send = pending.front().map(|s| self.to_cycles(s.time_s));
                let next_ack = self.ready_acks.peek().map(|Reverse(a)| a.0);

                let ev_le = |a: Option<u64>, b: Option<u64>| match (a, b) {
                    (Some(x), Some(y)) => x <= y,
                    (Some(_), None) => true,
                    _ => false,
                };
                if ev_le(next_ev_cyc, next_send) && ev_le(next_ev_cyc, next_ack) {
                    let (Some(t_s), Some(t)) = (next_ev, next_ev_cyc) else {
                        break; // nothing pending anywhere
                    };
                    if t > frontier {
                        break;
                    }
                    sends.clear();
                    pop.poll_sends(t_s, &mut sends);
                    pending.extend(sends.drain(..));
                } else if ev_le(next_send, next_ack) {
                    let Some(t) = next_send else { break };
                    if t > frontier {
                        break;
                    }
                    let Some(s) = pending.pop_front() else { break };
                    self.offered += 1;
                    self.admit_closed(&s, t, weights);
                } else {
                    let Some(t) = next_ack else { break };
                    if t > frontier {
                        break;
                    }
                    let Some(Reverse((finish, id, core_idx))) = self.ready_acks.pop() else {
                        break;
                    };
                    let finish_s = finish as f64 / self.cycles_per_s;
                    // Any boundary straggler events (cycle rounding)
                    // fire before the acknowledgement lands.
                    sends.clear();
                    pop.poll_sends(finish_s, &mut sends);
                    pending.extend(sends.drain(..));
                    let (client, req) =
                        self.closed_meta.get(id as usize).copied().unwrap_or((u32::MAX, 0));
                    match pop.ack(client, req, finish_s) {
                        AckKind::Useful { latency_us } => {
                            if let Some(core) = self.cores.get_mut(core_idx) {
                                core.rep.completed += 1;
                                if let Some(ids) = core.obs {
                                    if let Some(rec) = core.engine.sink_mut().on_mut() {
                                        rec.record_value(ids.latency, latency_us as u64);
                                    }
                                }
                            }
                            // analyze::allow(alloc-path, reason = "latency samples are bounded by useful completions; capacity is warm in steady state")
                            self.latencies_us.push(latency_us);
                        }
                        AckKind::Stale => self.abandoned += 1,
                    }
                }
            }

            let Some((start, c)) = self.scan_best() else {
                // The fixpoint ran with an unbounded frontier and found
                // nothing: no events, no sends, no acks, no startable
                // core — the run has drained.
                break;
            };
            self.run_batch(c, start);
            self.flush_held(c, start);
        }

        self.assert_conservation();
    }

    fn to_cycles(&self, t_s: f64) -> u64 {
        (t_s * self.cycles_per_s).round() as u64
    }

    /// Steers and admits one closed-loop transmission, maintaining
    /// per-class occupancy for weighted-fair admission and per-class
    /// shed/drop accounting for every policy.
    fn admit_closed(&mut self, s: &ClientSend, t: u64, weights: [u32; Class::COUNT]) {
        let key = FlowKey::synth(s.client, self.cfg.placement_seed);
        let c = self.steer.core_for(&key);
        let Some(core) = self.cores.get_mut(c) else {
            return;
        };
        let ci = s.class.index();
        let wfq = self.cfg.admission == AdmissionPolicy::WeightedFair;
        let (evict_class, admit) = if wfq {
            weighted_fair_admit(&core.class_counts, &weights, self.entry_cap, ci)
        } else {
            // Class-blind policies evict from the queue head; encode
            // that as "evict whatever class is at the front".
            let (evict, admit) = self.cfg.admission.admit(core.entry.len(), self.entry_cap);
            debug_assert!(evict <= core.entry.len());
            for _ in 0..evict {
                if let Some(victim) = core.entry.pop_front() {
                    let vi = victim.class.index();
                    core.class_counts[vi] = core.class_counts[vi].saturating_sub(1);
                    self.shed_by_class[vi] += 1;
                    core.rep.shed += 1;
                }
            }
            (None, admit)
        };
        if let Some(d) = evict_class {
            // Weighted-fair donor: shed the *oldest* queued packet of
            // the most over-share class. Rotate it to the front, pop
            // it, rotate back — FIFO order of the survivors holds.
            if let Some(pos) = core.entry.iter().position(|p| p.class.index() == d) {
                core.entry.rotate_left(pos);
                if let Some(victim) = core.entry.pop_front() {
                    let vi = victim.class.index();
                    core.class_counts[vi] = core.class_counts[vi].saturating_sub(1);
                    self.shed_by_class[vi] += 1;
                    core.rep.shed += 1;
                }
                core.entry.rotate_right(pos.min(core.entry.len()));
            }
        }
        if admit {
            core.class_counts[ci] += 1;
            // analyze::allow(alloc-path, reason = "pending queue is bounded by the arrival schedule; capacity is warm after the first batch")
            core.entry.push_back(EntryPkt {
                arr: t,
                bytes: s.bytes,
                corrupted: s.corrupted,
                flow_id: s.client,
                req: s.req,
                class: s.class,
                wclass: 0,
            });
        } else {
            core.rep.drops += 1;
            self.drops_by_class[ci] += 1;
        }
    }
}

/// One-shot convenience: build, run, report.
pub fn run_smp(cfg: &SmpConfig, arrivals: &[FlowArrival]) -> SmpOutcome {
    let mut sim = SmpSim::new(cfg);
    sim.run(arrivals);
    sim.outcome(ImpairCounters::default())
}

/// [`run_smp`] for a stream that went through an impairment channel;
/// `net` carries the channel's counters into the report.
pub fn run_smp_impaired(
    cfg: &SmpConfig,
    arrivals: &[FlowArrival],
    net: ImpairCounters,
) -> SmpOutcome {
    let mut sim = SmpSim::new(cfg);
    sim.run(arrivals);
    sim.outcome(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steer::tag_flows;
    use ldlp::BatchPolicy;
    use simnet::traffic::{ConstantSource, TrafficSource};

    fn arrivals(rate_hz: f64, duration_s: f64, flows: u32, seed: u64) -> Vec<FlowArrival> {
        let raw = ConstantSource::new(1.0 / rate_hz, 552).take_until(duration_s);
        tag_flows(&raw, flows, seed)
    }

    fn cfg(cores: usize, dispatch: DispatchPolicy, discipline: Discipline) -> SmpConfig {
        SmpConfig {
            duration_s: 0.2,
            ..SmpConfig::new(cores, dispatch, discipline)
        }
    }

    #[test]
    fn single_core_light_load_completes_everything() {
        let c = cfg(1, DispatchPolicy::FlowHash, Discipline::Conventional);
        let arr = arrivals(200.0, 0.2, 8, 1);
        let out = run_smp(&c, &arr);
        assert_eq!(out.report.completed, arr.len() as u64);
        assert_eq!(out.report.drops + out.report.shed, 0);
        assert!(out.report.conservation_holds());
        assert_eq!(out.per_core.len(), 1);
        assert_eq!(out.per_core[0].completed, arr.len() as u64);
        assert_eq!(out.handoff_msgs, 0, "one core, no hand-offs");
        // The shared tables were exercised through the fabric.
        assert!(out.coherence.reads > 0 && out.coherence.writes > 0);
        // One core: no cross-core transfers, ever.
        assert_eq!(out.coherence.transfers, 0);
        assert_eq!(out.coherence.invalidations, 0);
    }

    /// Table sizing: defaults reproduce the stock constants (so every
    /// pre-existing figure-9 cell is bit-identical), and
    /// `sized_for_flows` spreads per-message RMWs over a
    /// population-sized footprint, cutting slot ping-pong.
    #[test]
    fn shared_tables_size_with_the_flow_population() {
        let stock = cfg(2, DispatchPolicy::FlowHash, Discipline::Conventional);
        assert_eq!(stock.call_table_slots, signaling::call::CALL_TABLE_SLOTS);
        assert_eq!(
            stock.reass_table_slots,
            netstack::ipfrag::REASSEMBLY_TABLE_BYTES / netstack::ipfrag::REASSEMBLY_SLOT_BYTES
        );
        let big = stock.sized_for_flows(1_000_000);
        assert_eq!(big.call_table_slots, 1 << 20);
        assert_eq!(big.reass_table_slots, 1 << 20);
        assert_eq!(
            stock.sized_for_flows(1).call_table_slots,
            signaling::call::CALL_TABLE_SLOTS,
            "sizing never shrinks below the stock port"
        );

        // 4096 flows hammering 64 slots ping-pong constantly; the same
        // flows over a 4096-slot table mostly own distinct lines.
        let arr = arrivals(2000.0, 0.2, 4096, 4);
        let out_small = run_smp(&stock, &arr);
        let out_big = run_smp(&stock.sized_for_flows(4096), &arr);
        assert!(out_small.report.conservation_holds());
        assert!(out_big.report.conservation_holds());
        assert_eq!(out_small.report.completed, out_big.report.completed);
        assert!(
            out_big.coherence.transfers + out_big.coherence.invalidations
                < out_small.coherence.transfers + out_small.coherence.invalidations,
            "population-sized tables must reduce slot ping-pong: {} vs {}",
            out_big.coherence.transfers + out_big.coherence.invalidations,
            out_small.coherence.transfers + out_small.coherence.invalidations
        );
    }

    #[test]
    fn full_stack_dispatch_spreads_flows_across_cores() {
        let c = cfg(4, DispatchPolicy::FlowHash, Discipline::Conventional);
        let arr = arrivals(2000.0, 0.2, 64, 2);
        let out = run_smp(&c, &arr);
        assert!(out.report.conservation_holds());
        assert_eq!(out.report.completed, arr.len() as u64);
        let active = out.per_core.iter().filter(|r| r.msgs > 0).count();
        assert!(active >= 3, "64 flows over 4 cores should hit most cores");
        // Different cores write the same table slots: coherence traffic.
        assert!(out.coherence.transfers + out.coherence.invalidations > 0);
    }

    #[test]
    fn layer_affinity_pipelines_across_stages() {
        let c = cfg(
            4,
            DispatchPolicy::LayerAffinity,
            Discipline::Ldlp(BatchPolicy::DCacheFit),
        );
        let arr = arrivals(2000.0, 0.2, 16, 3);
        let n = arr.len() as u64;
        let out = run_smp(&c, &arr);
        assert!(out.report.conservation_holds());
        assert_eq!(out.report.completed, n);
        // 5 layers over 4 cores: 4 stages, every one of them worked.
        for s in 0..4 {
            assert!(out.per_core[s].msgs > 0, "stage {s} idle");
        }
        // Every message crossed 3 hand-off boundaries.
        assert_eq!(out.handoff_msgs, 3 * n);
        // Completions happen at the last stage only.
        assert_eq!(out.per_core[3].completed, n);
        assert_eq!(out.per_core[0].completed, 0);
    }

    #[test]
    fn more_cores_than_layers_leaves_extras_idle() {
        let c = cfg(
            8,
            DispatchPolicy::LayerAffinity,
            Discipline::Ldlp(BatchPolicy::DCacheFit),
        );
        let out = run_smp(&c, &arrivals(1000.0, 0.2, 8, 4));
        assert_eq!(out.per_core.len(), 8);
        assert!(out.per_core[..5].iter().all(|r| r.msgs > 0));
        assert!(out.per_core[5..].iter().all(|r| r.msgs == 0));
    }

    #[test]
    fn corrupted_messages_reject_at_the_entry_stage() {
        let mut arr = arrivals(1000.0, 0.2, 8, 5);
        for a in arr.iter_mut().step_by(10) {
            a.corrupted = true;
        }
        let want_rejected = arr.iter().filter(|a| a.corrupted).count() as u64;
        let c = cfg(
            4,
            DispatchPolicy::LayerAffinity,
            Discipline::Ldlp(BatchPolicy::DCacheFit),
        );
        let out = run_smp(&c, &arr);
        assert_eq!(out.report.rejected, want_rejected);
        assert_eq!(out.per_core[0].rejected, want_rejected, "verify is stage 0");
        assert_eq!(out.report.completed, arr.len() as u64 - want_rejected);
        assert!(out.report.conservation_holds());
    }

    #[test]
    fn runs_are_deterministic() {
        for dispatch in [
            DispatchPolicy::FlowHash,
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LayerAffinity,
        ] {
            let c = cfg(4, dispatch, Discipline::Ldlp(BatchPolicy::DCacheFit));
            let arr = arrivals(3000.0, 0.2, 32, 6);
            let a = run_smp(&c, &arr);
            let b = run_smp(&c, &arr);
            assert_eq!(a.report, b.report, "{dispatch:?}");
            assert_eq!(a.per_core, b.per_core, "{dispatch:?}");
            assert_eq!(a.coherence, b.coherence, "{dispatch:?}");
        }
    }

    #[test]
    fn overload_drops_at_entry_never_mid_pipeline() {
        let mut c = cfg(
            2,
            DispatchPolicy::LayerAffinity,
            Discipline::Ldlp(BatchPolicy::DCacheFit),
        );
        c.buffer_cap = 16;
        c.handoff_cap = 8;
        let out = run_smp(&c, &arrivals(60_000.0, 0.2, 16, 7));
        assert!(out.report.drops > 0, "overload must drop");
        assert!(out.report.conservation_holds());
        // Everything admitted made it out the far end: drains are full.
        assert_eq!(
            out.report.offered,
            out.report.completed + out.report.rejected + out.report.drops + out.report.shed
        );
    }

    #[test]
    fn stall_producer_mode_loses_nothing_and_charges_stalls() {
        let mut c = cfg(
            2,
            DispatchPolicy::LayerAffinity,
            Discipline::Ldlp(BatchPolicy::DCacheFit),
        );
        c.buffer_cap = 64;
        c.handoff_cap = 4;
        c.flow_control = HandoffFlowControl::StallProducer;
        let arr = arrivals(60_000.0, 0.2, 16, 7);
        let out = run_smp(&c, &arr);
        assert!(out.report.conservation_holds());
        // Drained fully: nothing left in queues, rings, or held buffers.
        assert_eq!(
            out.report.offered,
            out.report.completed + out.report.rejected + out.report.drops + out.report.shed
        );
        assert!(out.report.completed > 0);
        let stage0 = out.per_core[0];
        assert!(stage0.bp_stalls > 0, "a 4-deep ring under overload must stall the producer");
        assert!(stage0.bp_stall_cycles > 0, "stalls cost cycles");
        // The final stage has no downstream and can never stall.
        let last = out.per_core[out.per_core.len() - 1];
        assert_eq!(last.bp_stalls + last.bp_stall_cycles, 0);
        // The stock mode never stalls anywhere.
        c.flow_control = HandoffFlowControl::SizeToFree;
        let base = run_smp(&c, &arr);
        assert!(base.per_core.iter().all(|r| r.bp_stalls == 0 && r.bp_stall_cycles == 0));
    }

    #[test]
    fn stall_producer_runs_are_deterministic() {
        let mut c = cfg(
            3,
            DispatchPolicy::LayerAffinity,
            Discipline::Ldlp(BatchPolicy::DCacheFit),
        );
        c.handoff_cap = 8;
        c.flow_control = HandoffFlowControl::StallProducer;
        let arr = arrivals(30_000.0, 0.2, 16, 9);
        let a = run_smp(&c, &arr);
        let b = run_smp(&c, &arr);
        assert_eq!(a.report, b.report);
        assert_eq!(a.per_core, b.per_core);
        assert_eq!(a.coherence, b.coherence);
    }

    fn closed_pop(clients: u32, think_s: f64, duration_s: f64, seed: u64) -> ClosedPopulation {
        ClosedPopulation::new(&simnet::ClosedConfig::new(clients, think_s, duration_s, seed))
    }

    #[test]
    fn closed_loop_light_load_acks_every_request() {
        let c = cfg(1, DispatchPolicy::FlowHash, Discipline::Conventional);
        let mut pop = closed_pop(20, 0.01, 0.2, 5);
        let mut sim = SmpSim::new(&c);
        sim.run_closed(&mut pop, [1, 1, 1]);
        let out = sim.outcome(pop.channel_counters());
        let st = *pop.stats();
        assert!(st.useful > 50, "a light closed loop keeps cycling");
        assert_eq!(out.report.completed, st.useful, "every useful ack is a completion");
        assert_eq!(out.report.offered, st.offered, "server sees what the channel delivered");
        assert_eq!(out.report.abandoned, 0, "fast service leaves nothing stale");
        assert_eq!(st.abandoned_requests, 0);
        assert_eq!(st.transmissions, st.requests, "no retries at light load");
        assert!(out.report.conservation_holds());
        assert_eq!(out.report.mean_latency_us, {
            let l = pop.latencies_us();
            l.iter().sum::<f64>() / l.len() as f64
        });
    }

    #[test]
    fn closed_overload_retries_amplify_and_stale_work_is_conserved() {
        // A deliberately slow server: one core, a deep client
        // population, and a hair-trigger client RTO. Retransmitted
        // copies pile into the queue; the first copy to complete acks
        // the client and the rest finish stale (`abandoned`).
        let mut c = cfg(1, DispatchPolicy::FlowHash, Discipline::Conventional);
        c.buffer_cap = 256;
        let mut pc = simnet::ClosedConfig::new(300, 1e-4, 0.05, 11);
        pc.retry = simnet::RetryPolicy {
            rto_s: 0.001,
            ..simnet::RetryPolicy::default()
        };
        let mut pop = ClosedPopulation::new(&pc);
        let mut sim = SmpSim::new(&c);
        sim.run_closed(&mut pop, [1, 1, 1]);
        let out = sim.outcome(pop.channel_counters());
        let st = *pop.stats();
        assert!(st.retry_amplification() > 1.2, "overload must trigger retries");
        assert!(out.report.abandoned > 0, "duplicate copies complete stale");
        assert!(out.report.conservation_holds());
        // Drained: offered splits exactly into the terminal buckets.
        assert_eq!(
            out.report.offered,
            out.report.completed
                + out.report.rejected
                + out.report.drops
                + out.report.shed
                + out.report.abandoned
        );
        // Goodput counts useful acks only; throughput counts stale too.
        assert!(out.report.throughput > out.report.goodput);
    }

    #[test]
    fn closed_weighted_fair_sheds_the_overweight_class() {
        // Weights heavily favour call + dns; the rpc class is capped at
        // a sliver of the buffer, so under overload its packets are the
        // ones shed or refused.
        let mut c = cfg(1, DispatchPolicy::FlowHash, Discipline::Conventional);
        c.admission = AdmissionPolicy::WeightedFair;
        c.buffer_cap = 64;
        let mut pc = simnet::ClosedConfig::new(300, 1e-4, 0.05, 13);
        pc.retry = simnet::RetryPolicy {
            rto_s: 0.001,
            ..simnet::RetryPolicy::default()
        };
        let weights = [8, 8, 1];
        let mut pop = ClosedPopulation::new(&pc);
        let mut sim = SmpSim::new(&c);
        sim.run_closed(&mut pop, weights);
        let out = sim.outcome(pop.channel_counters());
        let st = *pop.stats();
        assert!(out.report.conservation_holds());
        let rpc = Class::Rpc.index();
        let lost_rpc = out.shed_by_class[rpc] + out.drops_by_class[rpc];
        let lost_call = out.shed_by_class[0] + out.drops_by_class[0];
        assert!(
            lost_rpc > lost_call,
            "the 1-weight class must absorb the overload: rpc lost {lost_rpc}, call lost {lost_call}"
        );
        // The favoured classes resolve a larger fraction of their
        // requests than the squeezed one.
        let frac = |i: usize| st.per_class_useful[i] as f64 / st.per_class_requests[i].max(1) as f64;
        assert!(
            frac(0) >= frac(rpc),
            "call fraction {} vs rpc fraction {}",
            frac(0),
            frac(rpc)
        );
    }

    #[test]
    fn closed_runs_are_deterministic_across_modes() {
        for fc in [HandoffFlowControl::SizeToFree, HandoffFlowControl::StallProducer] {
            let mut c = cfg(
                4,
                DispatchPolicy::LayerAffinity,
                Discipline::Ldlp(BatchPolicy::DCacheFit),
            );
            c.handoff_cap = 8;
            c.flow_control = fc;
            let run = || {
                let mut pop = closed_pop(60, 5e-4, 0.1, 17);
                let mut sim = SmpSim::new(&c);
                sim.run_closed(&mut pop, [4, 1, 2]);
                (sim.outcome(pop.channel_counters()), *pop.stats())
            };
            let (o1, s1) = run();
            let (o2, s2) = run();
            assert_eq!(o1.report, o2.report, "{fc:?}");
            assert_eq!(o1.per_core, o2.per_core, "{fc:?}");
            assert_eq!(s1, s2, "{fc:?}");
        }
    }

    /// Tags a deterministic class rotation onto an arrival stream.
    fn tag_classes(arr: &mut [FlowArrival], classes: &[u8]) {
        for (i, a) in arr.iter_mut().enumerate() {
            a.wclass = classes[i % classes.len()];
        }
    }

    #[test]
    fn workload_classes_are_accounted_and_charged() {
        let mut c = cfg(2, DispatchPolicy::FlowHash, Discipline::Conventional);
        c.wclass[1] = WClassProfile {
            handler_code_bytes: 4096,
            table_slots: 256,
            slo_us: 1e9,
        };
        c.wclass[2] = WClassProfile {
            handler_code_bytes: 512,
            table_slots: 16,
            slo_us: 1e-3,
        };
        let mut arr = arrivals(2000.0, 0.2, 32, 11);
        tag_classes(&mut arr, &[1, 2, 2]);
        let n1 = arr.iter().filter(|a| a.wclass == 1).count() as u64;
        let n2 = arr.iter().filter(|a| a.wclass == 2).count() as u64;
        let out = run_smp(&c, &arr);
        assert!(out.report.conservation_holds());
        assert_eq!(out.classes.len(), MAX_WCLASS);
        assert_eq!(out.classes[1].offered, n1);
        assert_eq!(out.classes[2].offered, n2);
        assert_eq!(out.classes[0].offered, 0, "no untagged traffic in this stream");
        // Light load: everything completes, and the per-class books
        // close exactly.
        for w in [1usize, 2] {
            let cl = &out.classes[w];
            assert_eq!(cl.offered, cl.completed + cl.rejected + cl.drops + cl.shed, "class {w}");
            assert!(cl.p99_latency_us >= cl.p50_latency_us && cl.p50_latency_us > 0.0);
        }
        // A generous SLO is met; an impossible one is not.
        assert_eq!(out.classes[1].slo_attainment, 1.0);
        assert_eq!(out.classes[2].slo_attainment, 0.0);
        // The big-handler class costs more I-misses per message than
        // the small-handler one (4 KB vs 0.5 KB swept per message).
        assert!(
            out.classes[1].mean_imiss > out.classes[2].mean_imiss,
            "class 1 ({}) should out-miss class 2 ({})",
            out.classes[1].mean_imiss,
            out.classes[2].mean_imiss
        );
    }

    #[test]
    fn class_tags_survive_pipeline_handoffs() {
        let mut c = cfg(
            4,
            DispatchPolicy::LayerAffinity,
            Discipline::Ldlp(BatchPolicy::DCacheFit),
        );
        c.wclass[3] = WClassProfile {
            handler_code_bytes: 1024,
            table_slots: 64,
            slo_us: 0.0,
        };
        let mut arr = arrivals(2000.0, 0.2, 16, 12);
        tag_classes(&mut arr, &[3]);
        let out = run_smp(&c, &arr);
        assert!(out.report.conservation_holds());
        assert_eq!(out.classes[3].completed, out.report.completed);
        assert_eq!(out.classes[3].offered, arr.len() as u64);
    }

    #[test]
    fn untagged_runs_are_bit_identical_with_and_without_class_profiles() {
        // Class 0 keeps the default (all-zero) profile, so a stream of
        // untagged arrivals must produce the same report whether or not
        // other classes are configured — the class machinery adds no
        // work to traffic that doesn't opt in.
        let base = cfg(2, DispatchPolicy::FlowHash, Discipline::Conventional);
        let mut tracked = base;
        tracked.wclass[5] = WClassProfile {
            handler_code_bytes: 8192,
            table_slots: 1024,
            slo_us: 100.0,
        };
        let arr = arrivals(3000.0, 0.2, 32, 13);
        let a = run_smp(&base, &arr);
        let b = run_smp(&tracked, &arr);
        assert_eq!(a.report, b.report);
        assert_eq!(a.per_core, b.per_core);
        assert_eq!(a.coherence, b.coherence);
        assert!(a.classes.is_empty(), "untracked run reports no classes");
        assert_eq!(b.classes[0].offered, arr.len() as u64, "untagged rides class 0");
        assert_eq!(b.classes[5].offered, 0);
    }

    #[test]
    fn reusing_the_simulator_keeps_accounting_exact() {
        let c = cfg(
            4,
            DispatchPolicy::LayerAffinity,
            Discipline::Ldlp(BatchPolicy::DCacheFit),
        );
        let arr = arrivals(2000.0, 0.2, 16, 8);
        let mut sim = SmpSim::new(&c);
        sim.run(&arr);
        let first = sim.outcome(ImpairCounters::default());
        sim.run(&arr);
        let second = sim.outcome(ImpairCounters::default());
        assert_eq!(first.report.completed, second.report.completed);
        assert!(second.report.conservation_holds());
        // Warm caches can only help: the second pass is no slower.
        assert!(second.report.mean_latency_us <= first.report.mean_latency_us * 1.01);
    }
}
