//! Regression tests for the parallel sweep runner: the figure 5/6/7 CSV
//! text produced from a multi-threaded sweep must be byte-identical to
//! the serial (`--threads 1`) reference on a reduced grid.

use bench::figures::{
    figure5_rows, figure6_rows, figure7_rows, FIGURE5_HEADER, FIGURE6_HEADER, FIGURE7_HEADER,
};
use bench::sweep::{clock_sweep, poisson_sweep};
use bench::{csv_text, RunOpts};
use cachesim::MachineConfig;

fn reduced_opts(threads: usize) -> RunOpts {
    RunOpts {
        seeds: 3,
        duration_s: 0.05,
        threads: Some(threads),
        ..RunOpts::default()
    }
}

#[test]
fn poisson_sweep_csv_is_thread_count_invariant() {
    let rates = [2000.0, 6000.0, 9000.0];
    let cfg = MachineConfig::synthetic_benchmark();
    let serial = poisson_sweep(&reduced_opts(1), cfg, &rates);
    let parallel = poisson_sweep(&reduced_opts(4), cfg, &rates);

    let fig5_serial = csv_text(&FIGURE5_HEADER, &figure5_rows(&serial));
    let fig5_parallel = csv_text(&FIGURE5_HEADER, &figure5_rows(&parallel));
    assert_eq!(fig5_serial, fig5_parallel, "figure5 CSV differs by thread count");

    let fig6_serial = csv_text(&FIGURE6_HEADER, &figure6_rows(&serial));
    let fig6_parallel = csv_text(&FIGURE6_HEADER, &figure6_rows(&parallel));
    assert_eq!(fig6_serial, fig6_parallel, "figure6 CSV differs by thread count");

    // Sanity: the reduced grid still produced real rows.
    assert_eq!(fig5_serial.lines().count(), rates.len() + 1);
    assert!(serial[0].conventional.mean_imiss > 0.0);
}

#[test]
fn clock_sweep_csv_is_thread_count_invariant() {
    let clocks = [20.0, 60.0];
    let cfg = MachineConfig::synthetic_benchmark();
    let serial = clock_sweep(&reduced_opts(1), cfg, &clocks);
    let parallel = clock_sweep(&reduced_opts(4), cfg, &clocks);

    let fig7_serial = csv_text(&FIGURE7_HEADER, &figure7_rows(&serial));
    let fig7_parallel = csv_text(&FIGURE7_HEADER, &figure7_rows(&parallel));
    assert_eq!(fig7_serial, fig7_parallel, "figure7 CSV differs by thread count");
    assert_eq!(fig7_serial.lines().count(), clocks.len() + 1);
}

#[test]
fn seed_average_is_thread_count_invariant() {
    use bench::sweep::{run_once, seed_average};
    use ldlp::Discipline;
    use simnet::traffic::{PoissonSource, TrafficSource};

    let run = |opts: &RunOpts| {
        seed_average(opts, |seed| {
            let arrivals = PoissonSource::new(4000.0, 552, seed).take_until(opts.duration_s);
            run_once(
                MachineConfig::synthetic_benchmark(),
                Discipline::Conventional,
                seed,
                &arrivals,
                opts.duration_s,
            )
        })
    };
    let serial = run(&reduced_opts(1));
    let parallel = run(&reduced_opts(4));
    // f64 averages must match exactly, not approximately: the reduction
    // order is fixed by seed, not by completion.
    assert_eq!(serial.mean_latency_us.to_bits(), parallel.mean_latency_us.to_bits());
    assert_eq!(serial.mean_imiss.to_bits(), parallel.mean_imiss.to_bits());
    assert_eq!(serial.drops, parallel.drops);
}

#[test]
fn figure9_csv_is_thread_count_invariant() {
    use bench::figure9::{figure9_rows, sweep, FIGURE9_HEADER};

    // The smoke grid (2 rates × {1, 4} cores × 6 variants) exercises
    // flow hashing, round-robin, and the layer-affinity pipeline with
    // cross-core hand-offs — the cases where worker scheduling could
    // leak into results if the multi-core event loop were not
    // deterministic.
    let run = |threads| {
        let opts = RunOpts {
            smoke: true,
            ..reduced_opts(threads)
        };
        csv_text(&FIGURE9_HEADER, &figure9_rows(&sweep(&opts)))
    };
    let serial = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(serial, two, "figure9 CSV differs between 1 and 2 threads");
    assert_eq!(serial, eight, "figure9 CSV differs between 1 and 8 threads");
    // Sanity: every (cell, variant) row is present and carries data.
    assert_eq!(serial.lines().count(), 2 * 2 * 6 + 1);
    assert!(serial.contains(",aff,"), "layer-affinity rows present");
}

#[test]
fn figure10_csv_is_thread_count_invariant() {
    use bench::figure10::{figure10_rows, sweep, FIGURE10_HEADER};

    // The smoke grid (2 populations × 2 disciplines × 3 lookup schemes)
    // exercises the flow-table probe charging and the seeded
    // random-eviction cache — the paths where worker scheduling could
    // leak into results if the lookup hook were not deterministic.
    let run = |threads| {
        let opts = RunOpts {
            smoke: true,
            ..reduced_opts(threads)
        };
        csv_text(&FIGURE10_HEADER, &figure10_rows(&sweep(&opts)))
    };
    let serial = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(serial, two, "figure10 CSV differs between 1 and 2 threads");
    assert_eq!(serial, eight, "figure10 CSV differs between 1 and 8 threads");
    // Sanity: every (cell, variant) row is present and carries data.
    assert_eq!(serial.lines().count(), 2 * 2 * 3 + 1);
    assert!(serial.contains(",fifo,"), "FIFO-cache rows present");
    assert!(serial.contains(",rand,"), "random-eviction rows present");
}

#[test]
fn metrics_json_is_thread_count_invariant() {
    use bench::sweep::poisson_sweep_observed;

    let rates = [2000.0, 9000.0];
    let cfg = MachineConfig::synthetic_benchmark();
    let run = |threads| {
        let (_, rec) = poisson_sweep_observed(&reduced_opts(threads), cfg, &rates, true);
        let rec = rec.expect("metrics recorder");
        obs::metrics::metrics_json(&[("experiment", "determinism-test".into())], &rec)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "metrics JSON differs by thread count");
    // The document really carries per-layer spans and value histograms.
    assert!(serial.contains("\"ldlp/rx:"), "per-layer span entries");
    assert!(serial.contains("\"ldlp/latency_us\""), "latency histogram");
    assert!(serial.contains("\"conv/batch\""), "batch spans");
}

#[test]
fn traced_run_produces_chrome_trace_events() {
    use bench::sweep::traced_poisson_runs;

    let cfg = MachineConfig::synthetic_benchmark();
    let traced = traced_poisson_runs(&reduced_opts(1), cfg, 6000.0);
    assert_eq!(traced.len(), 3, "conventional, ldlp, ilp");
    for (name, rec) in &traced {
        assert!(!rec.events().is_empty(), "{name} collected span events");
    }
    let parts: Vec<obs::TracePart> = traced
        .iter()
        .map(|(name, rec)| obs::TracePart {
            process: name,
            recorder: rec,
            units_per_us: cfg.clock_mhz,
        })
        .collect();
    let json = obs::trace::chrome_trace_json(&parts);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""), "complete events present");
    assert!(json.contains("ldlp/rx:"), "layer span names present");
}

#[test]
fn impairment_sweep_csv_is_thread_count_invariant() {
    use bench::impairments::{grid, impairment_sweep, impairments_rows, IMPAIRMENTS_HEADER};

    let opts = |threads| RunOpts {
        seeds: 1,
        duration_s: 0.05,
        threads: Some(threads),
        smoke: true,
        ..RunOpts::default()
    };
    let serial = impairment_sweep(&opts(1));
    let parallel = impairment_sweep(&opts(4));

    let text_serial = csv_text(&IMPAIRMENTS_HEADER, &impairments_rows(&serial));
    let text_parallel = csv_text(&IMPAIRMENTS_HEADER, &impairments_rows(&parallel));
    assert_eq!(
        text_serial, text_parallel,
        "impairments CSV differs by thread count"
    );
    assert_eq!(text_serial.lines().count(), grid(true).len() + 1);

    // The lossy cells really did lose and recover: the zero-loss rows
    // must show no retransmissions, the 10% rows must show plenty.
    let clean = &serial[0];
    assert_eq!(clean.recovery.retransmits, 0);
    let lossy = serial
        .iter()
        .find(|p| p.cell.loss_pct == 10.0)
        .expect("a 10% loss cell");
    assert!(lossy.recovery.retransmits > 0);
    assert!(lossy.conventional.goodput <= lossy.conventional.throughput);
}

#[test]
fn figure14_csv_is_thread_count_invariant() {
    use bench::figure14::{figure14_rows, sweep, FIGURE14_HEADER};

    // The smoke grid ({1, 4} cores × {conv, ldlp, aff}) drives the
    // mixed five-class stream through per-class accounting — the
    // machine-stats delta attribution and class-sample percentile
    // paths, where worker scheduling could leak into results if the
    // per-class tallies were not reduced in deterministic order.
    let run = |threads| {
        let opts = RunOpts {
            smoke: true,
            ..reduced_opts(threads)
        };
        csv_text(&FIGURE14_HEADER, &figure14_rows(&sweep(&opts)))
    };
    let serial = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(serial, two, "figure14 CSV differs between 1 and 2 threads");
    assert_eq!(serial, eight, "figure14 CSV differs between 1 and 8 threads");
    // Sanity: one row per (cell, class), and every class label shows up.
    assert_eq!(serial.lines().count(), 2 * 3 * 5 + 1);
    for label in ["sig", "rpc", "media", "dns", "agent"] {
        assert!(serial.contains(&format!(",{label},")), "{label} rows present");
    }
}

#[test]
fn figure13_csv_is_thread_count_invariant() {
    use bench::figure13::{figure13_rows, sweep, FIGURE13_HEADER};

    // The smoke grid (2 loads × 2 variants × 4 admission policies × 2
    // retry budgets) exercises the closed-loop driver end to end: the
    // client-event/acknowledgement frontier, weighted-fair admission,
    // and the stall-the-producer hand-off path — the places where
    // worker scheduling could leak into results if acknowledgement
    // delivery were not causally ordered.
    let run = |threads| {
        let opts = RunOpts {
            smoke: true,
            ..reduced_opts(threads)
        };
        csv_text(&FIGURE13_HEADER, &figure13_rows(&sweep(&opts)))
    };
    let serial = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(serial, two, "figure13 CSV differs between 1 and 2 threads");
    assert_eq!(serial, eight, "figure13 CSV differs between 1 and 8 threads");
    // Sanity: every cell is present and the grid carries both budgets
    // and all four admission policies.
    assert_eq!(serial.lines().count(), 2 * 2 * 4 * 2 + 1);
    assert!(serial.contains(",wfq,"), "weighted-fair rows present");
    assert!(serial.contains(",off,"), "unbudgeted-retry rows present");
}
