//! Microbenchmark of the footprint-replay memo (`cachesim::replay`):
//! the cost of one full LDLP layer sweep over the paper stack with a
//! cold signature cache (every fetch walks its ~192 lines and records a
//! transition) versus a warm one (every fetch is a table lookup).
//!
//! The warm/cold ratio is the apparatus speedup the memo buys each
//! steady-state simulated batch.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use cachesim::MachineConfig;
use ldlp::synth::paper_stack;

fn bench_replay_memo(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_memo");

    // One conventional-schedule lap: each layer's footprint fetched once,
    // which is exactly what the engine issues per message.
    group.bench_function("cold_signature_cache", |b| {
        b.iter_batched(
            || paper_stack(MachineConfig::synthetic_benchmark(), 1),
            |(mut m, layers)| {
                for (li, layer) in layers.iter().enumerate() {
                    black_box(m.fetch_code_footprint(li as u32, layer.code_lines()));
                }
                m
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("warm_signature_cache", |b| {
        let (mut m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 1);
        // Drive the schedule to its steady cycle so every transition is
        // recorded before measurement starts.
        for _ in 0..8 {
            for (li, layer) in layers.iter().enumerate() {
                m.fetch_code_footprint(li as u32, layer.code_lines());
            }
        }
        b.iter(|| {
            for (li, layer) in layers.iter().enumerate() {
                black_box(m.fetch_code_footprint(li as u32, layer.code_lines()));
            }
        });
        let stats = m.replay_stats();
        assert!(
            stats.hit_rate() > 0.5,
            "warm bench should run out of the memo: {stats:?}"
        );
    });

    group.finish();
}

criterion_group!(benches, bench_replay_memo);
criterion_main!(benches);
