//! Simulator-throughput benchmarks: how fast the cache-level engine
//! processes batches under each discipline. This bounds the wall-clock
//! cost of the Figure 5-7 sweeps (one simulated second at 10,000 msg/s is
//! ~20 M cache-line lookups).

use cachesim::MachineConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldlp::synth::{paper_stack, MessagePool};
use ldlp::{BatchPolicy, Discipline, SimMessage, StackEngine};
use std::hint::black_box;

fn batch(pool: &mut MessagePool, n: usize) -> Vec<SimMessage> {
    (0..n).map(|i| pool.make_message(i as u64, 552)).collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for (name, discipline) in [
        ("conventional", Discipline::Conventional),
        ("ilp", Discipline::Ilp),
        ("ldlp", Discipline::Ldlp(BatchPolicy::DCacheFit)),
    ] {
        group.throughput(Throughput::Elements(14));
        group.bench_with_input(
            BenchmarkId::new(name, "batch14"),
            &discipline,
            |b, &d| {
                let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 1);
                let mut engine = StackEngine::new(m, layers, d);
                let mut pool = MessagePool::new(16, 1536, 1);
                let msgs = batch(&mut pool, 14);
                b.iter(|| black_box(engine.process_batch(black_box(&msgs))))
            },
        );
    }
    group.finish();

    c.bench_function("cachesim/line_access_hit", |b| {
        let mut cache = cachesim::Cache::new(cachesim::CacheConfig::direct_mapped(8192, 32));
        cache.access_line(5, cachesim::AccessKind::Read);
        b.iter(|| black_box(cache.access_line(black_box(5), cachesim::AccessKind::Read)))
    });

    c.bench_function("cachesim/code_region_sweep_6KB", |b| {
        let mut m = cachesim::Machine::new(MachineConfig::synthetic_benchmark());
        let region = cachesim::Region::new(0x1000, 6144);
        b.iter(|| black_box(m.fetch_code(black_box(region))))
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
