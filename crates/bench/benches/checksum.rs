//! Real-hardware companion to Figure 8: throughput of the simple vs.
//! elaborate Internet-checksum routines at the paper's message sizes.
//!
//! On a modern host both routines run from L1, and — thirty years on —
//! the *simple* loop wins at every size: the compiler auto-vectorizes its
//! regular structure, while the hand-unrolled 4.4BSD shape defeats the
//! vectorizer. The paper's Section 5.1 advice ("simple checksum routines,
//! containing less than a few hundred bytes of code, are likely to be the
//! best design choices") aged well, just for one more reason than it
//! predicted. The 1990s warm/cold trade-off itself (where unrolling won
//! warm and lost cold below ~900 bytes) is reproduced by the `figure8`
//! binary's machine model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_checksums(c: &mut Criterion) {
    let data: Vec<u8> = (0..2048u32).map(|i| (i * 31 + 7) as u8).collect();
    let mut group = c.benchmark_group("checksum");
    for size in [64usize, 128, 256, 552, 900, 1500] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("simple", size), &size, |b, &n| {
            b.iter(|| netstack::checksum::simple(black_box(&data[..n])))
        });
        group.bench_with_input(BenchmarkId::new("elaborate", size), &size, |b, &n| {
            b.iter(|| netstack::checksum::elaborate(black_box(&data[..n])))
        });
    }
    group.finish();

    c.bench_function("checksum/incremental_update", |b| {
        let old = netstack::checksum::simple(&data[..552]);
        b.iter(|| netstack::checksum::update_word(black_box(old), black_box(0x1234), black_box(0x5678)))
    });
}

criterion_group!(benches, bench_checksums);
criterion_main!(benches);
