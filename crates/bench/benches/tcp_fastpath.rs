//! End-to-end receive-path throughput of the functional TCP stack: the
//! cost of one segment climbing checksum -> PCB lookup -> header
//! prediction -> socket buffer — the real-code analogue of the path the
//! paper traced.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netstack::tcp::machine::{TcpConfig, TcpStack};
use netstack::wire::ipv4::Ipv4Addr;
use std::hint::black_box;

const A: Ipv4Addr = Ipv4Addr([10, 0, 0, 1]);
const B: Ipv4Addr = Ipv4Addr([10, 0, 0, 2]);

/// Sets up an established connection pair and returns (receiver stack,
/// receiver socket, a template data segment generator state).
fn connected() -> (TcpStack, TcpStack, usize, usize) {
    let mut client = TcpStack::new(TcpConfig::default());
    let mut server = TcpStack::new(TcpConfig::default());
    server.listen(B, 80).unwrap();
    let cs = client.connect(A, B, 80, 0).unwrap();
    for _ in 0..8 {
        for seg in client.take_output() {
            let _ = server.input(seg.src, seg.dst, &seg.bytes, 0);
        }
        for seg in server.take_output() {
            let _ = client.input(seg.src, seg.dst, &seg.bytes, 0);
        }
    }
    let ss = server
        .take_events()
        .iter()
        .find_map(|(id, e)| {
            matches!(e, netstack::tcp::machine::TcpEvent::Accepted { .. }).then_some(*id)
        })
        .expect("accepted");
    (client, server, cs, ss)
}

fn bench_tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp");
    group.throughput(Throughput::Bytes(512));
    group.bench_function("receive_fastpath_512B_segment", |b| {
        let (mut client, mut server, cs, ss) = connected();
        let payload = [0x42u8; 512];
        let mut buf = [0u8; 2048];
        let mut now = 1u64;
        b.iter(|| {
            // Send one segment, receive it, drain buffers and ACKs.
            client.send(cs, &payload, now).expect("send");
            for seg in client.take_output() {
                let _ = server.input(seg.src, seg.dst, black_box(&seg.bytes), now);
            }
            for seg in server.take_output() {
                let _ = client.input(seg.src, seg.dst, &seg.bytes, now);
            }
            while server.recv(ss, &mut buf).unwrap() > 0 {}
            now += 1;
        })
    });
    group.finish();

    c.bench_function("tcp/handshake_and_teardown", |b| {
        b.iter(|| {
            let (mut client, mut server, cs, ss) = connected();
            client.close(cs, 1).unwrap();
            for _ in 0..4 {
                for seg in client.take_output() {
                    let _ = server.input(seg.src, seg.dst, &seg.bytes, 1);
                }
                for seg in server.take_output() {
                    let _ = client.input(seg.src, seg.dst, &seg.bytes, 1);
                }
            }
            black_box(server.state(ss))
        })
    });
}

criterion_group!(benches, bench_tcp);
criterion_main!(benches);
