//! Microbenchmark of the footprint-replay memo on the multi-core path
//! (`smp::SmpSim` over private replay-eligible machines):
//!
//! * **miss path** — a cold simulator: every layer sweep on every core
//!   walks its lines and records a (state, footprint) → transition.
//! * **hit path** — a warm simulator: the per-core state graphs have
//!   closed, so every sweep is a table lookup plus bulk counter update.
//! * **collision-free path** — a single machine cycling through many
//!   distinct footprints under one memo: exact interned keys mean no
//!   two footprints can alias, so the steady state must show zero
//!   `footprint-collision` bypasses while running entirely out of the
//!   table.
//!
//! The warm/cold ratio is the apparatus speedup the memo buys each
//! steady-state multi-core run; the collision-free check pins the
//! exactness property the speedup rests on.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use cachesim::{Machine, MachineConfig};
use ldlp::{BatchPolicy, Discipline};
use simnet::traffic::{PoissonSource, TrafficSource};
use smp::{tag_flows, DispatchPolicy, FlowArrival, SmpConfig, SmpSim};

fn workload() -> (SmpConfig, Vec<FlowArrival>) {
    let duration_s = 0.02;
    let cfg = SmpConfig {
        duration_s,
        ..SmpConfig::new(4, DispatchPolicy::FlowHash, Discipline::Ldlp(BatchPolicy::DCacheFit))
    };
    let raw = PoissonSource::new(4000.0, 552, 7).take_until(duration_s);
    (cfg, tag_flows(&raw, 32, 7))
}

fn bench_replay_memo_smp(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_memo_smp");
    group.sample_size(20);

    // Cold memo: each iteration builds fresh cores, so every sweep in
    // the run takes the record-a-transition miss path at least once.
    group.bench_function("cold_multi_core_run", |b| {
        let (cfg, arrivals) = workload();
        b.iter_batched(
            || SmpSim::new(&cfg),
            |mut sim| {
                sim.run(&arrivals);
                sim
            },
            BatchSize::SmallInput,
        );
    });

    // Warm memo: one simulator reused until its per-core state graphs
    // close (the alloc test pins the same point), then measured.
    group.bench_function("warm_multi_core_run", |b| {
        let (cfg, arrivals) = workload();
        let mut sim = SmpSim::new(&cfg);
        for _ in 0..150 {
            sim.run(&arrivals);
        }
        b.iter(|| sim.run(black_box(&arrivals)));
        let out = sim.outcome(simnet::ImpairCounters::default());
        assert!(
            out.replay.hit_rate() > 0.99,
            "warm multi-core runs should replay from the memo: {:?}",
            out.replay
        );
    });

    // Collision-free steady state: 32 distinct footprints share one
    // memo. Keys are exact interned states, so no footprint can alias
    // another — the warm loop must be all hits, zero bypasses.
    group.bench_function("distinct_footprints_no_collisions", |b| {
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        let line = m.config().icache.line_size;
        let footprints: Vec<Vec<u64>> = (0..32u64)
            .map(|f| (0..48).map(|i| (f * 0x4000 + i * line) / line).collect())
            .collect();
        for _ in 0..8 {
            for (fid, lines) in footprints.iter().enumerate() {
                m.fetch_code_footprint(fid as u32, lines);
            }
        }
        b.iter(|| {
            for (fid, lines) in footprints.iter().enumerate() {
                black_box(m.fetch_code_footprint(fid as u32, lines));
            }
        });
        let stats = m.replay_stats();
        assert_eq!(
            stats.bypasses, 0,
            "exact keys must never collide across distinct footprints: {stats:?}"
        );
        assert!(
            stats.hit_rate() > 0.9,
            "steady state should run out of the memo: {stats:?}"
        );
    });

    group.finish();
}

criterion_group!(benches, bench_replay_memo_smp);
criterion_main!(benches);
