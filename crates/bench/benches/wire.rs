//! Wire-format microbenchmarks: header parse and emit costs for every
//! protocol in the stack, plus the signalling codec. These are the
//! fixed per-message costs that dominate small-message protocols.

use criterion::{criterion_group, criterion_main, Criterion};
use netstack::wire::ethernet::{EtherType, EthernetAddr, EthernetRepr};
use netstack::wire::ipv4::{Ipv4Addr, Ipv4Repr, Protocol};
use netstack::wire::tcp::{SeqNumber, TcpFlags, TcpRepr};
use netstack::wire::udp::UdpRepr;
use std::hint::black_box;

const A: Ipv4Addr = Ipv4Addr([10, 0, 0, 1]);
const B: Ipv4Addr = Ipv4Addr([10, 0, 0, 2]);

fn bench_wire(c: &mut Criterion) {
    let eth = EthernetRepr {
        dst: EthernetAddr([2, 0, 0, 0, 0, 1]),
        src: EthernetAddr([2, 0, 0, 0, 0, 2]),
        ethertype: EtherType::Ipv4,
    };
    let eth_frame = eth.frame(&[0u8; 552]);
    c.bench_function("wire/ethernet_parse", |b| {
        b.iter(|| EthernetRepr::parse(black_box(&eth_frame)).unwrap())
    });

    let ip = Ipv4Repr {
        src: A,
        dst: B,
        protocol: Protocol::Tcp,
        ttl: 64,
        ident: 7,
        dont_frag: true,
        payload_len: 532,
    };
    let ip_pkt = ip.packet(&[0u8; 532]);
    c.bench_function("wire/ipv4_parse_and_verify", |b| {
        b.iter(|| Ipv4Repr::parse(black_box(&ip_pkt)).unwrap())
    });
    c.bench_function("wire/ipv4_emit", |b| {
        let mut buf = [0u8; 20];
        b.iter(|| black_box(&ip).emit(black_box(&mut buf)))
    });

    let tcp = TcpRepr {
        src_port: 33000,
        dst_port: 80,
        seq: SeqNumber(1000),
        ack: SeqNumber(2000),
        flags: TcpFlags::ACK,
        window: 8192,
        mss: None,
    };
    let seg = tcp.segment(A, B, &[0u8; 512]);
    c.bench_function("wire/tcp_parse_and_verify_512B", |b| {
        b.iter(|| TcpRepr::parse(black_box(&seg), A, B).unwrap())
    });
    c.bench_function("wire/tcp_emit_512B", |b| {
        let payload = [0u8; 512];
        b.iter(|| black_box(&tcp).segment(A, B, black_box(&payload)))
    });

    let udp = UdpRepr {
        src_port: 5000,
        dst_port: 53,
    };
    let dgram = udp.packet(A, B, &[0u8; 100]);
    c.bench_function("wire/udp_parse_and_verify", |b| {
        b.iter(|| UdpRepr::parse(black_box(&dgram), A, B).unwrap())
    });

    let setup = signaling::wire::sample_setup(42);
    let setup_bytes = setup.encode();
    c.bench_function("wire/q93b_setup_decode", |b| {
        b.iter(|| signaling::wire::Message::decode(black_box(&setup_bytes)).unwrap())
    });
    c.bench_function("wire/q93b_setup_encode", |b| {
        b.iter(|| black_box(&setup).encode())
    });
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
