//! Microbenchmarks of the protocol substrates added beyond the TCP stack:
//! the Q.93B, DNS and NFS-RPC codecs (per-message fixed costs — the
//! paper's whole subject), IP fragmentation/reassembly, the TCP
//! out-of-order assembler, and the functional layer-graph runtime's
//! scheduling overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_codecs(c: &mut Criterion) {
    // Q.93B SETUP.
    let setup = signaling::wire::sample_setup(7);
    let setup_bytes = setup.encode();
    c.bench_function("codec/q93b_setup_roundtrip", |b| {
        b.iter(|| {
            let m = signaling::wire::Message::decode(black_box(&setup_bytes)).unwrap();
            black_box(m.encode())
        })
    });

    // DNS query + server answer.
    let query = signaling::dns::DnsMessage::query(3, "cache.locality.example").encode();
    c.bench_function("codec/dns_server_handle", |b| {
        let mut server = signaling::dns::DnsServer::new();
        server.add_record(
            "cache.locality.example",
            netstack::wire::ipv4::Ipv4Addr::new(10, 0, 0, 5),
        );
        b.iter(|| black_box(server.handle(black_box(&query))))
    });

    // NFS-RPC LOOKUP.
    use signaling::rpc::{AttrServer, Procedure, RpcMessage, ROOT_HANDLE};
    let mut attr = AttrServer::new();
    attr.add_file(ROOT_HANDLE, b"fattr", 1024);
    let call = RpcMessage::Call {
        xid: 5,
        proc: Procedure::Lookup,
        handle: ROOT_HANDLE,
        name: b"fattr".to_vec(),
    }
    .encode();
    c.bench_function("codec/rpc_lookup_handle", |b| {
        b.iter(|| black_box(attr.handle(black_box(&call))))
    });
}

fn bench_ipfrag(c: &mut Criterion) {
    use netstack::ipfrag::{fragment, parse_fragment, Reassembler};
    use netstack::wire::ipv4::{Ipv4Addr, Ipv4Repr, Protocol};
    let repr = Ipv4Repr {
        src: Ipv4Addr::new(10, 0, 0, 1),
        dst: Ipv4Addr::new(10, 0, 0, 2),
        protocol: Protocol::Udp,
        ttl: 64,
        ident: 1,
        dont_frag: false,
        payload_len: 4000,
    };
    let payload = vec![0x5au8; 4000];
    c.bench_function("ipfrag/fragment_4KB_into_1500", |b| {
        b.iter(|| black_box(fragment(black_box(&repr), black_box(&payload), 1500).unwrap()))
    });
    let frags = fragment(&repr, &payload, 1500).unwrap();
    c.bench_function("ipfrag/reassemble_4KB", |b| {
        b.iter(|| {
            let mut re = Reassembler::new();
            let mut done = None;
            for f in &frags {
                let (r, field, data) = parse_fragment(f).unwrap();
                done = re.input(&r, field, data, 0);
            }
            black_box(done.unwrap().len())
        })
    });
}

fn bench_assembler(c: &mut Criterion) {
    use netstack::tcp::assembler::Assembler;
    c.bench_function("tcp/assembler_reverse_order_8x536", |b| {
        let seg = vec![0xa5u8; 536];
        b.iter(|| {
            let mut a = Assembler::new(1 << 16);
            for i in (1..8).rev() {
                a.insert(i * 536, &seg).unwrap();
            }
            // The in-order head arrives; everything cascades out.
            black_box(a.advance(536).len())
        })
    });
}

fn bench_graph(c: &mut Criterion) {
    use ldlp::graph::{Emitter, GraphLayer, LayerGraph, Schedule};
    struct Pass(bool);
    impl GraphLayer<u64> for Pass {
        fn name(&self) -> &str {
            "pass"
        }
        fn process(&mut self, m: u64, out: &mut Emitter<u64>) {
            if self.0 {
                out.deliver(m);
            } else {
                out.up(0, m);
            }
        }
    }
    for (name, schedule) in [
        ("conventional", Schedule::Conventional),
        ("ldlp", Schedule::Ldlp { entry_batch: 14 }),
    ] {
        c.bench_function(&format!("graph/{name}_5layers_14msgs"), |b| {
            b.iter(|| {
                let mut g = LayerGraph::new(schedule);
                let mut above = None;
                for i in (0..5).rev() {
                    let ports = above.map(|n| vec![n]).unwrap_or_default();
                    above = Some(g.add_layer(Box::new(Pass(i == 4)), ports));
                }
                g.set_entry(above.unwrap());
                for i in 0..14 {
                    g.inject(i);
                }
                black_box(g.run().len())
            })
        });
    }
}

criterion_group!(
    benches,
    bench_codecs,
    bench_ipfrag,
    bench_assembler,
    bench_graph
);
criterion_main!(benches);
