//! Mbuf-system microbenchmarks: the buffer operations the paper calls out
//! ("a buffer layer can easily grow in complexity to swamp the protocol
//! itself") — header prepend/strip, concatenation, and pullup.

use criterion::{criterion_group, criterion_main, Criterion};
use netstack::mbuf::{Mbuf, MbufChain};
use std::hint::black_box;

fn bench_mbuf(c: &mut Criterion) {
    c.bench_function("mbuf/header_strip_prepend_cycle", |b| {
        // The per-layer hot path: strip a 20-byte header on receive,
        // prepend one on transmit.
        let mut m = Mbuf::from_slice(&[0u8; 552]);
        b.iter(|| {
            m.strip(20).unwrap();
            m.prepend(20).unwrap()[0] = 0x45;
            black_box(m.len())
        })
    });

    c.bench_function("mbuf/chain_concat", |b| {
        b.iter(|| {
            let mut head = MbufChain::from_slice(&[1u8; 128]);
            head.concat(MbufChain::from_slice(&[2u8; 424]));
            black_box(head.len())
        })
    });

    c.bench_function("mbuf/pullup_fast_path", |b| {
        let mut chain = MbufChain::from_slice(&[0u8; 552]);
        b.iter(|| black_box(chain.pullup(40).unwrap().len()))
    });

    c.bench_function("mbuf/pullup_gather", |b| {
        b.iter_batched(
            || {
                let mut c = MbufChain::from_slice(&[1u8; 8]);
                c.concat(MbufChain::from_slice(&[2u8; 8]));
                c.concat(MbufChain::from_slice(&[3u8; 536]));
                c
            },
            |mut c| {
                black_box(c.pullup(40).unwrap().len());
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("mbuf/read_into_app_buffer", |b| {
        b.iter_batched(
            || MbufChain::from_slice(&[7u8; 552]),
            |mut c| {
                let mut dst = [0u8; 552];
                black_box(c.read_into(&mut dst))
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_mbuf);
criterion_main!(benches);
