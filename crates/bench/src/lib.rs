//! # bench — experiment harnesses
//!
//! One binary per table and figure of the paper (see DESIGN.md's
//! per-experiment index), plus Criterion microbenchmarks of the real code
//! paths. Each binary prints the paper's rows/series as an aligned table
//! and writes a CSV into `results/`.
//!
//! Common flags for the simulation figures:
//!
//! * `--seeds N` — random placements to average over (paper: 100;
//!   default here: 20 for a quick regeneration).
//! * `--duration S` — simulated seconds per (rate, seed) point
//!   (paper: 1.0; default: 1.0).
//! * `--out DIR` — output directory (default `results/`).
//! * `--threads N` — worker threads for the sweep runner (default: the
//!   `SMP_THREADS` environment variable, else all host cores). Output is
//!   byte-identical for every thread count; `--threads 1` is the serial
//!   reference path.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Common experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Number of seeded random placements to average over.
    pub seeds: u64,
    /// Simulated duration per point, seconds.
    pub duration_s: f64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Worker threads for the sweep runner; `None` defers to
    /// `SMP_THREADS`, then to the host's available parallelism.
    pub threads: Option<usize>,
    /// Reduced CI configuration (fewer grid points and seeds); binaries
    /// that honour it also write a `*_smoke.csv` so the golden file the
    /// CI compares against never collides with full results.
    pub smoke: bool,
    /// Write a chrome://tracing event file (`OUT_DIR/trace.json`) from a
    /// fully-traced representative run.
    pub trace: bool,
    /// Write deterministic per-layer metrics (`OUT_DIR/metrics.json`)
    /// accumulated over the whole sweep, merged in seed order — the file
    /// is byte-identical for every `--threads` count.
    pub metrics: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            seeds: 20,
            duration_s: 1.0,
            out_dir: PathBuf::from("results"),
            threads: None,
            smoke: false,
            trace: false,
            metrics: false,
        }
    }
}

impl RunOpts {
    /// Parses `--seeds`, `--duration`, `--out`, `--threads`, `--smoke`
    /// from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = RunOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seeds" => {
                    opts.seeds = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seeds needs a number"));
                    i += 2;
                }
                "--duration" => {
                    opts.duration_s = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--duration needs seconds"));
                    i += 2;
                }
                "--out" => {
                    opts.out_dir = args
                        .get(i + 1)
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--out needs a directory"));
                    i += 2;
                }
                "--threads" => {
                    opts.threads = Some(
                        args.get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--threads needs a count")),
                    );
                    i += 2;
                }
                "--smoke" => {
                    opts.smoke = true;
                    i += 1;
                }
                "--trace" => {
                    opts.trace = true;
                    i += 1;
                }
                "--metrics" => {
                    opts.metrics = true;
                    i += 1;
                }
                other => die(&format!("unknown flag {other}")),
            }
        }
        if opts.seeds == 0 {
            die("--seeds must be at least 1");
        }
        opts
    }

    /// The worker-thread count this run will actually use.
    pub fn effective_threads(&self) -> usize {
        simnet::par::resolve_threads(self.threads)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: <bin> [--seeds N] [--duration S] [--out DIR] [--threads N] [--smoke] \
         [--trace] [--metrics]"
    );
    std::process::exit(2);
}

/// Renders a CSV document as a string (exactly what [`write_csv`] puts on
/// disk — the determinism tests compare this text across thread counts).
pub fn csv_text(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut text = String::new();
    text.push_str(&header.join(","));
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    text
}

/// Writes a CSV file, creating the directory if needed.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut f = std::fs::File::create(path).expect("create CSV");
    f.write_all(csv_text(header, rows).as_bytes())
        .expect("write CSV");
    println!("wrote {}", path.display());
}

/// Prints an aligned text table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// The arrival-rate grid of Figures 5 and 6 (messages/second).
pub fn figure5_rates() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 500.0).collect()
}

/// The CPU-clock grid of Figure 7 (MHz).
pub fn figure7_clocks() -> Vec<f64> {
    vec![10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0, 60.0, 70.0, 80.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_grids() {
        let r = figure5_rates();
        assert_eq!(r.first(), Some(&500.0));
        assert_eq!(r.last(), Some(&10_000.0));
        assert_eq!(r.len(), 20);
        assert_eq!(figure7_clocks().len(), 11);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }

    #[test]
    fn perf_fragment_round_trips() {
        let text = perf::fragment_json("figure5", 8);
        assert_eq!(perf::json_u64(&text, "threads"), Some(8));
        assert!(perf::json_u64(&text, "replay_hits").is_some());
        assert_eq!(perf::json_u64(&text, "no_such_key"), None);
    }

    #[test]
    fn threads_flag_resolution() {
        let opts = RunOpts {
            threads: Some(3),
            ..RunOpts::default()
        };
        assert_eq!(opts.effective_threads(), 3);
        assert!(RunOpts::default().effective_threads() >= 1);
    }

    #[test]
    fn smoke_flag_defaults_off() {
        assert!(!RunOpts::default().smoke);
    }

    #[test]
    fn impairment_grid_shapes() {
        // 3 loss points x {iid, bursty} x 2 depths, minus the two
        // bursty-at-zero-loss cells; 6 loss points for the full grid.
        assert_eq!(impairments::grid(true).len(), 10);
        assert_eq!(impairments::grid(false).len(), 22);
        assert!(impairments::grid(false)
            .iter()
            .all(|c| !(c.bursty && c.loss_pct == 0.0)));
        let ch = impairments::cell_channel(
            impairments::ImpairCell {
                loss_pct: 5.0,
                bursty: true,
                reorder_depth: 8,
            },
            3,
        );
        assert_eq!(ch.drop_prob, 0.0, "bursty cells lose via the chain only");
        let ge = ch.gilbert.expect("bursty cell has a chain");
        assert!((ge.mean_loss() - 0.05).abs() < 1e-12);
        assert_eq!(ch.corrupt_prob, 0.025);
    }

    #[test]
    fn wire_exercise_clean_link_fires_no_exception_paths() {
        let w = impairments::wire_exercise(simnet::ImpairConfig::default());
        assert_eq!(w.checksum_rejects, 0);
        assert_eq!(w.ooo_buffered, 0);
        assert_eq!(w.reassembly_timeouts, 0);
    }

    #[test]
    fn wire_exercise_impaired_link_fires_them() {
        let w = impairments::wire_exercise(simnet::ImpairConfig {
            drop_prob: 0.10,
            corrupt_prob: 0.05,
            reorder_prob: 0.25,
            reorder_depth: 8,
            seed: 3,
            ..simnet::ImpairConfig::default()
        });
        assert!(w.tcp_retransmits > 0, "losses force TCP retransmission");
        assert!(w.checksum_rejects > 0, "byte flips are caught by checksums");
        let w2 = impairments::wire_exercise(simnet::ImpairConfig {
            drop_prob: 0.10,
            corrupt_prob: 0.05,
            reorder_prob: 0.25,
            reorder_depth: 8,
            seed: 3,
            ..simnet::ImpairConfig::default()
        });
        assert_eq!(w, w2, "the wire pass is deterministic");
    }

    #[test]
    fn csv_writing() {
        let dir = std::env::temp_dir().join("bench_csv_test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        std::fs::remove_dir_all(dir).ok();
    }
}

pub mod perf {
    //! Process-wide apparatus-performance counters and the per-binary
    //! perf fragment consumed by `all_experiments`.
    //!
    //! Every simulation run harvests its machine's footprint-replay
    //! counters into process-wide atomics; a binary then writes one JSON
    //! fragment (`results/perf/<name>.json`) which `all_experiments`
    //! merges — together with the wall time it measured for the child —
    //! into `results/perf_summary.json`.

    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);
    static BYPASSES: AtomicU64 = AtomicU64::new(0);
    /// First bypass reason any harvested machine reported. Stays unset
    /// when every machine replayed cleanly, so the fragment's
    /// `bypass_reason` is `null` exactly when `replay_bypasses` is an
    /// honest zero.
    static BYPASS_REASON: OnceLock<&'static str> = OnceLock::new();

    /// Folds one machine's replay counters into the process totals.
    pub fn note_replay(s: &cachesim::ReplayStats) {
        HITS.fetch_add(s.hits, Ordering::Relaxed);
        MISSES.fetch_add(s.misses, Ordering::Relaxed);
        BYPASSES.fetch_add(s.bypasses, Ordering::Relaxed);
    }

    /// Folds one machine's replay counters *and* its bypass reason into
    /// the process totals. Prefer this over [`note_replay`] whenever the
    /// machine itself is at hand: a config the memoizer can never serve
    /// (unified cache, board cache) then shows up in the perf fragment
    /// as a named reason instead of a silent zero.
    pub fn note_machine(m: &cachesim::Machine) {
        note_replay(&m.replay_stats());
        if let Some(why) = m.replay_bypass_reason().or_else(|| m.replay_ineligibility()) {
            let _ = BYPASS_REASON.set(why);
        }
    }

    /// The first bypass reason harvested so far, if any.
    pub fn bypass_reason() -> Option<&'static str> {
        BYPASS_REASON.get().copied()
    }

    /// The process-wide replay totals accumulated so far.
    pub fn replay_totals() -> cachesim::ReplayStats {
        cachesim::ReplayStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            bypasses: BYPASSES.load(Ordering::Relaxed),
        }
    }

    /// Renders the fragment JSON for a binary.
    pub fn fragment_json(name: &str, threads: usize) -> String {
        let t = replay_totals();
        let reason = match bypass_reason() {
            Some(why) => format!("\"{why}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"name\": \"{}\",\n  \"threads\": {},\n  \"replay_hits\": {},\n  \
             \"replay_misses\": {},\n  \"replay_bypasses\": {},\n  \"bypass_reason\": {},\n  \
             \"replay_hit_rate\": {:.4}\n}}\n",
            name,
            threads,
            t.hits,
            t.misses,
            t.bypasses,
            reason,
            t.hit_rate()
        )
    }

    /// Writes `OUT_DIR/perf/<name>.json` with this process's replay
    /// totals and thread count.
    pub fn write_fragment(out_dir: &Path, name: &str, threads: usize) {
        let dir = out_dir.join("perf");
        std::fs::create_dir_all(&dir).expect("create perf directory");
        std::fs::write(dir.join(format!("{name}.json")), fragment_json(name, threads))
            .expect("write perf fragment");
    }

    /// Pulls an integer field out of a fragment (good enough for the
    /// JSON this module itself writes).
    pub fn json_u64(text: &str, key: &str) -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = text.find(&pat)? + pat.len();
        let rest = text[at..].trim_start();
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// Pulls a string field out of a fragment; `None` for a `null`
    /// value or an absent key (same caveats as [`json_u64`]).
    pub fn json_str(text: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\":");
        let at = text.find(&pat)? + pat.len();
        let rest = text[at..].trim_start();
        let inner = rest.strip_prefix('"')?;
        let end = inner.find('"')?;
        inner.get(..end).map(str::to_string)
    }
}

pub mod sweep {
    //! Shared sweep runners for the simulation figures.
    //!
    //! All runners fan their independent (point, seed) jobs across
    //! `opts.effective_threads()` workers via [`simnet::par::run_indexed`]
    //! and reduce in deterministic seed order, so every CSV is
    //! byte-identical to a `--threads 1` run.

    use crate::RunOpts;
    use cachesim::MachineConfig;
    use ldlp::synth::paper_stack;
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use simnet::par::run_indexed;
    use simnet::stats::SimReport;
    use simnet::traffic::{Arrival, PoissonSource, SelfSimilarSource, TrafficSource};
    use simnet::{run_sim, SimConfig};

    /// One rate/clock point: averaged reports for the disciplines.
    #[derive(Debug, Clone)]
    pub struct SweepPoint {
        /// The swept parameter (arrival rate or clock MHz).
        pub x: f64,
        pub conventional: SimReport,
        pub ldlp: SimReport,
        /// Integrated layer processing — the prior art the paper contrasts
        /// with: helps data-heavy large messages, not small-message code
        /// locality. Populated by the Poisson sweep only.
        pub ilp: Option<SimReport>,
    }

    /// Runs one (engine-discipline, arrivals) pair on a fresh stack.
    pub fn run_once(
        cfg: MachineConfig,
        discipline: Discipline,
        placement_seed: u64,
        arrivals: &[Arrival],
        duration_s: f64,
    ) -> SimReport {
        run_once_with_sink(
            cfg,
            discipline,
            placement_seed,
            arrivals,
            duration_s,
            obs::Sink::Off,
            "",
        )
        .0
    }

    /// [`run_once`] with an observability sink attached to the engine for
    /// the duration of the run; events are interned as `<prefix><name>`.
    /// Returns the sink so one recorder can thread through several runs.
    pub fn run_once_with_sink(
        cfg: MachineConfig,
        discipline: Discipline,
        placement_seed: u64,
        arrivals: &[Arrival],
        duration_s: f64,
        sink: obs::Sink,
        prefix: &str,
    ) -> (SimReport, obs::Sink) {
        let (machine, layers) = paper_stack(cfg, placement_seed);
        let mut engine = StackEngine::new(machine, layers, discipline);
        engine.set_sink(sink, prefix);
        let sim_cfg = SimConfig {
            duration_s,
            pool_seed: placement_seed,
            ..SimConfig::default()
        };
        let report = run_sim(&mut engine, arrivals, &sim_cfg);
        crate::perf::note_machine(engine.machine());
        (report, engine.take_sink())
    }

    /// Runs `run(seed)` for seeds `1..=opts.seeds` across the worker
    /// pool and returns the per-seed results in seed order.
    pub fn per_seed<T, R>(opts: &RunOpts, run: R) -> Vec<T>
    where
        T: Send,
        R: Fn(u64) -> T + Sync,
    {
        run_indexed(opts.seeds as usize, opts.effective_threads(), |i| {
            run(i as u64 + 1)
        })
    }

    /// Averages `run(seed)` reports over `1..=opts.seeds`, fanned across
    /// the worker pool; the reduction folds in seed order so the average
    /// is identical for any thread count.
    pub fn seed_average<R>(opts: &RunOpts, run: R) -> SimReport
    where
        R: Fn(u64) -> SimReport + Sync,
    {
        SimReport::average(&per_seed(opts, run)).expect("at least one seed")
    }

    /// Figures 5 and 6: Poisson arrivals of 552-byte messages across the
    /// rate grid, conventional vs. LDLP, averaged over placements. Each
    /// (rate, seed) pair is one parallel job covering all three
    /// disciplines on the same arrival stream.
    pub fn poisson_sweep(opts: &RunOpts, cfg: MachineConfig, rates: &[f64]) -> Vec<SweepPoint> {
        poisson_sweep_observed(opts, cfg, rates, false).0
    }

    /// [`poisson_sweep`] with optional metrics recording: when `observe`
    /// is set, every (rate, seed) job runs with a metrics-mode sink and
    /// the per-job recorders are merged in job-index order — so the
    /// merged histograms are identical for every worker-thread count.
    pub fn poisson_sweep_observed(
        opts: &RunOpts,
        cfg: MachineConfig,
        rates: &[f64],
        observe: bool,
    ) -> (Vec<SweepPoint>, Option<Box<obs::Recorder>>) {
        type Job = (SimReport, SimReport, SimReport, Option<Box<obs::Recorder>>);
        let seeds = opts.seeds as usize;
        let mut runs: Vec<Job> = run_indexed(rates.len() * seeds, opts.effective_threads(), |i| {
            let rate = rates[i / seeds];
            let seed = (i % seeds) as u64 + 1;
            let arrivals = PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
            let sink = if observe {
                obs::Sink::record(false)
            } else {
                obs::Sink::Off
            };
            let (conv, sink) =
                run_once_with_sink(cfg, Discipline::Conventional, seed, &arrivals, opts.duration_s, sink, "conv/");
            let (ldlp, sink) = run_once_with_sink(
                cfg,
                Discipline::Ldlp(BatchPolicy::DCacheFit),
                seed,
                &arrivals,
                opts.duration_s,
                sink,
                "ldlp/",
            );
            let (ilp, sink) =
                run_once_with_sink(cfg, Discipline::Ilp, seed, &arrivals, opts.duration_s, sink, "ilp/");
            (conv, ldlp, ilp, sink.into_recorder())
        });
        let merged = merge_recorders(runs.iter_mut().map(|r| r.3.take()));
        let points = rates
            .iter()
            .enumerate()
            .map(|(ri, &rate)| {
                let chunk = &runs[ri * seeds..(ri + 1) * seeds];
                let pick = |sel: fn(&Job) -> &SimReport| {
                    SimReport::average(&chunk.iter().map(|r| sel(r).clone()).collect::<Vec<_>>())
                        .expect("at least one seed")
                };
                SweepPoint {
                    x: rate,
                    conventional: pick(|r| &r.0),
                    ldlp: pick(|r| &r.1),
                    ilp: Some(pick(|r| &r.2)),
                }
            })
            .collect();
        (points, merged)
    }

    /// Folds per-job recorders into one, in job-index order (the jobs ran
    /// on worker threads, but `run_indexed` returns them in index order,
    /// so the fold is deterministic for any thread count).
    fn merge_recorders(
        recorders: impl Iterator<Item = Option<Box<obs::Recorder>>>,
    ) -> Option<Box<obs::Recorder>> {
        let mut merged: Option<Box<obs::Recorder>> = None;
        for rec in recorders.flatten() {
            match merged.as_mut() {
                None => merged = Some(rec),
                Some(m) => m.merge(&rec),
            }
        }
        merged
    }

    /// Figure 7: trace-driven self-similar traffic at a fixed offered
    /// load, sweeping the CPU clock.
    pub fn clock_sweep(opts: &RunOpts, base: MachineConfig, clocks: &[f64]) -> Vec<SweepPoint> {
        clock_sweep_observed(opts, base, clocks, false).0
    }

    type ClockJob = (SimReport, SimReport, Option<Box<obs::Recorder>>);

    /// [`clock_sweep`] with optional metrics recording, merged in
    /// job-index order like [`poisson_sweep_observed`].
    pub fn clock_sweep_observed(
        opts: &RunOpts,
        base: MachineConfig,
        clocks: &[f64],
        observe: bool,
    ) -> (Vec<SweepPoint>, Option<Box<obs::Recorder>>) {
        let seeds = opts.seeds as usize;
        let mut runs = run_indexed(clocks.len() * seeds, opts.effective_threads(), |i| {
            let cfg = base.with_clock_mhz(clocks[i / seeds]);
            let seed = (i % seeds) as u64 + 1;
            let arrivals = SelfSimilarSource::bellcore_like(seed).take_until(opts.duration_s);
            let sink = if observe {
                obs::Sink::record(false)
            } else {
                obs::Sink::Off
            };
            let (conv, sink) =
                run_once_with_sink(cfg, Discipline::Conventional, seed, &arrivals, opts.duration_s, sink, "conv/");
            let (ldlp, sink) = run_once_with_sink(
                cfg,
                Discipline::Ldlp(BatchPolicy::DCacheFit),
                seed,
                &arrivals,
                opts.duration_s,
                sink,
                "ldlp/",
            );
            (conv, ldlp, sink.into_recorder())
        });
        let merged = merge_recorders(runs.iter_mut().map(|r| r.2.take()));
        let points = clocks
            .iter()
            .enumerate()
            .map(|(ci, &mhz)| {
                let chunk = &runs[ci * seeds..(ci + 1) * seeds];
                let avg = |sel: fn(&ClockJob) -> &SimReport| {
                    SimReport::average(&chunk.iter().map(|r| sel(r).clone()).collect::<Vec<_>>())
                        .expect("at least one seed")
                };
                SweepPoint {
                    x: mhz,
                    conventional: avg(|r| &r.0),
                    ldlp: avg(|r| &r.1),
                    ilp: None,
                }
            })
            .collect();
        (points, merged)
    }

    /// One fully-traced run per discipline at a single representative
    /// point (seed 1), for the chrome://tracing export. Returns
    /// `(process name, recorder)` pairs in a fixed order.
    pub fn traced_poisson_runs(
        opts: &RunOpts,
        cfg: MachineConfig,
        rate: f64,
    ) -> Vec<(&'static str, Box<obs::Recorder>)> {
        let arrivals = PoissonSource::new(rate, 552, 1).take_until(opts.duration_s);
        let runs: [(Discipline, &'static str, &'static str); 3] = [
            (Discipline::Conventional, "conventional", "conv/"),
            (Discipline::Ldlp(BatchPolicy::DCacheFit), "ldlp", "ldlp/"),
            (Discipline::Ilp, "ilp", "ilp/"),
        ];
        runs.into_iter()
            .map(|(d, name, prefix)| {
                let (_, sink) = run_once_with_sink(
                    cfg,
                    d,
                    1,
                    &arrivals,
                    opts.duration_s,
                    obs::Sink::record(true),
                    prefix,
                );
                (name, sink.into_recorder().expect("sink was attached"))
            })
            .collect()
    }

    /// Like [`traced_poisson_runs`] but over the self-similar trace
    /// source at one clock speed (conventional and LDLP only, matching
    /// the Figure 7 sweep).
    pub fn traced_clock_runs(
        opts: &RunOpts,
        base: MachineConfig,
        clock_mhz: f64,
    ) -> Vec<(&'static str, Box<obs::Recorder>)> {
        let cfg = base.with_clock_mhz(clock_mhz);
        let arrivals = SelfSimilarSource::bellcore_like(1).take_until(opts.duration_s);
        let runs: [(Discipline, &'static str, &'static str); 2] = [
            (Discipline::Conventional, "conventional", "conv/"),
            (Discipline::Ldlp(BatchPolicy::DCacheFit), "ldlp", "ldlp/"),
        ];
        runs.into_iter()
            .map(|(d, name, prefix)| {
                let (_, sink) = run_once_with_sink(
                    cfg,
                    d,
                    1,
                    &arrivals,
                    opts.duration_s,
                    obs::Sink::record(true),
                    prefix,
                );
                (name, sink.into_recorder().expect("sink was attached"))
            })
            .collect()
    }
}

pub mod obs_io {
    //! Exporters for the observability layer: a chrome://tracing event
    //! file and a deterministic per-run metrics JSON, both written into
    //! the experiment's output directory behind `--trace` / `--metrics`.

    use obs::{Recorder, TracePart};
    use std::path::Path;

    /// Writes `OUT_DIR/trace.json` (chrome trace-event format — open
    /// chrome://tracing or https://ui.perfetto.dev and load the file).
    pub fn write_trace(out_dir: &Path, parts: &[TracePart]) {
        std::fs::create_dir_all(out_dir).expect("create output directory");
        let path = out_dir.join("trace.json");
        std::fs::write(&path, obs::trace::chrome_trace_json(parts)).expect("write trace JSON");
        println!("wrote {} (load in chrome://tracing)", path.display());
    }

    /// Writes `OUT_DIR/metrics.json`. The meta block deliberately
    /// excludes the worker-thread count: the file must be byte-identical
    /// for every `--threads` value.
    pub fn write_metrics(out_dir: &Path, meta: &[(&str, String)], rec: &Recorder) {
        std::fs::create_dir_all(out_dir).expect("create output directory");
        let path = out_dir.join("metrics.json");
        std::fs::write(&path, obs::metrics::metrics_json(meta, rec)).expect("write metrics JSON");
        println!("wrote {}", path.display());
    }

    /// The standard meta block for a sweep binary.
    pub fn run_meta(experiment: &str, opts: &crate::RunOpts) -> Vec<(&'static str, String)> {
        vec![
            ("experiment", experiment.to_string()),
            ("seeds", opts.seeds.to_string()),
            ("duration_s", format!("{}", opts.duration_s)),
            ("smoke", opts.smoke.to_string()),
        ]
    }
}

pub mod impairments {
    //! The saturated-path impairment sweep (`results/impairments.csv`):
    //! the signalling workload rerun across a lossy channel with
    //! retransmission enabled, LDLP vs. conventional, over loss rates
    //! 0–10% (i.i.d. and Gilbert–Elliott bursty) and reorder depths.
    //! Every cell also drives real wire frames through the same
    //! impairment model at the netstack level, so the CSV records which
    //! exception paths fired: checksum rejection, TCP out-of-order
    //! buffering and retransmission, and IP reassembly timeout.

    use crate::{f, RunOpts};
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use netstack::iface::{Channel, Device, Interface};
    use netstack::ipfrag::REASSEMBLY_TIMEOUT_MS;
    use netstack::tcp::machine::{TcpConfig, TcpEvent, TcpStack};
    use netstack::tcp::pcb::TcpState;
    use netstack::wire::ethernet::EthernetAddr;
    use netstack::wire::ipv4::Ipv4Addr;
    use signaling::workload::{goal_machine, signaling_stack};
    use signaling::{lossy_call_arrivals, LossyCallConfig, RecoveryStats, RetryPolicy};
    use simnet::impair::{reorder_deliveries, GilbertElliott, ImpairConfig, ImpairState};
    use simnet::par::run_indexed;
    use simnet::stats::SimReport;
    use simnet::{run_sim_impaired, SimConfig};

    /// Call-attempt rate of the sweep: near the goal machine's knee, so
    /// the impairments act on a loaded switch rather than an idle one.
    pub const PAIRS_PER_S: f64 = 8_000.0;
    /// Mean call hold time, seconds (RELEASE follows SETUP by this).
    pub const HOLD_S: f64 = 0.02;

    /// One cell of the impairment grid.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct ImpairCell {
        /// Mean packet loss, percent.
        pub loss_pct: f64,
        /// Losses clustered by the Gilbert–Elliott chain instead of
        /// falling independently.
        pub bursty: bool,
        /// NIC-queue reorder depth (0 = in-order delivery).
        pub reorder_depth: usize,
    }

    /// The sweep grid: loss points x {i.i.d., bursty} x reorder depths.
    /// The bursty variant is skipped at zero loss (it would be identical
    /// to the i.i.d. row).
    pub fn grid(smoke: bool) -> Vec<ImpairCell> {
        let loss_pct: &[f64] = if smoke {
            &[0.0, 2.0, 10.0]
        } else {
            &[0.0, 0.5, 1.0, 2.0, 5.0, 10.0]
        };
        let mut cells = Vec::new();
        for &loss in loss_pct {
            for bursty in [false, true] {
                if bursty && loss == 0.0 {
                    continue;
                }
                for depth in [0usize, 8] {
                    cells.push(ImpairCell {
                        loss_pct: loss,
                        bursty,
                        reorder_depth: depth,
                    });
                }
            }
        }
        cells
    }

    /// The channel a cell stands for. Corruption scales with the loss
    /// rate (half of it), so the checksum-reject path is exercised in
    /// every impaired cell; bursty cells lose the same mean fraction in
    /// runs of ~4 packets.
    pub fn cell_channel(cell: ImpairCell, seed: u64) -> ImpairConfig {
        let loss = cell.loss_pct / 100.0;
        ImpairConfig {
            drop_prob: if cell.bursty { 0.0 } else { loss },
            gilbert: cell
                .bursty
                .then(|| GilbertElliott::bursty(loss, 4.0, 0.5)),
            corrupt_prob: loss / 2.0,
            seed,
            ..ImpairConfig::default()
        }
    }

    /// Exception-path counters from the wire-level pass.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct WireCounters {
        /// Frames rejected by a checksum after a payload byte flip.
        pub checksum_rejects: u64,
        /// TCP segments retransmitted to cover losses.
        pub tcp_retransmits: u64,
        /// TCP segments buffered past a receive gap.
        pub ooo_buffered: u64,
        /// IP reassemblies reclaimed by the timer after fragment loss.
        pub reassembly_timeouts: u64,
        /// IP reassemblies displaced by a newer datagram when the
        /// per-host reassembly table was full (distinct from timeouts).
        pub reassembly_evictions: u64,
    }

    /// A link-layer [`Device`] with the impairment channel on its
    /// transmit side: frames are dropped, corrupted (one byte flipped
    /// mid-frame, exactly what a checksum must catch), duplicated, or
    /// held back `reorder_slip` deliveries. `netstack` cannot depend on
    /// `simnet`, so the adapter lives here in the harness.
    pub struct ImpairedDevice<D: Device> {
        inner: D,
        chan: ImpairState,
        /// Held (reordered) frames: (deliveries still to pass them, frame).
        held: Vec<(usize, Vec<u8>)>,
    }

    impl<D: Device> ImpairedDevice<D> {
        /// Wraps `inner` with the impairment channel `cfg`.
        pub fn new(inner: D, cfg: ImpairConfig) -> Self {
            ImpairedDevice {
                inner,
                chan: ImpairState::new(cfg),
                held: Vec::new(),
            }
        }

        /// Channel counters accumulated so far.
        pub fn counters(&self) -> simnet::ImpairCounters {
            self.chan.counters()
        }

        /// A frame is being delivered: held frames each move one slot
        /// closer and any that are due go out ahead of it.
        fn advance_held(&mut self) {
            let mut i = 0;
            while i < self.held.len() {
                self.held[i].0 -= 1;
                if self.held[i].0 == 0 {
                    let (_, frame) = self.held.remove(i);
                    self.inner.transmit(frame);
                } else {
                    i += 1;
                }
            }
        }
    }

    impl<D: Device> Device for ImpairedDevice<D> {
        fn transmit(&mut self, mut frame: Vec<u8>) {
            let fate = self.chan.next_fate();
            if fate.dropped {
                return;
            }
            if fate.corrupted {
                let mid = frame.len() / 2;
                if let Some(b) = frame.get_mut(mid) {
                    *b ^= 0xff;
                }
            }
            // Same release rule as `simnet::impair`: every frame
            // crossing the channel advances the held ones, so holds are
            // bounded even if every frame reorders.
            self.advance_held();
            if fate.reorder_slip > 0 {
                self.held.push((fate.reorder_slip, frame));
                return;
            }
            let dup = fate.duplicated.then(|| frame.clone());
            self.inner.transmit(frame);
            if let Some(copy) = dup {
                self.inner.transmit(copy);
            }
        }

        fn receive(&mut self) -> Option<Vec<u8>> {
            self.inner.receive()
        }
    }

    fn wire_host(n: u8) -> Interface {
        Interface::new(
            EthernetAddr([2, 0, 0, 0, 0, n]),
            Ipv4Addr::new(192, 168, 96, n),
            TcpStack::new(TcpConfig::default()),
        )
    }

    /// How many fragmented UDP datagrams [`wire_exercise`] sends. Each
    /// fragments into three frames, so together with the TCP transfer
    /// the exchange pushes enough frames that a corruption probability
    /// of a few percent reliably trips a checksum somewhere.
    pub const WIRE_UDP_DATAGRAMS: usize = 24;

    /// Drives a 4 KB TCP transfer and fragmented UDP datagrams
    /// across an impaired link and reports which exception paths fired.
    /// TCP recovers losses by retransmission; fragments stranded by a
    /// lost sibling are reclaimed by the reassembly timer at the end.
    /// Completion is not asserted — at the heaviest impairment the
    /// point is precisely how much recovery work was needed — and the
    /// whole exchange is deterministic for a given channel config.
    pub fn wire_exercise(cfg: ImpairConfig) -> WireCounters {
        wire_exercise_with_sink(cfg, obs::Sink::Off).0
    }

    /// [`wire_exercise`] with an observability sink on the receiving
    /// interface: instant events (`wire/frame_in`, `wire/parse_error`,
    /// `wire/fragment_in`, …) stamped in milliseconds of link time.
    pub fn wire_exercise_with_sink(cfg: ImpairConfig, sink: obs::Sink) -> (WireCounters, obs::Sink) {
        let (ad, bd) = Channel::pair();
        let mut ad = ImpairedDevice::new(ad, cfg);
        let mut bd = ImpairedDevice::new(
            bd,
            ImpairConfig {
                seed: cfg.seed.wrapping_add(1),
                ..cfg
            },
        );
        let mut a = wire_host(1);
        let mut b = wire_host(2);
        b.set_sink(sink, "wire/");
        let (a_ip, a_mac, b_ip, b_mac) = (a.ip(), a.mac(), b.ip(), b.mac());
        a.add_arp_entry(b_ip, b_mac);
        b.add_arp_entry(a_ip, a_mac);
        b.udp_bind(4000).unwrap();
        b.tcp.listen(b_ip, 9).unwrap();
        let conn = a.tcp.connect(a_ip, b_ip, 9, 0).unwrap();

        let payload: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        let (mut sent, mut received, mut udp_sent) = (0usize, 0usize, 0usize);
        let mut srv = None;
        let mut buf = [0u8; 2048];
        let mut now: u64 = 0;
        while now < 120_000 {
            // Pump both directions until quiet (bounded: duplicates and
            // releases of held frames can extend an exchange).
            for _ in 0..200 {
                let n = a.poll(&mut ad, now) + b.poll(&mut bd, now);
                a.flush_tcp(&mut ad);
                b.flush_tcp(&mut bd);
                if n == 0 {
                    break;
                }
            }
            if srv.is_none() {
                srv = b
                    .tcp
                    .take_events()
                    .iter()
                    .find_map(|(id, e)| matches!(e, TcpEvent::Accepted { .. }).then_some(*id));
            }
            if a.tcp.state(conn) == TcpState::Established && sent < payload.len() {
                sent += a
                    .tcp
                    .send(conn, &payload[sent..(sent + 1000).min(payload.len())], now)
                    .unwrap_or(0);
                a.flush_tcp(&mut ad);
            }
            if let Some(s) = srv {
                while let Ok(n) = b.tcp.recv(s, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    received += n;
                }
            }
            if udp_sent < WIRE_UDP_DATAGRAMS {
                // A 3000-byte datagram fragments into three frames; any
                // lost fragment strands its siblings until the timer.
                a.udp_send(&mut ad, 4001, b_ip, 4000, &[0xab; 3000]);
                udp_sent += 1;
            }
            while b.udp_recv(4000).is_some() {}
            if received >= payload.len() && udp_sent >= WIRE_UDP_DATAGRAMS {
                break;
            }
            now += 1100; // step past the TCP RTO so losses retransmit
            a.tcp.poll(now);
            b.tcp.poll(now);
            a.flush_tcp(&mut ad);
            b.flush_tcp(&mut bd);
        }
        // One idle poll far enough out for stranded reassemblies to expire.
        let end = now + REASSEMBLY_TIMEOUT_MS + 1;
        a.poll(&mut ad, end);
        b.poll(&mut bd, end);
        let counters = WireCounters {
            checksum_rejects: a.stats().parse_errors + b.stats().parse_errors,
            tcp_retransmits: a.tcp.stats().retransmits + b.tcp.stats().retransmits,
            ooo_buffered: a.tcp.stats().ooo_buffered + b.tcp.stats().ooo_buffered,
            reassembly_timeouts: a.reassembly_stats().timeouts + b.reassembly_stats().timeouts,
            reassembly_evictions: a.reassembly_stats().evictions + b.reassembly_stats().evictions,
        };
        (counters, b.take_sink())
    }

    /// One finished cell: seed-averaged reports for both disciplines,
    /// recovery bookkeeping summed across seeds, and the wire-level
    /// exception-path counters.
    #[derive(Debug, Clone)]
    pub struct ImpairPoint {
        pub cell: ImpairCell,
        pub conventional: SimReport,
        pub ldlp: SimReport,
        /// Summed over seeds (totals, not means).
        pub recovery: RecoveryStats,
        pub wire: WireCounters,
    }

    fn fold_recovery(into: &mut RecoveryStats, s: &RecoveryStats) {
        into.calls += s.calls;
        into.connected += s.connected;
        into.abandoned += s.abandoned;
        into.transmissions += s.transmissions;
        into.retransmits += s.retransmits;
        into.releases_sent += s.releases_sent;
        into.abandon_releases += s.abandon_releases;
        into.exhausted_sends += s.exhausted_sends;
    }

    fn run_discipline(
        discipline: Discipline,
        seed: u64,
        deliveries: &[simnet::ImpairedArrival],
        net: simnet::ImpairCounters,
        duration_s: f64,
    ) -> SimReport {
        run_discipline_with_sink(discipline, seed, deliveries, net, duration_s, obs::Sink::Off, "").0
    }

    fn run_discipline_with_sink(
        discipline: Discipline,
        seed: u64,
        deliveries: &[simnet::ImpairedArrival],
        net: simnet::ImpairCounters,
        duration_s: f64,
        sink: obs::Sink,
        prefix: &str,
    ) -> (SimReport, obs::Sink) {
        let (machine, layers) = signaling_stack(goal_machine(), seed);
        // AAL5 (layer 0) carries the CRC-32, so corrupted deliveries die
        // there after costing exactly one layer of processing.
        let mut engine = StackEngine::new(machine, layers, discipline).with_verify_layer(0);
        engine.set_sink(sink, prefix);
        let sim_cfg = SimConfig {
            duration_s,
            pool_seed: seed,
            ..SimConfig::default()
        };
        let report = run_sim_impaired(&mut engine, deliveries, &sim_cfg, net);
        crate::perf::note_machine(engine.machine());
        assert!(
            report.conservation_holds(),
            "conservation violated: {report:?}"
        );
        (report, engine.take_sink())
    }

    /// The representative cell the `--trace`/`--metrics` pass reruns at
    /// seed 1: mid-grid loss with reordering, present in both the smoke
    /// and full grids.
    pub const OBSERVED_CELL: ImpairCell = ImpairCell {
        loss_pct: 2.0,
        bursty: false,
        reorder_depth: 8,
    };

    /// Reruns [`OBSERVED_CELL`] with sinks attached: the signalling
    /// workload under both disciplines shares one recorder (cycle
    /// timestamps), and the wire-level exchange gets its own (millisecond
    /// timestamps). Returns `(sim recorder, wire recorder)`.
    pub fn observed_cell(
        duration_s: f64,
        collect_spans: bool,
    ) -> (Box<obs::Recorder>, Box<obs::Recorder>) {
        let cell = OBSERVED_CELL;
        let seed = 1;
        let cfg = LossyCallConfig {
            pairs_per_s: PAIRS_PER_S,
            hold_s: HOLD_S,
            duration_s,
            seed,
            channel: cell_channel(cell, seed),
            retry: RetryPolicy::default(),
        };
        let (deliveries, counters, _stats) = lossy_call_arrivals(&cfg);
        let sink = obs::Sink::record(collect_spans);
        let (_, sink) = run_discipline_with_sink(
            Discipline::Conventional,
            seed,
            &deliveries,
            counters,
            duration_s,
            sink,
            "conv/",
        );
        let (_, sink) = run_discipline_with_sink(
            Discipline::Ldlp(BatchPolicy::DCacheFit),
            seed,
            &deliveries,
            counters,
            duration_s,
            sink,
            "ldlp/",
        );
        let sim_rec = sink.into_recorder().expect("sink was attached");
        let (_, wire_sink) = wire_exercise_with_sink(
            ImpairConfig {
                reorder_prob: 0.25,
                reorder_depth: cell.reorder_depth,
                ..cell_channel(cell, 0x0eed)
            },
            obs::Sink::record(collect_spans),
        );
        let wire_rec = wire_sink.into_recorder().expect("sink was attached");
        (sim_rec, wire_rec)
    }

    fn run_cell(cell: ImpairCell, seeds: u64, duration_s: f64) -> ImpairPoint {
        let mut conv = Vec::new();
        let mut ldlp = Vec::new();
        let mut recovery = RecoveryStats::default();
        for seed in 1..=seeds {
            let cfg = LossyCallConfig {
                pairs_per_s: PAIRS_PER_S,
                hold_s: HOLD_S,
                duration_s,
                seed,
                channel: cell_channel(cell, seed),
                retry: RetryPolicy::default(),
            };
            let (mut deliveries, mut counters, stats) = lossy_call_arrivals(&cfg);
            fold_recovery(&mut recovery, &stats);
            if cell.reorder_depth > 0 {
                let (reordered, rc) = reorder_deliveries(
                    &deliveries,
                    ImpairConfig {
                        reorder_prob: 0.25,
                        reorder_depth: cell.reorder_depth,
                        seed: seed ^ 0x5eed,
                        ..ImpairConfig::default()
                    },
                );
                deliveries = reordered;
                counters.reordered += rc.reordered;
            }
            conv.push(run_discipline(
                Discipline::Conventional,
                seed,
                &deliveries,
                counters,
                duration_s,
            ));
            ldlp.push(run_discipline(
                Discipline::Ldlp(BatchPolicy::DCacheFit),
                seed,
                &deliveries,
                counters,
                duration_s,
            ));
        }
        let wire = wire_exercise(ImpairConfig {
            reorder_prob: if cell.reorder_depth > 0 { 0.25 } else { 0.0 },
            reorder_depth: cell.reorder_depth,
            ..cell_channel(cell, 0x0eed)
        });
        ImpairPoint {
            cell,
            conventional: SimReport::average(&conv).expect("at least one seed"),
            ldlp: SimReport::average(&ldlp).expect("at least one seed"),
            recovery,
            wire,
        }
    }

    /// Runs the sweep, one parallel job per cell, reduced in grid order
    /// so the CSV is byte-identical for every thread count.
    pub fn impairment_sweep(opts: &RunOpts) -> Vec<ImpairPoint> {
        let cells = grid(opts.smoke);
        run_indexed(cells.len(), opts.effective_threads(), |i| {
            run_cell(cells[i], opts.seeds, opts.duration_s)
        })
    }

    pub const IMPAIRMENTS_HEADER: [&str; 20] = [
        "loss_pct",
        "burst",
        "reorder_depth",
        "conv_throughput",
        "ldlp_throughput",
        "conv_goodput",
        "ldlp_goodput",
        "conv_latency_us",
        "ldlp_latency_us",
        "conv_p99_us",
        "ldlp_p99_us",
        "conv_rejected",
        "ldlp_rejected",
        "retransmits",
        "abandoned",
        "wire_checksum_rejects",
        "wire_tcp_retransmits",
        "wire_ooo_buffered",
        "wire_reassembly_timeouts",
        "wire_reassembly_evictions",
    ];

    pub fn impairments_rows(points: &[ImpairPoint]) -> Vec<Vec<String>> {
        points
            .iter()
            .map(|p| {
                vec![
                    f(p.cell.loss_pct, 1),
                    (p.cell.bursty as u8).to_string(),
                    p.cell.reorder_depth.to_string(),
                    f(p.conventional.throughput, 1),
                    f(p.ldlp.throughput, 1),
                    f(p.conventional.goodput, 1),
                    f(p.ldlp.goodput, 1),
                    f(p.conventional.mean_latency_us, 2),
                    f(p.ldlp.mean_latency_us, 2),
                    f(p.conventional.p99_latency_us, 2),
                    f(p.ldlp.p99_latency_us, 2),
                    p.conventional.rejected.to_string(),
                    p.ldlp.rejected.to_string(),
                    p.recovery.retransmits.to_string(),
                    p.recovery.abandoned.to_string(),
                    p.wire.checksum_rejects.to_string(),
                    p.wire.tcp_retransmits.to_string(),
                    p.wire.ooo_buffered.to_string(),
                    p.wire.reassembly_timeouts.to_string(),
                    p.wire.reassembly_evictions.to_string(),
                ]
            })
            .collect()
    }
}

pub mod figure9 {
    //! Figure 9: multi-core protocol processing — arrival rate × core
    //! count × dispatch policy, Conventional vs. LDLP.
    //!
    //! Each cell runs `crates/smp`'s deterministic N-core simulator:
    //! per-core split L1 caches over a shared coherent L2, RSS-style
    //! flow hashing / first-seen round-robin / LDLP-aware layer
    //! affinity (software pipelining with bounded hand-off queues).
    //! The sweep fans independent (cell, variant, seed) jobs across
    //! worker threads and reduces in deterministic index order, so the
    //! CSV is byte-identical for any `--threads` value.

    use crate::{f, RunOpts};
    use ldlp::{BatchPolicy, Discipline};
    use simnet::impair::ImpairCounters;
    use simnet::par::run_indexed;
    use simnet::stats::SimReport;
    use simnet::traffic::{PoissonSource, TrafficSource};
    use smp::{tag_flows, DispatchPolicy, SmpConfig, SmpSim};

    /// Paper workload: 552-byte signalling-sized messages.
    pub const MSG_BYTES: u32 = 552;

    /// Synthetic flow population per run — enough concurrent flows that
    /// hashing can spread load over eight cores.
    pub const FLOWS: u32 = 64;

    /// One (discipline, dispatch) curve in the sweep.
    #[derive(Debug, Clone, Copy)]
    pub struct Variant {
        /// Discipline label used in the CSV (`conv` / `ldlp`).
        pub discipline_label: &'static str,
        pub discipline: Discipline,
        /// Dispatch label used in the CSV (`hash` / `rr` / `aff`).
        pub dispatch_label: &'static str,
        pub dispatch: DispatchPolicy,
    }

    /// The six swept curves: {Conventional, LDLP} × {hash, rr, aff}.
    pub fn variants() -> [Variant; 6] {
        let disciplines = [
            ("conv", Discipline::Conventional),
            ("ldlp", Discipline::Ldlp(BatchPolicy::DCacheFit)),
        ];
        let dispatches = [
            ("hash", DispatchPolicy::FlowHash),
            ("rr", DispatchPolicy::RoundRobin),
            ("aff", DispatchPolicy::LayerAffinity),
        ];
        let mut out = [Variant {
            discipline_label: "",
            discipline: Discipline::Conventional,
            dispatch_label: "",
            dispatch: DispatchPolicy::FlowHash,
        }; 6];
        let mut i = 0;
        for (dl, d) in disciplines {
            for (pl, p) in dispatches {
                out[i] = Variant {
                    discipline_label: dl,
                    discipline: d,
                    dispatch_label: pl,
                    dispatch: p,
                };
                i += 1;
            }
        }
        out
    }

    /// Core counts swept (smoke keeps the 1-vs-4 contrast only).
    pub fn core_counts(smoke: bool) -> &'static [usize] {
        if smoke {
            &[1, 4]
        } else {
            &[1, 2, 4, 8]
        }
    }

    /// Arrival rates swept (msg/s). The full grid spans light load
    /// through single-core saturation up past the affinity pipeline's
    /// bottleneck-stage capacity, so the round-robin/affinity crossover
    /// at high core counts is visible.
    pub fn rates(smoke: bool) -> &'static [f64] {
        if smoke {
            &[4000.0, 20000.0]
        } else {
            &[2000.0, 6000.0, 12000.0, 20000.0, 28000.0, 36000.0]
        }
    }

    /// One variant's seed-averaged measurements at a grid cell.
    #[derive(Debug, Clone)]
    pub struct VariantPoint {
        pub discipline: &'static str,
        pub dispatch: &'static str,
        pub report: SimReport,
        /// Mean dirty-line transfers between cores in the shared L2.
        pub l2_transfers: f64,
        /// Mean cross-core invalidations on shared-table writes.
        pub l2_invalidations: f64,
        /// Mean cycles stalled on L2/coherence traffic.
        pub l2_stall_cycles: f64,
        /// Mean messages crossing an inter-core hand-off queue.
        pub handoff_msgs: f64,
    }

    /// One (rate, cores) grid cell: all six variants.
    #[derive(Debug, Clone)]
    pub struct Figure9Point {
        pub rate: f64,
        pub cores: usize,
        pub variants: Vec<VariantPoint>,
    }

    type Job = (SimReport, [f64; 4], Option<Box<obs::Recorder>>);

    fn run_cell(
        rate: f64,
        cores: usize,
        variant: &Variant,
        seed: u64,
        duration_s: f64,
        observe: bool,
    ) -> Job {
        let raw = PoissonSource::new(rate, MSG_BYTES, seed).take_until(duration_s);
        let arrivals = tag_flows(&raw, FLOWS, seed);
        let cfg = SmpConfig {
            duration_s,
            placement_seed: seed,
            ..SmpConfig::new(cores, variant.dispatch, variant.discipline)
        };
        let mut sim = SmpSim::new(&cfg);
        if observe {
            sim.set_sinks(false);
        }
        sim.run(&arrivals);
        let out = sim.outcome(ImpairCounters::default());
        crate::perf::note_replay(&out.replay);
        let rec = if observe {
            let mut merged: Option<Box<obs::Recorder>> = None;
            for (_, rec) in sim.take_recorders() {
                match merged.as_mut() {
                    None => merged = Some(rec),
                    Some(m) => m.merge(&rec),
                }
            }
            merged
        } else {
            None
        };
        (
            out.report,
            [
                out.coherence.transfers as f64,
                out.coherence.invalidations as f64,
                out.coherence.stall_cycles as f64,
                out.handoff_msgs as f64,
            ],
            rec,
        )
    }

    /// The full sweep: every (rate, cores) cell × six variants ×
    /// `opts.seeds` placements, averaged per variant in seed order.
    pub fn sweep(opts: &RunOpts) -> Vec<Figure9Point> {
        sweep_observed(opts, false).0
    }

    /// [`sweep`] with optional metrics recording; per-core recorders
    /// are folded per job (core order) then across jobs (index order),
    /// so the merged document is thread-count invariant.
    pub fn sweep_observed(
        opts: &RunOpts,
        observe: bool,
    ) -> (Vec<Figure9Point>, Option<Box<obs::Recorder>>) {
        let rates = rates(opts.smoke);
        let core_counts = core_counts(opts.smoke);
        let vars = variants();
        let nv = vars.len();
        let seeds = opts.seeds as usize;
        let mut cells: Vec<(f64, usize)> = Vec::new();
        for &rate in rates {
            for &cores in core_counts {
                cells.push((rate, cores));
            }
        }
        let mut runs: Vec<Job> = run_indexed(
            cells.len() * nv * seeds,
            opts.effective_threads(),
            |i| {
                let (rate, cores) = cells[i / (nv * seeds)];
                let variant = &vars[(i / seeds) % nv];
                let seed = (i % seeds) as u64 + 1;
                run_cell(rate, cores, variant, seed, opts.duration_s, observe)
            },
        );

        let mut points = Vec::new();
        for (ci, &(rate, cores)) in cells.iter().enumerate() {
            let mut per_variant = Vec::new();
            for (vi, v) in vars.iter().enumerate() {
                let chunk = &runs[ci * nv * seeds + vi * seeds..ci * nv * seeds + (vi + 1) * seeds];
                let reports: Vec<SimReport> = chunk.iter().map(|job| job.0.clone()).collect();
                let report = SimReport::average(&reports).expect("at least one seed");
                let mut acc = [0.0f64; 4];
                for job in chunk {
                    for (a, x) in acc.iter_mut().zip(job.1) {
                        *a += x;
                    }
                }
                for a in &mut acc {
                    *a /= seeds as f64;
                }
                per_variant.push(VariantPoint {
                    discipline: v.discipline_label,
                    dispatch: v.dispatch_label,
                    report,
                    l2_transfers: acc[0],
                    l2_invalidations: acc[1],
                    l2_stall_cycles: acc[2],
                    handoff_msgs: acc[3],
                });
            }
            points.push(Figure9Point {
                rate,
                cores,
                variants: per_variant,
            });
        }
        let mut merged: Option<Box<obs::Recorder>> = None;
        for job in &mut runs {
            if let Some(rec) = job.2.take() {
                match merged.as_mut() {
                    None => merged = Some(rec),
                    Some(m) => m.merge(&rec),
                }
            }
        }
        (points, merged)
    }

    /// Span-traced runs at one representative cell, for `trace.json`:
    /// each (discipline, dispatch) variant contributes one track per
    /// core, named `<disc>-<disp>/core<i>`.
    pub fn traced_runs(
        opts: &RunOpts,
        rate: f64,
        cores: usize,
    ) -> Vec<(String, Box<obs::Recorder>)> {
        let seed = 1u64;
        let raw = PoissonSource::new(rate, MSG_BYTES, seed).take_until(opts.duration_s);
        let arrivals = tag_flows(&raw, FLOWS, seed);
        let mut out = Vec::new();
        for v in variants() {
            let cfg = SmpConfig {
                duration_s: opts.duration_s,
                placement_seed: seed,
                ..SmpConfig::new(cores, v.dispatch, v.discipline)
            };
            let mut sim = SmpSim::new(&cfg);
            sim.set_sinks(true);
            sim.run(&arrivals);
            let outcome = sim.outcome(ImpairCounters::default());
            crate::perf::note_replay(&outcome.replay);
            for (name, rec) in sim.take_recorders() {
                out.push((
                    format!("{}-{}/{}", v.discipline_label, v.dispatch_label, name),
                    rec,
                ));
            }
        }
        out
    }

    /// CSV schema: one row per (rate, cores, discipline, dispatch).
    pub const FIGURE9_HEADER: [&str; 17] = [
        "rate",
        "cores",
        "discipline",
        "dispatch",
        "imiss_per_msg",
        "dmiss_per_msg",
        "mean_latency_us",
        "p99_latency_us",
        "throughput",
        "goodput",
        "drops",
        "shed",
        "mean_batch",
        "l2_transfers",
        "l2_invalidations",
        "l2_stall_cycles",
        "handoff_msgs",
    ];

    /// Rows for [`FIGURE9_HEADER`], shared between the `figure9` binary
    /// and the thread-count determinism regression test.
    pub fn figure9_rows(points: &[Figure9Point]) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for p in points {
            for v in &p.variants {
                rows.push(vec![
                    f(p.rate, 0),
                    p.cores.to_string(),
                    v.discipline.to_string(),
                    v.dispatch.to_string(),
                    f(v.report.mean_imiss, 2),
                    f(v.report.mean_dmiss, 2),
                    f(v.report.mean_latency_us, 1),
                    f(v.report.p99_latency_us, 1),
                    f(v.report.throughput, 0),
                    f(v.report.goodput, 0),
                    v.report.drops.to_string(),
                    v.report.shed.to_string(),
                    f(v.report.mean_batch, 3),
                    f(v.l2_transfers, 1),
                    f(v.l2_invalidations, 1),
                    f(v.l2_stall_cycles, 0),
                    f(v.handoff_msgs, 1),
                ]);
            }
        }
        rows
    }
}

pub mod figure10 {
    //! Figure 10: million-flow data working sets — cache-aware flow
    //! lookup tables under Zipf and packet-train flow popularity.
    //!
    //! Every message charges one flow-table lookup through the engine's
    //! private machine: a small per-flow lookup cache (Jain's
    //! DEC-TR-592 schemes: LRU / FIFO / random × 1–64 slots) is scanned
    //! first, and on a miss the open-addressing flow table's *actual
    //! probe sequence* is replayed as data references, so D-misses per
    //! lookup are simulated, not guessed. The sweep spans concurrent
    //! flow populations 10^2 → 10^6 × {Conventional, LDLP} × lookup
    //! scheme, fanned across worker threads and reduced in index order
    //! — the CSV is byte-identical for any `--threads` value.

    use crate::{f, RunOpts};
    use cachesim::MachineConfig;
    use ldlp::synth::paper_stack;
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use netstack::table::{mix64, CacheScheme, LookupCache, OaTable};
    use simnet::par::run_indexed;
    use simnet::stats::SimReport;
    use simnet::traffic::{PoissonSource, TrafficSource};
    use simnet::{run_sim_lookup, LookupCharge, SimConfig};

    /// Paper workload: 552-byte signalling-sized messages.
    pub const MSG_BYTES: u32 = 552;

    /// Fixed offered load (msg/s) — well inside single-CPU capacity, so
    /// latency differences come from lookup D-misses, not queueing.
    pub const RATE: f64 = 2000.0;

    /// Simulated address of the open-addressing flow table.
    pub const FLOW_TABLE_BASE: u64 = 0x4000_0000;
    /// Simulated address of the per-flow lookup cache.
    pub const LOOKUP_CACHE_BASE: u64 = 0x4800_0000;
    /// Bytes per table / cache slot (key + value + occupancy tag).
    pub const SLOT_BYTES: u64 = 16;

    /// Concurrent-flow populations swept (smoke keeps the 10^2 vs 10^4
    /// contrast only; the full grid spans 10^2 → 10^6).
    pub fn populations(smoke: bool) -> &'static [u64] {
        if smoke {
            &[100, 10_000]
        } else {
            &[100, 1_000, 10_000, 100_000, 1_000_000]
        }
    }

    /// Flow-popularity model for the arrival stream's flow IDs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum PopModel {
        /// Independent Zipf(s=1) draws per message.
        Zipf,
        /// Packet trains: a Zipf-drawn flow persists for a
        /// Pareto-distributed burst of messages (self-similar locality).
        Train,
    }

    impl PopModel {
        pub fn label(self) -> &'static str {
            match self {
                PopModel::Zipf => "zipf",
                PopModel::Train => "train",
            }
        }
    }

    /// One swept lookup configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct Variant {
        pub scheme: CacheScheme,
        pub cache_slots: usize,
        pub popmodel: PopModel,
    }

    /// The swept lookup configurations. The full grid reproduces Jain's
    /// cache-scheme comparison (LRU depth sweep, FIFO and random at a
    /// common depth) plus a packet-train locality column; smoke keeps
    /// the three schemes at one depth.
    pub fn variants(smoke: bool) -> &'static [Variant] {
        const FULL: [Variant; 6] = [
            Variant { scheme: CacheScheme::Lru, cache_slots: 1, popmodel: PopModel::Zipf },
            Variant { scheme: CacheScheme::Lru, cache_slots: 16, popmodel: PopModel::Zipf },
            Variant { scheme: CacheScheme::Lru, cache_slots: 64, popmodel: PopModel::Zipf },
            Variant { scheme: CacheScheme::Fifo, cache_slots: 16, popmodel: PopModel::Zipf },
            Variant { scheme: CacheScheme::Random, cache_slots: 16, popmodel: PopModel::Zipf },
            Variant { scheme: CacheScheme::Lru, cache_slots: 16, popmodel: PopModel::Train },
        ];
        const SMOKE: [Variant; 3] = [
            Variant { scheme: CacheScheme::Lru, cache_slots: 16, popmodel: PopModel::Zipf },
            Variant { scheme: CacheScheme::Fifo, cache_slots: 16, popmodel: PopModel::Zipf },
            Variant { scheme: CacheScheme::Random, cache_slots: 16, popmodel: PopModel::Zipf },
        ];
        if smoke {
            &SMOKE
        } else {
            &FULL
        }
    }

    /// Deterministic xorshift64* stream for flow draws.
    struct Rng(u64);

    impl Rng {
        fn new(seed: u64) -> Self {
            Rng(mix64(seed) | 1)
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in [0, 1).
        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Zipf(s = 1) sampler over `1..=n` via a precomputed harmonic CDF
    /// and binary search.
    pub struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        pub fn new(n: u64) -> Self {
            let mut cdf = Vec::with_capacity(n as usize);
            let mut acc = 0.0f64;
            for k in 1..=n {
                acc += 1.0 / k as f64;
                cdf.push(acc);
            }
            for c in &mut cdf {
                *c /= acc;
            }
            Zipf { cdf }
        }

        /// Maps a uniform `u` in [0, 1) to a 0-based flow rank.
        pub fn draw(&self, u: f64) -> u32 {
            let i = self.cdf.partition_point(|&c| c <= u);
            i.min(self.cdf.len().saturating_sub(1)) as u32
        }
    }

    /// The per-message flow-ID sequence: `n` draws over a population of
    /// `pop` flows, ranked by Zipf popularity. `Train` mode holds each
    /// drawn flow for a Pareto(α = 1.5) burst (capped at 64 messages),
    /// so consecutive messages revisit the same table entry — the
    /// locality a lookup cache exploits.
    pub fn flow_sequence(pop: u64, n: usize, seed: u64, model: PopModel) -> Vec<u32> {
        let zipf = Zipf::new(pop);
        let mut rng = Rng::new(seed ^ mix64(pop));
        let mut out = Vec::with_capacity(n);
        match model {
            PopModel::Zipf => {
                for _ in 0..n {
                    out.push(zipf.draw(rng.next_f64()));
                }
            }
            PopModel::Train => {
                while out.len() < n {
                    let flow = zipf.draw(rng.next_f64());
                    let u = rng.next_f64();
                    let burst = (1.0 - u).powf(-1.0 / 1.5).min(64.0) as usize;
                    for _ in 0..burst.max(1) {
                        if out.len() == n {
                            break;
                        }
                        out.push(flow);
                    }
                }
            }
        }
        out
    }

    /// Charges each message's flow lookup to the engine's machine: scan
    /// the lookup cache (its resident footprint), and on a cache miss
    /// replay the open-addressing table's probe sequence as data reads
    /// plus one cache-fill write.
    pub struct TableCharge {
        table: OaTable<u64, u32>,
        cache: LookupCache<u64, u32>,
        key_salt: u64,
        probes_total: u64,
        lookups: u64,
    }

    impl TableCharge {
        /// Builds the flow table with `pop` live entries. Keys are
        /// drawn from a per-seed key space so slot placement (and thus
        /// probe clustering) varies across placements.
        pub fn new(pop: u64, scheme: CacheScheme, cache_slots: usize, seed: u64) -> Self {
            let key_salt = mix64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ pop);
            let mut table = OaTable::with_capacity(pop as usize);
            for flow in 0..pop {
                table.insert(mix64(key_salt ^ flow), flow as u32);
            }
            TableCharge {
                table,
                cache: LookupCache::new(scheme, cache_slots, seed),
                key_salt,
                probes_total: 0,
                lookups: 0,
            }
        }

        /// Probe count per successful table walk, averaged over the run.
        pub fn mean_probes(&self) -> f64 {
            if self.lookups == 0 {
                0.0
            } else {
                self.probes_total as f64 / self.lookups as f64
            }
        }

        pub fn cache_stats(&self) -> netstack::table::LookupCacheStats {
            self.cache.stats()
        }
    }

    impl LookupCharge for TableCharge {
        fn charge(&mut self, flow_id: u32, machine: &mut cachesim::Machine) -> u64 {
            let key = mix64(self.key_salt ^ flow_id as u64);
            // The cache's linear scan stops at the hit slot (LRU's
            // move-to-front keeps hot flows near the front — Jain's
            // argument for the scheme); a miss scans every entry.
            let scanned_slots = match self.cache.position(&key) {
                Some(pos) => pos + 1,
                None => self.cache.len(),
            };
            let scanned: Vec<u32> = (0..scanned_slots as u32).collect();
            let mut dm = machine.read_data_probes(LOOKUP_CACHE_BASE, SLOT_BYTES, &scanned);
            if self.cache.get(&key).is_some() {
                return dm;
            }
            self.lookups += 1;
            if self.table.get_mut(&key).is_some() {
                self.probes_total += self.table.last_probes().len() as u64;
                dm += machine.read_data_probes(FLOW_TABLE_BASE, SLOT_BYTES, self.table.last_probes());
                self.cache.insert(key, flow_id);
                dm += machine.write_data_slot(LOOKUP_CACHE_BASE, SLOT_BYTES, 0);
            }
            dm
        }
    }

    /// One variant's seed-averaged measurements at a grid cell.
    #[derive(Debug, Clone)]
    pub struct VariantPoint {
        pub scheme: &'static str,
        pub cache_slots: usize,
        pub popmodel: &'static str,
        pub report: SimReport,
        /// Lookup-cache hit rate over the run.
        pub cache_hit_rate: f64,
        /// Mean open-addressing probes per table walk (cache misses).
        pub mean_probes: f64,
    }

    /// One (population, discipline) grid cell: all swept variants.
    #[derive(Debug, Clone)]
    pub struct Figure10Point {
        pub population: u64,
        pub discipline: &'static str,
        pub variants: Vec<VariantPoint>,
    }

    type Job = (SimReport, [f64; 4]);

    fn run_cell(
        pop: u64,
        discipline: Discipline,
        variant: &Variant,
        seed: u64,
        duration_s: f64,
    ) -> Job {
        let arrivals = PoissonSource::new(RATE, MSG_BYTES, seed).take_until(duration_s);
        let flow_ids = flow_sequence(pop, arrivals.len(), seed, variant.popmodel);
        let (machine, layers) = paper_stack(MachineConfig::synthetic_benchmark(), seed);
        let mut engine = StackEngine::new(machine, layers, discipline);
        let mut lookup = TableCharge::new(pop, variant.scheme, variant.cache_slots, seed);
        let sim_cfg = SimConfig {
            duration_s,
            pool_seed: seed,
            ..SimConfig::default()
        };
        let report = run_sim_lookup(&mut engine, &arrivals, &flow_ids, &sim_cfg, &mut lookup);
        crate::perf::note_machine(engine.machine());
        let stats = lookup.cache_stats();
        (
            report,
            [
                stats.hits as f64,
                stats.misses as f64,
                lookup.probes_total as f64,
                lookup.lookups as f64,
            ],
        )
    }

    /// The full sweep: every (population, discipline) cell × swept
    /// variants × `opts.seeds` placements, averaged in seed order.
    pub fn sweep(opts: &RunOpts) -> Vec<Figure10Point> {
        let pops = populations(opts.smoke);
        let disciplines: [(&'static str, Discipline); 2] = [
            ("conv", Discipline::Conventional),
            ("ldlp", Discipline::Ldlp(BatchPolicy::DCacheFit)),
        ];
        let vars = variants(opts.smoke);
        let nv = vars.len();
        let seeds = opts.seeds as usize;
        let mut cells: Vec<(u64, usize)> = Vec::new();
        for &pop in pops {
            for (di, _) in disciplines.iter().enumerate() {
                cells.push((pop, di));
            }
        }
        let runs: Vec<Job> = run_indexed(cells.len() * nv * seeds, opts.effective_threads(), |i| {
            let (pop, di) = cells[i / (nv * seeds)];
            let variant = &vars[(i / seeds) % nv];
            let seed = (i % seeds) as u64 + 1;
            run_cell(pop, disciplines[di].1, variant, seed, opts.duration_s)
        });

        let mut points = Vec::new();
        for (ci, &(pop, di)) in cells.iter().enumerate() {
            let mut per_variant = Vec::new();
            for (vi, v) in vars.iter().enumerate() {
                let chunk = &runs[ci * nv * seeds + vi * seeds..ci * nv * seeds + (vi + 1) * seeds];
                let reports: Vec<SimReport> = chunk.iter().map(|job| job.0.clone()).collect();
                let report = SimReport::average(&reports).expect("at least one seed");
                let mut acc = [0.0f64; 4];
                for job in chunk {
                    for (a, x) in acc.iter_mut().zip(job.1) {
                        *a += x;
                    }
                }
                let [hits, misses, probes, walks] = acc;
                per_variant.push(VariantPoint {
                    scheme: v.scheme.label(),
                    cache_slots: v.cache_slots,
                    popmodel: v.popmodel.label(),
                    report,
                    cache_hit_rate: if hits + misses > 0.0 { hits / (hits + misses) } else { 0.0 },
                    mean_probes: if walks > 0.0 { probes / walks } else { 0.0 },
                });
            }
            points.push(Figure10Point {
                population: pop,
                discipline: disciplines[di].0,
                variants: per_variant,
            });
        }
        points
    }

    /// CSV schema: one row per (population, discipline, variant).
    pub const FIGURE10_HEADER: [&str; 14] = [
        "population",
        "discipline",
        "scheme",
        "cache_slots",
        "popmodel",
        "imiss_per_msg",
        "dmiss_per_msg",
        "mean_latency_us",
        "p99_latency_us",
        "throughput",
        "drops",
        "mean_batch",
        "cache_hit_rate",
        "mean_probes",
    ];

    /// Rows for [`FIGURE10_HEADER`], shared between the `figure10`
    /// binary and the thread-count determinism regression test.
    pub fn figure10_rows(points: &[Figure10Point]) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for p in points {
            for v in &p.variants {
                rows.push(vec![
                    p.population.to_string(),
                    p.discipline.to_string(),
                    v.scheme.to_string(),
                    v.cache_slots.to_string(),
                    v.popmodel.to_string(),
                    f(v.report.mean_imiss, 2),
                    f(v.report.mean_dmiss, 2),
                    f(v.report.mean_latency_us, 1),
                    f(v.report.p99_latency_us, 1),
                    f(v.report.throughput, 0),
                    v.report.drops.to_string(),
                    f(v.report.mean_batch, 3),
                    f(v.cache_hit_rate, 4),
                    f(v.mean_probes, 3),
                ]);
            }
        }
        rows
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn zipf_draws_are_skewed_and_in_range() {
            let pop = 1000u64;
            let seq = flow_sequence(pop, 4000, 7, PopModel::Zipf);
            assert_eq!(seq.len(), 4000);
            assert!(seq.iter().all(|&v| (v as u64) < pop));
            let head = seq.iter().filter(|&&v| v < 10).count();
            // Zipf(s=1) over 1000 puts ~39% of mass on the top 10.
            assert!(head > seq.len() / 5, "top-10 flows got {head}/4000");
            assert_eq!(seq, flow_sequence(pop, 4000, 7, PopModel::Zipf));
        }

        #[test]
        fn trains_revisit_flows_in_runs() {
            let seq = flow_sequence(10_000, 4000, 3, PopModel::Train);
            let repeats = seq.windows(2).filter(|w| w[0] == w[1]).count();
            let zipf = flow_sequence(10_000, 4000, 3, PopModel::Zipf);
            let zipf_repeats = zipf.windows(2).filter(|w| w[0] == w[1]).count();
            assert!(
                repeats > zipf_repeats + 200,
                "trains: {repeats} adjacent repeats vs zipf's {zipf_repeats}"
            );
        }

        #[test]
        fn table_charge_hits_every_live_flow() {
            let mut machine = cachesim::Machine::new(MachineConfig::synthetic_benchmark());
            let mut tc = TableCharge::new(500, CacheScheme::Lru, 4, 1);
            for flow in 0..500u32 {
                tc.charge(flow, &mut machine);
            }
            let stats = tc.cache_stats();
            assert_eq!(stats.hits + stats.misses, 500);
            assert_eq!(tc.lookups, stats.misses, "every cache miss walked the table");
            assert!(tc.mean_probes() >= 1.0);
        }

        #[test]
        fn bigger_population_means_more_lookup_dmisses() {
            let opts = RunOpts {
                seeds: 2,
                duration_s: 0.05,
                smoke: true,
                ..RunOpts::default()
            };
            let points = sweep(&opts);
            assert_eq!(points.len(), 4, "2 populations x 2 disciplines");
            let dmiss = |pop: u64, disc: &str| -> f64 {
                points
                    .iter()
                    .find(|p| p.population == pop && p.discipline == disc)
                    .map(|p| p.variants[0].report.mean_dmiss)
                    .unwrap_or(f64::NAN)
            };
            assert!(
                dmiss(10_000, "conv") > dmiss(100, "conv"),
                "10^4 flows should miss more than 10^2: {} vs {}",
                dmiss(10_000, "conv"),
                dmiss(100, "conv")
            );
        }
    }
}

pub mod figure13 {
    //! Figure 13: closed-loop overload — retrying client populations
    //! against a multi-core server, sweeping offered load from half to
    //! three times capacity.
    //!
    //! Open-loop Poisson sweeps (figures 5–10) hold the arrival process
    //! fixed no matter how the server behaves; production overload is
    //! closed-loop: clients that time out *retransmit*, so a slow
    //! server recruits its own extra load. Each cell here runs
    //! [`smp::SmpSim::run_closed`] against a [`ClosedPopulation`] of
    //! retrying clients in three traffic classes (call signalling, DNS,
    //! bulk RPC) and reports goodput — *useful* acknowledgements per
    //! second — against throughput, which also counts work the server
    //! finished after the client stopped waiting (`stale`). The gap
    //! between the two curves is the metastable-collapse signature:
    //! past saturation an unbudgeted-retry population keeps the queue
    //! full of duplicate copies and goodput falls even though the
    //! server never idles.
    //!
    //! Axes: load multiplier × {conv, ldlp} × four admission policies ×
    //! retry budget {on, off}. The `ldlp` variant runs the
    //! layer-affinity pipeline with [`HandoffFlowControl::StallProducer`],
    //! so its `bp_stall_cycles` column shows real backpressure instead
    //! of clairvoyant batch sizing. The sweep fans independent
    //! (cell, seed) jobs across worker threads and reduces in
    //! deterministic index order, so the CSV is byte-identical for any
    //! `--threads` value.

    use crate::{f, RunOpts};
    use ldlp::{AdmissionPolicy, BatchPolicy, Discipline};
    use simnet::closed::{Class, ClosedPopulation};
    use simnet::par::run_indexed;
    use simnet::stats::SimReport;
    use simnet::ClosedConfig;
    use smp::{DispatchPolicy, HandoffFlowControl, SmpConfig, SmpSim};

    /// Server cores per cell (the figure 9 smoke contrast point).
    pub const CORES: usize = 4;

    /// Closed-loop client population. Divisible by [`Class::COUNT`] so
    /// the three classes are equally populated; deep enough that the
    /// retry traffic of waiting clients can push offered load well past
    /// capacity even while the loop itself throttles first
    /// transmissions.
    pub const CLIENTS: u32 = 600;

    /// Admission weights for the `wfq` rows: call signalling gets the
    /// largest share, bulk RPC the smallest (order is
    /// [`Class::ALL`] = call, DNS, RPC).
    pub const WEIGHTS: [u32; Class::COUNT] = [4, 2, 1];

    /// One (discipline, dispatch, flow-control) server build.
    #[derive(Debug, Clone, Copy)]
    pub struct Variant {
        /// CSV label (`conv` / `ldlp`).
        pub label: &'static str,
        pub discipline: Discipline,
        pub dispatch: DispatchPolicy,
        pub flow_control: HandoffFlowControl,
        /// Measured useful-completion capacity of this build at
        /// [`CORES`] cores (msg/s), read off its saturation plateau
        /// under this figure's configuration (shallow hand-off rings
        /// included). The load multiplier axis is relative to *this*
        /// build's capacity, so "2x" means the same relative overload
        /// for both variants.
        pub capacity_msg_s: f64,
    }

    /// The two server builds: conventional per-message processing with
    /// RSS-style flow hashing, and the LDLP layer-affinity pipeline
    /// with stall-the-producer hand-off flow control.
    pub fn variants() -> [Variant; 2] {
        [
            Variant {
                label: "conv",
                discipline: Discipline::Conventional,
                dispatch: DispatchPolicy::FlowHash,
                flow_control: HandoffFlowControl::SizeToFree,
                capacity_msg_s: 14_000.0,
            },
            Variant {
                label: "ldlp",
                discipline: Discipline::Ldlp(BatchPolicy::DCacheFit),
                dispatch: DispatchPolicy::LayerAffinity,
                flow_control: HandoffFlowControl::StallProducer,
                capacity_msg_s: 20_000.0,
            },
        ]
    }

    /// One admission policy under test.
    #[derive(Debug, Clone, Copy)]
    pub struct AdmissionVariant {
        /// CSV label (`tail` / `head` / `shed` / `wfq`).
        pub label: &'static str,
        pub policy: AdmissionPolicy,
    }

    /// The four admission policies: the paper's tail-drop, head-drop
    /// (bounds the queueing delay of everything that completes — the
    /// anti-metastability lever), interrupt-level shedding, and
    /// per-class weighted-fair admission with [`WEIGHTS`].
    pub fn admissions() -> [AdmissionVariant; 4] {
        [
            AdmissionVariant {
                label: "tail",
                policy: AdmissionPolicy::TailDrop,
            },
            AdmissionVariant {
                label: "head",
                policy: AdmissionPolicy::HeadDrop,
            },
            AdmissionVariant {
                label: "shed",
                policy: AdmissionPolicy::ShedOldest { down_to: 64 },
            },
            AdmissionVariant {
                label: "wfq",
                policy: AdmissionPolicy::WeightedFair,
            },
        ]
    }

    /// Offered-load multipliers relative to each variant's capacity
    /// (smoke keeps one underload and one overload point).
    pub fn loads(smoke: bool) -> &'static [f64] {
        if smoke {
            &[0.5, 2.0]
        } else {
            &[0.5, 1.0, 1.5, 2.0, 3.0]
        }
    }

    /// One grid cell: everything but the seed.
    #[derive(Debug, Clone, Copy)]
    pub struct Cell {
        pub load: f64,
        pub variant: Variant,
        pub admission: AdmissionVariant,
        /// `true`: the default bounded retry budget (clients abandon
        /// after `max_retries`); `false`: clients retransmit until
        /// acknowledged — the metastable configuration.
        pub budget_on: bool,
    }

    /// The full cell grid in CSV row order.
    pub fn cells(smoke: bool) -> Vec<Cell> {
        let mut out = Vec::new();
        for &load in loads(smoke) {
            for variant in variants() {
                for admission in admissions() {
                    for budget_on in [true, false] {
                        out.push(Cell {
                            load,
                            variant,
                            admission,
                            budget_on,
                        });
                    }
                }
            }
        }
        out
    }

    /// Per-seed side metrics carried alongside the [`SimReport`]:
    /// client-side retry accounting, per-class losses and useful
    /// fractions, and producer backpressure.
    const EXTRAS: usize = 12;

    type Job = (SimReport, [f64; EXTRAS]);

    fn run_cell(cell: &Cell, seed: u64, duration_s: f64) -> Job {
        let v = cell.variant;
        // A closed loop with N clients and mean think time Z offers
        // first transmissions at N / (Z + R); sizing Z = N / target
        // hits the target when responses are fast and lets retries —
        // not the think process — carry the load past capacity.
        let think_s = CLIENTS as f64 / (cell.load * v.capacity_msg_s);
        let mut pc = ClosedConfig::new(CLIENTS, think_s, duration_s, seed);
        pc.retry_budget_on = cell.budget_on;
        let mut pop = ClosedPopulation::new(&pc);
        let cfg = SmpConfig {
            duration_s,
            placement_seed: seed,
            admission: cell.admission.policy,
            flow_control: v.flow_control,
            // Shallow inter-stage rings: enough slack for steady-state
            // batching but small enough that an overloaded bottleneck
            // stage actually exerts backpressure on its producer
            // (visible as `bp_stall_cycles` in the `ldlp` rows).
            handoff_cap: 4,
            ..SmpConfig::new(CORES, v.dispatch, v.discipline)
        };
        let mut sim = SmpSim::new(&cfg);
        sim.run_closed(&mut pop, WEIGHTS);
        let out = sim.outcome(pop.channel_counters());
        crate::perf::note_replay(&out.replay);
        assert!(
            out.report.conservation_holds(),
            "figure13 cell violates conservation: load={} variant={} admission={} budget={}",
            cell.load,
            v.label,
            cell.admission.label,
            cell.budget_on
        );
        let st = pop.stats();
        let frac = |useful: u64, requests: u64| {
            if requests == 0 {
                0.0
            } else {
                useful as f64 / requests as f64
            }
        };
        let loss = |class: Class| {
            let i = class.index();
            (out.shed_by_class[i] + out.drops_by_class[i]) as f64
        };
        let bp: u64 = out.per_core.iter().map(|c| c.bp_stall_cycles).sum();
        (
            out.report,
            [
                st.retry_amplification(),
                st.requests as f64,
                st.transmissions as f64,
                st.abandoned_requests as f64,
                loss(Class::Call),
                loss(Class::Dns),
                loss(Class::Rpc),
                frac(st.per_class_useful[Class::Call.index()], st.per_class_requests[Class::Call.index()]),
                frac(st.per_class_useful[Class::Rpc.index()], st.per_class_requests[Class::Rpc.index()]),
                out.per_core.iter().map(|c| c.bp_stalls).sum::<u64>() as f64,
                bp as f64,
                out.handoff_msgs as f64,
            ],
        )
    }

    /// One cell's seed-averaged measurements.
    #[derive(Debug, Clone)]
    pub struct Figure13Point {
        pub cell: Cell,
        pub report: SimReport,
        pub extras: [f64; EXTRAS],
    }

    /// The full sweep: every cell × `opts.seeds` placements, averaged
    /// per cell in seed order.
    pub fn sweep(opts: &RunOpts) -> Vec<Figure13Point> {
        let cells = cells(opts.smoke);
        let seeds = opts.seeds as usize;
        let runs: Vec<Job> = run_indexed(cells.len() * seeds, opts.effective_threads(), |i| {
            run_cell(&cells[i / seeds], (i % seeds) as u64 + 1, opts.duration_s)
        });
        let mut points = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            let chunk = &runs[ci * seeds..(ci + 1) * seeds];
            let reports: Vec<SimReport> = chunk.iter().map(|job| job.0.clone()).collect();
            let report = SimReport::average(&reports).expect("at least one seed");
            let mut extras = [0.0f64; EXTRAS];
            for job in chunk {
                for (a, x) in extras.iter_mut().zip(job.1) {
                    *a += x;
                }
            }
            for a in &mut extras {
                *a /= seeds as f64;
            }
            points.push(Figure13Point {
                cell: *cell,
                report,
                extras,
            });
        }
        points
    }

    /// CSV schema: one row per (load, variant, admission, budget).
    /// `goodput` counts useful acknowledgements per second; `stale` is
    /// work the server completed after the client stopped waiting;
    /// `gave_up` is requests whose retry budget ran out client-side.
    pub const FIGURE13_HEADER: [&str; 24] = [
        "load",
        "target_rate",
        "variant",
        "admission",
        "budget",
        "requests",
        "transmissions",
        "retry_amp",
        "goodput",
        "throughput",
        "mean_latency_us",
        "p99_latency_us",
        "completed",
        "stale",
        "gave_up",
        "drops",
        "shed",
        "loss_call",
        "loss_dns",
        "loss_rpc",
        "useful_frac_call",
        "useful_frac_rpc",
        "bp_stall_cycles",
        "handoff_msgs",
    ];

    /// Rows for [`FIGURE13_HEADER`], shared between the `figure13`
    /// binary and the thread-count determinism regression test.
    pub fn figure13_rows(points: &[Figure13Point]) -> Vec<Vec<String>> {
        points
            .iter()
            .map(|p| {
                vec![
                    f(p.cell.load, 1),
                    f(p.cell.load * p.cell.variant.capacity_msg_s, 0),
                    p.cell.variant.label.to_string(),
                    p.cell.admission.label.to_string(),
                    (if p.cell.budget_on { "on" } else { "off" }).to_string(),
                    f(p.extras[1], 1),
                    f(p.extras[2], 1),
                    f(p.extras[0], 3),
                    f(p.report.goodput, 0),
                    f(p.report.throughput, 0),
                    f(p.report.mean_latency_us, 1),
                    f(p.report.p99_latency_us, 1),
                    p.report.completed.to_string(),
                    p.report.abandoned.to_string(),
                    f(p.extras[3], 1),
                    p.report.drops.to_string(),
                    p.report.shed.to_string(),
                    f(p.extras[4], 1),
                    f(p.extras[5], 1),
                    f(p.extras[6], 1),
                    f(p.extras[7], 3),
                    f(p.extras[8], 3),
                    f(p.extras[10], 0),
                    f(p.extras[11], 1),
                ]
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn tiny_opts() -> RunOpts {
            RunOpts {
                seeds: 1,
                duration_s: 0.05,
                smoke: true,
                threads: Some(2),
                ..RunOpts::default()
            }
        }

        #[test]
        fn smoke_grid_shape_and_conservation() {
            // run_cell asserts the conservation law per cell; this test
            // checks the grid shape and that the overload rows actually
            // overload (retries amplify, something is refused or shed).
            let points = sweep(&tiny_opts());
            assert_eq!(points.len(), 2 * 2 * 4 * 2, "loads x variants x admissions x budgets");
            let rows = figure13_rows(&points);
            assert_eq!(rows.len(), points.len());
            assert!(rows.iter().all(|r| r.len() == FIGURE13_HEADER.len()));
            let over: Vec<&Figure13Point> =
                points.iter().filter(|p| p.cell.load > 1.0).collect();
            assert!(
                over.iter().any(|p| p.extras[0] > 1.05),
                "overload rows should show retry amplification"
            );
            assert!(
                over.iter().any(|p| p.report.drops + p.report.shed > 0),
                "overload rows should refuse or shed something"
            );
        }

        #[test]
        fn underload_rows_are_healthy() {
            let points = sweep(&tiny_opts());
            for p in points.iter().filter(|p| p.cell.load < 1.0) {
                assert!(p.report.completed > 0, "underload cell completed nothing");
                assert!(
                    p.extras[0] < 1.5,
                    "underload should not amplify heavily: {} at {}/{}/{}",
                    p.extras[0],
                    p.cell.variant.label,
                    p.cell.admission.label,
                    p.cell.budget_on
                );
            }
        }
    }
}

pub mod figure14 {
    //! Figure 14: several stacks interleaved — the mixed multi-protocol
    //! service, class by class, Conventional vs. LDLP vs. LDLP with
    //! layer-affinity dispatch.
    //!
    //! Figures 5–13 drive one protocol at a time; a production
    //! small-message box interleaves several. Each cell here feeds one
    //! deterministic mixed stream (`crates/workload`: call signalling,
    //! service RPC, media control, DNS, and CBOR agent messaging, each
    //! heavy-tailed within its own size band) through the N-core
    //! simulator with the per-class service profiles of
    //! [`workload::profiles`], and reports *per class*: p50/p99
    //! latency, I-misses per message, and attainment against the
    //! class's latency SLO. The interleaving is the point — five
    //! handler footprints take turns evicting each other, so the
    //! conventional rows pay the paper's cold-cache tax on every class
    //! boundary while LDLP batching and layer-affinity placement keep
    //! hot code resident. The per-class view shows who pays: the
    //! tight-SLO media-control class cares about the p99 the agent
    //! class's fat handler inflicts on it.
    //!
    //! The sweep fans independent (cell, seed) jobs across worker
    //! threads and reduces in deterministic index order, so the CSV is
    //! byte-identical for any `--threads` value.

    use crate::{f, RunOpts};
    use ldlp::{BatchPolicy, Discipline};
    use simnet::impair::ImpairCounters;
    use simnet::par::run_indexed;
    use simnet::stats::{ClassReport, SimReport};
    use smp::{DispatchPolicy, SmpConfig, SmpSim, MAX_WCLASS};
    use workload::{class_counts, evaluate, generate, profiles, to_flow_arrivals, MixConfig, WireClass};

    /// Aggregate offered load of the mixed stream (msg/s). Chosen so a
    /// single core saturates and eight cores do not: the figure's axis
    /// is how each variant shares the recovery among the classes.
    pub const RATE_MSG_S: f64 = 12_000.0;

    /// Synthetic flow population, split into five equal per-class bands
    /// by [`workload::to_flow_arrivals`].
    pub const FLOWS: u32 = 80;

    /// One (discipline, dispatch) server build.
    #[derive(Debug, Clone, Copy)]
    pub struct Variant {
        /// CSV label (`conv` / `ldlp` / `aff`).
        pub label: &'static str,
        pub discipline: Discipline,
        pub dispatch: DispatchPolicy,
    }

    /// The three builds the figure contrasts: conventional per-message
    /// processing, LDLP batching, and LDLP under layer-affinity
    /// dispatch — both LDLP rows use RSS-style flow hashing except the
    /// affinity row, whose dispatch *is* the variant.
    pub fn variants() -> [Variant; 3] {
        [
            Variant {
                label: "conv",
                discipline: Discipline::Conventional,
                dispatch: DispatchPolicy::FlowHash,
            },
            Variant {
                label: "ldlp",
                discipline: Discipline::Ldlp(BatchPolicy::DCacheFit),
                dispatch: DispatchPolicy::FlowHash,
            },
            Variant {
                label: "aff",
                discipline: Discipline::Ldlp(BatchPolicy::DCacheFit),
                dispatch: DispatchPolicy::LayerAffinity,
            },
        ]
    }

    /// Core counts swept (smoke keeps the 1-vs-4 contrast only).
    pub fn core_counts(smoke: bool) -> &'static [usize] {
        if smoke {
            &[1, 4]
        } else {
            &[1, 2, 4, 8]
        }
    }

    type Job = (SimReport, Vec<ClassReport>, Option<Box<obs::Recorder>>);

    fn run_cell(cores: usize, variant: &Variant, seed: u64, duration_s: f64, observe: bool) -> Job {
        let mix = MixConfig::service_mix(RATE_MSG_S, duration_s, seed);
        let stream = generate(&mix);
        let counts = class_counts(&stream);
        let arrivals = to_flow_arrivals(&stream, FLOWS, seed);
        let cfg = SmpConfig {
            duration_s,
            placement_seed: seed,
            wclass: profiles(),
            ..SmpConfig::new(cores, variant.dispatch, variant.discipline)
        };
        let mut sim = SmpSim::new(&cfg);
        if observe {
            sim.set_sinks(false);
        }
        sim.run(&arrivals);
        let out = sim.outcome(ImpairCounters::default());
        crate::perf::note_replay(&out.replay);
        assert!(
            out.report.conservation_holds(),
            "figure14 cell violates conservation: cores={cores} variant={}",
            variant.label
        );
        for c in WireClass::ALL {
            let r = out.classes.get(c.index()).unwrap_or_else(|| {
                panic!("figure14: missing class report for {c:?}")
            });
            assert_eq!(
                r.offered,
                counts[c.index()],
                "figure14: {c:?} offered diverges from the generator (cores={cores} variant={})",
                variant.label
            );
            assert_eq!(
                r.offered,
                r.completed + r.rejected + r.drops + r.shed,
                "figure14: {c:?} buckets do not close (cores={cores} variant={})",
                variant.label
            );
        }
        let rec = if observe {
            let mut merged: Option<Box<obs::Recorder>> = None;
            for (_, rec) in sim.take_recorders() {
                match merged.as_mut() {
                    None => merged = Some(rec),
                    Some(m) => m.merge(&rec),
                }
            }
            merged
        } else {
            None
        };
        (out.report, out.classes, rec)
    }

    /// One (cores, variant) cell's seed-averaged measurements.
    #[derive(Debug, Clone)]
    pub struct Figure14Point {
        pub cores: usize,
        pub variant: Variant,
        pub report: SimReport,
        /// Per-class reports indexed by class id (index 0 unused).
        pub classes: Vec<ClassReport>,
    }

    /// The full sweep: every (cores, variant) cell × `opts.seeds` mixed
    /// streams, averaged per cell in seed order.
    pub fn sweep(opts: &RunOpts) -> Vec<Figure14Point> {
        sweep_observed(opts, false).0
    }

    /// [`sweep`] with optional metrics recording; per-core recorders
    /// are folded per job (core order) then across jobs (index order),
    /// so the merged document is thread-count invariant. With the
    /// class profiles installed the recorders carry the per-class
    /// `w<id>/latency_us` histograms.
    pub fn sweep_observed(
        opts: &RunOpts,
        observe: bool,
    ) -> (Vec<Figure14Point>, Option<Box<obs::Recorder>>) {
        let vars = variants();
        let mut cells: Vec<(usize, Variant)> = Vec::new();
        for &cores in core_counts(opts.smoke) {
            for v in vars {
                cells.push((cores, v));
            }
        }
        let seeds = opts.seeds as usize;
        let mut runs: Vec<Job> = run_indexed(cells.len() * seeds, opts.effective_threads(), |i| {
            let (cores, variant) = cells[i / seeds];
            run_cell(cores, &variant, (i % seeds) as u64 + 1, opts.duration_s, observe)
        });
        let mut points = Vec::new();
        for (ci, &(cores, variant)) in cells.iter().enumerate() {
            let chunk = &runs[ci * seeds..(ci + 1) * seeds];
            let reports: Vec<SimReport> = chunk.iter().map(|job| job.0.clone()).collect();
            let report = SimReport::average(&reports).expect("at least one seed");
            let classes: Vec<ClassReport> = (0..MAX_WCLASS)
                .map(|w| {
                    let per_seed: Vec<ClassReport> = chunk
                        .iter()
                        .filter_map(|job| job.1.get(w).copied())
                        .collect();
                    ClassReport::average(&per_seed).unwrap_or_default()
                })
                .collect();
            points.push(Figure14Point {
                cores,
                variant,
                report,
                classes,
            });
        }
        let mut merged: Option<Box<obs::Recorder>> = None;
        for job in &mut runs {
            if let Some(rec) = job.2.take() {
                match merged.as_mut() {
                    None => merged = Some(rec),
                    Some(m) => m.merge(&rec),
                }
            }
        }
        (points, merged)
    }

    /// CSV schema: one row per (cores, variant, class).
    pub const FIGURE14_HEADER: [&str; 15] = [
        "cores",
        "variant",
        "class",
        "offered",
        "completed",
        "rejected",
        "drops",
        "shed",
        "p50_latency_us",
        "p99_latency_us",
        "imiss_per_msg",
        "dmiss_per_msg",
        "slo_us",
        "slo_attainment",
        "slo_met",
    ];

    /// Rows for [`FIGURE14_HEADER`], shared between the `figure14`
    /// binary and the thread-count determinism regression test.
    pub fn figure14_rows(points: &[Figure14Point]) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for p in points {
            let verdicts = evaluate(&p.classes);
            for c in WireClass::ALL {
                let Some(r) = p.classes.get(c.index()) else {
                    continue;
                };
                let met = verdicts
                    .iter()
                    .find(|v| v.class == c)
                    .map(|v| if v.met { "yes" } else { "no" })
                    .unwrap_or("n/a");
                rows.push(vec![
                    p.cores.to_string(),
                    p.variant.label.to_string(),
                    c.label().to_string(),
                    r.offered.to_string(),
                    r.completed.to_string(),
                    r.rejected.to_string(),
                    r.drops.to_string(),
                    r.shed.to_string(),
                    f(r.p50_latency_us, 1),
                    f(r.p99_latency_us, 1),
                    f(r.mean_imiss, 2),
                    f(r.mean_dmiss, 2),
                    f(r.slo_us, 0),
                    f(r.slo_attainment, 4),
                    met.to_string(),
                ]);
            }
        }
        rows
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn tiny_opts() -> RunOpts {
            RunOpts {
                seeds: 1,
                duration_s: 0.05,
                smoke: true,
                threads: Some(2),
                ..RunOpts::default()
            }
        }

        #[test]
        fn smoke_grid_shape_and_per_class_coverage() {
            // run_cell asserts per-class conservation per seed; this
            // test checks the grid shape and that every class carries
            // real traffic in every cell.
            let points = sweep(&tiny_opts());
            assert_eq!(points.len(), 2 * 3, "cores x variants");
            let rows = figure14_rows(&points);
            assert_eq!(rows.len(), points.len() * WireClass::ALL.len());
            assert!(rows.iter().all(|r| r.len() == FIGURE14_HEADER.len()));
            for p in &points {
                for c in WireClass::ALL {
                    let r = &p.classes[c.index()];
                    assert!(r.offered > 0, "{c:?} absent at {}x{}", p.cores, p.variant.label);
                    assert!(
                        (0.0..=1.0).contains(&r.slo_attainment),
                        "attainment out of range"
                    );
                }
            }
        }

        #[test]
        fn saturated_single_core_recovers_with_cores() {
            // One core at 12k msg/s of mixed traffic is past saturation
            // for every build (queueing dominates the tail); four cores
            // recover the tail, and the interleaving tax shows up as the
            // conventional build's I-miss rate staying flat while
            // affinity collapses it. The per-class view must agree with
            // the aggregate.
            let points = sweep(&tiny_opts());
            let total =
                |p: &Figure14Point| p.classes.iter().map(|c| c.completed).sum::<u64>();
            let find = |cores: usize, label: &str| {
                points
                    .iter()
                    .find(|p| p.cores == cores && p.variant.label == label)
                    .expect("grid point")
            };
            for v in variants() {
                let one = find(1, v.label);
                let four = find(4, v.label);
                assert!(
                    four.report.p99_latency_us < one.report.p99_latency_us,
                    "{}: 4 cores should cut the saturated single-core tail",
                    v.label
                );
                assert_eq!(total(one), one.report.completed, "class tallies cover the run");
                assert_eq!(total(four), four.report.completed);
            }
            let conv = find(4, "conv");
            let aff = find(4, "aff");
            for c in WireClass::ALL {
                assert!(
                    aff.classes[c.index()].mean_imiss < conv.classes[c.index()].mean_imiss,
                    "{c:?}: affinity should cut per-class I-misses"
                );
            }
        }
    }
}

pub mod figures {
    //! CSV row construction for the simulation figures, shared between
    //! the binaries and the determinism regression tests (which assert
    //! the parallel runner's CSV text is byte-identical to serial).

    use crate::f;
    use crate::sweep::SweepPoint;

    pub const FIGURE5_HEADER: [&str; 11] = [
        "rate",
        "conv_imiss",
        "conv_dmiss",
        "ldlp_imiss",
        "ldlp_dmiss",
        "ldlp_batch",
        "conv_batch",
        "conv_imiss_std",
        "ldlp_imiss_std",
        "ilp_imiss",
        "ilp_dmiss",
    ];

    pub fn figure5_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
        points
            .iter()
            .map(|p| {
                let ilp = p.ilp.as_ref().expect("poisson sweep provides ILP");
                vec![
                    f(p.x, 0),
                    f(p.conventional.mean_imiss, 2),
                    f(p.conventional.mean_dmiss, 2),
                    f(p.ldlp.mean_imiss, 2),
                    f(p.ldlp.mean_dmiss, 2),
                    f(p.ldlp.mean_batch, 3),
                    f(p.conventional.mean_batch, 3),
                    f(p.conventional.imiss_std, 2),
                    f(p.ldlp.imiss_std, 2),
                    f(ilp.mean_imiss, 2),
                    f(ilp.mean_dmiss, 2),
                ]
            })
            .collect()
    }

    pub const FIGURE6_HEADER: [&str; 11] = [
        "rate",
        "conv_latency_us",
        "ldlp_latency_us",
        "conv_p99_us",
        "ldlp_p99_us",
        "conv_drops",
        "ldlp_drops",
        "conv_throughput",
        "ldlp_throughput",
        "conv_latency_std_us",
        "ldlp_latency_std_us",
    ];

    pub fn figure6_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
        points
            .iter()
            .map(|p| {
                vec![
                    f(p.x, 0),
                    f(p.conventional.mean_latency_us, 2),
                    f(p.ldlp.mean_latency_us, 2),
                    f(p.conventional.p99_latency_us, 2),
                    f(p.ldlp.p99_latency_us, 2),
                    p.conventional.drops.to_string(),
                    p.ldlp.drops.to_string(),
                    f(p.conventional.throughput, 1),
                    f(p.ldlp.throughput, 1),
                    f(p.conventional.latency_std_us, 2),
                    f(p.ldlp.latency_std_us, 2),
                ]
            })
            .collect()
    }

    pub const FIGURE7_HEADER: [&str; 8] = [
        "clock_mhz",
        "conv_latency_us",
        "ldlp_latency_us",
        "conv_drops",
        "ldlp_drops",
        "ldlp_batch",
        "conv_throughput",
        "ldlp_throughput",
    ];

    pub fn figure7_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
        points
            .iter()
            .map(|p| {
                vec![
                    f(p.x, 0),
                    f(p.conventional.mean_latency_us, 2),
                    f(p.ldlp.mean_latency_us, 2),
                    p.conventional.drops.to_string(),
                    p.ldlp.drops.to_string(),
                    f(p.ldlp.mean_batch, 3),
                    f(p.conventional.throughput, 1),
                    f(p.ldlp.throughput, 1),
                ]
            })
            .collect()
    }
}
