//! # bench — experiment harnesses
//!
//! One binary per table and figure of the paper (see DESIGN.md's
//! per-experiment index), plus Criterion microbenchmarks of the real code
//! paths. Each binary prints the paper's rows/series as an aligned table
//! and writes a CSV into `results/`.
//!
//! Common flags for the simulation figures:
//!
//! * `--seeds N` — random placements to average over (paper: 100;
//!   default here: 20 for a quick regeneration).
//! * `--duration S` — simulated seconds per (rate, seed) point
//!   (paper: 1.0; default: 1.0).
//! * `--out DIR` — output directory (default `results/`).

use std::io::Write;
use std::path::{Path, PathBuf};

/// Common experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Number of seeded random placements to average over.
    pub seeds: u64,
    /// Simulated duration per point, seconds.
    pub duration_s: f64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            seeds: 20,
            duration_s: 1.0,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl RunOpts {
    /// Parses `--seeds`, `--duration`, `--out` from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = RunOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seeds" => {
                    opts.seeds = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seeds needs a number"));
                    i += 2;
                }
                "--duration" => {
                    opts.duration_s = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--duration needs seconds"));
                    i += 2;
                }
                "--out" => {
                    opts.out_dir = args
                        .get(i + 1)
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--out needs a directory"));
                    i += 2;
                }
                other => die(&format!("unknown flag {other}")),
            }
        }
        opts
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [--seeds N] [--duration S] [--out DIR]");
    std::process::exit(2);
}

/// Writes a CSV file, creating the directory if needed.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut f = std::fs::File::create(path).expect("create CSV");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("wrote {}", path.display());
}

/// Prints an aligned text table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// The arrival-rate grid of Figures 5 and 6 (messages/second).
pub fn figure5_rates() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 500.0).collect()
}

/// The CPU-clock grid of Figure 7 (MHz).
pub fn figure7_clocks() -> Vec<f64> {
    vec![10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0, 60.0, 70.0, 80.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_grids() {
        let r = figure5_rates();
        assert_eq!(r.first(), Some(&500.0));
        assert_eq!(r.last(), Some(&10_000.0));
        assert_eq!(r.len(), 20);
        assert_eq!(figure7_clocks().len(), 11);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(3.14159, 2), "3.14");
        assert_eq!(f(10.0, 0), "10");
    }

    #[test]
    fn csv_writing() {
        let dir = std::env::temp_dir().join("bench_csv_test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        std::fs::remove_dir_all(dir).ok();
    }
}

pub mod sweep {
    //! Shared sweep runners for the simulation figures.

    use crate::RunOpts;
    use cachesim::MachineConfig;
    use ldlp::synth::paper_stack;
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use simnet::stats::SimReport;
    use simnet::traffic::{Arrival, PoissonSource, SelfSimilarSource, TrafficSource};
    use simnet::{run_sim, SimConfig};

    /// One rate/clock point: averaged reports for the disciplines.
    #[derive(Debug, Clone)]
    pub struct SweepPoint {
        /// The swept parameter (arrival rate or clock MHz).
        pub x: f64,
        pub conventional: SimReport,
        pub ldlp: SimReport,
        /// Integrated layer processing — the prior art the paper contrasts
        /// with: helps data-heavy large messages, not small-message code
        /// locality. Populated by the Poisson sweep only.
        pub ilp: Option<SimReport>,
    }

    /// Runs one (engine-discipline, arrivals) pair on a fresh stack.
    pub fn run_once(
        cfg: MachineConfig,
        discipline: Discipline,
        placement_seed: u64,
        arrivals: &[Arrival],
        duration_s: f64,
    ) -> SimReport {
        let (machine, layers) = paper_stack(cfg, placement_seed);
        let mut engine = StackEngine::new(machine, layers, discipline);
        let sim_cfg = SimConfig {
            duration_s,
            pool_seed: placement_seed,
            ..SimConfig::default()
        };
        run_sim(&mut engine, arrivals, &sim_cfg)
    }

    /// Figures 5 and 6: Poisson arrivals of 552-byte messages across the
    /// rate grid, conventional vs. LDLP, averaged over placements.
    pub fn poisson_sweep(opts: &RunOpts, cfg: MachineConfig, rates: &[f64]) -> Vec<SweepPoint> {
        rates
            .iter()
            .map(|&rate| {
                let mut conv = Vec::new();
                let mut ldlp = Vec::new();
                let mut ilp = Vec::new();
                for seed in 1..=opts.seeds {
                    let arrivals =
                        PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
                    conv.push(run_once(
                        cfg,
                        Discipline::Conventional,
                        seed,
                        &arrivals,
                        opts.duration_s,
                    ));
                    ldlp.push(run_once(
                        cfg,
                        Discipline::Ldlp(BatchPolicy::DCacheFit),
                        seed,
                        &arrivals,
                        opts.duration_s,
                    ));
                    ilp.push(run_once(
                        cfg,
                        Discipline::Ilp,
                        seed,
                        &arrivals,
                        opts.duration_s,
                    ));
                }
                SweepPoint {
                    x: rate,
                    conventional: SimReport::average(&conv),
                    ldlp: SimReport::average(&ldlp),
                    ilp: Some(SimReport::average(&ilp)),
                }
            })
            .collect()
    }

    /// Figure 7: trace-driven self-similar traffic at a fixed offered
    /// load, sweeping the CPU clock.
    pub fn clock_sweep(opts: &RunOpts, base: MachineConfig, clocks: &[f64]) -> Vec<SweepPoint> {
        clocks
            .iter()
            .map(|&mhz| {
                let cfg = base.with_clock_mhz(mhz);
                let mut conv = Vec::new();
                let mut ldlp = Vec::new();
                for seed in 1..=opts.seeds {
                    let arrivals =
                        SelfSimilarSource::bellcore_like(seed).take_until(opts.duration_s);
                    conv.push(run_once(
                        cfg,
                        Discipline::Conventional,
                        seed,
                        &arrivals,
                        opts.duration_s,
                    ));
                    ldlp.push(run_once(
                        cfg,
                        Discipline::Ldlp(BatchPolicy::DCacheFit),
                        seed,
                        &arrivals,
                        opts.duration_s,
                    ));
                }
                SweepPoint {
                    x: mhz,
                    conventional: SimReport::average(&conv),
                    ldlp: SimReport::average(&ldlp),
                    ilp: None,
                }
            })
            .collect()
    }
}
