//! # bench — experiment harnesses
//!
//! One binary per table and figure of the paper (see DESIGN.md's
//! per-experiment index), plus Criterion microbenchmarks of the real code
//! paths. Each binary prints the paper's rows/series as an aligned table
//! and writes a CSV into `results/`.
//!
//! Common flags for the simulation figures:
//!
//! * `--seeds N` — random placements to average over (paper: 100;
//!   default here: 20 for a quick regeneration).
//! * `--duration S` — simulated seconds per (rate, seed) point
//!   (paper: 1.0; default: 1.0).
//! * `--out DIR` — output directory (default `results/`).
//! * `--threads N` — worker threads for the sweep runner (default: the
//!   `SMP_THREADS` environment variable, else all host cores). Output is
//!   byte-identical for every thread count; `--threads 1` is the serial
//!   reference path.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Common experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Number of seeded random placements to average over.
    pub seeds: u64,
    /// Simulated duration per point, seconds.
    pub duration_s: f64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Worker threads for the sweep runner; `None` defers to
    /// `SMP_THREADS`, then to the host's available parallelism.
    pub threads: Option<usize>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            seeds: 20,
            duration_s: 1.0,
            out_dir: PathBuf::from("results"),
            threads: None,
        }
    }
}

impl RunOpts {
    /// Parses `--seeds`, `--duration`, `--out`, `--threads` from
    /// `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = RunOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seeds" => {
                    opts.seeds = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seeds needs a number"));
                    i += 2;
                }
                "--duration" => {
                    opts.duration_s = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--duration needs seconds"));
                    i += 2;
                }
                "--out" => {
                    opts.out_dir = args
                        .get(i + 1)
                        .map(PathBuf::from)
                        .unwrap_or_else(|| die("--out needs a directory"));
                    i += 2;
                }
                "--threads" => {
                    opts.threads = Some(
                        args.get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--threads needs a count")),
                    );
                    i += 2;
                }
                other => die(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// The worker-thread count this run will actually use.
    pub fn effective_threads(&self) -> usize {
        simnet::par::resolve_threads(self.threads)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [--seeds N] [--duration S] [--out DIR] [--threads N]");
    std::process::exit(2);
}

/// Renders a CSV document as a string (exactly what [`write_csv`] puts on
/// disk — the determinism tests compare this text across thread counts).
pub fn csv_text(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut text = String::new();
    text.push_str(&header.join(","));
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    text
}

/// Writes a CSV file, creating the directory if needed.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut f = std::fs::File::create(path).expect("create CSV");
    f.write_all(csv_text(header, rows).as_bytes())
        .expect("write CSV");
    println!("wrote {}", path.display());
}

/// Prints an aligned text table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// The arrival-rate grid of Figures 5 and 6 (messages/second).
pub fn figure5_rates() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 500.0).collect()
}

/// The CPU-clock grid of Figure 7 (MHz).
pub fn figure7_clocks() -> Vec<f64> {
    vec![10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0, 60.0, 70.0, 80.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_grids() {
        let r = figure5_rates();
        assert_eq!(r.first(), Some(&500.0));
        assert_eq!(r.last(), Some(&10_000.0));
        assert_eq!(r.len(), 20);
        assert_eq!(figure7_clocks().len(), 11);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }

    #[test]
    fn perf_fragment_round_trips() {
        let text = perf::fragment_json("figure5", 8);
        assert_eq!(perf::json_u64(&text, "threads"), Some(8));
        assert!(perf::json_u64(&text, "replay_hits").is_some());
        assert_eq!(perf::json_u64(&text, "no_such_key"), None);
    }

    #[test]
    fn threads_flag_resolution() {
        let opts = RunOpts {
            threads: Some(3),
            ..RunOpts::default()
        };
        assert_eq!(opts.effective_threads(), 3);
        assert!(RunOpts::default().effective_threads() >= 1);
    }

    #[test]
    fn csv_writing() {
        let dir = std::env::temp_dir().join("bench_csv_test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        std::fs::remove_dir_all(dir).ok();
    }
}

pub mod perf {
    //! Process-wide apparatus-performance counters and the per-binary
    //! perf fragment consumed by `all_experiments`.
    //!
    //! Every simulation run harvests its machine's footprint-replay
    //! counters into process-wide atomics; a binary then writes one JSON
    //! fragment (`results/perf/<name>.json`) which `all_experiments`
    //! merges — together with the wall time it measured for the child —
    //! into `results/perf_summary.json`.

    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);
    static BYPASSES: AtomicU64 = AtomicU64::new(0);

    /// Folds one machine's replay counters into the process totals.
    pub fn note_replay(s: &cachesim::ReplayStats) {
        HITS.fetch_add(s.hits, Ordering::Relaxed);
        MISSES.fetch_add(s.misses, Ordering::Relaxed);
        BYPASSES.fetch_add(s.bypasses, Ordering::Relaxed);
    }

    /// The process-wide replay totals accumulated so far.
    pub fn replay_totals() -> cachesim::ReplayStats {
        cachesim::ReplayStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            bypasses: BYPASSES.load(Ordering::Relaxed),
        }
    }

    /// Renders the fragment JSON for a binary.
    pub fn fragment_json(name: &str, threads: usize) -> String {
        let t = replay_totals();
        format!(
            "{{\n  \"name\": \"{}\",\n  \"threads\": {},\n  \"replay_hits\": {},\n  \
             \"replay_misses\": {},\n  \"replay_bypasses\": {},\n  \"replay_hit_rate\": {:.4}\n}}\n",
            name,
            threads,
            t.hits,
            t.misses,
            t.bypasses,
            t.hit_rate()
        )
    }

    /// Writes `OUT_DIR/perf/<name>.json` with this process's replay
    /// totals and thread count.
    pub fn write_fragment(out_dir: &Path, name: &str, threads: usize) {
        let dir = out_dir.join("perf");
        std::fs::create_dir_all(&dir).expect("create perf directory");
        std::fs::write(dir.join(format!("{name}.json")), fragment_json(name, threads))
            .expect("write perf fragment");
    }

    /// Pulls an integer field out of a fragment (good enough for the
    /// JSON this module itself writes).
    pub fn json_u64(text: &str, key: &str) -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = text.find(&pat)? + pat.len();
        let rest = text[at..].trim_start();
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
}

pub mod sweep {
    //! Shared sweep runners for the simulation figures.
    //!
    //! All runners fan their independent (point, seed) jobs across
    //! `opts.effective_threads()` workers via [`simnet::par::run_indexed`]
    //! and reduce in deterministic seed order, so every CSV is
    //! byte-identical to a `--threads 1` run.

    use crate::RunOpts;
    use cachesim::MachineConfig;
    use ldlp::synth::paper_stack;
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use simnet::par::run_indexed;
    use simnet::stats::SimReport;
    use simnet::traffic::{Arrival, PoissonSource, SelfSimilarSource, TrafficSource};
    use simnet::{run_sim, SimConfig};

    /// One rate/clock point: averaged reports for the disciplines.
    #[derive(Debug, Clone)]
    pub struct SweepPoint {
        /// The swept parameter (arrival rate or clock MHz).
        pub x: f64,
        pub conventional: SimReport,
        pub ldlp: SimReport,
        /// Integrated layer processing — the prior art the paper contrasts
        /// with: helps data-heavy large messages, not small-message code
        /// locality. Populated by the Poisson sweep only.
        pub ilp: Option<SimReport>,
    }

    /// Runs one (engine-discipline, arrivals) pair on a fresh stack.
    pub fn run_once(
        cfg: MachineConfig,
        discipline: Discipline,
        placement_seed: u64,
        arrivals: &[Arrival],
        duration_s: f64,
    ) -> SimReport {
        let (machine, layers) = paper_stack(cfg, placement_seed);
        let mut engine = StackEngine::new(machine, layers, discipline);
        let sim_cfg = SimConfig {
            duration_s,
            pool_seed: placement_seed,
            ..SimConfig::default()
        };
        let report = run_sim(&mut engine, arrivals, &sim_cfg);
        crate::perf::note_replay(&engine.machine().replay_stats());
        report
    }

    /// Runs `run(seed)` for seeds `1..=opts.seeds` across the worker
    /// pool and returns the per-seed results in seed order.
    pub fn per_seed<T, R>(opts: &RunOpts, run: R) -> Vec<T>
    where
        T: Send,
        R: Fn(u64) -> T + Sync,
    {
        run_indexed(opts.seeds as usize, opts.effective_threads(), |i| {
            run(i as u64 + 1)
        })
    }

    /// Averages `run(seed)` reports over `1..=opts.seeds`, fanned across
    /// the worker pool; the reduction folds in seed order so the average
    /// is identical for any thread count.
    pub fn seed_average<R>(opts: &RunOpts, run: R) -> SimReport
    where
        R: Fn(u64) -> SimReport + Sync,
    {
        SimReport::average(&per_seed(opts, run))
    }

    /// Figures 5 and 6: Poisson arrivals of 552-byte messages across the
    /// rate grid, conventional vs. LDLP, averaged over placements. Each
    /// (rate, seed) pair is one parallel job covering all three
    /// disciplines on the same arrival stream.
    pub fn poisson_sweep(opts: &RunOpts, cfg: MachineConfig, rates: &[f64]) -> Vec<SweepPoint> {
        let seeds = opts.seeds as usize;
        let runs = run_indexed(rates.len() * seeds, opts.effective_threads(), |i| {
            let rate = rates[i / seeds];
            let seed = (i % seeds) as u64 + 1;
            let arrivals = PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
            (
                run_once(cfg, Discipline::Conventional, seed, &arrivals, opts.duration_s),
                run_once(
                    cfg,
                    Discipline::Ldlp(BatchPolicy::DCacheFit),
                    seed,
                    &arrivals,
                    opts.duration_s,
                ),
                run_once(cfg, Discipline::Ilp, seed, &arrivals, opts.duration_s),
            )
        });
        rates
            .iter()
            .enumerate()
            .map(|(ri, &rate)| {
                let chunk = &runs[ri * seeds..(ri + 1) * seeds];
                let pick = |sel: fn(&(SimReport, SimReport, SimReport)) -> &SimReport| {
                    SimReport::average(&chunk.iter().map(|r| sel(r).clone()).collect::<Vec<_>>())
                };
                SweepPoint {
                    x: rate,
                    conventional: pick(|r| &r.0),
                    ldlp: pick(|r| &r.1),
                    ilp: Some(pick(|r| &r.2)),
                }
            })
            .collect()
    }

    /// Figure 7: trace-driven self-similar traffic at a fixed offered
    /// load, sweeping the CPU clock.
    pub fn clock_sweep(opts: &RunOpts, base: MachineConfig, clocks: &[f64]) -> Vec<SweepPoint> {
        let seeds = opts.seeds as usize;
        let runs = run_indexed(clocks.len() * seeds, opts.effective_threads(), |i| {
            let cfg = base.with_clock_mhz(clocks[i / seeds]);
            let seed = (i % seeds) as u64 + 1;
            let arrivals = SelfSimilarSource::bellcore_like(seed).take_until(opts.duration_s);
            (
                run_once(cfg, Discipline::Conventional, seed, &arrivals, opts.duration_s),
                run_once(
                    cfg,
                    Discipline::Ldlp(BatchPolicy::DCacheFit),
                    seed,
                    &arrivals,
                    opts.duration_s,
                ),
            )
        });
        clocks
            .iter()
            .enumerate()
            .map(|(ci, &mhz)| {
                let chunk = &runs[ci * seeds..(ci + 1) * seeds];
                SweepPoint {
                    x: mhz,
                    conventional: SimReport::average(
                        &chunk.iter().map(|r| r.0.clone()).collect::<Vec<_>>(),
                    ),
                    ldlp: SimReport::average(
                        &chunk.iter().map(|r| r.1.clone()).collect::<Vec<_>>(),
                    ),
                    ilp: None,
                }
            })
            .collect()
    }
}

pub mod figures {
    //! CSV row construction for the simulation figures, shared between
    //! the binaries and the determinism regression tests (which assert
    //! the parallel runner's CSV text is byte-identical to serial).

    use crate::f;
    use crate::sweep::SweepPoint;

    pub const FIGURE5_HEADER: [&str; 11] = [
        "rate",
        "conv_imiss",
        "conv_dmiss",
        "ldlp_imiss",
        "ldlp_dmiss",
        "ldlp_batch",
        "conv_batch",
        "conv_imiss_std",
        "ldlp_imiss_std",
        "ilp_imiss",
        "ilp_dmiss",
    ];

    pub fn figure5_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
        points
            .iter()
            .map(|p| {
                let ilp = p.ilp.as_ref().expect("poisson sweep provides ILP");
                vec![
                    f(p.x, 0),
                    f(p.conventional.mean_imiss, 2),
                    f(p.conventional.mean_dmiss, 2),
                    f(p.ldlp.mean_imiss, 2),
                    f(p.ldlp.mean_dmiss, 2),
                    f(p.ldlp.mean_batch, 3),
                    f(p.conventional.mean_batch, 3),
                    f(p.conventional.imiss_std, 2),
                    f(p.ldlp.imiss_std, 2),
                    f(ilp.mean_imiss, 2),
                    f(ilp.mean_dmiss, 2),
                ]
            })
            .collect()
    }

    pub const FIGURE6_HEADER: [&str; 11] = [
        "rate",
        "conv_latency_us",
        "ldlp_latency_us",
        "conv_p99_us",
        "ldlp_p99_us",
        "conv_drops",
        "ldlp_drops",
        "conv_throughput",
        "ldlp_throughput",
        "conv_latency_std_us",
        "ldlp_latency_std_us",
    ];

    pub fn figure6_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
        points
            .iter()
            .map(|p| {
                vec![
                    f(p.x, 0),
                    f(p.conventional.mean_latency_us, 2),
                    f(p.ldlp.mean_latency_us, 2),
                    f(p.conventional.p99_latency_us, 2),
                    f(p.ldlp.p99_latency_us, 2),
                    p.conventional.drops.to_string(),
                    p.ldlp.drops.to_string(),
                    f(p.conventional.throughput, 1),
                    f(p.ldlp.throughput, 1),
                    f(p.conventional.latency_std_us, 2),
                    f(p.ldlp.latency_std_us, 2),
                ]
            })
            .collect()
    }

    pub const FIGURE7_HEADER: [&str; 8] = [
        "clock_mhz",
        "conv_latency_us",
        "ldlp_latency_us",
        "conv_drops",
        "ldlp_drops",
        "ldlp_batch",
        "conv_throughput",
        "ldlp_throughput",
    ];

    pub fn figure7_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
        points
            .iter()
            .map(|p| {
                vec![
                    f(p.x, 0),
                    f(p.conventional.mean_latency_us, 2),
                    f(p.ldlp.mean_latency_us, 2),
                    p.conventional.drops.to_string(),
                    p.ldlp.drops.to_string(),
                    f(p.ldlp.mean_batch, 3),
                    f(p.conventional.throughput, 1),
                    f(p.ldlp.throughput, 1),
                ]
            })
            .collect()
    }
}
