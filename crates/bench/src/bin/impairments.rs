//! The saturated-path impairment sweep: LDLP vs. conventional goodput
//! and latency across loss rates 0–10% (independent and bursty) and
//! reorder depths, with SSCOP-style retransmission recovering the
//! signalling workload, and a wire-level pass driving real corrupted
//! frames through netstack's checksum-reject, reassembly-timeout, and
//! TCP out-of-order paths.
//!
//! Writes `results/impairments.csv` (or `results/impairments_smoke.csv`
//! under `--smoke`, the reduced CI configuration that is compared
//! byte-for-byte against a committed golden file). The conservation law
//! `offered == completed + rejected + drops + shed + in_flight` is
//! asserted in every cell of the sweep.

use bench::impairments::{
    grid, impairment_sweep, impairments_rows, observed_cell, HOLD_S, IMPAIRMENTS_HEADER,
    OBSERVED_CELL, PAIRS_PER_S,
};
use bench::{f, obs_io, perf, print_table, write_csv, RunOpts};

fn main() {
    let mut opts = RunOpts::from_args();
    if opts.seeds == RunOpts::default().seeds {
        opts.seeds = if opts.smoke { 1 } else { 5 };
    }
    println!(
        "Impairment sweep: {} setup/teardown pairs/s ({} s mean hold) across\n\
         a lossy channel with retransmission, conventional vs. LDLP, over\n\
         {} grid cells x {} seeds.\n",
        f(PAIRS_PER_S, 0),
        HOLD_S,
        grid(opts.smoke).len(),
        opts.seeds
    );

    let points = impairment_sweep(&opts);
    let rows = impairments_rows(&points);

    // The printed table is the headline subset; the CSV has every column.
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r[0].clone(),  // loss_pct
                r[1].clone(),  // burst
                r[2].clone(),  // reorder_depth
                r[5].clone(),  // conv_goodput
                r[6].clone(),  // ldlp_goodput
                r[7].clone(),  // conv_latency_us
                r[8].clone(),  // ldlp_latency_us
                r[13].clone(), // retransmits
                r[14].clone(), // abandoned
            ]
        })
        .collect();
    print_table(
        &[
            "loss%",
            "burst",
            "depth",
            "conv goodput",
            "LDLP goodput",
            "conv lat(us)",
            "LDLP lat(us)",
            "retransmits",
            "abandoned",
        ],
        &table,
    );
    println!(
        "\nGoodput counts only messages that completed the full stack —\n\
         corrupted deliveries cost cycles but are rejected at the AAL5 CRC.\n\
         Conservation (offered == completed + rejected + drops + shed +\n\
         in_flight) held in every cell."
    );

    let name = if opts.smoke {
        "impairments_smoke.csv"
    } else {
        "impairments.csv"
    };
    write_csv(&opts.out_dir.join(name), &IMPAIRMENTS_HEADER, &rows);
    perf::write_fragment(&opts.out_dir, "impairments", opts.effective_threads());

    if opts.trace || opts.metrics {
        // One observed rerun of the representative cell: the signalling
        // workload (cycle timestamps) and the wire exchange (millisecond
        // timestamps) each get a recorder.
        let (mut sim_rec, wire_rec) = observed_cell(opts.duration_s, opts.trace);
        if opts.trace {
            let clock_mhz = signaling::workload::goal_machine().clock_mhz;
            let parts = [
                obs::TracePart {
                    process: "signaling",
                    recorder: &sim_rec,
                    units_per_us: clock_mhz,
                },
                obs::TracePart {
                    process: "wire",
                    recorder: &wire_rec,
                    units_per_us: 0.001, // millisecond-stamped iface events
                },
            ];
            obs_io::write_trace(&opts.out_dir, &parts);
        }
        if opts.metrics {
            // The two recorders use disjoint name prefixes, so a merge
            // yields one metrics document covering both levels.
            sim_rec.merge(&wire_rec);
            let mut meta = obs_io::run_meta("impairments", &opts);
            meta.push(("observed_loss_pct", f(OBSERVED_CELL.loss_pct, 1)));
            meta.push((
                "observed_reorder_depth",
                OBSERVED_CELL.reorder_depth.to_string(),
            ));
            obs_io::write_metrics(&opts.out_dir, &meta, &sim_rec);
        }
    }
}
