//! Regenerates every table and figure into `results/` by invoking each
//! experiment binary in sequence, timing each one, and merging the
//! per-binary perf fragments (`results/perf/<bin>.json`) into a
//! machine-readable `results/perf_summary.json`: wall time per binary,
//! footprint-replay hit rate, and the worker-thread count used.

// Wall-clock timing is this binary's purpose: it reports how long each
// experiment took, never feeds the clock into simulated results.
#![allow(clippy::disallowed_methods)]

use std::process::Command;
use std::time::Instant;

use bench::{perf, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = opts.effective_threads();
    let bins = [
        "table1",
        "figure1",
        "table3",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "figure10",
        "figure13",
        "figure14",
        "figure4_regimes",
        "signaling_goal",
        "trace_replay",
        "dynamics",
        "ablation_cisc",
        "ablation_dilution",
        "ablation_policy",
        "ablation_cachesize",
        "ablation_transmit",
        "ablation_tlb",
        "ablation_layout",
        "ablation_prefetch",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let total_start = Instant::now();
    let mut timings: Vec<(&str, f64)> = Vec::new();
    for bin in bins {
        println!("\n=== {bin} ===\n");
        let start = Instant::now();
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
        timings.push((bin, start.elapsed().as_secs_f64()));
    }
    let total_s = total_start.elapsed().as_secs_f64();

    // Merge the children's perf fragments with the wall times measured
    // here into one machine-readable summary.
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut bypasses = 0u64;
    let mut entries = Vec::new();
    for (bin, wall_s) in &timings {
        let fragment = std::fs::read_to_string(opts.out_dir.join("perf").join(format!("{bin}.json")))
            .unwrap_or_default();
        let h = perf::json_u64(&fragment, "replay_hits").unwrap_or(0);
        let m = perf::json_u64(&fragment, "replay_misses").unwrap_or(0);
        let b = perf::json_u64(&fragment, "replay_bypasses").unwrap_or(0);
        let reason = match perf::json_str(&fragment, "bypass_reason") {
            Some(why) => format!("\"{why}\""),
            None => "null".to_string(),
        };
        hits += h;
        misses += m;
        bypasses += b;
        let rate = if h + m + b > 0 {
            h as f64 / (h + m + b) as f64
        } else {
            0.0
        };
        entries.push(format!(
            "    {{\"name\": \"{bin}\", \"wall_s\": {wall_s:.3}, \"replay_hits\": {h}, \
             \"replay_misses\": {m}, \"replay_bypasses\": {b}, \"bypass_reason\": {reason}, \
             \"replay_hit_rate\": {rate:.4}}}"
        ));
    }
    let overall = cachesim::ReplayStats {
        hits,
        misses,
        bypasses,
    };
    let summary = format!(
        "{{\n  \"threads\": {},\n  \"total_wall_s\": {:.3},\n  \"replay_hit_rate\": {:.4},\n  \
         \"replay_hits\": {},\n  \"replay_misses\": {},\n  \"replay_bypasses\": {},\n  \
         \"binaries\": [\n{}\n  ]\n}}\n",
        threads,
        total_s,
        overall.hit_rate(),
        hits,
        misses,
        bypasses,
        entries.join(",\n")
    );
    let path = opts.out_dir.join("perf_summary.json");
    std::fs::create_dir_all(&opts.out_dir).expect("output dir");
    std::fs::write(&path, summary).expect("write perf summary");
    println!(
        "\nAll experiments regenerated into results/ in {total_s:.1}s \
         ({threads} worker threads, replay hit rate {:.1}%).",
        overall.hit_rate() * 100.0
    );
    println!("wrote {}", path.display());
}
