//! Regenerates every table and figure into `results/` by invoking each
//! experiment binary in sequence. This is the one-shot driver behind
//! EXPERIMENTS.md.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1",
        "figure1",
        "table3",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure4_regimes",
        "signaling_goal",
        "trace_replay",
        "dynamics",
        "ablation_cisc",
        "ablation_dilution",
        "ablation_policy",
        "ablation_cachesize",
        "ablation_transmit",
        "ablation_tlb",
        "ablation_layout",
        "ablation_prefetch",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in bins {
        println!("\n=== {bin} ===\n");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments regenerated into results/.");
}
