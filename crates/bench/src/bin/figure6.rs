//! Figure 6: latency as a function of arrival rate, Poisson traffic.
//!
//! Expected shape (paper): both schedules sit near the single-message
//! service time (~300 us) at light load; conventional saturates near
//! 3500 msg/s and its latency climbs toward the 500-packet buffer bound
//! (~100 ms, with drops); LDLP keeps latency low to ~9500 msg/s because
//! batching raises throughput and cuts queueing.

use bench::figures::{figure6_rows, FIGURE6_HEADER};
use bench::sweep::{poisson_sweep_observed, traced_poisson_runs};
use bench::{f, figure5_rates, obs_io, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Figure 6: latency vs. arrival rate (Poisson, 552-byte messages,\n\
         {} placements x {}s each, 500-packet buffer, {} worker threads)\n",
        opts.seeds,
        opts.duration_s,
        opts.effective_threads()
    );
    let cfg = MachineConfig::synthetic_benchmark();
    let rates = figure5_rates();
    let (points, recorder) = poisson_sweep_observed(&opts, cfg, &rates, opts.metrics);

    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            f(p.x, 0),
            f(p.conventional.mean_latency_us, 0),
            f(p.ldlp.mean_latency_us, 0),
            f(p.conventional.drops as f64, 0),
            f(p.ldlp.drops as f64, 0),
            f(p.conventional.throughput, 0),
            f(p.ldlp.throughput, 0),
        ]);
    }
    let csv = figure6_rows(&points);
    print_table(
        &[
            "rate(msg/s)",
            "conv lat(us)",
            "LDLP lat(us)",
            "conv drops",
            "LDLP drops",
            "conv tput",
            "LDLP tput",
        ],
        &rows,
    );
    write_csv(&opts.out_dir.join("figure6.csv"), &FIGURE6_HEADER, &csv);
    perf::write_fragment(&opts.out_dir, "figure6", opts.effective_threads());
    if let Some(rec) = recorder {
        obs_io::write_metrics(&opts.out_dir, &obs_io::run_meta("figure6", &opts), &rec);
    }
    if opts.trace {
        let mid = rates[rates.len() / 2];
        let traced = traced_poisson_runs(&opts, cfg, mid);
        let parts: Vec<obs::TracePart> = traced
            .iter()
            .map(|(name, rec)| obs::TracePart {
                process: name,
                recorder: rec,
                units_per_us: cfg.clock_mhz, // timestamps are CPU cycles
            })
            .collect();
        obs_io::write_trace(&opts.out_dir, &parts);
    }
}
