//! Figure 6: latency as a function of arrival rate, Poisson traffic.
//!
//! Expected shape (paper): both schedules sit near the single-message
//! service time (~300 us) at light load; conventional saturates near
//! 3500 msg/s and its latency climbs toward the 500-packet buffer bound
//! (~100 ms, with drops); LDLP keeps latency low to ~9500 msg/s because
//! batching raises throughput and cuts queueing.

use bench::figures::{figure6_rows, FIGURE6_HEADER};
use bench::sweep::poisson_sweep;
use bench::{f, figure5_rates, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Figure 6: latency vs. arrival rate (Poisson, 552-byte messages,\n\
         {} placements x {}s each, 500-packet buffer, {} worker threads)\n",
        opts.seeds,
        opts.duration_s,
        opts.effective_threads()
    );
    let points = poisson_sweep(&opts, MachineConfig::synthetic_benchmark(), &figure5_rates());

    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            f(p.x, 0),
            f(p.conventional.mean_latency_us, 0),
            f(p.ldlp.mean_latency_us, 0),
            f(p.conventional.drops as f64, 0),
            f(p.ldlp.drops as f64, 0),
            f(p.conventional.throughput, 0),
            f(p.ldlp.throughput, 0),
        ]);
    }
    let csv = figure6_rows(&points);
    print_table(
        &[
            "rate(msg/s)",
            "conv lat(us)",
            "LDLP lat(us)",
            "conv drops",
            "LDLP drops",
            "conv tput",
            "LDLP tput",
        ],
        &rows,
    );
    write_csv(&opts.out_dir.join("figure6.csv"), &FIGURE6_HEADER, &csv);
    perf::write_fragment(&opts.out_dir, "figure6", opts.effective_threads());
}
