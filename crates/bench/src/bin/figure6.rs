//! Figure 6: latency as a function of arrival rate, Poisson traffic.
//!
//! Expected shape (paper): both schedules sit near the single-message
//! service time (~300 us) at light load; conventional saturates near
//! 3500 msg/s and its latency climbs toward the 500-packet buffer bound
//! (~100 ms, with drops); LDLP keeps latency low to ~9500 msg/s because
//! batching raises throughput and cuts queueing.

use bench::sweep::poisson_sweep;
use bench::{f, figure5_rates, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Figure 6: latency vs. arrival rate (Poisson, 552-byte messages,\n\
         {} placements x {}s each, 500-packet buffer)\n",
        opts.seeds, opts.duration_s
    );
    let points = poisson_sweep(&opts, MachineConfig::synthetic_benchmark(), &figure5_rates());

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for p in &points {
        rows.push(vec![
            f(p.x, 0),
            f(p.conventional.mean_latency_us, 0),
            f(p.ldlp.mean_latency_us, 0),
            f(p.conventional.drops as f64, 0),
            f(p.ldlp.drops as f64, 0),
            f(p.conventional.throughput, 0),
            f(p.ldlp.throughput, 0),
        ]);
        csv.push(vec![
            f(p.x, 0),
            f(p.conventional.mean_latency_us, 2),
            f(p.ldlp.mean_latency_us, 2),
            f(p.conventional.p99_latency_us, 2),
            f(p.ldlp.p99_latency_us, 2),
            p.conventional.drops.to_string(),
            p.ldlp.drops.to_string(),
            f(p.conventional.throughput, 1),
            f(p.ldlp.throughput, 1),
            f(p.conventional.latency_std_us, 2),
            f(p.ldlp.latency_std_us, 2),
        ]);
    }
    print_table(
        &[
            "rate(msg/s)",
            "conv lat(us)",
            "LDLP lat(us)",
            "conv drops",
            "LDLP drops",
            "conv tput",
            "LDLP tput",
        ],
        &rows,
    );
    write_csv(
        &opts.out_dir.join("figure6.csv"),
        &[
            "rate",
            "conv_latency_us",
            "ldlp_latency_us",
            "conv_p99_us",
            "ldlp_p99_us",
            "conv_drops",
            "ldlp_drops",
            "conv_throughput",
            "ldlp_throughput",
            "conv_latency_std_us",
            "ldlp_latency_std_us",
        ],
        &csv,
    );
}
