//! Ablation A7: layout sensitivity (paper Section 4's methodology note).
//!
//! "Because the caches are not fully associative, the number of conflict
//! misses depends on the way the program is laid out in memory" — the
//! paper randomizes placement and averages. This ablation quantifies how
//! much layout matters: the Figure-1 function inventory placed randomly,
//! sequentially (link order), greedily (Cord-style colouring), and by
//! simulated annealing, scored by within-layer cache conflicts and by the
//! simulated per-message miss cost of one receive path.

use bench::sweep::per_seed;
use bench::{print_table, write_csv, RunOpts};
use cachesim::{CacheConfig, Machine, MachineConfig, Region};
use layout::anneal::{anneal_place, AnnealConfig};
use layout::conflict::conflict_score;
use layout::place::{greedy_place, random_place, sequential_place, PlacedFunction};
use netstack::footprint::FUNCTIONS;

/// The Figure-1 inventory as (size, group = Table-1 layer) pairs.
fn inventory() -> Vec<(u64, u32)> {
    FUNCTIONS
        .iter()
        .map(|s| (s.touched_lines().max(1) * 32, s.layer as u32))
        .collect()
}

/// Within-layer excess conflict lines summed over layers.
fn layer_conflicts(placed: &[PlacedFunction], cfg: &CacheConfig) -> u64 {
    let mut groups: std::collections::BTreeMap<u32, Vec<Region>> = Default::default();
    for p in placed {
        groups.entry(p.group).or_default().push(p.region);
    }
    groups
        .values()
        .map(|rs| conflict_score(rs, cfg).excess_lines)
        .sum()
}

/// Simulated I-cache misses for (a) one conventional receive path (all
/// functions fetched once, in order) and (b) one LDLP layer pass: each
/// layer's functions fetched repeatedly, as a blocked batch does. The
/// second number is where self-conflicts hurt — a conflict-free layer
/// stays resident for the whole batch.
fn path_misses(placed: &[PlacedFunction], machine_cfg: MachineConfig) -> (u64, u64) {
    let mut m = Machine::new(machine_cfg);
    let before = m.stats().icache.misses;
    for p in placed {
        m.fetch_code(p.region);
    }
    let cold = m.stats().icache.misses - before;

    // LDLP pass: per layer, fetch its functions for a 14-message batch;
    // count only the re-fetches after the first message.
    let mut groups: std::collections::BTreeMap<u32, Vec<Region>> = Default::default();
    for p in placed {
        groups.entry(p.group).or_default().push(p.region);
    }
    let mut batch_refetches = 0;
    for regions in groups.values() {
        m.flush_caches();
        for r in regions {
            m.fetch_code(*r);
        }
        let before = m.stats().icache.misses;
        for _ in 1..14 {
            for r in regions {
                m.fetch_code(*r);
            }
        }
        batch_refetches += m.stats().icache.misses - before;
    }
    (cold, batch_refetches)
}

fn main() {
    let opts = RunOpts::from_args();
    let sizes = inventory();
    let cache = CacheConfig::direct_mapped(8192, 32);
    let machine = MachineConfig::dec3000_400();
    println!(
        "Layout sensitivity of the Figure-1 inventory ({} functions,\n\
         {} KB of touched code) in an 8 KB direct-mapped I-cache:\n",
        sizes.len(),
        sizes.iter().map(|s| s.0).sum::<u64>() / 1024
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();

    // Random: average over seeds (reported as one row).
    let mut rand_conf = 0u64;
    let mut rand_cold = 0u64;
    let mut rand_steady = 0u64;
    for (conf, cold, steady) in per_seed(&opts, |seed| {
        let placed = random_place(&sizes, Region::new(0, 4 << 20), &cache, seed);
        let (c, s) = path_misses(&placed, machine);
        (layer_conflicts(&placed, &cache), c, s)
    }) {
        rand_conf += conf;
        rand_cold += cold;
        rand_steady += steady;
    }
    rows.push(vec![
        format!("random (avg of {})", opts.seeds),
        (rand_conf / opts.seeds).to_string(),
        (rand_cold / opts.seeds).to_string(),
        (rand_steady / opts.seeds).to_string(),
    ]);
    csv.push(vec![
        "random".to_string(),
        (rand_conf / opts.seeds).to_string(),
        (rand_cold / opts.seeds).to_string(),
        (rand_steady / opts.seeds).to_string(),
    ]);

    {
        let mut eval = |name: &str, placed: Vec<PlacedFunction>| {
            let conflicts = layer_conflicts(&placed, &cache);
            let (cold, steady) = path_misses(&placed, machine);
            rows.push(vec![
                name.to_string(),
                conflicts.to_string(),
                cold.to_string(),
                steady.to_string(),
            ]);
            csv.push(vec![
                name.to_string(),
                conflicts.to_string(),
                cold.to_string(),
                steady.to_string(),
            ]);
        };

        eval("sequential (link order)", sequential_place(&sizes, 0x1000, &cache));
        eval("greedy (Cord-style)", greedy_place(&sizes, 0x1000, &cache, 1));
        eval(
            "annealed",
            anneal_place(&sizes, 0x1000, &cache, 1, AnnealConfig::default()),
        );
    }

    print_table(
        &["placement", "layer conflicts", "cold misses", "LDLP batch refetches"],
        &rows,
    );
    println!(
        "\nCold misses are layout-independent (the working set is ~3.7x the\n\
         cache either way), but LDLP's payoff depends on each layer staying\n\
         resident for its whole batch: random placement's within-layer\n\
         conflicts re-fetch lines on every message of the batch, while any\n\
         packed layout keeps them at zero — the paper's 'no self-conflicts\n\
         within a layer' assumption, and what Cord-style tools buy you."
    );
    write_csv(
        &opts.out_dir.join("ablation_layout.csv"),
        &["placement", "layer_conflicts", "cold_misses", "ldlp_batch_refetches"],
        &csv,
    );
}
