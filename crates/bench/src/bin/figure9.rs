//! Figure 9: multi-core protocol processing — I-misses per message and
//! latency vs. arrival rate, core count, and dispatch policy.
//!
//! Expected shape: with the whole five-layer stack on every core
//! (hash / round-robin dispatch), each private 8 KB I-cache cycles
//! ~30 KB of layer code and the paper's single-core thrashing recurs on
//! N cores at N× the rate; LDLP batching amortises but cannot eliminate
//! it. Layer-affinity dispatch pins 1–2 layers per core so stage code
//! *stays resident*, collapsing I-misses per message — at the price of
//! hand-off queueing and a bottleneck stage that saturates before a
//! round-robin fleet does. The crossover is the figure's headline.
//!
//! Writes `results/figure9.csv` (or `results/figure9_smoke.csv` under
//! `--smoke`, compared byte-for-byte against a committed golden file in
//! CI). Byte-identical for any `--threads` value.

use bench::figure9::{core_counts, rates, sweep_observed, traced_runs, FIGURE9_HEADER};
use bench::{obs_io, perf, print_table, write_csv, RunOpts};

fn main() {
    let mut opts = RunOpts::from_args();
    if opts.seeds == RunOpts::default().seeds {
        opts.seeds = if opts.smoke { 2 } else { 10 };
    }
    println!(
        "Figure 9: multi-core sweep (Poisson, 552-byte messages, {} flows,\n\
         cores {:?}, {} rates x 6 variants x {} placements x {}s, {} worker threads)\n",
        bench::figure9::FLOWS,
        core_counts(opts.smoke),
        rates(opts.smoke).len(),
        opts.seeds,
        opts.duration_s,
        opts.effective_threads()
    );

    let (points, recorder) = sweep_observed(&opts, opts.metrics);
    let rows = bench::figure9::figure9_rows(&points);

    // The printed table is the headline subset; the CSV has every column.
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r[0].clone(),  // rate
                r[1].clone(),  // cores
                r[2].clone(),  // discipline
                r[3].clone(),  // dispatch
                r[4].clone(),  // imiss_per_msg
                r[7].clone(),  // p99_latency_us
                r[9].clone(),  // goodput
                r[10].clone(), // drops
                r[16].clone(), // handoff_msgs
            ]
        })
        .collect();
    print_table(
        &[
            "rate(msg/s)",
            "cores",
            "disc",
            "disp",
            "imiss/msg",
            "p99(us)",
            "goodput",
            "drops",
            "handoffs",
        ],
        &table,
    );

    let name = if opts.smoke {
        "figure9_smoke.csv"
    } else {
        "figure9.csv"
    };
    write_csv(&opts.out_dir.join(name), &FIGURE9_HEADER, &rows);
    perf::write_fragment(&opts.out_dir, "figure9", opts.effective_threads());
    if let Some(rec) = recorder {
        obs_io::write_metrics(&opts.out_dir, &obs_io::run_meta("figure9", &opts), &rec);
    }
    if opts.trace {
        // One heavy-load cell at four cores: the contrast the figure is
        // about, with one track per (variant, core).
        let rate = rates(opts.smoke)[rates(opts.smoke).len() - 1];
        let traced = traced_runs(&opts, rate, 4);
        let clock_mhz = smp::SmpConfig::new(
            4,
            smp::DispatchPolicy::FlowHash,
            ldlp::Discipline::Conventional,
        )
        .machine
        .clock_mhz;
        let parts: Vec<obs::TracePart> = traced
            .iter()
            .map(|(name, rec)| obs::TracePart {
                process: name,
                recorder: rec,
                units_per_us: clock_mhz, // timestamps are CPU cycles
            })
            .collect();
        obs_io::write_trace(&opts.out_dir, &parts);
    }
}
