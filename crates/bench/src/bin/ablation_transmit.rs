//! Ablation A5: transmit-side LDLP — the extension the paper names but
//! does not evaluate ("The techniques presented are also applicable to
//! transmit-side processing").
//!
//! The receive-and-acknowledge path is duplex: each received message
//! climbs five layers, then its 58-byte ACK descends three output layers
//! (tcp_output / ip_output / ether_output in the traced stack). This
//! ablation compares rx-only LDLP (replies interleaved conventionally is
//! not expressible — replies always follow the schedule) against the
//! full duplex working set, conventional vs. LDLP.

use bench::sweep::seed_average;
use bench::{f, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;
use ldlp::synth::{paper_stack, stack_with};
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::stats::SimReport;
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

/// Builds an engine; `duplex` adds three 4-KB transmit layers and a
/// 58-byte reply per message (the ACK path).
fn engine(discipline: Discipline, seed: u64, duplex: bool) -> StackEngine {
    let (m, rx) = paper_stack(MachineConfig::synthetic_benchmark(), seed);
    let e = StackEngine::new(m, rx, discipline);
    if duplex {
        let (_, tx) = stack_with(
            MachineConfig::synthetic_benchmark(),
            seed ^ 0x7a,
            3,
            4 * 1024,
            256,
        );
        e.with_tx(tx, 58)
    } else {
        e
    }
}

fn run(discipline: Discipline, duplex: bool, rate: f64, opts: &RunOpts) -> SimReport {
    seed_average(opts, |seed| {
        let arrivals = PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
        let mut e = engine(discipline, seed, duplex);
        let report = run_sim(
            &mut e,
            &arrivals,
            &SimConfig {
                duration_s: opts.duration_s,
                ..SimConfig::default()
            },
        );
        perf::note_machine(e.machine());
        report
    })
}

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Ablation: transmit-side LDLP. rx = 5 x 6 KB layers; duplex adds a\n\
         58-byte reply descending 3 x 4 KB output layers (42 KB total\n\
         working set). {} seeds x {}s.\n",
        opts.seeds, opts.duration_s
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for rate in [2000.0, 4000.0, 6000.0, 8000.0] {
        let conv_rx = run(Discipline::Conventional, false, rate, &opts);
        let ldlp_rx = run(Discipline::Ldlp(BatchPolicy::DCacheFit), false, rate, &opts);
        let conv_dx = run(Discipline::Conventional, true, rate, &opts);
        let ldlp_dx = run(Discipline::Ldlp(BatchPolicy::DCacheFit), true, rate, &opts);
        rows.push(vec![
            f(rate, 0),
            f(conv_rx.mean_imiss, 0),
            f(ldlp_rx.mean_imiss, 0),
            f(conv_dx.mean_imiss, 0),
            f(ldlp_dx.mean_imiss, 0),
            f(conv_dx.mean_latency_us, 0),
            f(ldlp_dx.mean_latency_us, 0),
        ]);
        csv.push(vec![
            f(rate, 0),
            f(conv_rx.mean_imiss, 2),
            f(ldlp_rx.mean_imiss, 2),
            f(conv_rx.mean_latency_us, 2),
            f(ldlp_rx.mean_latency_us, 2),
            f(conv_dx.mean_imiss, 2),
            f(ldlp_dx.mean_imiss, 2),
            f(conv_dx.mean_latency_us, 2),
            f(ldlp_dx.mean_latency_us, 2),
        ]);
    }
    print_table(
        &[
            "rate",
            "rx conv I",
            "rx LDLP I",
            "duplex conv I",
            "duplex LDLP I",
            "duplex conv lat",
            "duplex LDLP lat",
        ],
        &rows,
    );
    println!(
        "\nThe ACK path grows the per-message working set by 40%, so the duplex\n\
         conventional schedule saturates even earlier — and blocked transmit\n\
         processing recovers it, confirming the paper's conjecture that the\n\
         technique applies on the transmit side."
    );
    write_csv(
        &opts.out_dir.join("ablation_transmit.csv"),
        &[
            "rate",
            "rx_conv_imiss",
            "rx_ldlp_imiss",
            "rx_conv_lat_us",
            "rx_ldlp_lat_us",
            "duplex_conv_imiss",
            "duplex_ldlp_imiss",
            "duplex_conv_lat_us",
            "duplex_ldlp_lat_us",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "ablation_transmit", opts.effective_threads());
}
