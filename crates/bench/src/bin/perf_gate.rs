//! CI perf-budget gate: reads per-binary perf fragments
//! (`results/perf/<bin>.json`, written by every experiment binary) and
//! fails when a memoizable binary's footprint-replay hit rate falls
//! below the budget. A binary is *memoizable* when its fragment reports
//! no `bypass_reason` — i.e. no machine in the run was configured out
//! of the memo (unified cache, board cache) and no sweep ever bypassed
//! it. Ineligible binaries are reported and skipped: the gate checks
//! that the memo works where it can, not that every config uses it.
//!
//! Usage: `perf_gate <fragment.json>...`

use bench::perf;

/// Memoizable binaries must replay at least this fraction of sweeps.
const MIN_HIT_RATE: f64 = 0.999;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    assert!(!args.is_empty(), "usage: perf_gate <fragment.json>...");
    let mut failures = 0usize;
    for path in &args {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
        let name = perf::json_str(&text, "name").unwrap_or_else(|| path.clone());
        let hits = perf::json_u64(&text, "replay_hits").unwrap_or(0);
        let misses = perf::json_u64(&text, "replay_misses").unwrap_or(0);
        let bypasses = perf::json_u64(&text, "replay_bypasses").unwrap_or(0);
        if let Some(reason) = perf::json_str(&text, "bypass_reason") {
            println!("perf_gate: {name}: skipped (bypass reason: {reason})");
            continue;
        }
        let total = hits + misses + bypasses;
        let rate = if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        };
        if total == 0 {
            println!("perf_gate: FAIL {name}: memoizable but recorded no replay traffic");
            failures += 1;
        } else if rate < MIN_HIT_RATE {
            println!(
                "perf_gate: FAIL {name}: replay hit rate {rate:.4} < {MIN_HIT_RATE} \
                 ({hits} hits / {misses} misses / {bypasses} bypasses)"
            );
            failures += 1;
        } else {
            println!("perf_gate: OK {name}: replay hit rate {rate:.4} ({total} sweeps)");
        }
    }
    if failures > 0 {
        eprintln!("perf_gate: {failures} binar(ies) under the replay-hit-rate budget");
        std::process::exit(1);
    }
}
