//! Figure 14: several stacks interleaved — per-class latency, I-cache
//! cost, and SLO attainment of a mixed multi-protocol service.
//!
//! One deterministic stream interleaves five message classes (call
//! signalling, service RPC, media control, DNS, CBOR agent messaging),
//! each with its own handler footprint, session table, heavy-tailed
//! size band, and latency SLO. Expected shape: on one core every
//! variant saturates and sheds; as cores grow, the conventional rows
//! keep paying the cold-cache tax of five handler footprints evicting
//! each other at every class boundary, while LDLP batching amortises
//! it and layer-affinity placement keeps stage code resident — the
//! tight-SLO media-control class is the first to notice the
//! difference, the loose-SLO agent class the last.
//!
//! Writes `results/figure14.csv` (or `results/figure14_smoke.csv`
//! under `--smoke`, compared byte-for-byte against a committed golden
//! file in CI). Byte-identical for any `--threads` value.

use bench::figure14::{core_counts, sweep_observed, FIGURE14_HEADER, FLOWS, RATE_MSG_S};
use bench::{obs_io, perf, print_table, write_csv, RunOpts};

fn main() {
    let mut opts = RunOpts::from_args();
    if opts.seeds == RunOpts::default().seeds {
        opts.seeds = if opts.smoke { 2 } else { 10 };
    }
    println!(
        "Figure 14: mixed multi-protocol service ({} msg/s across 5 classes, {} flows,\n\
         cores {:?}, 3 variants x {} streams x {}s, {} worker threads)\n",
        RATE_MSG_S,
        FLOWS,
        core_counts(opts.smoke),
        opts.seeds,
        opts.duration_s,
        opts.effective_threads()
    );

    let (points, recorder) = sweep_observed(&opts, opts.metrics);
    let rows = bench::figure14::figure14_rows(&points);

    // The printed table is the headline subset; the CSV has every column.
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r[0].clone(),  // cores
                r[1].clone(),  // variant
                r[2].clone(),  // class
                r[3].clone(),  // offered
                r[4].clone(),  // completed
                r[9].clone(),  // p99_latency_us
                r[10].clone(), // imiss_per_msg
                r[13].clone(), // slo_attainment
                r[14].clone(), // slo_met
            ]
        })
        .collect();
    print_table(
        &[
            "cores",
            "variant",
            "class",
            "offered",
            "completed",
            "p99(us)",
            "imiss/msg",
            "slo_att",
            "met",
        ],
        &table,
    );

    let name = if opts.smoke {
        "figure14_smoke.csv"
    } else {
        "figure14.csv"
    };
    write_csv(&opts.out_dir.join(name), &FIGURE14_HEADER, &rows);
    perf::write_fragment(&opts.out_dir, "figure14", opts.effective_threads());
    if let Some(rec) = recorder {
        obs_io::write_metrics(&opts.out_dir, &obs_io::run_meta("figure14", &opts), &rec);
    }
}
