//! Table 1: working-set sizes in the NetBSD TCP receive-and-acknowledge
//! path, by layer, split into code / read-only data / mutable data.
//!
//! Regenerates the table from the instrumented stack's reference trace and
//! prints it beside the paper's published values.

use bench::{print_table, write_csv, RunOpts};
use memtrace::workingset::working_set;
use netstack::footprint::{
    build_receive_ack_trace, Layer, PAPER_CODE_BYTES, PAPER_MUT_BYTES, PAPER_RO_BYTES,
};

fn main() {
    let opts = RunOpts::from_args();
    let trace = build_receive_ack_trace();
    trace.validate().expect("trace is well-formed");
    let ws = working_set(&trace, 32);

    println!("Table 1: Working-set sizes, TCP receive & acknowledge path");
    println!("(bytes at 32-byte cache-line granularity; paper values in parentheses)\n");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (li, row) in ws.rows.iter().enumerate() {
        rows.push(vec![
            Layer::NAMES[li].to_string(),
            format!("{} ({})", row.code.bytes, PAPER_CODE_BYTES[li]),
            format!("{} ({})", row.ro_data.bytes, PAPER_RO_BYTES[li]),
            format!("{} ({})", row.mut_data.bytes, PAPER_MUT_BYTES[li]),
        ]);
        csv.push(vec![
            Layer::NAMES[li].to_string(),
            row.code.bytes.to_string(),
            row.ro_data.bytes.to_string(),
            row.mut_data.bytes.to_string(),
            PAPER_CODE_BYTES[li].to_string(),
            PAPER_RO_BYTES[li].to_string(),
            PAPER_MUT_BYTES[li].to_string(),
        ]);
    }
    rows.push(vec![
        "Total".to_string(),
        format!(
            "{} ({})",
            ws.total.code.bytes,
            PAPER_CODE_BYTES.iter().sum::<u64>()
        ),
        format!(
            "{} ({})",
            ws.total.ro_data.bytes,
            PAPER_RO_BYTES.iter().sum::<u64>()
        ),
        format!(
            "{} ({})",
            ws.total.mut_data.bytes,
            PAPER_MUT_BYTES.iter().sum::<u64>()
        ),
    ]);
    print_table(&["Description", "Code", "RO Data", "Mut Data"], &rows);

    println!(
        "\nNote: the paper prints a code total of 30592; its per-layer rows sum\n\
         to 30304 (the published table has a 288-byte discrepancy). This\n\
         reproduction matches the per-layer rows exactly."
    );

    write_csv(
        &opts.out_dir.join("table1.csv"),
        &[
            "layer",
            "code_bytes",
            "ro_bytes",
            "mut_bytes",
            "paper_code",
            "paper_ro",
            "paper_mut",
        ],
        &csv,
    );
}
