//! Figure 4's regime boundary, made quantitative: "for large-message
//! protocols, one is a good blocking factor, and so a conventional
//! protocol implementation performs well. It is small-message protocols
//! which benefit from LDLP."
//!
//! Sweeps the message size from 64 bytes to 16 KB at a fixed offered
//! *byte* rate, comparing all three disciplines. Small messages: ILP is
//! indistinguishable from conventional and LDLP wins. Large messages:
//! the message itself dominates the working set, the D-cache-fit batch
//! degenerates to 1, LDLP converges to conventional — and ILP takes over
//! as the winning technique (its data loops touch the message once
//! instead of once per layer).

use bench::sweep::seed_average;
use bench::{f, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;
use ldlp::synth::paper_stack;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::stats::SimReport;
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

/// Offered load in bytes/second — 552-byte messages at 5000 msg/s.
const BYTE_RATE: f64 = 552.0 * 5000.0;

fn run(discipline: Discipline, msg_bytes: u32, opts: &RunOpts) -> SimReport {
    let rate = (BYTE_RATE / msg_bytes as f64).min(20_000.0);
    seed_average(opts, |seed| {
        let arrivals = PoissonSource::new(rate, msg_bytes, seed).take_until(opts.duration_s);
        let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), seed);
        let mut engine = StackEngine::new(m, layers, discipline);
        let cfg = SimConfig {
            duration_s: opts.duration_s,
            pool_bufs: 32,
            pool_buf_bytes: 17 * 1024,
            pool_seed: seed,
            ..SimConfig::default()
        };
        let report = run_sim(&mut engine, &arrivals, &cfg);
        perf::note_machine(engine.machine());
        report
    })
}

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Figure 4 regimes: message size vs. winning discipline at a fixed\n\
         {:.1} MB/s offered load ({} seeds x {}s)\n",
        BYTE_RATE / 1e6,
        opts.seeds,
        opts.duration_s
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for msg in [64u32, 256, 552, 1024, 4096, 16384] {
        let conv = run(Discipline::Conventional, msg, &opts);
        let ilp = run(Discipline::Ilp, msg, &opts);
        let ldlp = run(Discipline::Ldlp(BatchPolicy::DCacheFit), msg, &opts);
        let total =
            |r: &SimReport| r.mean_imiss + r.mean_dmiss;
        let winner = {
            let c = conv.mean_latency_us;
            let i = ilp.mean_latency_us;
            let l = ldlp.mean_latency_us;
            if l <= i && l < c * 0.95 {
                "LDLP"
            } else if i < c * 0.95 && i < l {
                "ILP"
            } else {
                "tie"
            }
        };
        rows.push(vec![
            msg.to_string(),
            f(total(&conv), 0),
            f(total(&ilp), 0),
            f(total(&ldlp), 0),
            f(conv.mean_latency_us, 0),
            f(ilp.mean_latency_us, 0),
            f(ldlp.mean_latency_us, 0),
            f(ldlp.mean_batch, 1),
            winner.to_string(),
        ]);
        csv.push(vec![
            msg.to_string(),
            f(conv.mean_imiss, 2),
            f(conv.mean_dmiss, 2),
            f(ilp.mean_imiss, 2),
            f(ilp.mean_dmiss, 2),
            f(ldlp.mean_imiss, 2),
            f(ldlp.mean_dmiss, 2),
            f(conv.mean_latency_us, 2),
            f(ilp.mean_latency_us, 2),
            f(ldlp.mean_latency_us, 2),
            f(ldlp.mean_batch, 3),
        ]);
    }
    print_table(
        &[
            "msg(B)",
            "conv misses",
            "ILP misses",
            "LDLP misses",
            "conv lat",
            "ILP lat",
            "LDLP lat",
            "batch",
            "winner",
        ],
        &rows,
    );
    println!(
        "\nThe boundary sits where message size crosses the per-layer code\n\
         footprint (Figure 4): below it LDLP batches and wins; above it the\n\
         batch collapses to 1 and ILP's single data pass takes over. The\n\
         paper's advice — decide which regime your protocol is in before\n\
         picking a technique — drops out of one table."
    );
    write_csv(
        &opts.out_dir.join("figure4_regimes.csv"),
        &[
            "msg_bytes",
            "conv_imiss",
            "conv_dmiss",
            "ilp_imiss",
            "ilp_dmiss",
            "ldlp_imiss",
            "ldlp_dmiss",
            "conv_lat_us",
            "ilp_lat_us",
            "ldlp_lat_us",
            "ldlp_batch",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "figure4_regimes", opts.effective_threads());
}
