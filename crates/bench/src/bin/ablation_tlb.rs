//! Ablation A6: TLB pressure — extending the locality argument below the
//! caches, per the paper's citation of Pagels, Druschel & Peterson
//! ("Analysis of cache and TLB effectiveness in processing network I/O").
//!
//! The paper's traces exclude PAL code, the Alpha firmware that refills
//! the TLB, so TLB costs are invisible in its tables — but the mechanism
//! is the same: a 30 KB stack scattered over the address space touches
//! more instruction pages per message than a 12-entry ITB holds, and
//! blocked scheduling amortizes the refills exactly like the cache
//! misses. This ablation reruns the Figure 5 sweep with Alpha-21064-style
//! TLBs enabled.

use bench::sweep::per_seed;
use bench::{f, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;
use ldlp::synth::stack_with;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

fn run(discipline: Discipline, rate: f64, opts: &RunOpts) -> (f64, f64, f64) {
    let runs = per_seed(opts, |seed| {
        let arrivals = PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
        let cfg = MachineConfig::synthetic_benchmark().with_alpha_tlbs();
        // The value-added stack (8 layers x 9 KB, ~20 scattered pages):
        // the paper's transport stack fits a 12-entry ITB, so ITB
        // pressure only appears once presentation/encryption layers grow
        // the working set (Section 6's scenario).
        let (m, layers) = stack_with(cfg, seed, 8, 9 * 1024, 256);
        let mut engine = StackEngine::new(m, layers, discipline);
        let r = run_sim(
            &mut engine,
            &arrivals,
            &SimConfig {
                duration_s: opts.duration_s,
                ..SimConfig::default()
            },
        );
        perf::note_machine(engine.machine());
        let s = engine.machine().stats();
        let n = r.completed.max(1) as f64;
        (
            s.itlb.misses as f64 / n,
            s.dtlb.misses as f64 / n,
            r.mean_latency_us,
        )
    });
    let n = opts.seeds as f64;
    let (mut itlb, mut dtlb, mut lat) = (0.0, 0.0, 0.0);
    for (i, d, l) in runs {
        itlb += i;
        dtlb += d;
        lat += l;
    }
    (itlb / n, dtlb / n, lat / n)
}

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Ablation: TLB refills per message (Alpha 21064 ITB/DTB model,\n\
         {} seeds x {}s)\n",
        opts.seeds, opts.duration_s
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for rate in [1000.0, 3000.0, 5000.0, 7000.0, 9000.0] {
        let (ci, cd, cl) = run(Discipline::Conventional, rate, &opts);
        let (li, ld, ll) = run(Discipline::Ldlp(BatchPolicy::DCacheFit), rate, &opts);
        rows.push(vec![
            f(rate, 0),
            f(ci, 1),
            f(li, 1),
            f(cd, 1),
            f(ld, 1),
            f(cl, 0),
            f(ll, 0),
        ]);
        csv.push(vec![
            f(rate, 0),
            f(ci, 3),
            f(li, 3),
            f(cd, 3),
            f(ld, 3),
            f(cl, 2),
            f(ll, 2),
        ]);
    }
    print_table(
        &[
            "rate",
            "conv ITB/msg",
            "LDLP ITB/msg",
            "conv DTB/msg",
            "LDLP DTB/msg",
            "conv lat(us)",
            "LDLP lat(us)",
        ],
        &rows,
    );
    println!(
        "\nThe 30 KB transport stack fits a 12-entry ITB, but this value-added\n\
         stack's ~20 scattered instruction pages do not: the conventional\n\
         schedule refills the ITB per message while LDLP's refills amortize\n\
         over the batch — the cache story, one level down."
    );
    write_csv(
        &opts.out_dir.join("ablation_tlb.csv"),
        &[
            "rate",
            "conv_itlb_per_msg",
            "ldlp_itlb_per_msg",
            "conv_dtlb_per_msg",
            "ldlp_dtlb_per_msg",
            "conv_lat_us",
            "ldlp_lat_us",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "ablation_tlb", opts.effective_threads());
}
