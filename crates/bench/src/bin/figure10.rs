//! Figure 10: million-flow data working sets — D-misses per message and
//! tail latency vs. concurrent-flow population and lookup scheme.
//!
//! Expected shape: at 10^2 flows every scheme's working set fits the
//! D-cache and lookups are nearly free; by 10^5–10^6 flows the
//! open-addressing table's probe footprint dwarfs the cache, every
//! cache-missing lookup pays cold-line reads, and D-misses per message
//! climb until they erode LDLP's instruction-cache win — the paper's
//! small-message argument inverted by data-side scale. The lookup-cache
//! columns reproduce Jain's DEC-TR-592 ordering (LRU > FIFO > random
//! hit rate, deeper caches hitting more) *and* its cost side: a deep
//! linearly-scanned cache pays its own footprint on every miss, so
//! under heavy-tailed Zipf popularity the hit-rate win is bought with
//! scan D-misses. Packet trains (self-similar locality) make even a
//! shallow cache effective.
//!
//! Writes `results/figure10.csv` (or `results/figure10_smoke.csv` under
//! `--smoke`, compared byte-for-byte against a committed golden file in
//! CI). Byte-identical for any `--threads` value.

use bench::figure10::{figure10_rows, populations, sweep, variants, FIGURE10_HEADER, RATE};
use bench::{perf, print_table, write_csv, RunOpts};

fn main() {
    let mut opts = RunOpts::from_args();
    if opts.seeds == RunOpts::default().seeds {
        opts.seeds = if opts.smoke { 2 } else { 3 };
    }
    println!(
        "Figure 10: flow-population sweep (Poisson {} msg/s, 552-byte messages,\n\
         populations {:?}, 2 disciplines x {} lookup variants x {} placements x {}s,\n\
         {} worker threads)\n",
        RATE,
        populations(opts.smoke),
        variants(opts.smoke).len(),
        opts.seeds,
        opts.duration_s,
        opts.effective_threads()
    );

    let points = sweep(&opts);
    let rows = figure10_rows(&points);

    // The printed table is the headline subset; the CSV has every column.
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r[0].clone(),  // population
                r[1].clone(),  // discipline
                r[2].clone(),  // scheme
                r[3].clone(),  // cache_slots
                r[4].clone(),  // popmodel
                r[6].clone(),  // dmiss_per_msg
                r[8].clone(),  // p99_latency_us
                r[12].clone(), // cache_hit_rate
                r[13].clone(), // mean_probes
            ]
        })
        .collect();
    print_table(
        &[
            "flows",
            "disc",
            "scheme",
            "slots",
            "popmodel",
            "dmiss/msg",
            "p99(us)",
            "hit_rate",
            "probes",
        ],
        &table,
    );

    let name = if opts.smoke {
        "figure10_smoke.csv"
    } else {
        "figure10.csv"
    };
    write_csv(&opts.out_dir.join(name), &FIGURE10_HEADER, &rows);
    perf::write_fragment(&opts.out_dir, "figure10", opts.effective_threads());
}
