//! Ablation A4 (paper Section 6): "If the future brings processors with
//! large primary caches, will LDLP become irrelevant?"
//!
//! Sweeps the primary cache size from the paper's 8 KB to 64 KB
//! (Rosenblum's 1998 prediction) for two stacks: the paper's 30 KB
//! transport stack, and a 72 KB "value-added" stack — presentation and
//! encryption layers, "the sum of the parts including more functionality
//! than is strictly necessary" — that the paper predicts will keep
//! outgrowing caches.

use bench::sweep::seed_average;
use bench::{f, perf, print_table, write_csv, RunOpts};
use cachesim::{CacheConfig, MachineConfig};
use ldlp::synth::stack_sequential;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::stats::SimReport;
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

fn machine(cache_kb: u64) -> MachineConfig {
    MachineConfig {
        icache: CacheConfig::direct_mapped(cache_kb * 1024, 32),
        dcache: Some(CacheConfig::direct_mapped(cache_kb * 1024, 32)),
        // Rosenblum: bigger caches come with deeper miss penalties.
        read_miss_penalty: if cache_kb >= 32 { 30 } else { 20 },
        ..MachineConfig::synthetic_benchmark()
    }
}

fn run(
    cache_kb: u64,
    layers: usize,
    code_bytes: u64,
    discipline: Discipline,
    rate: f64,
    opts: &RunOpts,
) -> SimReport {
    seed_average(opts, |seed| {
        let arrivals = PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
        // Sequential (Cord-quality) placement isolates *capacity* effects:
        // with random placement, conflict misses keep LDLP relevant even
        // when the stack nominally fits (see `stack_with` and layout::place
        // for that experiment).
        let (m, stack) = stack_sequential(machine(cache_kb), layers, code_bytes, 256);
        let mut engine = StackEngine::new(m, stack, discipline);
        let report = run_sim(
            &mut engine,
            &arrivals,
            &SimConfig {
                duration_s: opts.duration_s,
                pool_seed: seed,
                ..SimConfig::default()
            },
        );
        perf::note_machine(engine.machine());
        report
    })
}

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Ablation: primary cache size vs. LDLP relevance ({} seeds, 6000 msg/s)\n",
        opts.seeds
    );
    let rate = 6000.0;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (stack_name, layers, code) in [
        ("transport 30KB", 5usize, 6 * 1024u64),
        ("value-added 72KB", 8, 9 * 1024),
    ] {
        for cache_kb in [8u64, 16, 32, 64] {
            let conv = run(cache_kb, layers, code, Discipline::Conventional, rate, &opts);
            let ldlp = run(
                cache_kb,
                layers,
                code,
                Discipline::Ldlp(BatchPolicy::DCacheFit),
                rate,
                &opts,
            );
            let speedup = if ldlp.mean_latency_us > 0.0 {
                conv.mean_latency_us / ldlp.mean_latency_us
            } else {
                1.0
            };
            rows.push(vec![
                stack_name.to_string(),
                format!("{cache_kb}KB"),
                f(conv.mean_imiss, 0),
                f(ldlp.mean_imiss, 0),
                f(conv.mean_latency_us, 0),
                f(ldlp.mean_latency_us, 0),
                f(speedup, 2),
            ]);
            csv.push(vec![
                stack_name.to_string(),
                cache_kb.to_string(),
                f(conv.mean_imiss, 2),
                f(ldlp.mean_imiss, 2),
                f(conv.mean_latency_us, 2),
                f(ldlp.mean_latency_us, 2),
                f(speedup, 3),
            ]);
        }
    }
    print_table(
        &[
            "stack",
            "cache",
            "conv I",
            "LDLP I",
            "conv lat(us)",
            "LDLP lat(us)",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nOnce the stack fits the cache (32KB+ for the transport stack) both\n\
         schedules converge — LDLP costs only its 40-instruction queueing\n\
         overhead. The value-added stack keeps LDLP relevant at 64 KB,\n\
         matching the paper's closing prediction."
    );
    write_csv(
        &opts.out_dir.join("ablation_cachesize.csv"),
        &[
            "stack",
            "cache_kb",
            "conv_imiss",
            "ldlp_imiss",
            "conv_lat_us",
            "ldlp_lat_us",
            "speedup",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "ablation_cachesize", opts.effective_threads());
}
