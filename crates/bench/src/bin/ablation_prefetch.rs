//! Ablation A8: instruction prefetching.
//!
//! Section 4: "Some processors can prefetch instructions from the second
//! level cache to hide some of the cache miss cost, although ultimately
//! the execution rate is bounded by the second level cache bandwidth."
//! Section 5.4 adds that "instruction prefetching increases the relative
//! benefit of dense cache layouts." This ablation reruns the latency
//! sweep with next-line I-prefetch on and off: prefetch roughly halves
//! the conventional schedule's stall bill (straight-line protocol code is
//! the best case for it) — moving its saturation point — while LDLP,
//! having already removed most fetches, gains little. Prefetch and LDLP
//! attack the same cost from opposite ends.

use bench::sweep::seed_average;
use bench::{f, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;
use ldlp::synth::paper_stack;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::stats::SimReport;
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

fn run(cfg: MachineConfig, d: Discipline, rate: f64, opts: &RunOpts) -> SimReport {
    seed_average(opts, |seed| {
        let arrivals = PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
        let (m, layers) = paper_stack(cfg, seed);
        let mut engine = StackEngine::new(m, layers, d);
        let report = run_sim(
            &mut engine,
            &arrivals,
            &SimConfig {
                duration_s: opts.duration_s,
                ..SimConfig::default()
            },
        );
        perf::note_machine(engine.machine());
        report
    })
}

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Ablation: next-line instruction prefetch ({} seeds x {}s)\n",
        opts.seeds, opts.duration_s
    );
    let plain = MachineConfig::synthetic_benchmark();
    let pf = plain.with_prefetch();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for rate in [2000.0, 4000.0, 6000.0, 8000.0] {
        let conv = run(plain, Discipline::Conventional, rate, &opts);
        let conv_pf = run(pf, Discipline::Conventional, rate, &opts);
        let ldlp = run(plain, Discipline::Ldlp(BatchPolicy::DCacheFit), rate, &opts);
        let ldlp_pf = run(pf, Discipline::Ldlp(BatchPolicy::DCacheFit), rate, &opts);
        rows.push(vec![
            f(rate, 0),
            f(conv.mean_latency_us, 0),
            f(conv_pf.mean_latency_us, 0),
            f(ldlp.mean_latency_us, 0),
            f(ldlp_pf.mean_latency_us, 0),
            conv.drops.to_string(),
            conv_pf.drops.to_string(),
        ]);
        csv.push(vec![
            f(rate, 0),
            f(conv.mean_latency_us, 2),
            f(conv_pf.mean_latency_us, 2),
            f(ldlp.mean_latency_us, 2),
            f(ldlp_pf.mean_latency_us, 2),
            conv.drops.to_string(),
            conv_pf.drops.to_string(),
            ldlp.drops.to_string(),
            ldlp_pf.drops.to_string(),
        ]);
    }
    print_table(
        &[
            "rate",
            "conv lat",
            "conv+PF lat",
            "LDLP lat",
            "LDLP+PF lat",
            "conv drops",
            "conv+PF drops",
        ],
        &rows,
    );
    println!(
        "\nPrefetch halves the conventional stall bill (straight-line protocol\n\
         code is its best case) and pushes conventional saturation up — but\n\
         LDLP without prefetch still beats conventional with it, and adding\n\
         prefetch to LDLP changes little: there is not much left to hide."
    );
    write_csv(
        &opts.out_dir.join("ablation_prefetch.csv"),
        &[
            "rate",
            "conv_lat_us",
            "conv_pf_lat_us",
            "ldlp_lat_us",
            "ldlp_pf_lat_us",
            "conv_drops",
            "conv_pf_drops",
            "ldlp_drops",
            "ldlp_pf_drops",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "ablation_prefetch", opts.effective_threads());
}
