//! Figure 13: closed-loop overload — goodput, latency, and retry
//! amplification vs. offered load from 0.5x to 3x capacity.
//!
//! Open-loop figures hold the arrival process fixed; here the clients
//! close the loop. A client that times out retransmits, so a slow
//! server recruits extra load exactly when it can least afford it.
//! Expected shape: below capacity every variant tracks the offered
//! line. Past capacity the unbudgeted-retry rows (`budget=off`) fill
//! the queues with duplicate copies — throughput stays pinned at
//! capacity while *goodput* collapses, the metastable-failure
//! signature. Head-drop admission bounds the queueing delay of
//! everything that completes, so acknowledgements outrun retransmit
//! timers and the collapse flattens; weighted-fair admission (`wfq`)
//! additionally protects the light signalling class from bulk-RPC
//! retry floods. The `ldlp` rows run the layer-affinity pipeline under
//! stall-the-producer hand-off flow control, so backpressure is real
//! (charged `bp_stall_cycles`), not clairvoyant batch sizing.
//!
//! Writes `results/figure13.csv` (or `results/figure13_smoke.csv`
//! under `--smoke`, compared byte-for-byte against a committed golden
//! file in CI). Byte-identical for any `--threads` value.

use bench::figure13::{cells, loads, sweep, FIGURE13_HEADER};
use bench::{perf, print_table, write_csv, RunOpts};

fn main() {
    let mut opts = RunOpts::from_args();
    if opts.seeds == RunOpts::default().seeds {
        opts.seeds = if opts.smoke { 2 } else { 10 };
    }
    println!(
        "Figure 13: closed-loop overload ({} retrying clients in 3 classes,\n\
         {} cores, loads {:?} x capacity, {} cells x {} seeds x {}s, {} worker threads)\n",
        bench::figure13::CLIENTS,
        bench::figure13::CORES,
        loads(opts.smoke),
        cells(opts.smoke).len(),
        opts.seeds,
        opts.duration_s,
        opts.effective_threads()
    );

    let points = sweep(&opts);
    let rows = bench::figure13::figure13_rows(&points);

    // The printed table is the headline subset; the CSV has every column.
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r[0].clone(),  // load
                r[2].clone(),  // variant
                r[3].clone(),  // admission
                r[4].clone(),  // budget
                r[7].clone(),  // retry_amp
                r[8].clone(),  // goodput
                r[9].clone(),  // throughput
                r[11].clone(), // p99_latency_us
                r[13].clone(), // stale
                r[22].clone(), // bp_stall_cycles
            ]
        })
        .collect();
    print_table(
        &[
            "load",
            "variant",
            "adm",
            "budget",
            "retry_amp",
            "goodput",
            "thruput",
            "p99(us)",
            "stale",
            "bp_stall",
        ],
        &table,
    );

    let name = if opts.smoke {
        "figure13_smoke.csv"
    } else {
        "figure13.csv"
    };
    write_csv(&opts.out_dir.join(name), &FIGURE13_HEADER, &rows);
    perf::write_fragment(&opts.out_dir, "figure13", opts.effective_threads());
}
