//! Experiment G1: the paper's Section 1 goal — "support 10000 pairs of
//! setup/teardown requests per second with processing latency of 100
//! microseconds for setup requests, using just a commodity workstation
//! processor."
//!
//! Runs the four-layer Q.93B-shaped signalling stack under paired
//! SETUP/RELEASE load across call rates, conventional vs. LDLP, on a
//! 500 MHz 1996 workstation model.

use bench::sweep::seed_average;
use bench::{f, perf, print_table, write_csv, RunOpts};
use ldlp::{BatchPolicy, Discipline, StackEngine};
use signaling::workload::{call_arrivals, goal_machine, signaling_stack, SIGNALING_LAYERS};
use simnet::stats::SimReport;
use simnet::{run_sim, SimConfig};

fn run(discipline: Discipline, pairs_per_s: f64, opts: &RunOpts) -> SimReport {
    seed_average(opts, |seed| {
        let arrivals = call_arrivals(pairs_per_s, 0.02, opts.duration_s, seed);
        let (m, layers) = signaling_stack(goal_machine(), seed);
        let mut engine = StackEngine::new(m, layers, discipline);
        let cfg = SimConfig {
            duration_s: opts.duration_s,
            ..SimConfig::default()
        };
        let report = run_sim(&mut engine, &arrivals, &cfg);
        perf::note_machine(engine.machine());
        report
    })
}

fn main() {
    let mut opts = RunOpts::from_args();
    if opts.seeds == RunOpts::default().seeds {
        opts.seeds = 10;
    }
    let clock = goal_machine().clock_mhz;
    let instr: u64 = SIGNALING_LAYERS.iter().map(|l| l.3).sum();
    println!(
        "Signalling goal (paper Section 1): 10,000 setup/teardown pairs/s at\n\
         <= 100 us setup processing latency, on a {} MHz workstation.\n\
         Stack: {} layers, {} KB total code, ~{} instructions/message.\n",
        clock,
        SIGNALING_LAYERS.len(),
        SIGNALING_LAYERS.iter().map(|l| l.1).sum::<u64>() / 1024,
        instr
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for pairs in [2_000.0, 5_000.0, 8_000.0, 10_000.0, 12_000.0, 15_000.0] {
        let conv = run(Discipline::Conventional, pairs, &opts);
        let ldlp = run(Discipline::Ldlp(BatchPolicy::DCacheFit), pairs, &opts);
        let proc_us = |r: &SimReport| {
            (instr as f64 + r.mean_imiss * goal_machine().read_miss_penalty as f64
                + r.mean_dmiss * goal_machine().read_miss_penalty as f64)
                / clock
        };
        rows.push(vec![
            f(pairs, 0),
            f(conv.mean_latency_us, 0),
            f(ldlp.mean_latency_us, 0),
            f(proc_us(&conv), 1),
            f(proc_us(&ldlp), 1),
            conv.drops.to_string(),
            ldlp.drops.to_string(),
        ]);
        csv.push(vec![
            f(pairs, 0),
            f(conv.mean_latency_us, 2),
            f(ldlp.mean_latency_us, 2),
            f(conv.p99_latency_us, 2),
            f(ldlp.p99_latency_us, 2),
            f(proc_us(&conv), 2),
            f(proc_us(&ldlp), 2),
            conv.drops.to_string(),
            ldlp.drops.to_string(),
            f(conv.throughput, 1),
            f(ldlp.throughput, 1),
        ]);
    }
    print_table(
        &[
            "pairs/s",
            "conv lat(us)",
            "LDLP lat(us)",
            "conv proc(us)",
            "LDLP proc(us)",
            "conv drops",
            "LDLP drops",
        ],
        &rows,
    );
    println!(
        "\n'lat' is end-to-end (queueing included); 'proc' is the amortized\n\
         per-message processing cost the paper's 100 us goal refers to.\n\
         LDLP meets the goal at 10k pairs/s; conventional scheduling sheds load."
    );
    write_csv(
        &opts.out_dir.join("signaling_goal.csv"),
        &[
            "pairs_per_s",
            "conv_latency_us",
            "ldlp_latency_us",
            "conv_p99_us",
            "ldlp_p99_us",
            "conv_processing_us",
            "ldlp_processing_us",
            "conv_drops",
            "ldlp_drops",
            "conv_throughput",
            "ldlp_throughput",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "signaling_goal", opts.effective_threads());
}
