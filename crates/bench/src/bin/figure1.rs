//! Figure 1 + Table 2: the phases of the receive-and-acknowledge path and
//! the map of active code.
//!
//! Prints the per-phase reference footers of Figure 1 (write/read/code
//! bytes and references) followed by the per-function coverage map.

use bench::{write_csv, RunOpts};
use memtrace::{figmap, phases};
use netstack::footprint::build_receive_ack_trace;

/// (bytes, references) for one class of accesses in one phase.
type BytesRefs = (u64, u64);

/// The paper's Figure 1 column footers: (phase, write bytes/refs, read
/// bytes/refs, code bytes/refs).
const PAPER_FOOTERS: [(&str, BytesRefs, BytesRefs, BytesRefs); 3] = [
    ("entry", (1056, 89), (1856, 121), (3008, 564)),
    ("pkt intr", (6848, 1585), (18496, 6251), (13664, 43138)),
    ("exit", (7328, 1089), (10752, 2103), (18240, 10518)),
];

fn main() {
    let opts = RunOpts::from_args();
    let trace = build_receive_ack_trace();
    let summaries = phases::phase_summaries(&trace);

    println!("Figure 1 / Table 2: phases of the TCP receive & acknowledge path\n");
    println!("Per-phase reference summaries (paper's published footers in parentheses):\n");
    let mut csv = Vec::new();
    for (s, paper) in summaries.iter().zip(PAPER_FOOTERS.iter()) {
        println!("{}:", s.name);
        println!(
            "  Write: {:>6} bytes {:>6} refs   (paper: {} bytes {} refs)",
            s.write.bytes, s.write.refs, paper.1 .0, paper.1 .1
        );
        println!(
            "  Read:  {:>6} bytes {:>6} refs   (paper: {} bytes {} refs)",
            s.read.bytes, s.read.refs, paper.2 .0, paper.2 .1
        );
        println!(
            "  Code:  {:>6} bytes {:>6} refs   (paper: {} bytes {} refs)",
            s.code.bytes, s.code.refs, paper.3 .0, paper.3 .1
        );
        csv.push(vec![
            s.name.clone(),
            s.write.bytes.to_string(),
            s.write.refs.to_string(),
            s.read.bytes.to_string(),
            s.read.refs.to_string(),
            s.code.bytes.to_string(),
            s.code.refs.to_string(),
        ]);
    }

    println!("\nActive-code map (bar = fraction of the function executed per phase):\n");
    let coverage = figmap::function_coverage(&trace);
    print!("{}", figmap::render(&trace, &coverage));

    write_csv(
        &opts.out_dir.join("figure1_phases.csv"),
        &[
            "phase",
            "write_bytes",
            "write_refs",
            "read_bytes",
            "read_refs",
            "code_bytes",
            "code_refs",
        ],
        &csv,
    );
    let cov_rows: Vec<Vec<String>> = coverage
        .iter()
        .filter(|c| c.touched_total > 0)
        .map(|c| {
            let mut row = vec![c.name.clone(), c.size.to_string(), c.touched_total.to_string()];
            row.extend(c.touched_per_phase.iter().map(|t| t.to_string()));
            row
        })
        .collect();
    write_csv(
        &opts.out_dir.join("figure1_coverage.csv"),
        &["function", "size", "touched", "entry", "pkt_intr", "exit"],
        &cov_rows,
    );

    // A browsable Figure-1 lookalike.
    let svg = figmap::render_svg(&trace, &coverage);
    let svg_path = opts.out_dir.join("figure1_map.svg");
    std::fs::create_dir_all(&opts.out_dir).expect("output dir");
    std::fs::write(&svg_path, svg).expect("write svg");
    println!("wrote {}", svg_path.display());
}
