//! Figure 8: cache effects in checksum routines — the elaborate 4.4BSD
//! `in_cksum` vs. a simple tight loop, with warm and cold instruction
//! caches (paper Section 5.1).
//!
//! Both routines exist for real in `netstack::checksum` (and are
//! property-tested to agree); this harness models their cycle cost on the
//! paper's machine: per-byte instruction costs fitted to the figure's
//! warm curves, plus a cache-fill cost of one miss per active code line
//! when the cache is cold. Expected shape: warm, the elaborate routine
//! wins at nearly all sizes; cold, the simple routine wins up to ~900
//! bytes.

use bench::{f, print_table, write_csv, RunOpts};
use cachesim::{CacheConfig, Machine, MachineConfig, Region};
use netstack::checksum::{ELABORATE_FOOTPRINT_BYTES, SIMPLE_FOOTPRINT_BYTES};

/// Primary-miss fill cost used for the checksum study (the DEC 3000/400's
/// full fill path through the secondary cache).
const FILL_PENALTY: u64 = 30;

/// Warm-cache instruction cycles of the elaborate routine: high fixed
/// cost (setup, unrolling prologue), low per-byte cost.
fn elaborate_instr(n: u64) -> u64 {
    176 + (0.70 * n as f64) as u64
}

/// Warm-cache instruction cycles of the simple routine: low fixed cost,
/// high per-byte cost.
fn simple_instr(n: u64) -> u64 {
    80 + (1.54 * n as f64) as u64
}

/// Active code bytes of the elaborate routine for an `n`-byte message:
/// the full 992 bytes once the 32-byte unrolled loop is entered, less for
/// tiny messages that only touch the fix-up paths.
fn elaborate_active(n: u64) -> u64 {
    if n >= 32 {
        ELABORATE_FOOTPRINT_BYTES
    } else {
        448
    }
}

fn machine() -> Machine {
    Machine::new(MachineConfig {
        icache: CacheConfig::direct_mapped(8 * 1024, 32),
        dcache: Some(CacheConfig::direct_mapped(8 * 1024, 32)),
        read_miss_penalty: FILL_PENALTY,
        ..MachineConfig::dec3000_400()
    })
}

/// Cycles to checksum `n` bytes with a routine of the given active code
/// region, cold or warm. The message data is cache-resident in all cases,
/// as in the paper's measurement.
fn cycles(m: &mut Machine, code: Region, instr: u64, cold: bool) -> u64 {
    if cold {
        m.flush_caches();
    } else {
        // Ensure warm: fetch once outside the measurement.
        m.fetch_code(code);
    }
    let before = m.cycles();
    let misses = m.fetch_code(code);
    let _ = misses;
    m.execute(instr);
    m.cycles() - before
}

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Figure 8: checksum cycles vs. message size (fill penalty {FILL_PENALTY} cycles)\n"
    );
    let mut m = machine();
    let elaborate_code_base = 0x10_000u64;
    let simple_code_base = 0x20_000u64;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut crossover: Option<u64> = None;
    for n in (0..=1000u64).step_by(16) {
        let e_code = Region::new(elaborate_code_base, elaborate_active(n));
        let s_code = Region::new(simple_code_base, SIMPLE_FOOTPRINT_BYTES);
        let e_warm = cycles(&mut m, e_code, elaborate_instr(n), false);
        let s_warm = cycles(&mut m, s_code, simple_instr(n), false);
        let e_cold = cycles(&mut m, e_code, elaborate_instr(n), true);
        let s_cold = cycles(&mut m, s_code, simple_instr(n), true);
        if crossover.is_none() && n > 0 && e_cold <= s_cold {
            crossover = Some(n);
        }
        if n % 64 == 0 {
            rows.push(vec![
                n.to_string(),
                e_warm.to_string(),
                s_warm.to_string(),
                e_cold.to_string(),
                s_cold.to_string(),
            ]);
        }
        csv.push(vec![
            n.to_string(),
            e_warm.to_string(),
            s_warm.to_string(),
            e_cold.to_string(),
            s_cold.to_string(),
        ]);
    }
    print_table(
        &["size(B)", "4.4BSD warm", "simple warm", "4.4BSD cold", "simple cold"],
        &rows,
    );
    match crossover {
        Some(n) => println!(
            "\nCold-cache crossover: the elaborate routine overtakes the simple\n\
             one at {n} bytes (paper: ~900 bytes). Warm, the elaborate routine\n\
             wins from {} bytes up.",
            (0..=1000)
                .step_by(16)
                .find(|&n| n > 0 && elaborate_instr(n) <= simple_instr(n))
                .unwrap_or(0)
        ),
        None => println!("\nNo cold-cache crossover below 1000 bytes."),
    }
    println!(
        "\nCache-fill cost at the crossover: {} cycles (elaborate) vs {} (simple).",
        f(
            (elaborate_active(900).div_ceil(32) * FILL_PENALTY) as f64,
            0
        ),
        f((SIMPLE_FOOTPRINT_BYTES.div_ceil(32) * FILL_PENALTY) as f64, 0)
    );

    write_csv(
        &opts.out_dir.join("figure8.csv"),
        &[
            "size",
            "elaborate_warm",
            "simple_warm",
            "elaborate_cold",
            "simple_cold",
        ],
        &csv,
    );
}
