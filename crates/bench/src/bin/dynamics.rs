//! Dynamics of the online LDLP algorithm (Section 3.1): "under light
//! load, messages will usually be processed singly, minimizing delay.
//! Under heavy load, messages will be processed in batches, maximizing
//! throughput."
//!
//! Drives the stack with regime-switching MMPP load (quiet 1000 msg/s,
//! bursts of 9000 msg/s) and records every batch the scheduler forms:
//! the batch factor tracks the offered load with no controller, no
//! tuning, and no configuration — it is an emergent property of
//! "take everything that has arrived".

use bench::{f, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;
use ldlp::synth::paper_stack;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::sim::run_sim_traced;
use simnet::traffic::{MmppSource, TrafficSource};
use simnet::SimConfig;

fn main() {
    let opts = RunOpts::from_args();
    let duration = opts.duration_s.max(2.0);
    // Quiet/burst regimes of ~100 ms each.
    let mut source = MmppSource::two_state(1000.0, 9000.0, 0.1, 552, 42);
    let arrivals = source.take_until(duration);
    println!(
        "LDLP batch dynamics under MMPP load (quiet 1000/s, bursts 9000/s,\n\
         ~100 ms regimes, {duration}s, {} arrivals)\n",
        arrivals.len()
    );

    let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 7);
    let mut engine = StackEngine::new(m, layers, Discipline::Ldlp(BatchPolicy::DCacheFit));
    let mut records = Vec::new();
    let cfg = SimConfig {
        duration_s: duration,
        ..SimConfig::default()
    };
    let report = run_sim_traced(&mut engine, &arrivals, &cfg, Some(&mut records));

    // Downsample into 50 ms bins: mean batch, max queue, arrivals.
    let bin_s = 0.05;
    let bins = (duration / bin_s).ceil() as usize;
    let mut batch_sum = vec![0f64; bins];
    let mut batch_n = vec![0u32; bins];
    let mut queue_max = vec![0usize; bins];
    for r in &records {
        let b = ((r.time_s / bin_s) as usize).min(bins - 1);
        batch_sum[b] += r.batch as f64;
        batch_n[b] += 1;
        queue_max[b] = queue_max[b].max(r.queue_after + r.batch);
    }
    let mut arr_count = vec![0u32; bins];
    for a in &arrivals {
        let b = ((a.time_s / bin_s) as usize).min(bins - 1);
        arr_count[b] += 1;
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for b in 0..bins {
        let mean_batch = if batch_n[b] == 0 {
            0.0
        } else {
            batch_sum[b] / batch_n[b] as f64
        };
        let offered = arr_count[b] as f64 / bin_s;
        csv.push(vec![
            f(b as f64 * bin_s, 3),
            f(offered, 0),
            f(mean_batch, 2),
            queue_max[b].to_string(),
        ]);
        // Print a readable subset: every 4th bin of the first 2 seconds.
        if b % 4 == 0 && (b as f64 * bin_s) < 2.0 {
            let bar = "#".repeat((mean_batch.round() as usize).min(40));
            rows.push(vec![
                f(b as f64 * bin_s, 2),
                f(offered, 0),
                f(mean_batch, 1),
                bar,
            ]);
        }
    }
    print_table(&["t(s)", "offered/s", "mean batch", ""], &rows);
    println!(
        "\nOverall: {} batches, mean batch {:.1}, mean latency {:.0} us, {} drops.\n\
         The batch factor follows the offered load within one batch time —\n\
         the scheduler *is* the controller.",
        records.len(),
        report.mean_batch,
        report.mean_latency_us,
        report.drops
    );
    write_csv(
        &opts.out_dir.join("dynamics.csv"),
        &["time_s", "offered_per_s", "mean_batch", "max_queue"],
        &csv,
    );
}
