//! Table 3: effect of cache-line size on the working set of the TCP/IP
//! trace. Percentage changes are relative to the 32-byte baseline, for
//! bytes (lines x line size) and line counts, per class.

use bench::{print_table, write_csv, RunOpts};
use memtrace::workingset::line_size_sweep;
use netstack::footprint::build_receive_ack_trace;

/// The paper's Table 3: per line size, (code, ro, mut) x (d_bytes%, d_lines%).
const PAPER: [(u64, [i32; 6]); 4] = [
    (64, [17, -41, 44, -28, 55, -22]),
    (16, [-13, 73, -31, 38, -38, 23]),
    (8, [-20, 216, -55, 81, -56, 75]),
    // The paper marks data columns N/A at 4 bytes (64-bit words).
    (4, [-25, 500, 0, 0, 0, 0]),
];

fn main() {
    let opts = RunOpts::from_args();
    let trace = build_receive_ack_trace();
    let rows = line_size_sweep(&trace, &[4, 8, 16, 32, 64], 32);

    println!("Table 3: effect of cache-line size on working set (32-byte baseline)");
    println!("(measured, with the paper's published deltas in parentheses; data");
    println!("columns at 4 bytes are N/A in the paper — 64-bit word size)\n");

    let pct = |v: f64| format!("{:+.0}%", v);
    let mut table = Vec::new();
    let mut csv = Vec::new();
    for ls in [64u64, 32, 16, 8, 4] {
        let r = rows.iter().find(|r| r.line_size == ls).expect("swept");
        let paper = PAPER.iter().find(|(p, _)| *p == ls);
        let cell = |v: f64, idx: usize| match paper {
            Some((_, p)) if !(ls == 4 && idx >= 2) => format!("{} ({:+}%)", pct(v), p[idx]),
            Some(_) => format!("{} (N/A)", pct(v)),
            None => pct(v),
        };
        table.push(vec![
            ls.to_string(),
            cell(r.code.d_bytes_pct, 0),
            cell(r.code.d_lines_pct, 1),
            cell(r.ro_data.d_bytes_pct, 2),
            cell(r.ro_data.d_lines_pct, 3),
            cell(r.mut_data.d_bytes_pct, 4),
            cell(r.mut_data.d_lines_pct, 5),
        ]);
        csv.push(vec![
            ls.to_string(),
            format!("{:.1}", r.code.d_bytes_pct),
            format!("{:.1}", r.code.d_lines_pct),
            format!("{:.1}", r.ro_data.d_bytes_pct),
            format!("{:.1}", r.ro_data.d_lines_pct),
            format!("{:.1}", r.mut_data.d_bytes_pct),
            format!("{:.1}", r.mut_data.d_lines_pct),
            r.code.lines.to_string(),
            r.ro_data.lines.to_string(),
            r.mut_data.lines.to_string(),
        ]);
    }
    print_table(
        &[
            "Line",
            "Code dB",
            "Code dL",
            "RO dB",
            "RO dL",
            "Mut dB",
            "Mut dL",
        ],
        &table,
    );
    println!(
        "\nDoubling the I-cache line to 64 bytes cuts code working-set lines by\n\
         {:.0}% (paper: 41%) — 'large instruction cache line sizes are probably\n\
         appropriate for protocol code' (Section 5.3).",
        -rows.iter().find(|r| r.line_size == 64).expect("swept").code.d_lines_pct
    );

    write_csv(
        &opts.out_dir.join("table3.csv"),
        &[
            "line_size",
            "code_d_bytes_pct",
            "code_d_lines_pct",
            "ro_d_bytes_pct",
            "ro_d_lines_pct",
            "mut_d_bytes_pct",
            "mut_d_lines_pct",
            "code_lines",
            "ro_lines",
            "mut_lines",
        ],
        &csv,
    );
}
