//! Ablation A3 (paper Section 3.2): batch-sizing policy.
//!
//! Compares LDLP batch policies — take-all-available, cap-at-D-cache-fit
//! (the paper's special case, 14 messages for this geometry), and fixed
//! block sizes — against the Lam-style analytical optimum from
//! `ldlp::blocking`.

use bench::sweep::seed_average;
use bench::{f, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;
use ldlp::blocking::BlockingModel;
use ldlp::synth::paper_stack;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::stats::SimReport;
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

fn run(policy: BatchPolicy, rate: f64, opts: &RunOpts) -> SimReport {
    seed_average(opts, |seed| {
        let arrivals = PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
        let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), seed);
        let mut engine = StackEngine::new(m, layers, Discipline::Ldlp(policy));
        let cfg = SimConfig {
            duration_s: opts.duration_s,
            ..SimConfig::default()
        };
        let report = run_sim(&mut engine, &arrivals, &cfg);
        perf::note_machine(engine.machine());
        report
    })
}

fn main() {
    let opts = RunOpts::from_args();
    let model = BlockingModel::paper_synthetic();
    println!(
        "Ablation: LDLP batch policy at the paper's geometry.\n\
         Analytical model: D-cache-fit cap = {}, capacity-model optimum = {}\n\
         (predicted misses/msg at B=1: {:.0}, at optimum: {:.0})\n",
        model.dcache_fit(),
        model.optimal_blocking_factor(64),
        model.misses_per_message(1),
        model.misses_per_message(model.optimal_blocking_factor(64)),
    );

    let policies: [(&str, BatchPolicy); 6] = [
        ("all-available", BatchPolicy::AllAvailable),
        ("dcache-fit(14)", BatchPolicy::DCacheFit),
        ("fixed-2", BatchPolicy::Fixed(2)),
        ("fixed-6", BatchPolicy::Fixed(6)),
        ("fixed-12", BatchPolicy::Fixed(12)),
        ("fixed-32", BatchPolicy::Fixed(32)),
    ];

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for rate in [6000.0, 9000.0] {
        for (name, policy) in policies {
            let r = run(policy, rate, &opts);
            rows.push(vec![
                f(rate, 0),
                name.to_string(),
                f(r.mean_imiss, 0),
                f(r.mean_dmiss, 0),
                f(r.mean_latency_us, 0),
                f(r.mean_batch, 1),
                r.drops.to_string(),
            ]);
            csv.push(vec![
                f(rate, 0),
                name.to_string(),
                f(r.mean_imiss, 2),
                f(r.mean_dmiss, 2),
                f(r.mean_latency_us, 2),
                f(r.mean_batch, 3),
                r.drops.to_string(),
                f(r.throughput, 1),
            ]);
        }
    }
    print_table(
        &["rate", "policy", "I miss", "D miss", "lat(us)", "batch", "drops"],
        &rows,
    );
    println!(
        "\nFixed-32 over-batches: D-cache thrashing raises data misses (and the\n\
         batch outgrows the message pool's residency). The D-cache-fit cap\n\
         tracks the analytical optimum; all-available behaves the same at\n\
         sustainable loads because the queue rarely exceeds the cap."
    );
    write_csv(
        &opts.out_dir.join("ablation_policy.csv"),
        &[
            "rate", "policy", "imiss", "dmiss", "latency_us", "batch", "drops", "throughput",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "ablation_policy", opts.effective_threads());
}
