//! Ablation A1 (paper Section 5.2): CISC code density.
//!
//! "Networking code is substantially smaller on the i386 than on the
//! Alpha ... the NetBSD TCP and IP code is 55% smaller." Denser code
//! means more of the stack fits the I-cache, so the conventional schedule
//! suffers less and LDLP's relative benefit shrinks. This ablation reruns
//! the Figure 5/6 sweep on an i386-like machine (identical caches,
//! 0.45x code size) and compares the LDLP speedup on both architectures.

use bench::sweep::poisson_sweep;
use bench::{f, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Ablation: instruction-set code density (Alpha vs. i386-like, {} seeds)\n",
        opts.seeds
    );
    let rates: Vec<f64> = vec![1000.0, 3000.0, 5000.0, 7000.0, 9000.0];
    let alpha = poisson_sweep(&opts, MachineConfig::synthetic_benchmark(), &rates);
    let i386 = poisson_sweep(&opts, MachineConfig::i386_like(), &rates);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (a, i) in alpha.iter().zip(&i386) {
        let speedup = |p: &bench::sweep::SweepPoint| {
            if p.ldlp.mean_latency_us > 0.0 {
                p.conventional.mean_latency_us / p.ldlp.mean_latency_us
            } else {
                0.0
            }
        };
        rows.push(vec![
            f(a.x, 0),
            f(a.conventional.mean_imiss, 0),
            f(a.ldlp.mean_imiss, 0),
            f(speedup(a), 2),
            f(i.conventional.mean_imiss, 0),
            f(i.ldlp.mean_imiss, 0),
            f(speedup(i), 2),
        ]);
        csv.push(vec![
            f(a.x, 0),
            f(a.conventional.mean_imiss, 2),
            f(a.ldlp.mean_imiss, 2),
            f(a.conventional.mean_latency_us, 2),
            f(a.ldlp.mean_latency_us, 2),
            f(i.conventional.mean_imiss, 2),
            f(i.ldlp.mean_imiss, 2),
            f(i.conventional.mean_latency_us, 2),
            f(i.ldlp.mean_latency_us, 2),
        ]);
    }
    print_table(
        &[
            "rate",
            "alpha conv I",
            "alpha LDLP I",
            "alpha speedup",
            "i386 conv I",
            "i386 LDLP I",
            "i386 speedup",
        ],
        &rows,
    );
    println!(
        "\nThe denser i386-like stack (13.5 KB of code vs 30 KB) still exceeds\n\
         the 8 KB I-cache, but by less: conventional misses are far lower and\n\
         LDLP's latency speedup shrinks accordingly — 'CISC processors ...\n\
         may therefore benefit less from LDLP' (Section 5.2)."
    );
    write_csv(
        &opts.out_dir.join("ablation_cisc.csv"),
        &[
            "rate",
            "alpha_conv_imiss",
            "alpha_ldlp_imiss",
            "alpha_conv_lat_us",
            "alpha_ldlp_lat_us",
            "i386_conv_imiss",
            "i386_ldlp_imiss",
            "i386_conv_lat_us",
            "i386_ldlp_lat_us",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "ablation_cisc", opts.effective_threads());
}
