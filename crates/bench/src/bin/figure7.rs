//! Figure 7: latency as a function of CPU clock speed, driven by
//! self-similar Ethernet-trace-like traffic (the Bellcore October 1989
//! trace in the paper; a calibrated Pareto ON/OFF aggregate here — see
//! DESIGN.md's substitution table).
//!
//! Expected shape (paper): latency rises as the clock falls; conventional
//! scheduling collapses below ~40 MHz while LDLP batches to maintain
//! throughput and degrades gracefully.

use bench::figures::{figure7_rows, FIGURE7_HEADER};
use bench::sweep::{clock_sweep_observed, traced_clock_runs};
use bench::{f, figure7_clocks, obs_io, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;

fn main() {
    let mut opts = RunOpts::from_args();
    // Trace-driven runs need more simulated time than the Poisson sweeps
    // for the burst structure to matter; default to 5 s if unchanged.
    if (opts.duration_s - RunOpts::default().duration_s).abs() < f64::EPSILON {
        opts.duration_s = 5.0;
    }
    println!(
        "Figure 7: latency vs. CPU clock (self-similar trace-like traffic,\n\
         ~1000 pkt/s offered, {} seeds x {}s each, {} worker threads)\n",
        opts.seeds,
        opts.duration_s,
        opts.effective_threads()
    );
    let base = MachineConfig::synthetic_benchmark();
    let clocks = figure7_clocks();
    let (points, recorder) = clock_sweep_observed(&opts, base, &clocks, opts.metrics);

    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            f(p.x, 0),
            f(p.conventional.mean_latency_us, 0),
            f(p.ldlp.mean_latency_us, 0),
            f(p.conventional.drops as f64, 0),
            f(p.ldlp.drops as f64, 0),
            f(p.ldlp.mean_batch, 1),
        ]);
    }
    let csv = figure7_rows(&points);
    print_table(
        &[
            "clock(MHz)",
            "conv lat(us)",
            "LDLP lat(us)",
            "conv drops",
            "LDLP drops",
            "LDLP batch",
        ],
        &rows,
    );
    write_csv(&opts.out_dir.join("figure7.csv"), &FIGURE7_HEADER, &csv);
    perf::write_fragment(&opts.out_dir, "figure7", opts.effective_threads());
    if let Some(rec) = recorder {
        obs_io::write_metrics(&opts.out_dir, &obs_io::run_meta("figure7", &opts), &rec);
    }
    if opts.trace {
        let mid = clocks[clocks.len() / 2];
        let traced = traced_clock_runs(&opts, base, mid);
        let parts: Vec<obs::TracePart> = traced
            .iter()
            .map(|(name, rec)| obs::TracePart {
                process: name,
                recorder: rec,
                units_per_us: mid, // timestamps are cycles of the traced clock
            })
            .collect();
        obs_io::write_trace(&opts.out_dir, &parts);
    }
}
