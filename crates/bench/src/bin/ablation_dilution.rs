//! Ablation A2 (paper Section 5.4): cache dilution and dense layouts.
//!
//! The TCP/IP trace shows ~25% of instruction bytes fetched into the
//! cache never execute; Mosberger-style outlining packs the hot path
//! densely and recovers most of that. This ablation (1) measures dilution
//! in the instrumented trace and projects the dense layout's saving, and
//! (2) reruns the synthetic Figure 5/6 experiment with layers shrunk by
//! the measured dilution, quantifying what outlining buys each schedule.

use bench::sweep::seed_average;
use bench::{f, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;
use layout::outline::{outline, HotColdFunction};
use ldlp::synth::stack_with;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use memtrace::dilution::code_dilution;
use netstack::footprint::{build_receive_ack_trace, FUNCTIONS};
use simnet::stats::SimReport;
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

fn run(code_bytes: u64, discipline: Discipline, rate: f64, opts: &RunOpts) -> SimReport {
    seed_average(opts, |seed| {
        let arrivals = PoissonSource::new(rate, 552, seed).take_until(opts.duration_s);
        let (m, layers) = stack_with(
            MachineConfig::synthetic_benchmark(),
            seed,
            5,
            code_bytes,
            256,
        );
        let mut engine = StackEngine::new(m, layers, discipline);
        let cfg = SimConfig {
            duration_s: opts.duration_s,
            ..SimConfig::default()
        };
        let report = run_sim(&mut engine, &arrivals, &cfg);
        perf::note_machine(engine.machine());
        report
    })
}

fn main() {
    let opts = RunOpts::from_args();

    // Part 1: measured dilution in the TCP/IP trace and the outlining
    // projection over the Figure 1 function inventory.
    let trace = build_receive_ack_trace();
    let d = code_dilution(&trace, 32);
    println!(
        "Measured cache dilution in the TCP/IP receive & ack trace: {:.1}%\n\
         (paper estimate: ~25%). Executed {} bytes across {} lines;\n\
         a perfectly dense layout needs {} lines ({:.1}% fewer).\n",
        d.dilution() * 100.0,
        d.executed_bytes,
        d.lines,
        d.dense_lines,
        d.dense_reduction() * 100.0
    );
    let funcs: Vec<HotColdFunction> = FUNCTIONS
        .iter()
        .map(|s| HotColdFunction {
            size: s.size,
            hot_bytes: (s.touched_lines() * 32).min(s.size),
        })
        .collect();
    let rep = outline(&funcs, 32, 1.0 - d.dilution());
    println!(
        "Outlining projection over the Figure 1 inventory: {} -> {} lines\n\
         ({:.1}% reduction), moving {} cold bytes out of line.\n",
        rep.lines_before,
        rep.lines_after,
        rep.reduction() * 100.0,
        rep.cold_bytes_moved
    );

    // Part 2: what a dense layout does to each schedule. Layers shrink by
    // the measured dilution (6 KB -> ~4.5 KB of hot code per layer).
    let diluted = 6 * 1024u64;
    let dense = ((diluted as f64) * (1.0 - d.dilution())) as u64;
    println!(
        "Synthetic rerun: 5 layers of {diluted} B (diluted) vs {dense} B (dense), {} seeds:\n",
        opts.seeds
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for rate in [2000.0, 4000.0, 6000.0, 8000.0] {
        let conv_dil = run(diluted, Discipline::Conventional, rate, &opts);
        let conv_den = run(dense, Discipline::Conventional, rate, &opts);
        let ldlp_dil = run(diluted, Discipline::Ldlp(BatchPolicy::DCacheFit), rate, &opts);
        let ldlp_den = run(dense, Discipline::Ldlp(BatchPolicy::DCacheFit), rate, &opts);
        rows.push(vec![
            f(rate, 0),
            f(conv_dil.mean_imiss, 0),
            f(conv_den.mean_imiss, 0),
            f(ldlp_dil.mean_imiss, 0),
            f(ldlp_den.mean_imiss, 0),
            f(conv_dil.mean_latency_us, 0),
            f(conv_den.mean_latency_us, 0),
        ]);
        csv.push(vec![
            f(rate, 0),
            f(conv_dil.mean_imiss, 2),
            f(conv_den.mean_imiss, 2),
            f(ldlp_dil.mean_imiss, 2),
            f(ldlp_den.mean_imiss, 2),
            f(conv_dil.mean_latency_us, 2),
            f(conv_den.mean_latency_us, 2),
            f(ldlp_dil.mean_latency_us, 2),
            f(ldlp_den.mean_latency_us, 2),
        ]);
    }
    print_table(
        &[
            "rate",
            "conv I dil",
            "conv I dense",
            "LDLP I dil",
            "LDLP I dense",
            "conv lat dil",
            "conv lat dense",
        ],
        &rows,
    );
    println!(
        "\nDense layouts cut conventional misses by roughly the dilution; LDLP\n\
         already amortizes code fetches, so outlining and LDLP compose — each\n\
         removes a different multiplier on the same cost."
    );
    write_csv(
        &opts.out_dir.join("ablation_dilution.csv"),
        &[
            "rate",
            "conv_imiss_diluted",
            "conv_imiss_dense",
            "ldlp_imiss_diluted",
            "ldlp_imiss_dense",
            "conv_lat_diluted",
            "conv_lat_dense",
            "ldlp_lat_diluted",
            "ldlp_lat_dense",
        ],
        &csv,
    );
    perf::write_fragment(&opts.out_dir, "ablation_dilution", opts.effective_threads());
}
