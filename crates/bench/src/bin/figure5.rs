//! Figure 5: instruction- and data-cache misses per message as a function
//! of arrival rate, Poisson 552-byte messages, conventional vs. LDLP.
//!
//! Expected shape (paper): conventional sits flat near 1000 misses/msg;
//! LDLP's instruction misses fall steeply as batching engages, its data
//! misses rise slightly, and the curve flattens beyond ~8500 msg/s where
//! the D-cache-fit batch cap (14 messages) binds.

use bench::sweep::poisson_sweep;
use bench::{f, figure5_rates, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Figure 5: cache misses per message vs. arrival rate\n\
         (Poisson, 552-byte messages, {} placements x {}s each)\n",
        opts.seeds, opts.duration_s
    );
    let points = poisson_sweep(&opts, MachineConfig::synthetic_benchmark(), &figure5_rates());

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for p in &points {
        let ilp = p.ilp.as_ref().expect("poisson sweep provides ILP");
        rows.push(vec![
            f(p.x, 0),
            f(p.conventional.mean_imiss, 0),
            f(p.conventional.mean_dmiss, 0),
            f(ilp.mean_imiss, 0),
            f(ilp.mean_dmiss, 0),
            f(p.ldlp.mean_imiss, 0),
            f(p.ldlp.mean_dmiss, 0),
            f(p.ldlp.mean_batch, 1),
        ]);
        csv.push(vec![
            f(p.x, 0),
            f(p.conventional.mean_imiss, 2),
            f(p.conventional.mean_dmiss, 2),
            f(p.ldlp.mean_imiss, 2),
            f(p.ldlp.mean_dmiss, 2),
            f(p.ldlp.mean_batch, 3),
            f(p.conventional.mean_batch, 3),
            f(p.conventional.imiss_std, 2),
            f(p.ldlp.imiss_std, 2),
            f(ilp.mean_imiss, 2),
            f(ilp.mean_dmiss, 2),
        ]);
    }
    print_table(
        &[
            "rate(msg/s)",
            "conv I",
            "conv D",
            "ILP I",
            "ILP D",
            "LDLP I",
            "LDLP D",
            "LDLP batch",
        ],
        &rows,
    );
    println!(
        "\nILP's instruction misses match conventional's — integrating the\n\
         data loops cannot help when the code, not the data, is the traffic\n\
         (the paper's Figure 2/4 argument for small messages)."
    );
    write_csv(
        &opts.out_dir.join("figure5.csv"),
        &[
            "rate",
            "conv_imiss",
            "conv_dmiss",
            "ldlp_imiss",
            "ldlp_dmiss",
            "ldlp_batch",
            "conv_batch",
            "conv_imiss_std",
            "ldlp_imiss_std",
            "ilp_imiss",
            "ilp_dmiss",
        ],
        &csv,
    );
}
