//! Figure 5: instruction- and data-cache misses per message as a function
//! of arrival rate, Poisson 552-byte messages, conventional vs. LDLP.
//!
//! Expected shape (paper): conventional sits flat near 1000 misses/msg;
//! LDLP's instruction misses fall steeply as batching engages, its data
//! misses rise slightly, and the curve flattens beyond ~8500 msg/s where
//! the D-cache-fit batch cap (14 messages) binds.

use bench::figures::{figure5_rows, FIGURE5_HEADER};
use bench::sweep::{poisson_sweep_observed, traced_poisson_runs};
use bench::{f, figure5_rates, obs_io, perf, print_table, write_csv, RunOpts};
use cachesim::MachineConfig;

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "Figure 5: cache misses per message vs. arrival rate\n\
         (Poisson, 552-byte messages, {} placements x {}s each,\n\
         {} worker threads)\n",
        opts.seeds,
        opts.duration_s,
        opts.effective_threads()
    );
    let cfg = MachineConfig::synthetic_benchmark();
    let rates = figure5_rates();
    let (points, recorder) = poisson_sweep_observed(&opts, cfg, &rates, opts.metrics);

    let mut rows = Vec::new();
    for p in &points {
        let ilp = p.ilp.as_ref().expect("poisson sweep provides ILP");
        rows.push(vec![
            f(p.x, 0),
            f(p.conventional.mean_imiss, 0),
            f(p.conventional.mean_dmiss, 0),
            f(ilp.mean_imiss, 0),
            f(ilp.mean_dmiss, 0),
            f(p.ldlp.mean_imiss, 0),
            f(p.ldlp.mean_dmiss, 0),
            f(p.ldlp.mean_batch, 1),
        ]);
    }
    let csv = figure5_rows(&points);
    print_table(
        &[
            "rate(msg/s)",
            "conv I",
            "conv D",
            "ILP I",
            "ILP D",
            "LDLP I",
            "LDLP D",
            "LDLP batch",
        ],
        &rows,
    );
    println!(
        "\nILP's instruction misses match conventional's — integrating the\n\
         data loops cannot help when the code, not the data, is the traffic\n\
         (the paper's Figure 2/4 argument for small messages)."
    );
    write_csv(&opts.out_dir.join("figure5.csv"), &FIGURE5_HEADER, &csv);
    perf::write_fragment(&opts.out_dir, "figure5", opts.effective_threads());
    if let Some(rec) = recorder {
        obs_io::write_metrics(&opts.out_dir, &obs_io::run_meta("figure5", &opts), &rec);
    }
    if opts.trace {
        let mid = rates[rates.len() / 2];
        let traced = traced_poisson_runs(&opts, cfg, mid);
        let parts: Vec<obs::TracePart> = traced
            .iter()
            .map(|(name, rec)| obs::TracePart {
                process: name,
                recorder: rec,
                units_per_us: cfg.clock_mhz, // timestamps are CPU cycles
            })
            .collect();
        obs_io::write_trace(&opts.out_dir, &parts);
    }
}
