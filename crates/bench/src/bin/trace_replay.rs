//! Section 2.4's memory-traffic argument, made executable: replay the
//! TCP receive-and-acknowledge trace through the cache model, packet
//! after packet, and measure what is actually fetched from off the CPU.
//!
//! The paper: "few lines will remain in the cache between successive
//! iterations of the receive & acknowledge path ... about 35 KB of code
//! and read-only data is fetched and discarded" per packet on an 8 KB
//! machine, vs ~2.2 KB of message movement.

use bench::{f, print_table, write_csv, RunOpts};
use cachesim::{CacheConfig, MachineConfig};
use memtrace::replay::replay_steady;
use netstack::footprint::{build_receive_ack_trace, MESSAGE_SIZE};

fn main() {
    let opts = RunOpts::from_args();
    let trace = build_receive_ack_trace();
    println!(
        "Replaying the receive & acknowledge trace ({} references) through\n\
         direct-mapped caches, 5 packets back to back:\n",
        trace.refs.len()
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for cache_kb in [8u64, 16, 32, 64] {
        let cfg = MachineConfig {
            icache: CacheConfig::direct_mapped(cache_kb * 1024, 32),
            dcache: Some(CacheConfig::direct_mapped(cache_kb * 1024, 32)),
            ..MachineConfig::dec3000_400()
        };
        let (cold, steady) = replay_steady(&trace, cfg, 5);
        // Message movement per packet: device->mbuf, checksum, mbuf->user
        // (the paper's ~2.2 KB of primary-cache IO for the contents).
        let msg_io = 4 * MESSAGE_SIZE;
        rows.push(vec![
            format!("{cache_kb}KB"),
            cold.total_misses().to_string(),
            f(cold.miss_bytes as f64 / 1024.0, 1),
            steady.total_misses().to_string(),
            f(steady.miss_bytes as f64 / 1024.0, 1),
            f(steady.miss_bytes as f64 / msg_io as f64, 1),
        ]);
        csv.push(vec![
            cache_kb.to_string(),
            cold.imisses.to_string(),
            cold.dmisses.to_string(),
            steady.imisses.to_string(),
            steady.dmisses.to_string(),
            steady.miss_bytes.to_string(),
        ]);
    }
    print_table(
        &[
            "cache",
            "cold misses",
            "cold KB",
            "steady misses",
            "steady KB",
            "x message IO",
        ],
        &rows,
    );
    println!(
        "\nAt 8 KB the whole ~{:.0} KB working set is refetched for every packet\n\
         even in steady state (the measured traffic exceeds it: direct-mapped\n\
         conflicts within one pass, plus per-packet message, stack and device\n\
         traffic) — 26x the message-content movement, comfortably covering\n\
         the paper's 'ten times longer fetching protocol code'. At 64 KB the\n\
         path becomes cache-resident and per-packet traffic collapses.",
        (30304 + 5088 + 3648) as f64 / 1024.0
    );
    write_csv(
        &opts.out_dir.join("trace_replay.csv"),
        &[
            "cache_kb",
            "cold_imisses",
            "cold_dmisses",
            "steady_imisses",
            "steady_dmisses",
            "steady_miss_bytes",
        ],
        &csv,
    );
}
