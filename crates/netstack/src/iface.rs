//! Interface glue: devices, ARP, and protocol dispatch.
//!
//! An [`Interface`] owns one IP/MAC identity and a [`TcpStack`], answers
//! ARP and ICMP echo itself, delivers UDP to bound ports, and hands TCP
//! segments to the state machine. Frames flow through a [`Device`]; the
//! provided devices are an in-process [`Loopback`] and a [`Channel`] pair
//! (two interfaces wired back-to-back, with optional fault injection in
//! the style of smoltcp's examples).

use crate::error::{Error, Result};
use crate::ipfrag::{fragment, parse_fragment, Reassembler, ReassemblyStats};
use crate::tcp::machine::{Instant, TcpStack};
use crate::wire::arp::{ArpOp, ArpRepr};
use crate::wire::ethernet::{EtherType, EthernetAddr, EthernetRepr, ETHERNET_HEADER_LEN};
use crate::wire::icmp::{IcmpRepr, IcmpType};
use crate::wire::ipv4::{Ipv4Addr, Ipv4Repr, Protocol, IPV4_HEADER_LEN};
use crate::wire::udp::UdpRepr;
use obs::{NameId, Sink};
use std::cell::RefCell;
use crate::table::OaTable;
use std::collections::VecDeque;
use std::rc::Rc;

/// A link-layer device: somewhere to send frames and receive them from.
pub trait Device {
    /// Queues a frame for transmission.
    fn transmit(&mut self, frame: Vec<u8>);
    /// Takes the next received frame, if any.
    fn receive(&mut self) -> Option<Vec<u8>>;
}

/// A loopback device: everything transmitted is received back.
#[derive(Debug, Default)]
pub struct Loopback {
    queue: VecDeque<Vec<u8>>,
}

impl Loopback {
    /// A fresh loopback device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Device for Loopback {
    fn transmit(&mut self, frame: Vec<u8>) {
        self.queue.push_back(frame);
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        self.queue.pop_front()
    }
}

/// Deterministic fault injection for [`Channel`] devices.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Drop one frame in every `drop_every` (0 disables).
    pub drop_every: u32,
    /// Corrupt one byte in every `corrupt_every` frames (0 disables).
    pub corrupt_every: u32,
}

#[derive(Debug, Default)]
struct ChannelState {
    /// Frames travelling a -> b.
    ab: VecDeque<Vec<u8>>,
    /// Frames travelling b -> a.
    ba: VecDeque<Vec<u8>>,
    faults: Option<FaultConfig>,
    tx_count: u32,
}

/// One endpoint of a bidirectional in-process link.
#[derive(Debug, Clone)]
pub struct Channel {
    state: Rc<RefCell<ChannelState>>,
    /// True for the "a" endpoint.
    is_a: bool,
}

impl Channel {
    /// Creates both endpoints of a link.
    pub fn pair() -> (Channel, Channel) {
        Self::pair_with_faults(None)
    }

    /// Creates a link with deterministic fault injection.
    pub fn pair_with_faults(faults: Option<FaultConfig>) -> (Channel, Channel) {
        let state = Rc::new(RefCell::new(ChannelState {
            faults,
            ..Default::default()
        }));
        (
            Channel {
                state: state.clone(),
                is_a: true,
            },
            Channel { state, is_a: false },
        )
    }
}

impl Device for Channel {
    fn transmit(&mut self, mut frame: Vec<u8>) {
        let mut st = self.state.borrow_mut();
        st.tx_count += 1;
        if let Some(f) = st.faults {
            if f.drop_every != 0 && st.tx_count.is_multiple_of(f.drop_every) {
                return;
            }
            if f.corrupt_every != 0 && st.tx_count.is_multiple_of(f.corrupt_every) {
                // Flip a byte in the middle of the frame (the tail may be
                // link-layer padding outside any checksum).
                let mid = frame.len() / 2;
                if let Some(b) = frame.get_mut(mid) {
                    *b ^= 0xff;
                }
            }
        }
        if self.is_a {
            st.ab.push_back(frame);
        } else {
            st.ba.push_back(frame);
        }
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        let mut st = self.state.borrow_mut();
        if self.is_a {
            st.ba.pop_front()
        } else {
            st.ab.pop_front()
        }
    }
}

/// Interface-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct IfaceStats {
    pub frames_in: u64,
    pub frames_out: u64,
    pub arp_in: u64,
    pub arp_replies_sent: u64,
    pub ip_in: u64,
    pub icmp_echo_replies: u64,
    pub udp_in: u64,
    pub tcp_in: u64,
    pub parse_errors: u64,
    pub not_for_us: u64,
    pub port_unreachable_sent: u64,
    pub fragments_in: u64,
    pub fragments_out: u64,
    pub datagrams_reassembled: u64,
}

/// Interned event names for the interface's observability sink, filled
/// in once when the sink is attached so the input path stays lookup-free.
#[derive(Debug, Clone, Copy)]
struct ObsIds {
    frame_in: NameId,
    parse_error: NameId,
    fragment_in: NameId,
    datagram_reassembled: NameId,
    reassembly_timeout: NameId,
    reassembly_eviction: NameId,
}

/// A received UDP datagram queued on a bound port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    pub src_addr: Ipv4Addr,
    pub src_port: u16,
    pub payload: Vec<u8>,
}

/// A received ICMP echo reply, for ping-style applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EchoReply {
    pub from: Ipv4Addr,
    pub ident: u16,
    pub seq: u16,
    pub payload: Vec<u8>,
}

/// One host's network interface: identity, ARP, dispatch, and TCP.
pub struct Interface {
    mac: EthernetAddr,
    ip: Ipv4Addr,
    /// ARP cache: IP -> MAC (open addressing: per-packet next-hop
    /// resolution is a point lookup on the data path).
    arp_cache: OaTable<Ipv4Addr, EthernetAddr>,
    /// Packets awaiting ARP resolution, keyed by next hop.
    arp_pending: OaTable<Ipv4Addr, Vec<Vec<u8>>>,
    /// Bound UDP ports and their receive queues.
    udp_ports: OaTable<u16, VecDeque<UdpDatagram>>,
    /// Received echo replies.
    echo_replies: VecDeque<EchoReply>,
    /// The TCP endpoint.
    pub tcp: TcpStack,
    /// IPv4 fragment reassembly.
    reassembler: Reassembler,
    ip_ident: u16,
    stats: IfaceStats,
    /// Optional observability sink: instant events stamped with the
    /// interface clock (milliseconds). [`Sink::Off`] by default.
    sink: Sink,
    obs: Option<ObsIds>,
}

impl Interface {
    /// Creates an interface with the given link and network identities.
    pub fn new(mac: EthernetAddr, ip: Ipv4Addr, tcp: TcpStack) -> Self {
        Interface {
            mac,
            ip,
            arp_cache: OaTable::new(),
            arp_pending: OaTable::new(),
            udp_ports: OaTable::new(),
            echo_replies: VecDeque::new(),
            tcp,
            reassembler: Reassembler::new(),
            ip_ident: 1,
            stats: IfaceStats::default(),
            sink: Sink::Off,
            obs: None,
        }
    }

    /// Attaches an observability sink; event names are interned as
    /// `<prefix><event>` (e.g. `eth0/frame_in`). Events are stamped with
    /// the caller-supplied [`Instant`] (milliseconds, like the TCP
    /// timers), never a wall clock.
    pub fn set_sink(&mut self, mut sink: Sink, prefix: &str) {
        self.obs = sink.on_mut().map(|rec| ObsIds {
            frame_in: rec.intern(&format!("{prefix}frame_in")),
            parse_error: rec.intern(&format!("{prefix}parse_error")),
            fragment_in: rec.intern(&format!("{prefix}fragment_in")),
            datagram_reassembled: rec.intern(&format!("{prefix}datagram_reassembled")),
            reassembly_timeout: rec.intern(&format!("{prefix}reassembly_timeout")),
            reassembly_eviction: rec.intern(&format!("{prefix}reassembly_eviction")),
        });
        self.sink = sink;
    }

    /// Detaches and returns the sink (leaving [`Sink::Off`] behind).
    pub fn take_sink(&mut self) -> Sink {
        self.obs = None;
        self.sink.take()
    }

    /// Emits `n` copies of one instant event, stamped `now`.
    fn obs_instant(&mut self, pick: fn(&ObsIds) -> NameId, now: Instant, n: u64) {
        let Some(ids) = &self.obs else { return };
        let name = pick(ids);
        if let Some(rec) = self.sink.on_mut() {
            for _ in 0..n {
                rec.instant(name, now);
            }
        }
    }

    /// This interface's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// This interface's MAC address.
    pub fn mac(&self) -> EthernetAddr {
        self.mac
    }

    /// Interface counters.
    pub fn stats(&self) -> &IfaceStats {
        &self.stats
    }

    /// Pre-seeds the ARP cache (useful for tests and loopback setups).
    pub fn add_arp_entry(&mut self, ip: Ipv4Addr, mac: EthernetAddr) {
        self.arp_cache.insert(ip, mac);
    }

    /// Binds a UDP port; datagrams arriving for it are queued.
    pub fn udp_bind(&mut self, port: u16) -> Result<()> {
        if self.udp_ports.contains_key(&port) {
            return Err(Error::Exhausted);
        }
        self.udp_ports.insert(port, VecDeque::new());
        Ok(())
    }

    /// Takes the next datagram received on `port`.
    pub fn udp_recv(&mut self, port: u16) -> Option<UdpDatagram> {
        self.udp_ports.get_mut(&port)?.pop_front()
    }

    /// Sends a UDP datagram (queues an ARP request first if needed).
    pub fn udp_send(
        &mut self,
        device: &mut dyn Device,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) {
        let udp = UdpRepr { src_port, dst_port }.packet(self.ip, dst, payload);
        self.send_ip(device, dst, Protocol::Udp, &udp);
    }

    /// Sends an ICMP echo request.
    pub fn ping(
        &mut self,
        device: &mut dyn Device,
        dst: Ipv4Addr,
        ident: u16,
        seq: u16,
        payload: &[u8],
    ) {
        let icmp = IcmpRepr::echo_request(ident, seq, payload).packet();
        self.send_ip(device, dst, Protocol::Icmp, &icmp);
    }

    /// Takes the next received echo reply.
    pub fn take_echo_reply(&mut self) -> Option<EchoReply> {
        self.echo_replies.pop_front()
    }

    /// Fragment-reassembly counters (completions, timeouts, buffer
    /// exhaustion).
    pub fn reassembly_stats(&self) -> ReassemblyStats {
        self.reassembler.stats()
    }

    /// Datagrams currently held half-assembled.
    pub fn reassembly_pending(&self) -> usize {
        self.reassembler.pending()
    }

    /// Drops reassemblies whose timer ran out and counts them. The
    /// reassembler also expires lazily on fragment input, but a stalled
    /// datagram whose peers go quiet would otherwise pin its buffer
    /// forever; [`Interface::poll`] calls this on every pass.
    pub fn expire_reassembly(&mut self, now: Instant) {
        let before = self.reassembler.stats().timeouts;
        self.reassembler.expire(now);
        let expired = self.reassembler.stats().timeouts - before;
        if expired > 0 {
            self.obs_instant(|ids| ids.reassembly_timeout, now, expired);
        }
    }

    /// Polls the interface: drains received frames through the stack,
    /// runs TCP timers, and flushes TCP output. Returns the number of
    /// frames processed.
    pub fn poll(&mut self, device: &mut dyn Device, now: Instant) -> usize {
        let mut processed = 0;
        while let Some(frame) = device.receive() {
            processed += 1;
            if let Err(_e) = self.input_frame(device, &frame, now) {
                self.stats.parse_errors += 1;
                self.obs_instant(|ids| ids.parse_error, now, 1);
            }
        }
        self.expire_reassembly(now);
        self.tcp.poll(now);
        self.flush_tcp(device);
        processed
    }

    /// Processes one received frame.
    // analyze::hot_path(netstack-rx, rules = "panic-path")
    pub fn input_frame(
        &mut self,
        device: &mut dyn Device,
        frame: &[u8],
        now: Instant,
    ) -> Result<()> {
        self.stats.frames_in += 1;
        self.obs_instant(|ids| ids.frame_in, now, 1);
        let (eth, off) = EthernetRepr::parse(frame)?;
        if eth.dst != self.mac && !eth.dst.is_broadcast() {
            self.stats.not_for_us += 1;
            return Ok(());
        }
        match eth.ethertype {
            // analyze::allow(panic-path, reason = "off is a header length the wire parser validated against the frame length")
            EtherType::Arp => self.input_arp(device, &frame[off..]),
            // analyze::allow(panic-path, reason = "off is a header length the wire parser validated against the frame length")
            EtherType::Ipv4 => self.input_ip(device, &frame[off..], now),
            EtherType::Unknown(_) => Ok(()),
        }
    }

    fn input_arp(&mut self, device: &mut dyn Device, packet: &[u8]) -> Result<()> {
        self.stats.arp_in += 1;
        let arp = ArpRepr::parse(packet)?;
        // Learn the sender mapping either way (gratuitous or directed).
        self.arp_cache.insert(arp.sender_ip, arp.sender_hw);
        // Flush packets that were waiting on this resolution.
        if let Some(waiting) = self.arp_pending.remove(&arp.sender_ip) {
            for payload in waiting {
                self.send_ethernet(device, arp.sender_hw, EtherType::Ipv4, &payload);
            }
        }
        if arp.op == ArpOp::Request && arp.target_ip == self.ip {
            let reply = ArpRepr {
                op: ArpOp::Reply,
                sender_hw: self.mac,
                sender_ip: self.ip,
                target_hw: arp.sender_hw,
                target_ip: arp.sender_ip,
            };
            self.send_ethernet(device, arp.sender_hw, EtherType::Arp, &reply.packet());
            self.stats.arp_replies_sent += 1;
        }
        Ok(())
    }

    fn input_ip(&mut self, device: &mut dyn Device, packet: &[u8], now: Instant) -> Result<()> {
        self.stats.ip_in += 1;
        // Permissive parse: full validation, fragments allowed.
        let (ip, frag_field, payload) = parse_fragment(packet)?;
        if ip.dst != self.ip && !ip.dst.is_broadcast() {
            self.stats.not_for_us += 1;
            return Ok(());
        }
        // A fragment goes through reassembly; dispatch resumes when the
        // datagram completes.
        let assembled;
        let payload: &[u8] = if frag_field & 0x3fff != 0 && frag_field & 0x4000 == 0 {
            self.stats.fragments_in += 1;
            self.obs_instant(|ids| ids.fragment_in, now, 1);
            let evictions_before = self.reassembler.stats().evictions;
            let result = self.reassembler.input(&ip, frag_field, payload, now);
            let evicted = self.reassembler.stats().evictions - evictions_before;
            if evicted > 0 {
                self.obs_instant(|ids| ids.reassembly_eviction, now, evicted);
            }
            match result {
                Some(whole) => {
                    self.stats.datagrams_reassembled += 1;
                    self.obs_instant(|ids| ids.datagram_reassembled, now, 1);
                    assembled = whole;
                    &assembled
                }
                None => return Ok(()),
            }
        } else {
            payload
        };
        match ip.protocol {
            Protocol::Icmp => self.input_icmp(device, ip.src, payload),
            Protocol::Udp => self.input_udp(device, ip.src, ip.dst, payload),
            Protocol::Tcp => {
                self.stats.tcp_in += 1;
                let result = self.tcp.input(ip.src, ip.dst, payload, now);
                self.flush_tcp(device);
                match result {
                    // Malformed segments are parse errors; protocol-level
                    // outcomes (RST-answered, out-of-window) are not.
                    Err(e @ (Error::Checksum | Error::Truncated | Error::Malformed)) => Err(e),
                    _ => Ok(()),
                }
            }
            Protocol::Unknown(_) => Ok(()),
        }
    }

    fn input_icmp(&mut self, device: &mut dyn Device, src: Ipv4Addr, payload: &[u8]) -> Result<()> {
        let icmp = IcmpRepr::parse(payload)?;
        match icmp.kind {
            IcmpType::EchoRequest => {
                let reply = icmp.to_echo_reply().packet();
                self.send_ip(device, src, Protocol::Icmp, &reply);
                self.stats.icmp_echo_replies += 1;
            }
            IcmpType::EchoReply => {
                self.echo_replies.push_back(EchoReply {
                    from: src,
                    ident: icmp.ident,
                    seq: icmp.seq,
                    payload: icmp.payload,
                });
            }
            IcmpType::DestUnreachable(_) => {}
        }
        Ok(())
    }

    fn input_udp(
        &mut self,
        device: &mut dyn Device,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: &[u8],
    ) -> Result<()> {
        self.stats.udp_in += 1;
        let (udp, off) = UdpRepr::parse(payload, src, dst)?;
        match self.udp_ports.get_mut(&udp.dst_port) {
            Some(queue) => {
                queue.push_back(UdpDatagram {
                    src_addr: src,
                    src_port: udp.src_port,
                    // analyze::allow(panic-path, reason = "off is a header length the wire parser validated against the frame length")
                    payload: payload[off..].to_vec(),
                });
                Ok(())
            }
            None => {
                // Port unreachable, carrying the offending datagram head.
                // analyze::allow(panic-path, reason = "slice end is min-clamped to payload.len()")
                let quoted = &payload[..payload.len().min(28)];
                let unreachable = IcmpRepr {
                    kind: IcmpType::DestUnreachable(3),
                    ident: 0,
                    seq: 0,
                    payload: quoted.to_vec(),
                }
                .packet();
                self.send_ip(device, src, Protocol::Icmp, &unreachable);
                self.stats.port_unreachable_sent += 1;
                Err(Error::NoRoute)
            }
        }
    }

    /// Flushes queued TCP segments out through IP.
    pub fn flush_tcp(&mut self, device: &mut dyn Device) {
        for seg in self.tcp.take_output() {
            self.send_ip(device, seg.dst, Protocol::Tcp, &seg.bytes);
        }
    }

    /// Wraps `payload` in IPv4 and sends it toward `dst`, resolving the
    /// next hop with ARP when needed.
    pub fn send_ip(
        &mut self,
        device: &mut dyn Device,
        dst: Ipv4Addr,
        protocol: Protocol,
        payload: &[u8],
    ) {
        // Payloads exceeding the link MTU are fragmented (DF is set only
        // on datagrams that fit).
        let fits = IPV4_HEADER_LEN + payload.len() <= MTU;
        let ip = Ipv4Repr {
            src: self.ip,
            dst,
            protocol,
            ttl: 64,
            ident: self.ip_ident,
            dont_frag: fits,
            payload_len: payload.len(),
        };
        self.ip_ident = self.ip_ident.wrapping_add(1);
        // analyze::allow(panic-path, reason = "fragment() cannot fail here: DF is cleared exactly when fragmentation is permitted")
        let packets = fragment(&ip, payload, MTU).expect("DF unset when fragmenting");
        if packets.len() > 1 {
            self.stats.fragments_out += packets.len() as u64;
        }

        if dst == self.ip {
            // Deliver to ourselves via the device (loopback semantics).
            for packet in &packets {
                self.send_ethernet(device, self.mac, EtherType::Ipv4, packet);
            }
            return;
        }
        match self.arp_cache.get(&dst) {
            Some(&mac) => {
                for packet in &packets {
                    self.send_ethernet(device, mac, EtherType::Ipv4, packet);
                }
            }
            None => {
                // Queue and ask. (No routing table: the simulated networks
                // are single-segment, so every destination is on-link.)
                match self.arp_pending.get_mut(&dst) {
                    Some(waiting) => waiting.extend(packets),
                    None => {
                        self.arp_pending.insert(dst, packets);
                    }
                }
                let req = ArpRepr {
                    op: ArpOp::Request,
                    sender_hw: self.mac,
                    sender_ip: self.ip,
                    target_hw: EthernetAddr([0; 6]),
                    target_ip: dst,
                };
                self.send_ethernet(
                    device,
                    EthernetAddr::BROADCAST,
                    EtherType::Arp,
                    &req.packet(),
                );
            }
        }
    }

    fn send_ethernet(
        &mut self,
        device: &mut dyn Device,
        dst: EthernetAddr,
        ethertype: EtherType,
        payload: &[u8],
    ) {
        let eth = EthernetRepr {
            dst,
            src: self.mac,
            ethertype,
        };
        let mut frame = eth.frame(payload);
        // Ethernet minimum frame: 60 bytes before the FCS. Receivers use
        // the IP total-length field, so the padding is invisible above L2.
        if frame.len() < MIN_FRAME {
            frame.resize(MIN_FRAME, 0);
        }
        device.transmit(frame);
        self.stats.frames_out += 1;
    }
}

/// Maximum Ethernet payload the simulated links carry (no jumbo frames).
pub const MTU: usize = 1500;

/// Minimum Ethernet frame length before the FCS; shorter frames are
/// padded with zeros (collision-detection requirement in real Ethernet).
pub const MIN_FRAME: usize = 60;

/// Convenience: the overhead of Ethernet + IPv4 headers.
pub const IP_OVERHEAD: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::machine::TcpConfig;

    fn host(n: u8) -> Interface {
        Interface::new(
            EthernetAddr([2, 0, 0, 0, 0, n]),
            Ipv4Addr::new(192, 168, 69, n),
            TcpStack::new(TcpConfig::default()),
        )
    }

    /// Pump both interfaces until the link is quiet.
    fn settle(a: &mut Interface, ad: &mut Channel, b: &mut Interface, bd: &mut Channel, now: u64) {
        for _ in 0..64 {
            let n = a.poll(ad, now) + b.poll(bd, now);
            if n == 0 {
                break;
            }
        }
    }

    #[test]
    fn loopback_returns_frames() {
        let mut d = Loopback::new();
        d.transmit(vec![1, 2, 3]);
        assert_eq!(d.receive(), Some(vec![1, 2, 3]));
        assert_eq!(d.receive(), None);
    }

    #[test]
    fn channel_is_bidirectional() {
        let (mut a, mut b) = Channel::pair();
        a.transmit(vec![1]);
        b.transmit(vec![2]);
        assert_eq!(b.receive(), Some(vec![1]));
        assert_eq!(a.receive(), Some(vec![2]));
    }

    #[test]
    fn channel_fault_injection_drops() {
        let (mut a, mut b) = Channel::pair_with_faults(Some(FaultConfig {
            drop_every: 2,
            corrupt_every: 0,
        }));
        for i in 0..4u8 {
            a.transmit(vec![i]);
        }
        // Frames 2 and 4 dropped.
        assert_eq!(b.receive(), Some(vec![0]));
        assert_eq!(b.receive(), Some(vec![2]));
        assert_eq!(b.receive(), None);
    }

    #[test]
    fn arp_resolution_end_to_end() {
        let (mut ad, mut bd) = Channel::pair();
        let mut a = host(1);
        let mut b = host(2);
        // A pings B with an empty ARP cache: the first send triggers an
        // ARP exchange, then the queued packet flows.
        a.ping(&mut ad, b.ip(), 7, 1, b"hello");
        settle(&mut a, &mut ad, &mut b, &mut bd, 0);
        let reply = a.take_echo_reply().expect("echo reply received");
        assert_eq!(reply.ident, 7);
        assert_eq!(reply.payload, b"hello");
        assert_eq!(b.stats().icmp_echo_replies, 1);
        assert!(a.stats().frames_out >= 2, "ARP request + echo request");
    }

    #[test]
    fn udp_delivery_and_port_unreachable() {
        let (mut ad, mut bd) = Channel::pair();
        let mut a = host(1);
        let mut b = host(2);
        b.udp_bind(6969).unwrap();
        a.udp_send(&mut ad, 5555, b.ip(), 6969, b"datagram");
        settle(&mut a, &mut ad, &mut b, &mut bd, 0);
        let dg = b.udp_recv(6969).expect("datagram queued");
        assert_eq!(dg.payload, b"datagram");
        assert_eq!(dg.src_port, 5555);

        // Unbound port: B answers with ICMP port unreachable.
        a.udp_send(&mut ad, 5555, b.ip(), 7000, b"nobody home");
        settle(&mut a, &mut ad, &mut b, &mut bd, 0);
        assert_eq!(b.stats().port_unreachable_sent, 1);
    }

    #[test]
    fn short_frames_are_padded_to_minimum() {
        let (mut ad, mut bd) = Channel::pair();
        let mut a = host(1);
        let b = host(2);
        let b_ip = b.ip();
        let b_mac = b.mac();
        a.add_arp_entry(b_ip, b_mac);
        // A 1-byte UDP datagram: 14 + 20 + 8 + 1 = 43 bytes unpadded.
        a.udp_send(&mut ad, 1, b_ip, 2, &[0x55]);
        let frame = bd.receive().expect("frame on the wire");
        assert_eq!(frame.len(), MIN_FRAME);
        // The padding is invisible above L2: a full-size receiver path
        // still parses the 1-byte payload (total-length governs).
        let mut b = b;
        let mut b2 = bd.clone();
        b.udp_bind(2).unwrap();
        b.input_frame(&mut b2, &frame, 0).unwrap();
        assert_eq!(b.udp_recv(2).unwrap().payload, vec![0x55]);
    }

    #[test]
    fn oversized_udp_datagram_fragments_and_reassembles() {
        let (mut ad, mut bd) = Channel::pair();
        let mut a = host(1);
        let mut b = host(2);
        b.udp_bind(7000).unwrap();
        // 4000-byte payload >> 1500-byte MTU: 3 fragments on the wire.
        let big: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        let b_ip = b.ip();
        a.udp_send(&mut ad, 6000, b_ip, 7000, &big);
        settle(&mut a, &mut ad, &mut b, &mut bd, 0);
        let dg = b.udp_recv(7000).expect("reassembled datagram delivered");
        assert_eq!(dg.payload, big);
        assert_eq!(a.stats().fragments_out, 3);
        assert_eq!(b.stats().fragments_in, 3);
        assert_eq!(b.stats().datagrams_reassembled, 1);
    }

    #[test]
    fn lost_fragment_drops_whole_datagram() {
        // Drop the 4th frame: ARP req, ARP reply, frag1 pass; frag2 lost.
        let (mut ad, mut bd) = Channel::pair_with_faults(Some(FaultConfig {
            drop_every: 4,
            corrupt_every: 0,
        }));
        let mut a = host(1);
        let mut b = host(2);
        b.udp_bind(7000).unwrap();
        let big = vec![9u8; 4000];
        let b_ip = b.ip();
        a.udp_send(&mut ad, 6000, b_ip, 7000, &big);
        settle(&mut a, &mut ad, &mut b, &mut bd, 0);
        assert!(b.udp_recv(7000).is_none(), "incomplete datagram withheld");
        assert_eq!(b.stats().datagrams_reassembled, 0);
    }

    #[test]
    fn frames_for_other_hosts_ignored() {
        let (mut ad, mut bd) = Channel::pair();
        let mut a = host(1);
        let mut b = host(2);
        let mut c = host(3);
        a.add_arp_entry(c.ip(), c.mac());
        a.ping(&mut ad, c.ip(), 1, 1, b"x");
        // B sees the frame (shared channel) but it's not addressed to it.
        settle(&mut a, &mut ad, &mut b, &mut bd, 0);
        assert_eq!(b.stats().not_for_us, 1);
        assert_eq!(b.stats().icmp_echo_replies, 0);
        let _ = &mut c;
    }

    #[test]
    fn corrupt_frames_rejected_by_checksums() {
        let (mut ad, mut bd) = Channel::pair_with_faults(Some(FaultConfig {
            drop_every: 0,
            corrupt_every: 2, // corrupt the echo request's last byte
        }));
        let mut a = host(1);
        let mut b = host(2);
        a.add_arp_entry(b.ip(), b.mac());
        b.add_arp_entry(a.ip(), a.mac());
        a.ping(&mut ad, b.ip(), 7, 1, b"hello"); // tx #1: intact ARP-less ping
        a.ping(&mut ad, b.ip(), 7, 2, b"world"); // tx #2: corrupted
        settle(&mut a, &mut ad, &mut b, &mut bd, 0);
        assert_eq!(b.stats().icmp_echo_replies, 1);
        assert_eq!(b.stats().parse_errors, 1);
    }

    #[test]
    fn sink_records_instant_events_matching_counters() {
        let (mut ad, mut bd) = Channel::pair_with_faults(Some(FaultConfig {
            drop_every: 0,
            corrupt_every: 5,
        }));
        let mut a = host(1);
        let mut b = host(2);
        b.set_sink(obs::Sink::record(true), "b/");
        b.udp_bind(7000).unwrap();
        let big = vec![7u8; 4000];
        let b_ip = b.ip();
        a.udp_send(&mut ad, 6000, b_ip, 7000, &big);
        a.ping(&mut ad, b_ip, 1, 1, b"x"); // one corrupted frame en route
        settle(&mut a, &mut ad, &mut b, &mut bd, 3);
        let stats = *b.stats();
        let mut rec = b.take_sink().into_recorder().expect("sink was attached");
        let count = |rec: &mut obs::Recorder, name: &str| {
            let id = rec.intern(name);
            rec.span_accum(id).map(|a| a.spans).unwrap_or(0)
        };
        assert_eq!(count(&mut rec, "b/frame_in"), stats.frames_in);
        assert_eq!(count(&mut rec, "b/fragment_in"), stats.fragments_in);
        assert_eq!(
            count(&mut rec, "b/datagram_reassembled"),
            stats.datagrams_reassembled
        );
        assert_eq!(count(&mut rec, "b/parse_error"), stats.parse_errors);
        assert!(stats.frames_in > 0 && stats.fragments_in > 0);
        // Events are stamped with the poll clock, in milliseconds.
        assert!(rec.events().iter().all(|ev| ev.start == 3 && ev.dur == 0));
    }

    #[test]
    fn sink_records_reassembly_timeout_instants() {
        let (mut ad, mut bd) = Channel::pair_with_faults(Some(FaultConfig {
            drop_every: 4, // lose one mid-datagram fragment
            corrupt_every: 0,
        }));
        let mut a = host(1);
        let mut b = host(2);
        b.set_sink(obs::Sink::record(false), "b/");
        b.udp_bind(7000).unwrap();
        let b_ip = b.ip();
        a.udp_send(&mut ad, 6000, b_ip, 7000, &vec![9u8; 4000]);
        settle(&mut a, &mut ad, &mut b, &mut bd, 0);
        assert_eq!(b.reassembly_pending(), 1);
        // Poll far past the reassembly deadline: the half datagram expires.
        b.poll(&mut bd, 120_000);
        assert_eq!(b.reassembly_stats().timeouts, 1);
        let mut rec = b.take_sink().into_recorder().expect("sink was attached");
        let id = rec.intern("b/reassembly_timeout");
        let acc = rec.span_accum(id).expect("timeout instants recorded");
        assert_eq!(acc.spans, 1);
    }
}
