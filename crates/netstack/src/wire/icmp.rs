//! ICMPv4 (RFC 792): echo request/reply and destination unreachable.

use crate::checksum;
use crate::error::{Error, Result};

/// Length of the fixed ICMP header.
pub const ICMP_HEADER_LEN: usize = 8;

/// The ICMP message types the stack handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    EchoReply,
    EchoRequest,
    /// Destination unreachable with the given code (e.g. 3 = port
    /// unreachable, sent for UDP datagrams with no listener).
    DestUnreachable(u8),
}

/// A parsed ICMP message. `ident`/`seq` are meaningful for echo messages;
/// for destination unreachable the payload carries the offending header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpRepr {
    pub kind: IcmpType,
    pub ident: u16,
    pub seq: u16,
    pub payload: Vec<u8>,
}

impl IcmpRepr {
    /// Builds an echo request.
    pub fn echo_request(ident: u16, seq: u16, payload: &[u8]) -> Self {
        IcmpRepr {
            kind: IcmpType::EchoRequest,
            ident,
            seq,
            payload: payload.to_vec(),
        }
    }

    /// The reply matching this echo request (same ident/seq/payload).
    pub fn to_echo_reply(&self) -> Self {
        IcmpRepr {
            kind: IcmpType::EchoReply,
            ..self.clone()
        }
    }

    /// Parses and validates (checksum included) an ICMP message.
    pub fn parse(buf: &[u8]) -> Result<IcmpRepr> {
        if buf.len() < ICMP_HEADER_LEN {
            return Err(Error::Truncated);
        }
        if checksum::simple(buf) != 0 {
            return Err(Error::Checksum);
        }
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let kind = match (buf[0], buf[1]) {
            (0, 0) => IcmpType::EchoReply,
            (8, 0) => IcmpType::EchoRequest,
            (3, code) => IcmpType::DestUnreachable(code),
            _ => return Err(Error::Malformed),
        };
        Ok(IcmpRepr {
            kind,
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            seq: u16::from_be_bytes([buf[6], buf[7]]),
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            payload: buf[ICMP_HEADER_LEN..].to_vec(),
        })
    }

    /// Serializes the message with a correct checksum.
    pub fn packet(&self) -> Vec<u8> {
        let mut out = vec![0u8; ICMP_HEADER_LEN + self.payload.len()];
        let (ty, code) = match self.kind {
            IcmpType::EchoReply => (0, 0),
            IcmpType::EchoRequest => (8, 0),
            IcmpType::DestUnreachable(c) => (3, c),
        };
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[0] = ty;
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[1] = code;
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[4..6].copy_from_slice(&self.ident.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[6..8].copy_from_slice(&self.seq.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[ICMP_HEADER_LEN..].copy_from_slice(&self.payload);
        let ck = checksum::simple(&out);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let req = IcmpRepr::echo_request(0xbeef, 7, b"ping payload");
        let parsed = IcmpRepr::parse(&req.packet()).unwrap();
        assert_eq!(parsed, req);
        let reply = parsed.to_echo_reply();
        assert_eq!(reply.kind, IcmpType::EchoReply);
        assert_eq!(reply.ident, 0xbeef);
        assert_eq!(reply.seq, 7);
        assert_eq!(reply.payload, b"ping payload");
    }

    #[test]
    fn dest_unreachable_round_trip() {
        let r = IcmpRepr {
            kind: IcmpType::DestUnreachable(3),
            ident: 0,
            seq: 0,
            payload: vec![0x45, 0, 0, 20],
        };
        assert_eq!(IcmpRepr::parse(&r.packet()).unwrap(), r);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let mut pkt = IcmpRepr::echo_request(1, 1, b"x").packet();
        pkt[8] ^= 0x55;
        assert_eq!(IcmpRepr::parse(&pkt), Err(Error::Checksum));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut pkt = IcmpRepr::echo_request(1, 1, b"").packet();
        pkt[0] = 42;
        // Fix the checksum so the type check is what fails.
        pkt[2] = 0;
        pkt[3] = 0;
        let ck = checksum::simple(&pkt);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(IcmpRepr::parse(&pkt), Err(Error::Malformed));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(IcmpRepr::parse(&[0u8; 7]), Err(Error::Truncated));
    }
}
