//! IPv4 headers (RFC 791), without options.

use crate::checksum;
use crate::error::{Error, Result};

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// A 32-bit IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr([255; 4]);
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0; 4]);

    /// Builds an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// Whether this is the limited broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether this is a class-D multicast address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0xf0 == 0xe0
    }

    /// Whether the address is a plain unicast address.
    pub fn is_unicast(&self) -> bool {
        !self.is_broadcast() && !self.is_multicast() && *self != Self::UNSPECIFIED
    }
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// IP protocol numbers the stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Icmp,
    Tcp,
    Udp,
    Unknown(u8),
}

impl From<u8> for Protocol {
    fn from(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Unknown(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(p: Protocol) -> u8 {
        match p {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Unknown(v) => v,
        }
    }
}

/// A parsed IPv4 header (options unsupported, silently rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: Protocol,
    pub ttl: u8,
    /// Identification field (used by fragmentation; carried verbatim).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// Payload length in bytes (total length minus header).
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Parses and validates a header; returns the repr and payload offset.
    ///
    /// Validates version, header length, total length against the buffer,
    /// and the header checksum. Fragments (offset != 0 or MF set) are
    /// reported as [`Error::Malformed`] — reassembly is out of scope, as
    /// it is for the paper's fast path ("the message ... is not a
    /// fragment").
    pub fn parse(buf: &[u8]) -> Result<(Ipv4Repr, usize)> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let version = buf[0] >> 4;
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if version != 4 {
            return Err(Error::Malformed);
        }
        if ihl < IPV4_HEADER_LEN {
            return Err(Error::Malformed);
        }
        if buf.len() < ihl {
            return Err(Error::Truncated);
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total_len < ihl || total_len > buf.len() {
            return Err(Error::Truncated);
        }
        if checksum::simple(&buf[..ihl]) != 0 {
            return Err(Error::Checksum);
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        let more_frags = flags_frag & 0x2000 != 0;
        let frag_offset = flags_frag & 0x1fff;
        if more_frags || frag_offset != 0 {
            return Err(Error::Malformed);
        }
        Ok((
            Ipv4Repr {
                src: Ipv4Addr([buf[12], buf[13], buf[14], buf[15]]),
                dst: Ipv4Addr([buf[16], buf[17], buf[18], buf[19]]),
                protocol: buf[9].into(),
                ttl: buf[8],
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                dont_frag: flags_frag & 0x4000 != 0,
                payload_len: total_len - ihl,
            },
            ihl,
        ))
    }

    /// Writes a 20-byte header (checksum included) into `buf`.
    pub fn emit(&self, buf: &mut [u8]) {
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[0] = 0x45; // version 4, IHL 5
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[1] = 0; // DSCP/ECN
        let total = (IPV4_HEADER_LEN + self.payload_len) as u16;
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[2..4].copy_from_slice(&total.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        let flags: u16 = if self.dont_frag { 0x4000 } else { 0 };
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[6..8].copy_from_slice(&flags.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[8] = self.ttl;
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[9] = self.protocol.into();
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[10..12].copy_from_slice(&[0, 0]);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[12..16].copy_from_slice(&self.src.0);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[16..20].copy_from_slice(&self.dst.0);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let ck = checksum::simple(&buf[..IPV4_HEADER_LEN]);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Builds a complete packet (header + `payload`).
    pub fn packet(&self, payload: &[u8]) -> Vec<u8> {
        debug_assert_eq!(payload.len(), self.payload_len);
        let mut out = vec![0u8; IPV4_HEADER_LEN + payload.len()];
        self.emit(&mut out);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[IPV4_HEADER_LEN..].copy_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(192, 168, 69, 1),
            dst: Ipv4Addr::new(192, 168, 69, 2),
            protocol: Protocol::Tcp,
            ttl: 64,
            ident: 0x1234,
            dont_frag: true,
            payload_len: 5,
        }
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let pkt = r.packet(b"abcde");
        let (parsed, off) = Ipv4Repr::parse(&pkt).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(off, IPV4_HEADER_LEN);
        assert_eq!(&pkt[off..], b"abcde");
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let mut pkt = sample().packet(b"abcde");
        pkt[8] ^= 0xff; // flip TTL without fixing the checksum
        assert_eq!(Ipv4Repr::parse(&pkt), Err(Error::Checksum));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut pkt = sample().packet(b"abcde");
        pkt[0] = 0x65;
        assert_eq!(Ipv4Repr::parse(&pkt), Err(Error::Malformed));
    }

    #[test]
    fn fragment_rejected() {
        let r = sample();
        let mut pkt = r.packet(b"abcde");
        // Set MF and fix up the checksum.
        pkt[6] = 0x20;
        pkt[10] = 0;
        pkt[11] = 0;
        let ck = checksum::simple(&pkt[..IPV4_HEADER_LEN]);
        pkt[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(Ipv4Repr::parse(&pkt), Err(Error::Malformed));
    }

    #[test]
    fn truncated_total_length_rejected() {
        let r = sample();
        let pkt = r.packet(b"abcde");
        assert_eq!(Ipv4Repr::parse(&pkt[..22]), Err(Error::Truncated));
    }

    #[test]
    fn total_len_shorter_than_buffer_is_ok() {
        // Ethernet padding can make the buffer longer than total_length.
        let r = sample();
        let mut pkt = r.packet(b"abcde");
        pkt.extend_from_slice(&[0u8; 10]);
        let (parsed, _) = Ipv4Repr::parse(&pkt).unwrap();
        assert_eq!(parsed.payload_len, 5);
    }

    #[test]
    fn address_predicates() {
        assert!(Ipv4Addr::BROADCAST.is_broadcast());
        assert!(Ipv4Addr::new(224, 0, 0, 1).is_multicast());
        assert!(Ipv4Addr::new(10, 1, 2, 3).is_unicast());
        assert!(!Ipv4Addr::UNSPECIFIED.is_unicast());
        assert_eq!(Ipv4Addr::new(10, 0, 0, 1).to_string(), "10.0.0.1");
    }

    #[test]
    fn protocol_mapping_round_trips() {
        for p in [Protocol::Icmp, Protocol::Tcp, Protocol::Udp, Protocol::Unknown(99)] {
            assert_eq!(Protocol::from(u8::from(p)), p);
        }
    }
}
